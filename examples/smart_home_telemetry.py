"""High-dimensional IoT telemetry collection (the paper's motivating case).

The introduction motivates LDP with IoT and smart devices: a vendor wants
per-sensor population averages across hundreds of correlated telemetry
channels without seeing any household's raw data. This example simulates
that deployment on the correlated COV-19-like generator (a stand-in for
any strongly cross-correlated sensor fleet):

* 40,000 households × 400 sensor channels, normalized to [−1, 1];
* each household reports m = 40 channels with collective ε = 1;
* the vendor compares the naive aggregation against HDR4ME for three
  mechanisms, reporting MSE and the number of channels L1 identifies as
  pure noise.

Run:  python examples/smart_home_telemetry.py
"""

from repro import (
    MeanEstimationPipeline,
    Recalibrator,
    cov19_like,
    get_mechanism,
    mse,
    true_mean,
)
from repro.protocol import build_populations

HOUSEHOLDS, CHANNELS, SAMPLED, EPSILON, SEED = 40_000, 400, 40, 1.0, 7


def main() -> None:
    telemetry = cov19_like(HOUSEHOLDS, CHANNELS, rng=SEED)
    truth = true_mean(telemetry)

    for name in ("laplace", "piecewise", "square_wave"):
        mechanism = get_mechanism(name)
        pipeline = MeanEstimationPipeline(
            mechanism,
            EPSILON,
            dimensions=CHANNELS,
            sampled_dimensions=SAMPLED,
        )
        result = pipeline.run(telemetry, rng=SEED + 1)
        populations = (
            build_populations(telemetry) if mechanism.bounded else None
        )
        model = pipeline.deviation_model(
            users=result.users, populations=populations
        )

        baseline = mse(result.theta_hat, truth)
        line = "%-12s baseline MSE %.5f" % (name, baseline)
        for norm in ("l1", "l2"):
            enhanced = Recalibrator(norm=norm).recalibrate(
                result.theta_hat, model
            )
            line += "  |  %s %.5f" % (norm.upper(), mse(enhanced.theta_star, truth))
            if norm == "l1":
                line += " (%d/%d channels suppressed)" % (
                    enhanced.suppressed_dimensions,
                    CHANNELS,
                )
        print(line)

    print()
    print(
        "Reading: with eps=1 split over %d reported channels, the naive "
        "aggregate is noise-dominated for Laplace/Piecewise and HDR4ME "
        "recovers usable averages; Square wave is already concentrated, "
        "so re-calibration has little to add." % SAMPLED
    )


if __name__ == "__main__":
    main()
