"""A hierarchical federated round: edges aggregate, a root merges.

The two-tier topology for populations too large (or too scattered) for
one gateway: clients report to a nearby *edge aggregator*, which runs a
full collection gateway locally — same handshake, same acked frames,
same backpressure — and folds reports into its own sharded server.
Periodically, and always at shutdown, each edge cuts a cumulative
``state_dict`` snapshot and pushes it upstream to a *root aggregator*
over the same framed socket protocol (a ``STATE`` hello instead of a
report hello). The root keeps the newest epoch per edge and merges
across edges with the exact big-integer accumulation, so the federated
estimate is **bit-identical** to one-shot ingestion of every client's
reports — for any edge count, any client-to-edge split, and any amount
of push retrying.

Three properties carry the tier:

* **cumulative pushes** — a snapshot at epoch ``n`` covers everything
  epochs ``1..n-1`` did, so a lost push costs nothing: the next one
  subsumes it;
* **epoch idempotency** — the root's handshake reply carries the highest
  epoch it has folded for this edge id, and anything at or below that
  watermark is acknowledged without folding — retries can never double
  count;
* **contract symmetry** — both hops fingerprint-check the same
  collection contract, and a report stream dialing a root (or a push
  stream dialing a plain gateway) is refused with a typed error.

This example runs the whole hierarchy in one process over 127.0.0.1:
three edges serve four clients between them, one edge deliberately
re-pushes an already-folded epoch (deduped, not double counted), and
the root's merged estimate is asserted bit-equal to a reference server
that ingested every frame directly.

Run:  PYTHONPATH=src python examples/federated_collection.py
"""

import asyncio

import numpy as np

from repro import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
)
from repro.federation import EdgeAggregator, StatePusher, serve_root
from repro.transport import replay_frames

USERS_PER_CLIENT, EDGES, EPSILON, SEED = 4_000, 3, 2.0, 29

SCHEMA = Schema(
    [
        NumericAttribute("screen_time"),
        NumericAttribute("battery_drain"),
        CategoricalAttribute("top_app", n_categories=12),
    ]
)
PROTOCOLS = {"top_app": "oue"}

#: Stable identities: an edge id names one resumable push stream at the
#: root, so a restarted edge resumes instead of registering a ghost.
EDGE_IDS = [bytes([0x10 + n]) * 16 for n in range(EDGES)]
CLIENT_IDS = [bytes([0x20 + n]) * 16 for n in range(EDGES + 1)]


def client_frames(seed: int) -> list:
    """One client's perturbed, wire-encoded report frames (seeded)."""
    gen = np.random.default_rng(seed)
    records = np.column_stack(
        [
            np.clip(gen.normal(0.3, 0.4, USERS_PER_CLIENT), -1, 1),
            np.clip(gen.normal(-0.1, 0.3, USERS_PER_CLIENT), -1, 1),
            gen.integers(0, 12, USERS_PER_CLIENT),
        ]
    )
    client = LDPClient(SCHEMA, EPSILON, protocols=PROTOCOLS)
    return [
        client.report_encoded(chunk, gen)
        for chunk in np.array_split(records, 4)
    ]


async def federated_round(rounds: list) -> dict:
    """Run root + edges + clients; return everything worth asserting."""
    async with await serve_root(
        SCHEMA, EPSILON, protocols=PROTOCOLS
    ) as root:
        edges = []
        for edge_id in EDGE_IDS:
            edge = EdgeAggregator(
                SCHEMA,
                EPSILON,
                protocols=PROTOCOLS,
                shards=2,
                edge_id=edge_id,
                push_every_frames=2,  # push every 2 accepted frames
            )
            edges.append(await edge.start("127.0.0.1", root.port))

        # Clients split across the edges (the last edge serves two).
        contract = root.contract
        await asyncio.gather(
            *(
                replay_frames(
                    "127.0.0.1",
                    edges[min(n, EDGES - 1)].port,
                    contract,
                    frames,
                    CLIENT_IDS[n],
                )
                for n, frames in enumerate(rounds)
            )
        )

        # Stop the edges: each drains its gateway and ALWAYS pushes its
        # final cumulative snapshot, so the root holds complete rounds.
        for edge in edges:
            await edge.stop()

        # A flaky edge retries a push it already delivered: the root's
        # epoch watermark acknowledges it without folding.
        async with await StatePusher.connect(
            "127.0.0.1", root.port, contract, EDGE_IDS[0]
        ) as pusher:
            pusher._next_epoch = pusher.resume_epoch  # replay the last epoch
            await pusher.push(edges[0].server.state_dict())

        await root.wait_for_users(len(rounds) * USERS_PER_CLIENT)
        snapshot = root.stats_snapshot()
        return {
            "estimate": root.estimate(),
            "counters": snapshot["counters"],
            "pushes": [edge.pushes_completed for edge in edges],
        }


def main() -> None:
    rounds = [client_frames(SEED + n) for n in range(EDGES + 1)]

    reference = LDPServer(SCHEMA, EPSILON, protocols=PROTOCOLS)
    for frames in rounds:
        for frame in frames:
            reference.ingest_encoded(frame)

    result = asyncio.run(federated_round(rounds))
    counters = result["counters"]

    print("== topology ==")
    print(
        "%d clients x %d users -> %d edges -> 1 root"
        % (len(rounds), USERS_PER_CLIENT, EDGES)
    )
    print(
        "pushes folded: %d  deduped: %d  rejected: %d  (per edge: %s)"
        % (
            counters["pushes_accepted"],
            counters["pushes_deduped"],
            counters["pushes_rejected"],
            result["pushes"],
        )
    )

    print("\n== federated vs one-shot (must be bit-identical) ==")
    federated, oneshot = result["estimate"], reference.estimate()
    assert federated.users == oneshot.users == len(rounds) * USERS_PER_CLIENT
    for ours, theirs in zip(federated.attributes, oneshot.attributes):
        assert np.array_equal(ours.raw, theirs.raw), ours.name
        shown = (
            np.array2string(ours.raw[:4], precision=4)
            if ours.kind == "categorical"
            else "%+.6f" % ours.scalar
        )
        print("%-14s %s  (identical)" % (ours.name, shown))

    assert counters["pushes_deduped"] == 1  # the replayed epoch
    assert counters["pushes_rejected"] == 0
    assert counters["edges"] == EDGES
    print(
        "\nfederated estimate over %d edges is bit-identical to one-shot"
        % EDGES
    )


if __name__ == "__main__":
    main()
