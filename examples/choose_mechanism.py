"""Choosing an LDP mechanism analytically, without running experiments.

The Section IV framework turns mechanism selection into a closed-form
computation: given the deployment's budget, report volume, and tolerated
deviation ξ, compare the probability that each candidate's estimate stays
within ξ — the paper's Table II generalized to all six shipped mechanisms.

The example also evaluates the Theorem 2 Berry–Esseen bound so the analyst
knows how much to trust the asymptotic answer at her actual report count.

Run:  python examples/choose_mechanism.py
"""

from repro import ValueDistribution, benchmark_mechanisms, berry_esseen_bound
from repro.mechanisms import get_mechanism

# Deployment parameters: each user reports m = 20 of d = 200 dimensions
# with collective budget eps = 1, and the service has 100k users.
EPSILON_PER_DIM = 1.0 / 20.0
REPORTS = 100_000 * 20 // 200
SUPREMA = (0.01, 0.05, 0.1, 0.25)

#: Candidates on the standard [-1, 1] domain.
CANDIDATES = ("laplace", "staircase", "duchi", "piecewise", "hybrid",
              "square_wave")


def main() -> None:
    # What the collector knows about the data: roughly uniform in [-1, 1].
    population = ValueDistribution.uniform_grid(-0.9, 0.9, 10)

    table = benchmark_mechanisms(
        [get_mechanism(name) for name in CANDIDATES],
        epsilon_per_dim=EPSILON_PER_DIM,
        reports=REPORTS,
        suprema=SUPREMA,
        default_population=population,
    )
    print("P(|deviation| <= xi) per mechanism (analytical, no experiments):")
    print(table.format())
    for xi in SUPREMA:
        print("best at xi=%g: %s" % (xi, table.winner_at(xi)))

    print()
    print("How asymptotic is the answer at r = %d reports?" % REPORTS)
    for name in CANDIDATES:
        bound = berry_esseen_bound(
            get_mechanism(name),
            EPSILON_PER_DIM,
            REPORTS,
            population,
            rng=0,
            moment_samples=50_000,
        )
        print("  %-12s cdf error <= %.4f" % (name, bound.bound))


if __name__ == "__main__":
    main()
