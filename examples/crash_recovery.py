"""A collection round that survives the death of its aggregator.

The paper's collection model assumes the aggregator stays up for the
whole round; real aggregators get OOM-killed, rescheduled and power
cycled. This example makes the round durable with `repro.storage`: the
gateway checkpoints every acknowledged frame (the aggregation snapshot
plus each sender's acknowledged-frame watermark) into an append-only
segment-log store, then "dies" mid-round — torn down abruptly, no
drain, no final checkpoint, exactly what SIGKILL leaves behind.

A replacement gateway opens the same store, recovers the newest intact
checkpoint (onto a *different* shard count — checkpoints are
topology-independent), and tells each reconnecting sender how much of
its stream is already durable. The senders simply replay their whole
round: durable frames are skipped client-side, one frame that was
re-sent anyway is deduplicated gateway-side, and the finished round's
estimates are asserted bit-identical to a round that never crashed.

Run:  PYTHONPATH=src python examples/crash_recovery.py
"""

import asyncio
import tempfile

import numpy as np

from repro import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
    ShardedServer,
    open_store,
)
from repro.transport import AsyncReportSender, replay_frames, serve_collection

USERS_PER_CLIENT, CLIENTS, EPSILON, SEED = 4_000, 3, 2.0, 31

SCHEMA = Schema(
    [
        NumericAttribute("commute_minutes"),
        NumericAttribute("charge_level"),
        CategoricalAttribute("transport_mode", n_categories=8),
    ]
)
PROTOCOLS = {"transport_mode": "oue"}


def client_frames(seed: int) -> list:
    """One client's perturbed, wire-encoded report frames (seeded)."""
    gen = np.random.default_rng(seed)
    records = np.column_stack(
        [
            np.clip(gen.normal(0.2, 0.5, USERS_PER_CLIENT), -1, 1),
            np.clip(gen.normal(-0.3, 0.4, USERS_PER_CLIENT), -1, 1),
            gen.integers(0, 8, USERS_PER_CLIENT),
        ]
    )
    client = LDPClient(SCHEMA, EPSILON, protocols=PROTOCOLS)
    return [
        client.report_encoded(chunk, gen)
        for chunk in np.array_split(records, 4)
    ]


def sender_id(seed: int) -> bytes:
    """A stable id per logical stream — the key the watermark lives under."""
    return seed.to_bytes(16, "big")


async def crash(gateway) -> None:
    """Kill the gateway the unkind way: sockets torn, nothing saved."""
    tcp, gateway._tcp = gateway._tcp, None
    tcp.close()
    for writer in list(gateway._writers):
        writer.transport.abort()
    if gateway._connections:
        await asyncio.gather(*gateway._connections, return_exceptions=True)
    for consumer in gateway._consumers:
        consumer.cancel()
    await asyncio.gather(*gateway._consumers, return_exceptions=True)
    await tcp.wait_closed()


async def run_round(store_uri: str) -> None:
    contract = LDPClient(SCHEMA, EPSILON, protocols=PROTOCOLS).contract
    store = open_store(store_uri)

    # --- first gateway: every acknowledged frame is durable ------------
    first = await serve_collection(
        ShardedServer(SCHEMA, EPSILON, protocols=PROTOCOLS, shards=2),
        "127.0.0.1",
        0,
        store=store,
        checkpoint_every_frames=1,
    )
    print("gateway up on port %d (segment-log checkpoints)" % first.port)

    # Client 0 finishes its round; client 1 is cut off halfway.
    await replay_frames(
        "127.0.0.1", first.port, contract, client_frames(SEED), sender_id(0)
    )
    partial = await AsyncReportSender.connect(
        "127.0.0.1", first.port, contract, sender_id=sender_id(1)
    )
    async with partial:
        for frame in client_frames(SEED + 1)[:2]:
            await partial.send_encoded(frame)
    await crash(first)
    print(
        "gateway killed mid-round after %d checkpoints (%d frames durable)"
        % (first.checkpoints_written, first.frames_accepted)
    )

    # --- replacement gateway: same store, different topology -----------
    resumed = await serve_collection(
        ShardedServer(SCHEMA, EPSILON, protocols=PROTOCOLS, shards=3),
        "127.0.0.1",
        0,
        store=store,
        checkpoint_every_frames=1,
    )
    print(
        "replacement gateway resumed %d users on 3 shards (was 2)"
        % resumed.users
    )

    # Every client replays its WHOLE round; durable prefixes are skipped.
    for index in range(CLIENTS):
        sender = await replay_frames(
            "127.0.0.1",
            resumed.port,
            contract,
            client_frames(SEED + index),
            sender_id(index),
        )
        print(
            "  client %d: %d frames skipped (already durable), %d sent"
            % (index, sender.frames_skipped, sender.frames_sent)
        )

    # One stubborn sender ignores its watermark and re-sends everything;
    # the gateway acknowledges the duplicates without folding them.
    stubborn = await AsyncReportSender.connect(
        "127.0.0.1", resumed.port, contract, sender_id=sender_id(0)
    )
    stubborn.resume_seq = 0
    async with stubborn:
        for frame in client_frames(SEED):
            await stubborn.send_encoded(frame)
    print("  stubborn re-send: %d frames deduplicated" % resumed.frames_deduped)

    await resumed.stop()
    estimate = resumed.estimate()
    store.close()

    # --- the crash changed the estimate by exactly nothing -------------
    reference = LDPServer(SCHEMA, EPSILON, protocols=PROTOCOLS)
    for index in range(CLIENTS):
        for frame in client_frames(SEED + index):
            reference.ingest_encoded(frame)
    baseline = reference.estimate()
    for a, b in zip(estimate.attributes, baseline.attributes):
        assert np.array_equal(a.raw, b.raw), a.name
    print(
        "resumed round is bit-identical to an uninterrupted one "
        "(%d users, zero double-counted frames)" % estimate.users
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        asyncio.run(run_round("segments://%s/round-log" % scratch))


if __name__ == "__main__":
    main()
