"""Private categorical survey: frequency estimation with HDR4ME (V-C).

A mobile vendor surveys which of 64 app categories is each user's most
used, under ε-LDP, through the session API. The single unified registry
lets the same survey run over every backend — numeric mechanisms via
histogram encoding (Section V-C: each one-hot entry perturbed with ε/2,
entry means calibrated back into frequencies) *and* the Wang et al.
frequency oracles (GRR/OUE/OLH) — so the vendor can pick the backend
empirically.

The example compares the backends with and without L2 re-calibration
against the true (non-private) frequencies, then demonstrates a
multi-question survey (three categorical attributes, each user answers
m = 1) with streaming ingestion.

Run:  python examples/app_usage_survey.py
"""

import numpy as np

from repro import CategoricalAttribute, LDPClient, LDPServer, Recalibrator, Schema
from repro.experiments import zipf_categories
from repro.hdr4me import postprocess_frequencies, true_frequencies

USERS, CATEGORIES, EPSILON, SEED = 60_000, 64, 1.0, 3


def frequency_mse(estimate: np.ndarray, truth: np.ndarray) -> float:
    # Clip to [0, 1] and renormalize before scoring, so every backend and
    # every recalibration variant is compared on a proper distribution.
    final = postprocess_frequencies(estimate, normalize=True)
    return float(np.mean((final - truth) ** 2))


def main() -> None:
    # Zipf-like popularity: a few dominant categories, a long tail.
    answers = zipf_categories(USERS, CATEGORIES, exponent=1.3, rng=SEED)
    truth = true_frequencies(answers, CATEGORIES)
    schema = Schema([CategoricalAttribute("top_app", n_categories=CATEGORIES)])

    print("single question, %d categories, eps=%g:" % (CATEGORIES, EPSILON))
    for backend in ("laplace", "piecewise", "square_wave", "grr", "oue", "olh"):
        client = LDPClient(schema, EPSILON, protocols=backend)
        server = LDPServer(schema, EPSILON, protocols=backend)
        server.ingest(client.report_batch(answers[:, None], rng=SEED + 1))
        # Same reports, two readings: re-calibration composes at estimate
        # time instead of being baked into the collection.
        est_plain = server.estimate()
        est_enh = server.estimate(postprocess=Recalibrator(norm="l2"))
        print(
            "  %-12s raw MSE %.2e | L2-recalibrated MSE %.2e"
            % (
                backend,
                frequency_mse(est_plain.frequencies("top_app"), truth),
                frequency_mse(est_enh.frequencies("top_app"), truth),
            )
        )

    # Multi-question survey: 3 questions, each user answers m = 1, and the
    # reports arrive in 6 streamed batches.
    questions = np.column_stack(
        [
            zipf_categories(USERS, 16, exponent=1.1, rng=SEED + q)
            for q in range(3)
        ]
    )
    survey = Schema(
        [CategoricalAttribute("q%d" % q, n_categories=16) for q in range(3)]
    )
    client = LDPClient(survey, EPSILON, sampled_attributes=1, protocols="piecewise")
    server = LDPServer(survey, EPSILON, sampled_attributes=1, protocols="piecewise")
    rng = np.random.default_rng(SEED + 9)
    for batch in np.array_split(questions, 6):
        server.ingest(client.report_batch(batch, rng))
    estimate = server.estimate()
    print()
    print("three questions, each user answers one (m=1):")
    for q in range(3):
        q_truth = true_frequencies(questions[:, q], 16)
        attr = estimate["q%d" % q]
        print(
            "  question %d: %d respondents, MSE %.2e"
            % (q, attr.reports, frequency_mse(attr.value, q_truth))
        )


if __name__ == "__main__":
    main()
