"""Private categorical survey: frequency estimation with HDR4ME (V-C).

A mobile vendor surveys which of 64 app categories is each user's most
used, under ε-LDP. Categorical answers are histogram-encoded (Section
V-C): each one-hot entry is perturbed with budget ε/2, entry means become
category frequencies, and HDR4ME can re-calibrate the frequency vector
exactly like a mean.

The example compares three mechanisms, with and without L2 re-calibration,
against the true (non-private) frequencies, and also demonstrates the
multi-attribute pipeline (several categorical questions per user).

Run:  python examples/app_usage_survey.py
"""

import numpy as np

from repro import FrequencyEstimator, Recalibrator, get_mechanism
from repro.experiments import zipf_categories
from repro.hdr4me import true_frequencies
from repro.protocol import FrequencyEstimationPipeline

USERS, CATEGORIES, EPSILON, SEED = 60_000, 64, 1.0, 3


def frequency_mse(estimate: np.ndarray, truth: np.ndarray) -> float:
    return float(np.mean((estimate - truth) ** 2))


def main() -> None:
    # Zipf-like popularity: a few dominant categories, a long tail.
    answers = zipf_categories(USERS, CATEGORIES, exponent=1.3, rng=SEED)
    truth = true_frequencies(answers, CATEGORIES)

    print("single attribute, %d categories, eps=%g:" % (CATEGORIES, EPSILON))
    for name in ("laplace", "piecewise", "square_wave"):
        plain = FrequencyEstimator(get_mechanism(name), EPSILON)
        enhanced = FrequencyEstimator(
            get_mechanism(name),
            EPSILON,
            recalibrator=Recalibrator(norm="l2"),
        )
        est_plain = plain.estimate(answers, CATEGORIES, rng=SEED + 1)
        est_enh = enhanced.estimate(answers, CATEGORIES, rng=SEED + 1)
        print(
            "  %-12s raw MSE %.2e | L2-recalibrated MSE %.2e"
            % (
                name,
                frequency_mse(est_plain.best(), truth),
                frequency_mse(est_enh.best(), truth),
            )
        )

    # Multi-attribute survey: 3 questions, each user answers m = 1.
    questions = np.column_stack(
        [
            zipf_categories(USERS, 16, exponent=1.1, rng=SEED + q)
            for q in range(3)
        ]
    )
    pipeline = FrequencyEstimationPipeline(
        get_mechanism("piecewise"),
        epsilon=EPSILON,
        category_counts=[16, 16, 16],
        sampled_dimensions=1,
    )
    estimates = pipeline.run(questions, rng=SEED + 9)
    print()
    print("three questions, each user answers one (m=1):")
    for q, estimate in enumerate(estimates):
        q_truth = true_frequencies(questions[:, q], 16)
        print(
            "  question %d: %d respondents, MSE %.2e"
            % (q, estimate.reports, frequency_mse(estimate.best(), q_truth))
        )


if __name__ == "__main__":
    main()
