"""Multi-process telemetry collection over the wire (distributed API).

A realistic collection topology: edge gateways perturb and wire-encode
user records in separate worker processes, ship opaque byte frames to a
collector, and the collector fans them over sharded worker servers —
checkpointing mid-round so a restart loses nothing. Three properties of
the :mod:`repro.wire` layer make this safe:

* **contract handshake** — every frame embeds the fingerprint of the
  schema + budget + protocol agreement; the collector rejects frames
  from a misconfigured gateway (demonstrated below) instead of
  aggregating silent garbage;
* **exact aggregation** — shard routing, merge order, and
  checkpoint/restore cannot change the estimates by even one bit, so
  the distributed answer *is* the single-server answer;
* **self-describing frames** — payloads for numeric mechanisms and the
  OUE oracle travel in one versioned binary format, CRC-protected.

The gateways run in a real ``multiprocessing`` pool (only bytes cross
the process boundary, exactly as over a socket), with a sequential
fallback when the platform restricts subprocesses.

Run:  python examples/distributed_collection.py
"""

import numpy as np

from repro import (
    CategoricalAttribute,
    ContractMismatchError,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
    ShardedServer,
)

USERS, GATEWAYS, SHARDS, EPSILON, SEED = 60_000, 6, 3, 2.0, 11

SCHEMA = Schema(
    [
        NumericAttribute("screen_time"),
        NumericAttribute("battery_drain"),
        CategoricalAttribute("top_app", n_categories=12),
    ]
)
PROTOCOLS = {"top_app": "oue"}


def gateway_worker(args):
    """One edge gateway: perturb its users' records, return wire bytes.

    Runs in a separate process — nothing but the byte frame (and the
    arguments) ever crosses the boundary, exactly like a network hop.
    """
    records, seed = args
    client = LDPClient(SCHEMA, EPSILON, protocols=PROTOCOLS)
    return client.report_encoded(records, np.random.default_rng(seed))


def simulate_population(rng: np.random.Generator) -> np.ndarray:
    screen = np.clip(rng.normal(0.3, 0.4, USERS), -1, 1)
    battery = np.clip(rng.normal(-0.1, 0.3, USERS), -1, 1)
    apps = rng.choice(12, USERS, p=np.linspace(12, 1, 12) / np.sum(np.linspace(12, 1, 12)))
    return np.column_stack([screen, battery, apps])


def collect_frames(workloads) -> list:
    """Fan the gateway workloads over a process pool (or sequentially)."""
    try:
        import multiprocessing

        with multiprocessing.get_context("spawn").Pool(2) as pool:
            return pool.map(gateway_worker, workloads)
    except (ImportError, OSError):  # restricted platforms: same bytes, one process
        return [gateway_worker(load) for load in workloads]


def main() -> None:
    rng = np.random.default_rng(SEED)
    records = simulate_population(rng)
    truth_mean = records[:, :2].mean(axis=0)

    workloads = [
        (chunk, SEED + 100 + i)
        for i, chunk in enumerate(np.array_split(records, GATEWAYS))
    ]
    frames = collect_frames(workloads)
    print(
        "collected %d wire frames (%d bytes total) from %d gateways"
        % (len(frames), sum(len(f) for f in frames), GATEWAYS)
    )

    # --- collector side: sharded ingest with a mid-round checkpoint ----
    collector = ShardedServer(
        SCHEMA, EPSILON, protocols=PROTOCOLS, shards=SHARDS
    )
    for frame in frames[: GATEWAYS // 2]:
        collector.ingest_encoded(frame)
    collector.save_state("distributed_collection.checkpoint.json")

    resumed = ShardedServer(
        SCHEMA, EPSILON, protocols=PROTOCOLS, shards=SHARDS
    ).load_state("distributed_collection.checkpoint.json")
    for frame in frames[GATEWAYS // 2 :]:
        resumed.ingest_encoded(frame)
    estimate = resumed.estimate()

    # --- the distributed answer IS the single-server answer -----------
    reference = LDPServer(SCHEMA, EPSILON, protocols=PROTOCOLS)
    for frame in frames:
        reference.ingest_encoded(frame)
    baseline = reference.estimate()
    for a, b in zip(estimate.attributes, baseline.attributes):
        assert np.array_equal(a.raw, b.raw), a.name
    print(
        "sharded + checkpointed estimates are bit-identical to one-shot "
        "ingestion (%d users)" % estimate.users
    )

    print("\nestimated vs true means:")
    for name, true_value in zip(("screen_time", "battery_drain"), truth_mean):
        print(
            "  %-14s %+.4f  (true %+.4f)"
            % (name, estimate[name].scalar, true_value)
        )
    top = int(np.argmax(estimate.frequencies("top_app")))
    print("  most-used app:  #%d" % top)

    # --- a misconfigured gateway is rejected by fingerprint -----------
    rogue = LDPClient(SCHEMA, epsilon=8.0, protocols=PROTOCOLS)
    rogue_frame = rogue.report_encoded(records[:100], rng)
    try:
        resumed.ingest_encoded(rogue_frame)
    except ContractMismatchError as error:
        print("\nrogue gateway rejected:\n  %s" % error)


if __name__ == "__main__":
    main()
