"""A full collection round over localhost sockets (async transport).

The production topology of the paper's collection model: many reporting
clients connect to a TCP collection gateway, handshake their
`CollectionContract` fingerprint (a misconfigured client is turned away
before a single report flows), and stream length-prefixed wire frames.
The gateway validates every frame and fans it over concurrent shard
consumers feeding a `ShardedServer` through *bounded* queues — a slow
shard slows its producers down (backpressure) instead of ballooning
gateway memory. On shutdown the gateway drains every queue and merges,
and because aggregation is exact, the estimate is bit-identical to
one-shot in-process ingestion of the same reports.

This example runs the whole round in one process over 127.0.0.1:

* four concurrent senders ship seeded report frames (plus zero-user
  heartbeat frames — valid no-ops that keep idle connections honest);
* a rogue client constructed under a different budget is rejected at
  the handshake;
* the gateway's merged estimate is asserted bit-equal to a reference
  server that ingested the same frames directly.

Run:  PYTHONPATH=src python examples/async_collection.py
"""

import asyncio

import numpy as np

from repro import (
    CategoricalAttribute,
    ContractMismatchError,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
    ShardedServer,
)
from repro.transport import AsyncReportSender, serve_collection

USERS_PER_CLIENT, CLIENTS, SHARDS, EPSILON, SEED = 5_000, 4, 3, 2.0, 23

SCHEMA = Schema(
    [
        NumericAttribute("screen_time"),
        NumericAttribute("battery_drain"),
        CategoricalAttribute("top_app", n_categories=12),
    ]
)
PROTOCOLS = {"top_app": "oue"}


def client_frames(seed: int) -> list:
    """One client's perturbed, wire-encoded report frames (seeded)."""
    gen = np.random.default_rng(seed)
    records = np.column_stack(
        [
            np.clip(gen.normal(0.3, 0.4, USERS_PER_CLIENT), -1, 1),
            np.clip(gen.normal(-0.1, 0.3, USERS_PER_CLIENT), -1, 1),
            gen.integers(0, 12, USERS_PER_CLIENT),
        ]
    )
    client = LDPClient(SCHEMA, EPSILON, protocols=PROTOCOLS)
    return [
        client.report_encoded(chunk, gen)
        for chunk in np.array_split(records, 5)
    ]


async def run_client(port: int, seed: int) -> int:
    """Connect, stream one round's frames (with heartbeats), disconnect."""
    contract = LDPClient(SCHEMA, EPSILON, protocols=PROTOCOLS).contract
    sender = await AsyncReportSender.connect("127.0.0.1", port, contract)
    async with sender:
        await sender.heartbeat()  # idle-gateway flush: a valid no-op
        for frame in client_frames(seed):
            await sender.send_encoded(frame)
        await sender.heartbeat()
        return sender.bytes_sent


async def run_round() -> None:
    # --- gateway: sharded consumers behind bounded queues --------------
    collector = ShardedServer(SCHEMA, EPSILON, protocols=PROTOCOLS, shards=SHARDS)
    gateway = await serve_collection(collector, "127.0.0.1", 0, queue_depth=2)
    print("gateway listening on 127.0.0.1:%d (%d shards)" % (gateway.port, SHARDS))

    # --- concurrent clients -------------------------------------------
    shipped = await asyncio.gather(
        *(run_client(gateway.port, SEED + i) for i in range(CLIENTS))
    )
    print(
        "%d clients shipped %d frames (%d payload bytes, %d heartbeats)"
        % (
            CLIENTS,
            gateway.frames_accepted,
            sum(shipped),
            gateway.heartbeats,
        )
    )

    # --- a misconfigured client never gets to send a report -----------
    rogue = LDPClient(SCHEMA, epsilon=8.0, protocols=PROTOCOLS)
    try:
        await AsyncReportSender.connect("127.0.0.1", gateway.port, rogue)
    except ContractMismatchError as error:
        print("rogue client rejected at handshake:\n  %s" % error)

    # --- drain-and-merge shutdown, then read the estimate -------------
    await gateway.stop()
    estimate = gateway.estimate()

    reference = LDPServer(SCHEMA, EPSILON, protocols=PROTOCOLS)
    for i in range(CLIENTS):
        for frame in client_frames(SEED + i):
            reference.ingest_encoded(frame)
    baseline = reference.estimate()
    for a, b in zip(estimate.attributes, baseline.attributes):
        assert np.array_equal(a.raw, b.raw), a.name
    print(
        "socket-round estimates are bit-identical to in-process ingestion "
        "(%d users)" % estimate.users
    )

    print("\nestimated means:")
    for name in ("screen_time", "battery_drain"):
        print("  %-14s %+.4f" % (name, estimate[name].scalar))
    print("  most-used app:  #%d" % int(np.argmax(estimate.frequencies("top_app"))))


def main() -> None:
    asyncio.run(run_round())


if __name__ == "__main__":
    main()
