"""Quickstart: private collection of a mixed record with and without HDR4ME.

Demonstrates the canonical session API end to end:

1. declare a typed ``Schema`` — numeric attributes (mean estimation) and
   a categorical attribute (frequency estimation) in one record;
2. an ``LDPClient`` perturbs whole records locally, sampling attributes
   under a single collective budget ε (nothing raw ever leaves a user);
3. an ``LDPServer`` ingests report batches *incrementally*, the way real
   telemetry arrives, and estimates on demand mid-stream;
4. HDR4ME (Section V of the paper) re-calibrates as a composable
   ``estimate(postprocess=...)`` step — no change to clients or reports.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Recalibrator,
    Schema,
    gaussian_dataset,
    mse,
    true_mean,
)
from repro.experiments import zipf_categories
from repro.hdr4me import true_frequencies

USERS, NUMERIC_DIMS, CATEGORIES, EPSILON, SEED = 50_000, 40, 16, 2.0, 0
BATCHES = 10


def main() -> None:
    # A mixed record: 40 numeric channels where 10% carry signal (the
    # paper's sparse Gaussian dataset) plus one Zipf-popular category.
    numeric = gaussian_dataset(users=USERS, dimensions=NUMERIC_DIMS, rng=SEED)
    labels = zipf_categories(USERS, CATEGORIES, rng=SEED + 1)
    records = np.column_stack([numeric, labels])
    truth_mean = true_mean(numeric)
    truth_freq = true_frequencies(labels, CATEGORIES)

    schema = Schema(
        [NumericAttribute("ch%02d" % j) for j in range(NUMERIC_DIMS)]
        + [CategoricalAttribute("category", n_categories=CATEGORIES)]
    )
    # One registry resolves every backend: numeric mechanisms serve both
    # attribute kinds; "grr"/"oue"/"olh" would serve the categorical one.
    client = LDPClient(schema, EPSILON, protocols={"category": "oue"})
    server = LDPServer(schema, EPSILON, protocols={"category": "oue"})

    # 1-2: reports stream in; aggregation state stays O(d).
    rng = np.random.default_rng(SEED + 2)
    for batch in np.array_split(records, BATCHES):
        server.ingest(client.report_batch(batch, rng))
    print(
        "ingested %d users in %d batches (%d reports/user)"
        % (server.users, BATCHES, server.plan.sampled_dimensions)
    )

    # 3: estimates on demand — raw aggregation first.
    raw = server.estimate()
    print("numeric mean MSE (raw):    %.5f" % mse(raw.numeric_means(), truth_mean))
    print(
        "category freq MSE (raw):   %.2e"
        % mse(raw.frequencies("category"), truth_freq)
    )

    # 4: HDR4ME as composable post-processing over the same reports.
    for norm in ("l1", "l2"):
        enhanced = server.estimate(postprocess=Recalibrator(norm=norm))
        print(
            "numeric mean MSE (HDR4ME-%s): %.5f | category freq MSE: %.2e"
            % (
                norm.upper(),
                mse(enhanced.numeric_means(), truth_mean),
                mse(enhanced.frequencies("category"), truth_freq),
            )
        )


if __name__ == "__main__":
    main()
