"""Quickstart: private mean estimation with and without HDR4ME.

Simulates the paper's end-to-end flow on a sparse-signal Gaussian dataset:

1. every user perturbs her tuple locally (Piecewise mechanism, ε = 0.5
   split over 100 dimensions — the "diluted budget" regime);
2. the collector aggregates the noisy reports into θ̂;
3. the analytical framework (Section IV) models the deviation θ̂ − θ̄;
4. HDR4ME (Section V) re-calibrates θ̂ with L1 and L2 regularization.

Run:  python examples/quickstart.py
"""

from repro import (
    MeanEstimationPipeline,
    Recalibrator,
    gaussian_dataset,
    get_mechanism,
    mse,
    true_mean,
)

USERS, DIMENSIONS, EPSILON, SEED = 50_000, 100, 0.5, 0


def main() -> None:
    # A dataset where 10% of dimensions carry signal (mean 0.9) and the
    # rest are near zero — the paper's Gaussian dataset.
    data = gaussian_dataset(users=USERS, dimensions=DIMENSIONS, rng=SEED)
    truth = true_mean(data)

    mechanism = get_mechanism("piecewise")
    pipeline = MeanEstimationPipeline(mechanism, EPSILON, dimensions=DIMENSIONS)

    # 1-2: local perturbation + aggregation.
    result = pipeline.run(data, rng=SEED + 1)
    print("collected %d reports per dimension" % result.aggregation.min_reports)
    print("baseline MSE: %.4f" % mse(result.theta_hat, truth))

    # 3: the Theorem 1 deviation model for this exact configuration.
    model = pipeline.deviation_model(users=result.users, data=data)
    print(
        "framework predicts per-dimension deviation sigma ~ %.3f "
        "and MSE ~ %.4f" % (model.sigmas.mean(), model.predicted_mse())
    )

    # 4: one-off re-calibration — no change to the mechanism or the users.
    for norm in ("l1", "l2"):
        enhanced = Recalibrator(norm=norm).recalibrate(result.theta_hat, model)
        print(
            "HDR4ME-%s MSE: %.4f  (improvement guarantee holds w.p. >= %.3f)"
            % (
                norm.upper(),
                mse(enhanced.theta_star, truth),
                enhanced.guarantee.paper_bound,
            )
        )


if __name__ == "__main__":
    main()
