"""Set-valued collection: which sites does the population visit? (future work)

The paper's conclusion names set-valued data as the next extension of the
framework. This example simulates a browser vendor estimating, under
ε-LDP, the fraction of users who visit each of 50 site categories — a
*set* per user, not a single value — via padding-and-sampling: pad each
set to L entries, sample one, report it through a frequency oracle over
the extended domain, and scale the estimate by L.

The example sweeps the padding length to show the inherent bias/variance
trade-off (small L truncates large sets; large L dilutes the sampling),
and shows the HDR4ME-composable path.

Run:  python examples/browsing_history.py
"""

import numpy as np

from repro.hdr4me import Recalibrator
from repro.protocol import PaddingAndSampling, item_frequencies
from repro.rng import ensure_rng

USERS, SITES, EPSILON, SEED = 50_000, 50, 3.0, 11


def simulate_population(rng):
    """User set sizes 1-6; site popularity follows a power law."""
    popularity = (np.arange(1, SITES + 1) ** -0.8)
    popularity /= popularity.sum()
    sets = []
    for _ in range(USERS):
        size = int(rng.integers(1, 7))
        sets.append(list(rng.choice(SITES, size=size, replace=False, p=popularity)))
    return sets


def main() -> None:
    rng = ensure_rng(SEED)
    sets = simulate_population(rng)
    truth = item_frequencies(sets, SITES)
    typical = float(np.mean([len(s) for s in sets]))
    print("population: %d users, mean set size %.1f" % (USERS, typical))

    print()
    print("padding sweep (bias from truncation vs noise from dilution):")
    for padding in (1, 3, 6, 12):
        collector = PaddingAndSampling(
            epsilon=EPSILON, n_items=SITES, padding_length=padding
        )
        estimate = collector.run(sets, rng)
        err = np.abs(estimate.best() - truth).mean()
        print("  L=%-3d mean abs error %.4f" % (padding, err))

    print()
    collector = PaddingAndSampling(
        epsilon=EPSILON,
        n_items=SITES,
        padding_length=6,
        recalibrator=Recalibrator(norm="l2"),
    )
    estimate = collector.run(sets, rng)
    top = np.argsort(estimate.best())[::-1][:5]
    print("top-5 estimated site categories:", top.tolist())
    print("top-5 true site categories:     ",
          np.argsort(truth)[::-1][:5].tolist())


if __name__ == "__main__":
    main()
