"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``. This file exists
only so that editable installs work on environments whose ``pip``/
``setuptools`` lack PEP 660 support (``python setup.py develop`` or
``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
