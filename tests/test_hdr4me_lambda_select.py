"""Tests for framework-driven λ* selection (Lemmas 4 and 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CalibrationError
from repro.framework import DeviationModel, MultivariateDeviationModel
from repro.hdr4me import (
    deviation_envelopes,
    improvement_guarantee,
    l1_lambda,
    l2_lambda,
)


def _model(deltas, sigmas):
    return MultivariateDeviationModel(
        [
            DeviationModel(delta=d, sigma=s, reports=100, epsilon=0.01)
            for d, s in zip(deltas, sigmas)
        ]
    )


class TestEnvelopes:
    def test_envelope_formula(self):
        model = _model([0.0, -0.5], [1.0, 2.0])
        env = deviation_envelopes(model, confidence=0.9973)
        assert env[0] == pytest.approx(3.0 * 1.0, rel=1e-3)
        assert env[1] == pytest.approx(0.5 + 3.0 * 2.0, rel=1e-3)

    def test_accepts_model_or_sequence(self):
        model = _model([0.0], [1.0])
        np.testing.assert_allclose(
            deviation_envelopes(model), deviation_envelopes(model.dimensions)
        )


class TestL1Lambda:
    def test_equals_envelope(self):
        model = _model([0.1, 0.0], [0.5, 2.0])
        np.testing.assert_allclose(l1_lambda(model), deviation_envelopes(model))

    def test_larger_noise_larger_lambda(self):
        model = _model([0.0, 0.0], [0.5, 5.0])
        lam = l1_lambda(model)
        assert lam[1] > lam[0]


class TestL2Lambda:
    def test_plugin_reference_from_theta_hat(self):
        model = _model([0.0, 0.0], [1.0, 1.0])
        theta_hat = np.array([0.9, 0.05])
        lam = l2_lambda(model, theta_hat=theta_hat, floor=0.05)
        env = deviation_envelopes(model)
        assert lam[0] == pytest.approx(env[0] / (2 * 0.9))
        # |0.05| at the floor.
        assert lam[1] == pytest.approx(env[1] / (2 * 0.05))

    def test_explicit_reference_mean(self):
        model = _model([0.0], [1.0])
        lam = l2_lambda(model, reference_mean=np.array([0.5]))
        assert lam[0] == pytest.approx(deviation_envelopes(model)[0] / 1.0)

    def test_reference_clipped_to_domain(self):
        model = _model([0.0], [1.0])
        # theta_hat far outside the domain is clipped to 1 before use.
        lam_big = l2_lambda(model, theta_hat=np.array([50.0]))
        lam_one = l2_lambda(model, theta_hat=np.array([1.0]))
        assert lam_big[0] == pytest.approx(lam_one[0])

    def test_no_reference_uses_floor(self):
        model = _model([0.0], [1.0])
        lam = l2_lambda(model, floor=0.1)
        assert lam[0] == pytest.approx(deviation_envelopes(model)[0] / 0.2)

    def test_invalid_floor(self):
        model = _model([0.0], [1.0])
        with pytest.raises(CalibrationError):
            l2_lambda(model, floor=0.0)

    def test_reference_size_mismatch(self):
        model = _model([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(CalibrationError):
            l2_lambda(model, reference_mean=np.array([0.5]))


class TestImprovementGuarantee:
    def test_l1_threshold_is_one(self):
        result = improvement_guarantee(_model([0.0], [10.0]), "l1")
        assert result.threshold == 1.0

    def test_l2_threshold_is_two(self):
        result = improvement_guarantee(_model([0.0], [10.0]), "l2")
        assert result.threshold == 2.0

    def test_high_noise_gives_high_probability(self):
        # sigma = 100: essentially every deviation exceeds 1.
        result = improvement_guarantee(_model([0.0, 0.0], [100.0, 100.0]), "l1")
        assert result.paper_bound > 0.98
        assert result.all_dims_probability > 0.97

    def test_low_noise_gives_low_probability(self):
        result = improvement_guarantee(_model([0.0], [0.01]), "l1")
        assert result.paper_bound < 1e-6

    def test_bound_ordering(self):
        model = _model([0.0, 0.0], [1.5, 1.5])
        result = improvement_guarantee(model, "l1")
        assert result.all_dims_probability <= result.paper_bound

    def test_invalid_norm(self):
        with pytest.raises(CalibrationError):
            improvement_guarantee(_model([0.0], [1.0]), "elastic")
