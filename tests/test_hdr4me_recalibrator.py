"""Tests for the HDR4ME Recalibrator façade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CalibrationError
from repro.framework import DeviationModel, MultivariateDeviationModel
from repro.hdr4me import Recalibrator, recalibrate_l1, recalibrate_l2


def _model(sigmas, deltas=None):
    deltas = deltas or [0.0] * len(sigmas)
    return MultivariateDeviationModel(
        [
            DeviationModel(delta=d, sigma=s, reports=1000, epsilon=0.01)
            for d, s in zip(deltas, sigmas)
        ]
    )


class TestConfiguration:
    def test_invalid_norm(self):
        with pytest.raises(CalibrationError):
            Recalibrator(norm="l3")

    def test_invalid_confidence(self):
        with pytest.raises(CalibrationError):
            Recalibrator(confidence=1.5)

    def test_dimension_mismatch(self):
        with pytest.raises(CalibrationError):
            Recalibrator().recalibrate(np.zeros(3), _model([1.0, 1.0]))


class TestL1Behaviour:
    def test_matches_closed_form(self):
        model = _model([2.0, 2.0, 2.0])
        theta = np.array([10.0, 1.0, -9.0])
        result = Recalibrator(norm="l1").recalibrate(theta, model)
        expected = recalibrate_l1(theta, result.lambdas)
        np.testing.assert_allclose(result.theta_star, expected)

    def test_suppresses_noise_dimensions(self):
        model = _model([5.0, 5.0])
        # Both estimates are inside the noise envelope -> zeroed.
        result = Recalibrator(norm="l1").recalibrate(np.array([2.0, -3.0]), model)
        np.testing.assert_array_equal(result.theta_star, [0.0, 0.0])
        assert result.suppressed_dimensions == 2

    def test_keeps_strong_signal(self):
        model = _model([0.01, 0.01])
        result = Recalibrator(norm="l1").recalibrate(np.array([0.9, 0.0]), model)
        assert result.theta_star[0] > 0.8
        assert result.theta_star[1] == 0.0

    def test_guarantee_attached(self):
        model = _model([10.0, 10.0])
        result = Recalibrator(norm="l1").recalibrate(np.zeros(2), model)
        assert result.guarantee.norm == "l1"
        assert result.guarantee.paper_bound > 0.9


class TestL2Behaviour:
    def test_matches_closed_form(self):
        model = _model([2.0, 2.0])
        theta = np.array([5.0, -5.0])
        result = Recalibrator(norm="l2").recalibrate(theta, model)
        expected = recalibrate_l2(theta, result.lambdas)
        np.testing.assert_allclose(result.theta_star, expected)

    def test_shrinks_but_never_flips_sign(self):
        model = _model([3.0, 3.0, 3.0])
        theta = np.array([4.0, -2.0, 0.5])
        result = Recalibrator(norm="l2").recalibrate(theta, model)
        assert np.all(np.abs(result.theta_star) <= np.abs(theta))
        assert np.all(result.theta_star * theta >= 0.0)

    def test_huge_noise_drives_estimates_to_zero(self):
        # The paper's observed extreme-d behaviour.
        model = _model([100.0, 100.0])
        theta = np.array([0.9, -0.9])
        result = Recalibrator(norm="l2").recalibrate(theta, model)
        assert np.max(np.abs(result.theta_star)) < 0.01

    def test_reference_mean_changes_weights(self):
        model = _model([2.0, 2.0])
        theta = np.array([0.5, 0.5])
        plugin = Recalibrator(norm="l2").recalibrate(theta, model)
        informed = Recalibrator(norm="l2").recalibrate(
            theta, model, reference_mean=np.array([1.0, 1.0])
        )
        # A larger reference mean -> smaller lambda -> less shrinkage.
        assert np.all(np.abs(informed.theta_star) >= np.abs(plugin.theta_star))


class TestPGDPath:
    @pytest.mark.parametrize("norm", ["l1", "l2"])
    def test_pgd_equals_closed_form(self, norm, rng):
        model = _model(list(rng.uniform(0.5, 3.0, size=16)))
        theta = rng.normal(scale=4.0, size=16)
        closed = Recalibrator(norm=norm).recalibrate(theta, model)
        iterative = Recalibrator(norm=norm, use_pgd=True).recalibrate(theta, model)
        np.testing.assert_allclose(
            closed.theta_star, iterative.theta_star, atol=1e-9
        )


class TestDeviationReduction:
    """Lemma 4's statement checked mechanically on simulated deviations."""

    def test_l1_improves_when_threshold_met(self, rng):
        # sigma large enough that |theta_hat - theta_bar| > 1 typically.
        sigma = 5.0
        model = _model([sigma] * 200)
        theta_bar = rng.uniform(-1, 1, 200)
        theta_hat = theta_bar + rng.normal(0, sigma, 200)
        result = Recalibrator(norm="l1").recalibrate(theta_hat, model)
        before = np.linalg.norm(theta_hat - theta_bar)
        after = np.linalg.norm(result.theta_star - theta_bar)
        assert after < before

    def test_l2_improves_when_threshold_met(self, rng):
        sigma = 5.0
        model = _model([sigma] * 200)
        theta_bar = rng.uniform(-1, 1, 200)
        theta_hat = theta_bar + rng.normal(0, sigma, 200)
        result = Recalibrator(norm="l2").recalibrate(theta_hat, model)
        before = np.linalg.norm(theta_hat - theta_bar)
        after = np.linalg.norm(result.theta_star - theta_bar)
        assert after < before
