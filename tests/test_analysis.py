"""Tests for the utility metrics and density diagnostics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import (
    UtilityReport,
    compare_estimates,
    empirical_pdf,
    gaussian_fit,
    l2_deviation,
    max_abs_deviation,
    mse,
    pdf_overlay,
    true_mean,
)
from repro.exceptions import DimensionError
from repro.framework import DeviationModel

VECTORS = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=16),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
)


class TestMetrics:
    def test_mse_formula(self):
        assert mse([1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.5)

    def test_l2_formula(self):
        assert l2_deviation([3.0, 4.0], [0.0, 0.0]) == pytest.approx(5.0)

    def test_mse_equals_l2_squared_over_d(self):
        # The paper's Eq. 2/3 link.
        est, tru = np.array([0.1, -0.4, 0.9]), np.array([0.0, 0.0, 1.0])
        assert mse(est, tru) == pytest.approx(l2_deviation(est, tru) ** 2 / 3)

    def test_max_abs(self):
        assert max_abs_deviation([1.0, -5.0], [0.0, 0.0]) == 5.0

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            mse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            mse([], [])

    def test_true_mean(self):
        data = np.array([[0.0, 1.0], [1.0, 1.0]])
        np.testing.assert_allclose(true_mean(data), [0.5, 1.0])

    def test_true_mean_needs_matrix(self):
        with pytest.raises(DimensionError):
            true_mean(np.zeros(4))

    def test_utility_report(self):
        report = UtilityReport.score([1.0, 0.0], [0.0, 0.0])
        assert report.mse == pytest.approx(0.5)
        assert report.l2 == pytest.approx(1.0)
        assert report.max_abs == pytest.approx(1.0)

    def test_compare_estimates(self):
        reports = compare_estimates(
            {"a": np.array([0.0]), "b": np.array([1.0])}, np.array([0.0])
        )
        assert reports["a"].mse == 0.0
        assert reports["b"].mse == 1.0

    @given(est=VECTORS)
    @settings(max_examples=40, deadline=None)
    def test_property_metrics_nonnegative_and_zero_iff_equal(self, est):
        assert mse(est, est) == 0.0
        assert l2_deviation(est, est) == 0.0
        shifted = est + 1.0
        assert mse(shifted, est) > 0.0


class TestDensity:
    def test_empirical_pdf_integrates_to_one(self, rng):
        sample = rng.normal(size=20_000)
        density = empirical_pdf(sample, bins=50)
        widths = np.diff(density.centers).mean()
        assert density.density.sum() * widths == pytest.approx(1.0, abs=0.05)

    def test_empirical_pdf_needs_data(self):
        with pytest.raises(DimensionError):
            empirical_pdf(np.array([1.0]))

    def test_evaluate_outside_range_is_zero(self, rng):
        density = empirical_pdf(rng.normal(size=1000))
        assert density.evaluate(np.array([100.0]))[0] == 0.0

    def test_gaussian_fit_on_matching_sample(self, rng):
        model = DeviationModel(delta=0.2, sigma=1.5, reports=10, epsilon=1.0)
        sample = model.sample(50_000, rng)
        fit = gaussian_fit(sample, model)
        assert fit.mean_error < 0.03
        assert 0.97 < fit.std_ratio < 1.03
        assert fit.ks_pvalue > 0.01

    def test_gaussian_fit_detects_mismatch(self, rng):
        model = DeviationModel(delta=0.0, sigma=1.0, reports=10, epsilon=1.0)
        sample = rng.normal(5.0, 1.0, size=5_000)  # wrong mean
        fit = gaussian_fit(sample, model)
        assert fit.ks_pvalue < 1e-6
        assert fit.mean_error > 4.0

    def test_pdf_overlay_alignment(self, rng):
        model = DeviationModel(delta=0.0, sigma=1.0, reports=10, epsilon=1.0)
        sample = model.sample(20_000, rng)
        density, predicted = pdf_overlay(sample, model, bins=30)
        assert density.centers.shape == predicted.shape
        # Empirical and model pdf agree where the mass is.
        mask = predicted > 0.05
        assert np.mean(np.abs(density.density[mask] - predicted[mask])) < 0.05
