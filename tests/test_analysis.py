"""Tests for the utility metrics and density diagnostics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import (
    UtilityReport,
    compare_estimates,
    empirical_pdf,
    gaussian_fit,
    l2_deviation,
    max_abs_deviation,
    mse,
    pdf_overlay,
    true_mean,
)
from repro.exceptions import DimensionError
from repro.framework import DeviationModel

VECTORS = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=16),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
)


class TestMetrics:
    def test_mse_formula(self):
        assert mse([1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.5)

    def test_l2_formula(self):
        assert l2_deviation([3.0, 4.0], [0.0, 0.0]) == pytest.approx(5.0)

    def test_mse_equals_l2_squared_over_d(self):
        # The paper's Eq. 2/3 link.
        est, tru = np.array([0.1, -0.4, 0.9]), np.array([0.0, 0.0, 1.0])
        assert mse(est, tru) == pytest.approx(l2_deviation(est, tru) ** 2 / 3)

    def test_max_abs(self):
        assert max_abs_deviation([1.0, -5.0], [0.0, 0.0]) == 5.0

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            mse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            mse([], [])

    def test_true_mean(self):
        data = np.array([[0.0, 1.0], [1.0, 1.0]])
        np.testing.assert_allclose(true_mean(data), [0.5, 1.0])

    def test_true_mean_needs_matrix(self):
        with pytest.raises(DimensionError):
            true_mean(np.zeros(4))

    def test_utility_report(self):
        report = UtilityReport.score([1.0, 0.0], [0.0, 0.0])
        assert report.mse == pytest.approx(0.5)
        assert report.l2 == pytest.approx(1.0)
        assert report.max_abs == pytest.approx(1.0)

    def test_compare_estimates(self):
        reports = compare_estimates(
            {"a": np.array([0.0]), "b": np.array([1.0])}, np.array([0.0])
        )
        assert reports["a"].mse == 0.0
        assert reports["b"].mse == 1.0

    @given(est=VECTORS)
    @settings(max_examples=40, deadline=None)
    def test_property_metrics_nonnegative_and_zero_iff_equal(self, est):
        assert mse(est, est) == 0.0
        assert l2_deviation(est, est) == 0.0
        shifted = est + 1.0
        assert mse(shifted, est) > 0.0


class TestDensity:
    def test_empirical_pdf_integrates_to_one(self, rng):
        sample = rng.normal(size=20_000)
        density = empirical_pdf(sample, bins=50)
        widths = np.diff(density.centers).mean()
        assert density.density.sum() * widths == pytest.approx(1.0, abs=0.05)

    def test_empirical_pdf_needs_data(self):
        with pytest.raises(DimensionError):
            empirical_pdf(np.array([1.0]))

    def test_evaluate_outside_range_is_zero(self, rng):
        density = empirical_pdf(rng.normal(size=1000))
        assert density.evaluate(np.array([100.0]))[0] == 0.0

    def test_gaussian_fit_on_matching_sample(self, rng):
        model = DeviationModel(delta=0.2, sigma=1.5, reports=10, epsilon=1.0)
        sample = model.sample(50_000, rng)
        fit = gaussian_fit(sample, model)
        assert fit.mean_error < 0.03
        assert 0.97 < fit.std_ratio < 1.03
        assert fit.ks_pvalue > 0.01

    def test_gaussian_fit_detects_mismatch(self, rng):
        model = DeviationModel(delta=0.0, sigma=1.0, reports=10, epsilon=1.0)
        sample = rng.normal(5.0, 1.0, size=5_000)  # wrong mean
        fit = gaussian_fit(sample, model)
        assert fit.ks_pvalue < 1e-6
        assert fit.mean_error > 4.0

    def test_pdf_overlay_alignment(self, rng):
        model = DeviationModel(delta=0.0, sigma=1.0, reports=10, epsilon=1.0)
        sample = model.sample(20_000, rng)
        density, predicted = pdf_overlay(sample, model, bins=30)
        assert density.centers.shape == predicted.shape
        # Empirical and model pdf agree where the mass is.
        mask = predicted > 0.05
        assert np.mean(np.abs(density.density[mask] - predicted[mask])) < 0.05


# --------------------------------------------------------------------------
# The AST invariant linter (repro.analysis.linter / rules / cli).
#
# Each rule gets three fixtures: a seeded violation that must fire, the
# same violation under a `# repro: allow[...]` suppression that must be
# honored, and a clean variant that must stay silent. The violating code
# lives in string literals, which tokenize-based suppression parsing
# correctly ignores when this file itself is linted.
# --------------------------------------------------------------------------

import json as _json

from repro.analysis import Analyzer, resolve_rules, RULE_NAMES
from repro.analysis.cli import main as lint_main
from repro.analysis.linter import (
    apply_baseline,
    baseline_document,
    parse_suppressions,
)
from repro.exceptions import ParameterError


def lint(source, path="src/repro/pkg/mod.py", select=None):
    """Lint one in-memory blob; returns the surviving findings."""
    analyzer = Analyzer(resolve_rules(select=select))
    result = analyzer.run_source(source, path=path)
    assert result.error is None, result.error
    return result


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


class TestRuleRegistry:
    def test_all_seven_rules_registered(self):
        assert len(RULE_NAMES) == 7
        names = {rule.name for rule in resolve_rules()}
        assert names == set(RULE_NAMES)

    def test_select_and_ignore(self):
        only = resolve_rules(select=["global-rng"])
        assert [r.name for r in only] == ["global-rng"]
        without = resolve_rules(ignore=["global-rng"])
        assert "global-rng" not in {r.name for r in without}

    def test_unknown_rule_rejected(self):
        with pytest.raises(ParameterError, match="unknown rule"):
            resolve_rules(select=["no-such-rule"])


class TestGlobalRngRule:
    def test_fires_on_global_numpy_draw(self):
        result = lint(
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.random()\n"
        )
        assert rules_fired(result) == ["global-rng"]

    def test_fires_on_stdlib_random(self):
        result = lint("import random\nx = random.choice([1, 2])\n")
        assert "global-rng" in rules_fired(result)

    def test_alias_resolution(self):
        # Renamed imports cannot hide the global stream.
        result = lint("import numpy.random as nr\nx = nr.uniform()\n")
        assert "global-rng" in rules_fired(result)

    def test_suppression_honored(self):
        result = lint(
            "import numpy as np\n"
            "def draw():\n"
            "    # repro: allow[global-rng] -- fixture exercises the rule\n"
            "    return np.random.random()\n"
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_clean_seeded_generator_silent(self):
        result = lint(
            "import numpy as np\n"
            "def draw(rng):\n"
            "    gen = np.random.default_rng(7)\n"
            "    return gen.random() + rng.random()\n"
        )
        assert result.findings == []


class TestExactArithmeticRule:
    def test_fires_on_division_in_merge(self):
        result = lint(
            "def merge(a, b):\n"
            "    return (a + b) / 2\n"
        )
        assert rules_fired(result) == ["exact-arith"]

    def test_fires_on_sum_in_fold(self):
        result = lint(
            "def fold(counts):\n"
            "    return sum(counts)\n"
        )
        assert rules_fired(result) == ["exact-arith"]

    def test_fires_on_float_literal_in_delta(self):
        result = lint(
            "def state_delta(a, b):\n"
            "    return a - b * 0.5\n"
        )
        assert rules_fired(result) == ["exact-arith"]

    def test_suppression_honored(self):
        result = lint(
            "def merge(a, b):\n"
            "    # repro: allow[exact-arith] -- fixture exercises the rule\n"
            "    return (a + b) / 2\n"
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_clean_integer_merge_silent(self):
        result = lint(
            "def merge(a, b):\n"
            "    total = a + b\n"
            "    return total\n"
        )
        assert result.findings == []

    def test_division_outside_exact_scope_silent(self):
        result = lint("def average(a, b):\n    return (a + b) / 2\n")
        assert result.findings == []


class TestTypedErrorRule:
    def test_fires_on_bare_valueerror(self):
        result = lint("def f(x):\n    raise ValueError('bad x')\n")
        assert rules_fired(result) == ["typed-errors"]

    def test_fires_on_assert(self):
        result = lint("def f(x):\n    assert x > 0\n")
        assert rules_fired(result) == ["typed-errors"]

    def test_test_files_exempt(self):
        result = lint(
            "def f(x):\n    raise ValueError('bad x')\n",
            path="tests/test_widget.py",
        )
        assert result.findings == []

    def test_suppression_honored(self):
        result = lint(
            "def f(x):\n"
            "    # repro: allow[typed-errors] -- fixture exercises the rule\n"
            "    raise ValueError('bad x')\n"
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_clean_typed_raise_silent(self):
        result = lint(
            "from repro.exceptions import ParameterError\n"
            "def f(x):\n"
            "    raise ParameterError('bad x')\n"
        )
        assert result.findings == []


class TestBroadExceptRule:
    def test_fires_on_except_exception(self):
        result = lint(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert rules_fired(result) == ["broad-except"]

    def test_fires_on_bare_except(self):
        result = lint(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        pass\n"
        )
        assert rules_fired(result) == ["broad-except"]

    def test_annotated_rationale_honored(self):
        result = lint(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    # repro: allow[broad-except] -- poison the round, never ack\n"
            "    except Exception:\n"
            "        mark_poisoned()\n"
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_multiline_rationale_block_honored(self):
        # The allow may sit at the top of a contiguous comment block.
        result = lint(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    # repro: allow[broad-except] -- durable-before-ack:\n"
            "    # a checkpoint failure of any type must poison the\n"
            "    # round rather than acknowledge unsaved frames.\n"
            "    except Exception:\n"
            "        mark_poisoned()\n"
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_clean_narrow_catch_silent(self):
        result = lint(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (OSError, KeyError):\n"
            "        pass\n"
        )
        assert result.findings == []


class TestAsyncHygieneRule:
    def test_fires_on_dropped_task_handle(self):
        result = lint(
            "import asyncio\n"
            "async def f():\n"
            "    asyncio.create_task(work())\n"
        )
        assert rules_fired(result) == ["async-hygiene"]

    def test_fires_on_blocking_sleep_in_async(self):
        result = lint(
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)\n"
        )
        assert "async-hygiene" in rules_fired(result)

    def test_suppression_honored(self):
        result = lint(
            "import asyncio\n"
            "async def f():\n"
            "    # repro: allow[async-hygiene] -- fixture exercises the rule\n"
            "    asyncio.create_task(work())\n"
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_clean_retained_handle_silent(self):
        result = lint(
            "import asyncio\n"
            "async def f(self):\n"
            "    self._task = asyncio.create_task(work())\n"
            "    await asyncio.sleep(0.1)\n"
            "    await self._task\n"
        )
        assert result.findings == []

    def test_blocking_sleep_outside_async_silent(self):
        result = lint("import time\ndef f():\n    time.sleep(1)\n")
        assert result.findings == []


class TestWallClockRule:
    def test_fires_on_time_time(self):
        result = lint("import time\ndef now():\n    return time.time()\n")
        assert rules_fired(result) == ["wall-clock"]

    def test_fires_on_datetime_now(self):
        result = lint(
            "import datetime\n"
            "def now():\n"
            "    return datetime.datetime.now()\n"
        )
        assert rules_fired(result) == ["wall-clock"]

    def test_suppression_honored(self):
        result = lint(
            "import time\n"
            "def now():\n"
            "    # repro: allow[wall-clock] -- fixture exercises the rule\n"
            "    return time.time()\n"
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_clean_injectable_timestamp_silent(self):
        result = lint(
            "from repro.telemetry.events import timestamp\n"
            "def now():\n"
            "    return timestamp()\n"
        )
        assert result.findings == []

    def test_monotonic_clocks_silent(self):
        # Monotonic/perf counters are not wall clocks; they stay legal.
        result = lint(
            "import time\n"
            "def tick():\n"
            "    return time.monotonic() + time.perf_counter()\n"
        )
        assert result.findings == []


class TestWireConstantRule:
    def test_fires_on_inline_pack(self):
        result = lint(
            "import struct\n"
            "def encode(n):\n"
            "    return struct.pack('<I', n)\n"
        )
        assert rules_fired(result) == ["wire-constants"]

    def test_fires_on_struct_outside_wire_modules(self):
        result = lint(
            "import struct\n"
            "HEADER = struct.Struct('<IHB')\n",
            path="src/repro/federation/somewhere.py",
        )
        assert rules_fired(result) == ["wire-constants"]

    def test_fires_on_magic_bytes_outside_wire_modules(self):
        result = lint("MAGIC = b'XSEG'\n")
        assert rules_fired(result) == ["wire-constants"]

    def test_sanctioned_module_silent(self):
        result = lint(
            "import struct\n"
            "U16 = struct.Struct('<H')\n"
            "MAGIC = b'FRAME'\n",
            path="src/repro/wire/constants.py",
        )
        assert result.findings == []

    def test_suppression_honored(self):
        result = lint(
            "import struct\n"
            "# repro: allow[wire-constants] -- storage-local framing\n"
            "RECORD = struct.Struct('<4sII')\n"
        )
        assert result.findings == []
        assert result.suppressed == 1


class TestSuppressionPolicy:
    def test_bare_allow_without_rationale_is_a_finding(self):
        result = lint(
            "import time\n"
            "def now():\n"
            "    # repro: allow[wall-clock]\n"
            "    return time.time()\n"
        )
        assert rules_fired(result) == ["bare-allow"]
        # The underlying finding is still suppressed; only the missing
        # rationale is reported, so fixing the comment fixes the file.
        assert result.suppressed == 1

    def test_unknown_rule_in_allow_is_a_finding(self):
        result = lint("# repro: allow[not-a-rule] -- because\nx = 1\n")
        assert rules_fired(result) == ["bare-allow"]

    def test_suppression_in_string_literal_ignored(self):
        result = lint(
            "import time\n"
            "DOC = '# repro: allow[wall-clock] -- not a real comment'\n"
            "def now():\n"
            "    return time.time()\n"
        )
        assert rules_fired(result) == ["wall-clock"]

    def test_unrelated_rule_does_not_cover(self):
        result = lint(
            "import time\n"
            "def now():\n"
            "    # repro: allow[global-rng] -- wrong rule on purpose\n"
            "    return time.time()\n"
        )
        assert "wall-clock" in rules_fired(result)

    def test_parse_suppressions_grammar(self):
        found = parse_suppressions(
            "x = 1  # repro: allow[wall-clock, global-rng] -- two rules\n"
        )
        assert len(found) == 1
        assert found[0].rules == ("wall-clock", "global-rng")
        assert found[0].rationale == "two rules"
        assert not found[0].standalone


class TestBaseline:
    def test_round_trip_grandfathers_findings(self):
        source = "import time\ndef now():\n    return time.time()\n"
        result = lint(source)
        assert len(result.findings) == 1
        baseline = baseline_document(result.findings)["findings"]
        assert apply_baseline(result.findings, baseline) == []

    def test_new_findings_survive_baseline(self):
        old = lint("import time\ndef now():\n    return time.time()\n")
        baseline = baseline_document(old.findings)["findings"]
        new = lint(
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
            "def later():\n"
            "    return time.time()\n"
        )
        kept = apply_baseline(new.findings, baseline)
        assert len(kept) == 1
        assert kept[0].line == 5


class TestLinterCli:
    BAD = "import time\n\n\ndef now():\n    return time.time()\n"

    def test_json_report_and_exit_code(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(self.BAD)
        code = lint_main([str(target), "--format", "json"])
        assert code == 1
        report = _json.loads(capsys.readouterr().out)
        assert report["format"] == "repro-analysis-report"
        assert report["summary"]["findings"] == 1
        assert report["findings"][0]["rule"] == "wall-clock"

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("import time\ndef tick():\n    return time.monotonic()\n")
        assert lint_main([str(target), "--format", "json"]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert report["summary"]["findings"] == 0

    def test_baseline_round_trip(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(target), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        # A fresh violation is NOT covered by the baseline.
        target.write_text(self.BAD + "\ndef later():\n    return time.time()\n")
        assert lint_main([str(target), "--baseline", str(baseline)]) == 1

    def test_select_filters_rules(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(self.BAD)
        assert lint_main([str(target), "--select", "global-rng"]) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULE_NAMES:
            assert name in out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert lint_main([str(target)]) == 2

    def test_repository_src_tree_is_clean(self):
        # The acceptance gate itself: the shipped library has zero
        # unsuppressed findings.
        import os

        src = os.path.join(os.path.dirname(__file__), "..", "src")
        if not os.path.isdir(src):  # sdist layouts without src/
            pytest.skip("src tree not present")
        assert lint_main([src, "--format", "json"]) == 0
