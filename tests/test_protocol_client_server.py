"""Tests for the reference Client and the streaming Aggregator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AggregationError, DimensionError
from repro.mechanisms import LaplaceMechanism, PiecewiseMechanism, get_mechanism
from repro.protocol import Aggregator, BudgetPlan, Client, Report


@pytest.fixture()
def plan():
    return BudgetPlan(epsilon=1.0, dimensions=8, sampled_dimensions=3)


class TestReport:
    def test_alignment_enforced(self):
        with pytest.raises(DimensionError):
            Report(dimensions=np.array([0, 1]), values=np.array([0.5]))

    def test_arrays_normalized(self):
        report = Report(dimensions=[2, 0], values=[0.1, 0.2])
        assert report.dimensions.dtype == np.int64
        assert report.values.dtype == np.float64


class TestClient:
    def test_report_shape(self, plan, rng):
        client = Client(LaplaceMechanism(), plan)
        report = client.report(rng.uniform(-1, 1, 8), rng)
        assert report.dimensions.size == 3
        assert np.unique(report.dimensions).size == 3
        assert np.all((0 <= report.dimensions) & (report.dimensions < 8))

    def test_wrong_tuple_size_rejected(self, plan, rng):
        client = Client(LaplaceMechanism(), plan)
        with pytest.raises(DimensionError):
            client.report(np.zeros(5), rng)

    def test_sampling_is_uniform(self, plan, rng):
        client = Client(LaplaceMechanism(), plan)
        counts = np.zeros(8)
        for _ in range(2000):
            counts[client.report(np.zeros(8), rng).dimensions] += 1
        expected = 2000 * 3 / 8
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))

    def test_values_perturbed_with_per_dim_budget(self, plan, rng):
        # Statistical check: the spread of reported values matches the
        # eps/m Laplace scale, not the collective-eps scale.
        mech = LaplaceMechanism()
        client = Client(mech, plan)
        values = np.concatenate(
            [client.report(np.zeros(8), rng).values for _ in range(3000)]
        )
        expected_std = np.sqrt(mech.noise_variance(plan.epsilon_per_dimension))
        assert values.std() == pytest.approx(expected_std, rel=0.1)


class TestAggregator:
    def test_streaming_matches_batch(self, plan, rng):
        mech = LaplaceMechanism()
        stream = Aggregator(mech, plan)
        batch = Aggregator(mech, plan)
        block = rng.normal(size=(50, 8))
        for row in block:
            stream.add_report(Report(dimensions=np.arange(8), values=row))
        batch.add_matrix(block)
        np.testing.assert_allclose(
            stream.aggregate().theta_hat, batch.aggregate().theta_hat
        )

    def test_masked_ingestion(self, plan, rng):
        agg = Aggregator(LaplaceMechanism(), plan)
        block = rng.normal(size=(100, 8))
        mask = rng.random((100, 8)) < 0.5
        mask[0, :] = True  # ensure no empty dimension
        agg.add_matrix(block, mask)
        result = agg.aggregate()
        j = 3
        expected = block[mask[:, j], j].mean()
        assert result.theta_hat[j] == pytest.approx(expected)
        assert result.report_counts[j] == mask[:, j].sum()

    def test_empty_dimension_raises(self, plan):
        agg = Aggregator(LaplaceMechanism(), plan)
        agg.add_report(Report(dimensions=np.array([0]), values=np.array([0.5])))
        with pytest.raises(AggregationError):
            agg.aggregate()

    def test_out_of_range_dimension_rejected(self, plan):
        agg = Aggregator(LaplaceMechanism(), plan)
        with pytest.raises(DimensionError):
            agg.add_report(Report(dimensions=np.array([8]), values=np.array([0.0])))

    def test_mask_shape_mismatch(self, plan, rng):
        agg = Aggregator(LaplaceMechanism(), plan)
        with pytest.raises(DimensionError):
            agg.add_matrix(rng.normal(size=(10, 8)), mask=np.ones((9, 8), bool))

    def test_wrong_width_rejected(self, plan, rng):
        agg = Aggregator(LaplaceMechanism(), plan)
        with pytest.raises(DimensionError):
            agg.add_matrix(rng.normal(size=(10, 7)))

    def test_reset(self, plan, rng):
        agg = Aggregator(LaplaceMechanism(), plan)
        agg.add_matrix(rng.normal(size=(5, 8)))
        agg.reset()
        assert np.all(agg.report_counts == 0)

    def test_unbiased_mechanism_no_calibration_shift(self, plan):
        agg = Aggregator(PiecewiseMechanism(), plan)
        block = np.full((10, 8), 0.25)
        agg.add_matrix(block)
        np.testing.assert_allclose(agg.aggregate().theta_hat, 0.25)

    def test_min_reports_property(self, plan, rng):
        agg = Aggregator(LaplaceMechanism(), plan)
        agg.add_matrix(rng.normal(size=(7, 8)))
        result = agg.aggregate()
        assert result.min_reports == 7
        assert result.dimensions == 8


class TestClientToServerRoundtrip:
    def test_end_to_end_unbiased(self, rng):
        # Many clients -> aggregator recovers the true mean (law of large
        # numbers check of the whole reference path).
        plan = BudgetPlan(epsilon=4.0, dimensions=4, sampled_dimensions=2)
        mech = get_mechanism("piecewise")
        client = Client(mech, plan)
        agg = Aggregator(mech, plan)
        truth = np.array([-0.5, 0.0, 0.25, 0.75])
        for _ in range(30_000):
            agg.add_report(client.report(truth, rng))
        result = agg.aggregate()
        np.testing.assert_allclose(result.theta_hat, truth, atol=0.05)
        # r_j ~ n m / d.
        assert result.report_counts.mean() == pytest.approx(15_000, rel=0.05)
