"""Tests for the Hybrid (Piecewise ⊕ Duchi) mechanism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import (
    DuchiMechanism,
    HybridMechanism,
    PiecewiseMechanism,
    monte_carlo_moments,
)
from repro.mechanisms.hybrid import EPSILON_STAR


class TestMixingProbability:
    def test_below_threshold_pure_duchi(self):
        assert HybridMechanism.mixing_probability(0.5) == 0.0
        assert HybridMechanism.mixing_probability(EPSILON_STAR) == 0.0

    def test_above_threshold(self):
        eps = 2.0
        assert HybridMechanism.mixing_probability(eps) == pytest.approx(
            1.0 - np.exp(-1.0)
        )

    def test_monotone_increasing(self):
        alphas = [HybridMechanism.mixing_probability(e) for e in (0.7, 1, 2, 5)]
        assert all(a < b for a, b in zip(alphas, alphas[1:]))


class TestBehaviour:
    def test_small_eps_equals_duchi_distribution(self, rng):
        mech = HybridMechanism()
        eps = 0.4
        out = mech.perturb(np.full(20_000, 0.3), eps, rng)
        big_c = DuchiMechanism.magnitude(eps)
        assert set(np.round(np.unique(out), 10)) <= {
            round(-big_c, 10),
            round(big_c, 10),
        }

    def test_large_eps_mixes_continuous_output(self, rng):
        mech = HybridMechanism()
        out = mech.perturb(np.full(20_000, 0.3), 2.0, rng)
        # The Piecewise branch produces a continuum of values.
        assert np.unique(np.round(out, 6)).size > 100

    @pytest.mark.parametrize("eps", [0.4, 1.0, 3.0])
    def test_unbiased(self, eps, rng):
        bias_mc, _ = monte_carlo_moments(HybridMechanism(), -0.5, eps, 300_000, rng)
        assert bias_mc == pytest.approx(0.0, abs=0.03)

    @pytest.mark.parametrize("eps", [0.4, 1.0, 3.0])
    def test_variance_mixture_formula(self, eps, rng):
        mech = HybridMechanism()
        t = 0.5
        _, var_mc = monte_carlo_moments(mech, t, eps, 300_000, rng)
        analytic = mech.conditional_variance(np.array([t]), eps)[0]
        assert var_mc == pytest.approx(analytic, rel=0.05)

    def test_variance_between_components_or_better(self):
        mech = HybridMechanism()
        eps, t = 2.0, np.array([0.5])
        hybrid_var = mech.conditional_variance(t, eps)[0]
        duchi_var = DuchiMechanism().conditional_variance(t, eps)[0]
        piecewise_var = PiecewiseMechanism().conditional_variance(t, eps)[0]
        assert min(piecewise_var, duchi_var) <= hybrid_var <= max(
            piecewise_var, duchi_var
        )

    def test_support_covers_both_branches(self):
        mech = HybridMechanism()
        eps = 2.0
        lo, hi = mech.output_support(eps)
        assert hi >= PiecewiseMechanism.boundary(eps)
        assert hi >= DuchiMechanism.magnitude(eps)
        assert lo == -hi
