"""Tests for the Theorem 1 multivariate deviation model."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DimensionError
from repro.framework import (
    DeviationModel,
    MultivariateDeviationModel,
    ValueDistribution,
    build_multivariate_model,
)
from repro.mechanisms import LaplaceMechanism, PiecewiseMechanism


def _model(deltas, sigmas):
    return MultivariateDeviationModel(
        [
            DeviationModel(delta=d, sigma=s, reports=100, epsilon=1.0)
            for d, s in zip(deltas, sigmas)
        ]
    )


class TestDensity:
    def test_pdf_is_product_of_marginals(self):
        model = _model([0.0, 0.5], [1.0, 2.0])
        x = np.array([0.3, -0.7])
        expected = (
            model.dimensions[0].pdf(x[0]) * model.dimensions[1].pdf(x[1])
        )
        assert model.pdf(x) == pytest.approx(float(expected))

    def test_logpdf_consistent(self):
        model = _model([0.1, -0.2, 0.0], [0.5, 1.5, 2.0])
        x = np.array([0.0, 0.1, -0.3])
        assert model.logpdf(x) == pytest.approx(math.log(model.pdf(x)))

    def test_pdf_peaks_at_delta(self):
        model = _model([0.5, -0.5], [1.0, 1.0])
        assert model.pdf(model.deltas) > model.pdf(np.array([0.0, 0.0]))

    def test_wrong_dimension_rejected(self):
        model = _model([0.0], [1.0])
        with pytest.raises(DimensionError):
            model.pdf(np.array([0.0, 0.0]))


class TestProbabilities:
    def test_box_probability_product(self):
        model = _model([0.0, 0.0], [1.0, 2.0])
        xi = 1.0
        expected = (
            model.dimensions[0].supremum_probability(xi)
            * model.dimensions[1].supremum_probability(xi)
        )
        assert model.box_probability(xi) == pytest.approx(expected)

    def test_box_probability_per_dim_suprema(self):
        model = _model([0.0, 0.0], [1.0, 1.0])
        assert model.box_probability([1.0, 2.0]) > model.box_probability(1.0)

    def test_any_outside_complements_box(self):
        model = _model([0.0, 0.1], [1.0, 0.5])
        xi = 0.8
        assert model.any_outside_probability(xi) == pytest.approx(
            1.0 - model.box_probability(xi)
        )

    def test_all_outside_leq_any_outside(self):
        model = _model([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        xi = 0.5
        assert model.all_outside_probability(xi) <= model.any_outside_probability(xi)

    def test_monte_carlo_agreement(self, rng):
        model = _model([0.2, -0.1], [0.8, 1.2])
        xi = 1.0
        draws = model.sample(200_000, rng)
        inside = np.all(np.abs(draws) <= xi, axis=1).mean()
        assert inside == pytest.approx(model.box_probability(xi), abs=0.01)
        all_out = np.all(np.abs(draws) > xi, axis=1).mean()
        assert all_out == pytest.approx(model.all_outside_probability(xi), abs=0.01)

    def test_negative_suprema_rejected(self):
        with pytest.raises(ValueError):
            _model([0.0], [1.0]).box_probability(-1.0)

    def test_mismatched_suprema_rejected(self):
        with pytest.raises(DimensionError):
            _model([0.0, 0.0], [1.0, 1.0]).box_probability([1.0, 1.0, 1.0])


class TestMsePrediction:
    def test_expected_squared_l2(self):
        model = _model([0.3, 0.0], [1.0, 2.0])
        assert model.expected_squared_l2() == pytest.approx(0.09 + 1.0 + 4.0)

    def test_predicted_mse_is_l2_over_d(self):
        model = _model([0.3, 0.0], [1.0, 2.0])
        assert model.predicted_mse() == pytest.approx(
            model.expected_squared_l2() / 2.0
        )

    def test_prediction_matches_simulation(self, rng):
        """Framework MSE prediction vs an actual end-to-end run."""
        from repro.analysis import mse, true_mean
        from repro.protocol import MeanEstimationPipeline

        d, n, eps = 20, 5_000, 1.0
        data = rng.uniform(-1, 1, size=(n, d))
        pipeline = MeanEstimationPipeline(LaplaceMechanism(), eps, dimensions=d)
        model = pipeline.deviation_model(users=n)
        observed = np.mean([
            mse(pipeline.run(data, rng).theta_hat, true_mean(data))
            for _ in range(10)
        ])
        assert observed == pytest.approx(model.predicted_mse(), rel=0.25)


class TestBuilder:
    def test_shared_population_needs_ndim(self):
        with pytest.raises(DimensionError):
            build_multivariate_model(
                PiecewiseMechanism(), 0.1, 100, ValueDistribution.case_study()
            )

    def test_shared_population(self):
        model = build_multivariate_model(
            PiecewiseMechanism(), 0.1, 100, ValueDistribution.case_study(), ndim=5
        )
        assert model.ndim == 5
        assert np.allclose(model.sigmas, model.sigmas[0])

    def test_per_dimension_populations(self):
        pops = [
            ValueDistribution.point_mass(0.0),
            ValueDistribution.point_mass(0.9),
        ]
        model = build_multivariate_model(PiecewiseMechanism(), 0.5, 100, pops)
        assert model.ndim == 2
        # Piecewise variance grows with |t|, so dim 2's sigma is larger.
        assert model.sigmas[1] > model.sigmas[0]

    def test_ndim_disagreement_rejected(self):
        pops = [ValueDistribution.point_mass(0.0)]
        with pytest.raises(DimensionError):
            build_multivariate_model(PiecewiseMechanism(), 0.5, 100, pops, ndim=3)

    def test_unbounded_without_population(self):
        model = build_multivariate_model(LaplaceMechanism(), 0.5, 100, None, ndim=4)
        assert model.ndim == 4

    def test_empty_model_rejected(self):
        with pytest.raises(DimensionError):
            MultivariateDeviationModel([])


@given(
    sigmas=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8
    ),
    xi=st.floats(min_value=0.01, max_value=20.0),
)
@settings(max_examples=40, deadline=None)
def test_property_probability_bounds(sigmas, xi):
    """Box/any/all probabilities always lie in [0, 1] and are consistent."""
    model = _model([0.0] * len(sigmas), sigmas)
    box = model.box_probability(xi)
    any_out = model.any_outside_probability(xi)
    all_out = model.all_outside_probability(xi)
    assert 0.0 <= box <= 1.0
    assert 0.0 <= all_out <= any_out + 1e-12
    assert any_out <= 1.0
    assert box + any_out == pytest.approx(1.0)
