"""Tests for the RNG plumbing in :mod:`repro.rng`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import derive_seed, ensure_rng, spawn_children


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(8)
        b = ensure_rng(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(8), ensure_rng(2).random(8))


class TestSpawnChildren:
    def test_yields_requested_count(self):
        children = list(spawn_children(0, 5))
        assert len(children) == 5

    def test_children_are_independent_streams(self):
        a, b = spawn_children(0, 2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_reproducible_from_seed(self):
        first = [g.random(4).tolist() for g in spawn_children(9, 3)]
        second = [g.random(4).tolist() for g in spawn_children(9, 3)]
        assert first == second

    def test_zero_count_is_empty(self):
        assert list(spawn_children(0, 0)) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            list(spawn_children(0, -1))


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5) == derive_seed(5)

    def test_salt_changes_seed(self):
        assert derive_seed(5, salt=1) != derive_seed(5, salt=2)

    def test_range(self):
        seed = derive_seed(123)
        assert 0 <= seed < 2**63
