"""Tests for the experiment drivers (tiny scale — shape, not benchmarks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.experiments import (
    PAPER_TABLE2,
    SeriesRow,
    default_epsilons,
    format_series,
    run_case_study,
    run_confidence_ablation,
    run_convergence,
    run_dimensionality_sweep,
    run_fig2,
    run_fig3,
    run_frequency_experiment,
    run_harmful_regime,
    run_mse_sweep,
    run_solver_equivalence,
    simulate_dimension_deviations,
    worked_example,
    zipf_categories,
)
from repro.mechanisms import LaplaceMechanism


class TestBase:
    def test_simulate_dimension_deviations_shape(self, rng):
        deviations = simulate_dimension_deviations(
            LaplaceMechanism(), rng.uniform(-1, 1, 200), 1.0, 1.0, 25, rng
        )
        assert deviations.shape == (25,)

    def test_simulate_validates(self, rng):
        with pytest.raises(DimensionError):
            simulate_dimension_deviations(
                LaplaceMechanism(), np.zeros(10), 1.0, 0.0, 5, rng
            )
        with pytest.raises(DimensionError):
            simulate_dimension_deviations(
                LaplaceMechanism(), np.zeros(10), 1.0, 0.5, 0, rng
            )
        with pytest.raises(DimensionError):
            simulate_dimension_deviations(
                LaplaceMechanism(), np.empty(0), 1.0, 0.5, 5, rng
            )

    def test_format_series(self):
        rows = [SeriesRow(x=1.0, values={"a": 2.0})]
        text = format_series("t", "x", ("a",), rows)
        assert "# t" in text
        assert "x\ta" in text
        assert "1\t2" in text


class TestCaseStudy:
    def test_paper_reference_constants(self):
        assert set(PAPER_TABLE2) == {"piecewise", "square_wave_unit"}

    def test_result_format_mentions_models(self):
        text = run_case_study().format()
        assert "533.210" in text
        assert "piecewise" in text

    def test_custom_suprema(self):
        result = run_case_study(suprema=(0.5,))
        assert result.table.suprema.tolist() == [0.5]


class TestCltValidation:
    def test_fig2_tiny(self):
        results = run_fig2(
            users=3000, dimensions=100, sampled_dimensions=10,
            epsilon=1.0, repeats=40, mechanisms=("laplace",), rng=0,
        )
        assert len(results) == 1
        assert results[0].deviations.shape == (40,)
        assert "clt_pdf" in results[0].format()

    def test_fig3_tiny(self):
        results = run_fig3(reports=500, repeats=40, rng=0)
        assert [r.mechanism for r in results] == ["piecewise", "square_wave_unit"]


class TestMseSweep:
    def test_default_epsilons(self):
        assert default_epsilons("laplace") == (0.1, 0.2, 0.4, 0.8, 1.6, 3.2)
        assert default_epsilons("square_wave")[1] == 10.0

    def test_tiny_sweep_series(self):
        result = run_mse_sweep(
            dataset="gaussian", mechanism="laplace",
            epsilons=(0.2, 1.0), users=2000, dimensions=20, repeats=1, rng=0,
        )
        assert len(result.rows) == 2
        assert result.series("baseline").shape == (2,)
        assert result.series("baseline")[1] < result.series("baseline")[0]
        assert "Fig.4" in result.format()

    def test_bounded_mechanism_sweep(self):
        result = run_mse_sweep(
            dataset="uniform", mechanism="piecewise",
            epsilons=(0.5,), users=1500, dimensions=30, repeats=1, rng=0,
        )
        assert result.rows[0].values["l1"] <= result.rows[0].values["baseline"]


class TestDimensionality:
    def test_tiny_sweep(self):
        result = run_dimensionality_sweep(
            mechanism="laplace", dimension_grid=(10, 40), epsilon=0.8,
            users=2000, base_dimensions=50, repeats=1, rng=0,
        )
        assert [row.x for row in result.rows] == [10.0, 40.0]
        baseline = [row.values["baseline"] for row in result.rows]
        assert baseline[1] > baseline[0]


class TestConvergence:
    def test_worked_example_numbers(self):
        example = worked_example()
        assert example.paper_bound == pytest.approx(0.0157, abs=2e-4)
        assert example.correct_bound == pytest.approx(0.0269, abs=3e-4)
        assert "0.0157" in example.format() or "paper" in example.format()

    def test_sweep_without_empirical(self):
        result = run_convergence(report_counts=(100, 400), rng=0)
        assert result.labels == ("bound",)
        assert result.rows[1].values["bound"] == pytest.approx(
            result.rows[0].values["bound"] / 2.0
        )

    def test_sweep_with_empirical(self):
        result = run_convergence(
            report_counts=(200,), empirical_repeats=50, rng=0
        )
        assert "empirical_ks" in result.rows[0].values


class TestAblations:
    def test_confidence_ablation_tiny(self):
        result = run_confidence_ablation(
            users=1500, dimensions=30, confidences=(0.9, 0.9973), rng=0
        )
        assert len(result.rows) == 2
        assert result.baseline_mse > 0

    def test_harmful_regime_tiny(self):
        result = run_harmful_regime(
            dimension_grid=(5, 100),
            epsilon_grid=(0.5, 10.0),
            users=2000,
            rng=0,
        )
        assert result.ratios.shape == (2, 2)
        # Helps at high d / small eps; hurts (>=1x) at low d / large eps.
        assert result.ratios[1, 0] < 1.0
        assert result.ratios[0, 1] > 0.9

    def test_solver_equivalence(self):
        result = run_solver_equivalence(dimensions=64, rng=0)
        assert result.max_divergence_l1 < 1e-9
        assert result.max_divergence_l2 < 1e-9


class TestFrequencyExperiment:
    def test_zipf_profile(self):
        labels = zipf_categories(20_000, 8, rng=0)
        freq = np.bincount(labels, minlength=8) / 20_000
        assert freq[0] > freq[3] > freq[7]

    def test_tiny_run(self):
        result = run_frequency_experiment(
            mechanism="laplace", epsilons=(1.0, 4.0), users=3000,
            n_categories=8, repeats=1, rng=0,
        )
        baseline = [row.values["baseline"] for row in result.rows]
        assert baseline[1] < baseline[0]
