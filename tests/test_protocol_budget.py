"""Tests for the budget plan arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DimensionError, PrivacyBudgetError
from repro.protocol import BudgetPlan


class TestValidation:
    def test_basic_plan(self):
        plan = BudgetPlan(epsilon=1.0, dimensions=10, sampled_dimensions=5)
        assert plan.epsilon_per_dimension == pytest.approx(0.2)
        assert plan.epsilon_per_entry == pytest.approx(0.1)

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            BudgetPlan(epsilon=0.0, dimensions=10, sampled_dimensions=5)

    def test_invalid_dimensions(self):
        with pytest.raises(DimensionError):
            BudgetPlan(epsilon=1.0, dimensions=0, sampled_dimensions=1)

    def test_m_cannot_exceed_d(self):
        with pytest.raises(DimensionError):
            BudgetPlan(epsilon=1.0, dimensions=4, sampled_dimensions=5)

    def test_m_at_least_one(self):
        with pytest.raises(DimensionError):
            BudgetPlan(epsilon=1.0, dimensions=4, sampled_dimensions=0)


class TestReports:
    def test_expected_reports_formula(self):
        # r = n m / d (paper Section III-B).
        plan = BudgetPlan(epsilon=1.0, dimensions=100, sampled_dimensions=10)
        assert plan.expected_reports(10_000) == 1_000

    def test_full_reporting(self):
        plan = BudgetPlan(epsilon=1.0, dimensions=50, sampled_dimensions=50)
        assert plan.expected_reports(777) == 777

    def test_floored_at_one(self):
        plan = BudgetPlan(epsilon=1.0, dimensions=1000, sampled_dimensions=1)
        assert plan.expected_reports(10) == 1

    def test_invalid_users(self):
        plan = BudgetPlan(epsilon=1.0, dimensions=10, sampled_dimensions=10)
        with pytest.raises(PrivacyBudgetError):
            plan.expected_reports(0)

    def test_scaled_keeps_shape(self):
        plan = BudgetPlan(epsilon=1.0, dimensions=10, sampled_dimensions=4)
        scaled = plan.scaled(2.0)
        assert scaled.epsilon == 2.0
        assert scaled.dimensions == 10
        assert scaled.sampled_dimensions == 4


@given(
    eps=st.floats(min_value=0.01, max_value=100),
    d=st.integers(min_value=1, max_value=5000),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_property_budget_composition(eps, d, data):
    """The per-dimension budgets always recompose to the collective eps."""
    m = data.draw(st.integers(min_value=1, max_value=d))
    plan = BudgetPlan(epsilon=eps, dimensions=d, sampled_dimensions=m)
    assert plan.epsilon_per_dimension * m == pytest.approx(eps)
    assert plan.epsilon_per_entry * 2 * m == pytest.approx(eps)
