"""Tests for the exception hierarchy and its use across the library."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AggregationError,
    CalibrationError,
    DimensionError,
    DistributionError,
    DomainError,
    PrivacyBudgetError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AggregationError,
            CalibrationError,
            DimensionError,
            DistributionError,
            DomainError,
            PrivacyBudgetError,
        ],
    )
    def test_subclass_of_base(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_valueerror(self):
        for exc in (PrivacyBudgetError, DomainError, DimensionError,
                    CalibrationError, DistributionError):
            assert issubclass(exc, ValueError)

    def test_aggregation_is_runtime_error(self):
        assert issubclass(AggregationError, RuntimeError)


class TestSingleCatchAll:
    """A caller can guard any library call with one except clause."""

    def test_budget_error_caught_as_repro_error(self):
        from repro.mechanisms import LaplaceMechanism

        with pytest.raises(ReproError):
            LaplaceMechanism().perturb(np.zeros(1), -1.0)

    def test_domain_error_caught_as_repro_error(self):
        from repro.mechanisms import PiecewiseMechanism

        with pytest.raises(ReproError):
            PiecewiseMechanism().perturb(np.array([2.0]), 1.0)

    def test_distribution_error_caught_as_repro_error(self):
        from repro.framework import ValueDistribution

        with pytest.raises(ReproError):
            ValueDistribution(np.array([1.0]), np.array([0.5]))

    def test_calibration_error_caught_as_repro_error(self):
        from repro.hdr4me import Recalibrator

        with pytest.raises(ReproError):
            Recalibrator(norm="l7")

    def test_aggregation_error_caught_as_repro_error(self):
        from repro.mechanisms import LaplaceMechanism
        from repro.protocol import Aggregator, BudgetPlan

        plan = BudgetPlan(epsilon=1.0, dimensions=2, sampled_dimensions=1)
        with pytest.raises(ReproError):
            Aggregator(LaplaceMechanism(), plan).aggregate()
