"""Tests for the exception hierarchy and its use across the library."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AggregationError,
    CalibrationError,
    DimensionError,
    DistributionError,
    DomainError,
    PrivacyBudgetError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AggregationError,
            CalibrationError,
            DimensionError,
            DistributionError,
            DomainError,
            PrivacyBudgetError,
        ],
    )
    def test_subclass_of_base(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_valueerror(self):
        for exc in (PrivacyBudgetError, DomainError, DimensionError,
                    CalibrationError, DistributionError):
            assert issubclass(exc, ValueError)

    def test_aggregation_is_runtime_error(self):
        assert issubclass(AggregationError, RuntimeError)


class TestSingleCatchAll:
    """A caller can guard any library call with one except clause."""

    def test_budget_error_caught_as_repro_error(self):
        from repro.mechanisms import LaplaceMechanism

        with pytest.raises(ReproError):
            LaplaceMechanism().perturb(np.zeros(1), -1.0)

    def test_domain_error_caught_as_repro_error(self):
        from repro.mechanisms import PiecewiseMechanism

        with pytest.raises(ReproError):
            PiecewiseMechanism().perturb(np.array([2.0]), 1.0)

    def test_distribution_error_caught_as_repro_error(self):
        from repro.framework import ValueDistribution

        with pytest.raises(ReproError):
            ValueDistribution(np.array([1.0]), np.array([0.5]))

    def test_calibration_error_caught_as_repro_error(self):
        from repro.hdr4me import Recalibrator

        with pytest.raises(ReproError):
            Recalibrator(norm="l7")

    def test_aggregation_error_caught_as_repro_error(self):
        from repro.mechanisms import LaplaceMechanism
        from repro.protocol import Aggregator, BudgetPlan

        plan = BudgetPlan(epsilon=1.0, dimensions=2, sampled_dimensions=1)
        with pytest.raises(ReproError):
            Aggregator(LaplaceMechanism(), plan).aggregate()


class TestTypedRaisesAcrossTheLibrary:
    """Converted raise sites keep their messages and their ValueError base.

    These sites used to raise bare ValueError; they now raise classes
    from the repro hierarchy (enforced by the ``typed-errors`` analysis
    rule), and because every one subclasses ValueError, pre-existing
    callers that caught ValueError still work.
    """

    def test_parameter_error_is_value_error(self):
        from repro import ParameterError, StateDeltaError

        assert issubclass(ParameterError, ReproError)
        assert issubclass(ParameterError, ValueError)
        assert issubclass(StateDeltaError, ReproError)
        assert issubclass(StateDeltaError, ValueError)

    def test_spawn_children_rejects_negative_count(self):
        from repro import ParameterError
        from repro.rng import spawn_children

        with pytest.raises(ParameterError, match="non-negative"):
            list(spawn_children(7, -1))
        with pytest.raises(ValueError):  # old contract still holds
            list(spawn_children(7, -1))

    def test_endpoint_parse_raises_parameter_error(self):
        from repro import ParameterError
        from repro.experiments.socket_round import parse_endpoint

        with pytest.raises(ParameterError, match="HOST:PORT"):
            parse_endpoint("no-port-here")
        with pytest.raises(ParameterError, match="PORT"):
            parse_endpoint("host:not-a-number")

    def test_registry_rejects_duplicate_registration(self):
        from repro import ParameterError
        from repro.mechanisms import register_mechanism
        from repro.mechanisms.laplace import LaplaceMechanism

        with pytest.raises(ParameterError, match="already registered"):
            register_mechanism("laplace", LaplaceMechanism)

    def test_laplace_rejects_nonpositive_sensitivity(self):
        from repro import ParameterError
        from repro.mechanisms.laplace import LaplaceMechanism

        with pytest.raises(ParameterError, match="positive"):
            LaplaceMechanism(sensitivity=0.0)

    def test_state_delta_error_on_incompatible_snapshots(self):
        from repro import StateDeltaError
        from repro.federation.state_push import state_dict_delta

        with pytest.raises(StateDeltaError):
            state_dict_delta({"shape": (2, 2)}, {"shape": (3, 3)})
