"""Small helpers shared across the test suite."""

from __future__ import annotations

#: Mechanisms with Bound(M) = 1.
BOUNDED_MECHANISMS = ("duchi", "piecewise", "hybrid", "square_wave",
                      "square_wave_unit")

#: Mechanisms with Bound(M) = 0.
UNBOUNDED_MECHANISMS = ("laplace", "staircase")

#: Mechanisms operating on the standard [-1, 1] domain.
STANDARD_MECHANISMS = ("laplace", "staircase", "duchi", "piecewise", "hybrid",
                       "square_wave")


def interior_value(mechanism, fraction=0.3):
    """A point strictly inside a mechanism's input domain."""
    lo, hi = mechanism.input_domain
    return lo + fraction * (hi - lo)
