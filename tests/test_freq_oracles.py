"""Tests for the GRR / OUE / OLH frequency oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DimensionError, DomainError
from repro.freq_oracles import (
    FrequencyOracle,
    GeneralizedRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
    available_oracles,
    get_oracle,
)
from repro.hdr4me import Recalibrator

ORACLE_NAMES = ("grr", "oue", "olh")


def _roundtrip(name, epsilon, labels, v, rng):
    oracle = get_oracle(name, epsilon, v)
    reports = oracle.privatize(labels, rng)
    return oracle, oracle.estimate(reports)


class TestRegistry:
    def test_names(self):
        assert available_oracles() == ["grr", "olh", "oue"]

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_oracle("rappor", 1.0, 4)

    def test_validation(self):
        with pytest.raises(DimensionError):
            get_oracle("grr", 1.0, 1)


class TestGRR:
    def test_probabilities_sum(self):
        oracle = GeneralizedRandomizedResponse(1.0, 8)
        total = oracle.p_true + (oracle.n_categories - 1) * oracle.p_other
        assert total == pytest.approx(1.0)

    def test_ldp_ratio_exact(self):
        oracle = GeneralizedRandomizedResponse(1.3, 10)
        assert oracle.p_true / oracle.p_other == pytest.approx(np.exp(1.3))

    def test_keep_rate(self, rng):
        oracle = GeneralizedRandomizedResponse(2.0, 4)
        labels = np.zeros(100_000, dtype=int)
        reports = oracle.privatize(labels, rng)
        assert np.mean(reports == 0) == pytest.approx(oracle.p_true, abs=0.01)

    def test_lies_are_uniform_over_others(self, rng):
        oracle = GeneralizedRandomizedResponse(0.5, 5)
        labels = np.zeros(200_000, dtype=int)
        reports = oracle.privatize(labels, rng)
        lies = reports[reports != 0]
        counts = np.bincount(lies, minlength=5)[1:]
        assert np.all(np.abs(counts / lies.size - 0.25) < 0.01)

    def test_label_validation(self, rng):
        oracle = GeneralizedRandomizedResponse(1.0, 3)
        with pytest.raises(DomainError):
            oracle.privatize(np.array([3]), rng)
        with pytest.raises(DimensionError):
            oracle.privatize(np.empty(0, dtype=int), rng)


class TestOUE:
    def test_report_matrix_shape(self, rng):
        oracle = OptimizedUnaryEncoding(1.0, 6)
        reports = oracle.privatize(rng.integers(0, 6, 50), rng)
        assert reports.shape == (50, 6)
        assert set(np.unique(reports)) <= {0.0, 1.0}

    def test_bit_probabilities(self, rng):
        oracle = OptimizedUnaryEncoding(1.0, 4)
        labels = np.zeros(100_000, dtype=int)
        reports = oracle.privatize(labels, rng)
        assert reports[:, 0].mean() == pytest.approx(0.5, abs=0.01)
        assert reports[:, 1].mean() == pytest.approx(oracle.p_flip, abs=0.01)

    def test_estimate_shape_validated(self):
        oracle = OptimizedUnaryEncoding(1.0, 4)
        with pytest.raises(DimensionError):
            oracle.estimate(np.zeros((10, 3)))


class TestOLH:
    def test_bucket_count(self):
        oracle = OptimizedLocalHashing(1.0, 100)
        assert oracle.n_buckets == int(np.floor(np.e)) + 1

    def test_reports_in_bucket_range(self, rng):
        oracle = OptimizedLocalHashing(1.0, 20)
        reports = oracle.privatize(rng.integers(0, 20, 500), rng)
        assert reports.buckets.min() >= 0
        assert reports.buckets.max() < oracle.n_buckets

    def test_estimate_requires_olh_reports(self):
        oracle = OptimizedLocalHashing(1.0, 5)
        with pytest.raises(DimensionError):
            oracle.estimate(np.zeros(5))

    def test_chunked_estimation_invariant(self, rng):
        oracle = OptimizedLocalHashing(1.0, 12)
        labels = rng.integers(0, 12, 3000)
        reports = oracle.privatize(labels, rng)
        np.testing.assert_allclose(
            oracle.estimate(reports, chunk=128),
            oracle.estimate(reports, chunk=100_000),
        )

    def test_support_counts_match_per_user_reference(self, rng):
        """The broadcast grid must reproduce the definitional counts
        ``Σ_i 1[H(seed_i, j) = bucket_i]`` exactly (int64, not approx)."""
        from repro.freq_oracles.olh import _hash_buckets

        oracle = OptimizedLocalHashing(1.0, 9)
        reports = oracle.privatize(rng.integers(0, 9, 700), rng)
        expected = np.zeros(9, dtype=np.int64)
        for i in range(reports.buckets.size):
            for j in range(9):
                hashed = _hash_buckets(
                    reports.seeds[i : i + 1],
                    np.array([j], dtype=np.int64),
                    oracle.n_buckets,
                )
                expected[j] += int(hashed[0] == reports.buckets[i])
        counts = oracle.support_counts(reports, chunk=256)
        assert counts.dtype == np.int64
        assert np.array_equal(counts, expected)

    def test_support_counts_allocation_shape(self, rng, monkeypatch):
        """Regression: counting must broadcast, never materialize the
        flat ``(chunk * v,)`` repeat/tile temporaries it used to build."""
        oracle = OptimizedLocalHashing(1.0, 50)
        labels = rng.integers(0, 50, 2000)
        reports = oracle.privatize(labels, rng)
        baseline = oracle.support_counts(reports)

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("support_counts materialized a flat copy")

        import repro.freq_oracles.olh as olh_module

        monkeypatch.setattr(olh_module.np, "repeat", forbidden)
        monkeypatch.setattr(olh_module.np, "tile", forbidden)
        assert np.array_equal(oracle.support_counts(reports), baseline)


class TestAccuracy:
    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_unbiased_recovery(self, name, rng):
        v = 8
        labels = rng.choice(v, size=60_000, p=np.linspace(2, 1, v) / np.sum(
            np.linspace(2, 1, v)))
        truth = np.bincount(labels, minlength=v) / labels.size
        _, estimate = _roundtrip(name, 2.0, labels, v, rng)
        np.testing.assert_allclose(estimate, truth, atol=0.03)
        assert estimate.sum() == pytest.approx(1.0, abs=0.05)

    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_variance_formula_matches_monte_carlo(self, name, rng):
        v, eps, n, repeats = 6, 1.0, 4_000, 60
        oracle = get_oracle(name, eps, v)
        labels = rng.choice(v, size=n, p=[0.5, 0.1, 0.1, 0.1, 0.1, 0.1])
        estimates = np.array([
            get_oracle(name, eps, v).estimate(
                get_oracle(name, eps, v).privatize(labels, rng)
            )[0]
            for _ in range(repeats)
        ])
        predicted = oracle.estimation_variance(0.5, n)
        assert estimates.var(ddof=1) == pytest.approx(predicted, rel=0.5)

    def test_oue_beats_grr_for_large_domains(self):
        # The classic crossover: GRR variance grows with v, OUE's doesn't.
        eps, n, v = 1.0, 10_000, 64
        grr = GeneralizedRandomizedResponse(eps, v)
        oue = OptimizedUnaryEncoding(eps, v)
        assert oue.estimation_variance(0.0, n) < grr.estimation_variance(0.0, n)

    def test_grr_beats_oue_for_tiny_domains(self):
        eps, n, v = 2.0, 10_000, 2
        grr = GeneralizedRandomizedResponse(eps, v)
        oue = OptimizedUnaryEncoding(eps, v)
        assert grr.estimation_variance(0.0, n) < oue.estimation_variance(0.0, n)

    def test_olh_variance_close_to_oue(self):
        eps, n, v = 1.0, 10_000, 128
        olh = OptimizedLocalHashing(eps, v)
        oue = OptimizedUnaryEncoding(eps, v)
        ratio = olh.estimation_variance(0.0, n) / oue.estimation_variance(0.0, n)
        assert 0.5 < ratio < 2.0


class TestHdr4meComposition:
    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_deviation_model_dimensions(self, name):
        oracle = get_oracle(name, 1.0, 10)
        model = oracle.deviation_model(users=5_000)
        assert model.ndim == 10
        assert np.all(model.deltas == 0.0)

    def test_model_frequency_validation(self):
        oracle = get_oracle("grr", 1.0, 4)
        with pytest.raises(DimensionError):
            oracle.deviation_model(users=100, frequencies=np.zeros(3))
        with pytest.raises(DimensionError):
            oracle.deviation_model(users=0)

    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_recalibrated_estimate(self, name, rng):
        v = 16
        labels = rng.choice(v, size=30_000)
        oracle = get_oracle(name, 1.0, v)
        reports = oracle.privatize(labels, rng)
        result = oracle.estimate_recalibrated(
            reports, labels.size, Recalibrator(norm="l2")
        )
        truth = np.bincount(labels, minlength=v) / labels.size
        raw_mse = np.mean((oracle.estimate(reports) - truth) ** 2)
        enhanced_mse = np.mean((result.theta_star - truth) ** 2)
        # A single categorical attribute is below the Lemma 4/5 thresholds,
        # so L2 is not expected to *help* here — only to stay sane (its
        # shrinkage bias is bounded by the envelope-to-frequency ratio).
        assert enhanced_mse < 10 * raw_mse + 1e-6


@given(
    eps=st.floats(min_value=0.2, max_value=5.0),
    v=st.integers(min_value=2, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_property_grr_probabilities_valid(eps, v):
    oracle = GeneralizedRandomizedResponse(eps, v)
    assert 0.0 < oracle.p_other < oracle.p_true < 1.0
    assert oracle.p_true + (v - 1) * oracle.p_other == pytest.approx(1.0)


@given(
    eps=st.floats(min_value=0.2, max_value=5.0),
    v=st.integers(min_value=2, max_value=64),
    n=st.integers(min_value=10, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_property_variances_positive(eps, v, n):
    for name in ORACLE_NAMES:
        oracle = get_oracle(name, eps, v)
        assert oracle.estimation_variance(0.3, n) > 0.0
