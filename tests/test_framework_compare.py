"""Tests for the pairwise crossover finder."""

from __future__ import annotations

import pytest

from repro.exceptions import DistributionError
from repro.framework import (
    DeviationModel,
    ValueDistribution,
    build_deviation_model,
    crossover_supremum,
)
from repro.mechanisms import get_mechanism


def _model(delta, sigma, name):
    return DeviationModel(
        delta=delta, sigma=sigma, reports=100, epsilon=0.01, mechanism_name=name
    )


class TestSyntheticModels:
    def test_unbiased_vs_biased_tight(self):
        # A: zero-bias huge-sigma; B: biased tiny-sigma — the Table II
        # pattern. A wins tiny xi, B wins large xi.
        a = _model(0.0, 10.0, "wide")
        b = _model(0.5, 0.01, "tight")
        result = crossover_supremum(a, b)
        assert result.crossover is not None
        assert result.small_xi_winner == "wide"
        assert result.large_xi_winner == "tight"
        # Below the bias, B has ~zero probability; crossover near |delta|.
        assert 0.1 < result.crossover < 1.0

    def test_dominant_model_no_crossover(self):
        a = _model(0.0, 1.0, "good")
        b = _model(0.0, 5.0, "bad")
        result = crossover_supremum(a, b)
        assert result.crossover is None
        assert result.small_xi_winner == "good"
        assert result.large_xi_winner == "good"

    def test_identical_models_tie(self):
        a = _model(0.0, 1.0, "a")
        b = _model(0.0, 1.0, "b")
        result = crossover_supremum(a, b)
        assert result.crossover is None
        assert result.small_xi_winner == "tie"

    def test_crossover_is_equality_point(self):
        a = _model(0.0, 10.0, "wide")
        b = _model(0.5, 0.01, "tight")
        result = crossover_supremum(a, b)
        xi = result.crossover
        assert a.supremum_probability(xi) == pytest.approx(
            b.supremum_probability(xi), abs=1e-6
        )

    def test_validation(self):
        a = _model(0.0, 1.0, "a")
        b = _model(0.0, 2.0, "b")
        with pytest.raises(DistributionError):
            crossover_supremum(a, b, xi_low=0.0)
        with pytest.raises(DistributionError):
            crossover_supremum(a, b, xi_low=1.0, xi_high=0.5)


class TestCaseStudyCrossover:
    def test_piecewise_square_crossover_location(self):
        """Table II implies a flip between xi = 0.01 and xi = 0.05."""
        population = ValueDistribution.case_study()
        piecewise = build_deviation_model(
            get_mechanism("piecewise"), 0.001, 10_000, population
        )
        square = build_deviation_model(
            get_mechanism("square_wave_unit"), 0.001, 10_000, population
        )
        result = crossover_supremum(piecewise, square)
        assert result.small_xi_winner == "piecewise"
        assert result.large_xi_winner == "square_wave_unit"
        assert 0.01 < result.crossover < 0.05
