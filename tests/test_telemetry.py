"""Tests for the telemetry subsystem (ISSUE 7).

Three layers under test:

* the dependency-free metrics registry — counters, gauges, fixed-bucket
  histograms and the exact-area :class:`TimeWeightedGauge`, all over an
  injectable monotonic clock so every assertion here is on *exact*
  numbers, not tolerances;
* the structured JSON event log over stdlib logging;
* the instrumented collection stack — a socket round's snapshot must be
  internally consistent (accepted == folded == acked) and the live
  ``STATS`` socket request must serve the same counters mid-round.
"""

from __future__ import annotations

import asyncio
import io
import json
import logging

import numpy as np
import pytest

from repro.exceptions import (
    CheckpointCorruptError,
    TelemetryError,
    TransportError,
)
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
    ShardedServer,
)
from repro.storage import JsonFileStore, SegmentLogStore, SqliteStore
from repro.telemetry import (
    JsonEventFormatter,
    MetricsRegistry,
    disable_json_logs,
    emit,
    enable_json_logs,
    event_logger,
)
from repro.transport import (
    AsyncReportSender,
    replay_frames,
    request_stats,
    serve_collection,
)

SCHEMA = Schema(
    [
        NumericAttribute("a"),
        NumericAttribute("b"),
        CategoricalAttribute("c", n_categories=5),
    ]
)
SPEC = {"c": "oue"}
EPSILON = 2.0


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _contract():
    return LDPClient(SCHEMA, EPSILON, protocols=SPEC).contract


def _frames(seed, users=120, batches=3):
    gen = np.random.default_rng(seed)
    records = np.column_stack(
        [
            gen.uniform(-1, 1, users),
            gen.uniform(-1, 1, users),
            gen.integers(0, 5, users),
        ]
    )
    client = LDPClient(SCHEMA, EPSILON, protocols=SPEC)
    return [
        client.report_encoded(chunk, gen)
        for chunk in np.array_split(records, batches)
    ]


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_counts_and_refuses_to_go_down(self):
        registry = MetricsRegistry()
        frames = registry.counter("frames_total", "Frames seen")
        frames.inc()
        frames.inc(2.5)
        assert frames.value == 3.5
        with pytest.raises(TelemetryError, match="only go up"):
            frames.inc(-1)
        assert frames.value == 3.5

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        depth.set(4)
        depth.inc()
        depth.dec(2)
        assert depth.value == 3.0

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        second = registry.counter("x_total", "different help is fine")
        assert first is second

    def test_conflicting_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("x_total")
        registry.counter("labelled_total", labels=("shard",))
        with pytest.raises(TelemetryError, match="already registered"):
            registry.counter("labelled_total", labels=("reason",))
        registry.histogram("h_seconds", buckets=(0.1, 1.0))
        with pytest.raises(TelemetryError, match="already registered"):
            registry.histogram("h_seconds", buckets=(0.5, 1.0))

    def test_invalid_names_and_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="non-empty"):
            registry.counter("")
        with pytest.raises(TelemetryError, match="bucket"):
            registry.histogram("h", buckets=())

    def test_labelled_children_are_distinct_series(self):
        registry = MetricsRegistry()
        family = registry.counter("rejects_total", labels=("reason",))
        family.labels(reason="wire").inc()
        family.labels(reason="wire").inc()
        family.labels(reason="sequence_gap").inc()
        shot = registry.snapshot()["rejects_total"]
        assert shot["values"] == {"reason=wire": 2.0, "reason=sequence_gap": 1.0}
        # A labelled family cannot be used as its own child...
        with pytest.raises(TelemetryError, match="labels"):
            family.inc()
        # ...and children demand exactly the declared label names.
        with pytest.raises(TelemetryError, match="label values"):
            family.labels(shard=0)

    def test_unlabelled_metrics_snapshot_as_explicit_zero(self):
        """A registered-but-never-touched metric renders as 0, not as
        an absent series — "no stalls" is a fact, not missing data."""
        registry = MetricsRegistry()
        registry.counter("stalls_total")
        assert registry.snapshot()["stalls_total"]["values"] == {"": 0.0}

    def test_lookup(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total")
        assert "x_total" in registry
        assert "y_total" not in registry
        assert registry.get("x_total") is family
        assert registry.get("y_total") is None


class TestTimeWeightedGauge:
    def test_mean_is_the_exact_area_over_the_window(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        depth = registry.time_weighted_gauge("queue_depth")
        depth.set(2)  # t=0
        clock.advance(10)
        depth.set(5)  # area += 2*10
        clock.advance(10)
        # area = 2*10 + 5*10 = 70 over a 20s window
        assert depth.area() == 70.0
        assert depth.mean() == 3.5
        shot = registry.snapshot()["queue_depth"]["values"][""]
        assert shot == {
            "value": 5.0,
            "max": 5.0,
            "area": 70.0,
            "elapsed_seconds": 20.0,
            "time_weighted_mean": 3.5,
        }

    def test_zero_one_gauge_mean_is_utilization(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        busy = registry.time_weighted_gauge("busy")
        busy.set(1)
        clock.advance(3)  # busy for 3s
        busy.set(0)
        clock.advance(1)  # idle for 1s
        assert busy.mean() == pytest.approx(0.75)

    def test_add_tracks_running_value_and_max(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        depth = registry.time_weighted_gauge("depth")
        depth.add(3)
        clock.advance(2)
        depth.add(-1)
        assert depth.value == 2.0
        shot = registry.snapshot()["depth"]["values"][""]
        assert shot["max"] == 3.0
        assert shot["area"] == 6.0

    def test_empty_window_mean_is_zero(self):
        registry = MetricsRegistry(clock=FakeClock())
        assert registry.time_weighted_gauge("g").mean() == 0.0


class TestHistogram:
    def test_observation_lands_in_first_covering_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 2.0, 99.0):
            hist.observe(value)
        shot = registry.snapshot()["lat_seconds"]["values"][""]
        assert shot["buckets"] == {"0.1": 2, "1": 1, "10": 1, "+Inf": 1}
        assert shot["count"] == 5
        assert shot["sum"] == pytest.approx(101.65)
        assert shot["min"] == 0.05
        assert shot["max"] == 99.0
        assert shot["mean"] == pytest.approx(101.65 / 5)

    def test_bucket_bounds_are_sorted_on_registration(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(5.0, 0.5))
        hist.observe(0.4)
        shot = registry.snapshot()["h_seconds"]["values"][""]
        assert shot["buckets"] == {"0.5": 1, "5": 0, "+Inf": 0}

    def test_timer_context_manager_measures_with_the_registry_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        hist = registry.histogram("op_seconds", buckets=(1.0, 10.0))
        with hist.time():
            clock.advance(2.5)
        shot = registry.snapshot()["op_seconds"]["values"][""]
        assert shot["count"] == 1
        assert shot["sum"] == 2.5
        assert shot["buckets"] == {"1": 0, "10": 1, "+Inf": 0}

    def test_empty_histogram_snapshot_is_all_zero(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", buckets=(1.0,))
        shot = registry.snapshot()["h_seconds"]["values"][""]
        assert shot["count"] == 0
        assert shot["mean"] == 0.0
        assert shot["min"] == 0.0
        assert shot["max"] == 0.0


class TestRenderers:
    def _registry(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        registry.counter("frames_total", "Frames").inc(7)
        rejected = registry.counter("rejects_total", labels=("reason",))
        rejected.labels(reason="wire").inc()
        hist = registry.histogram("fold_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.15)
        depth = registry.time_weighted_gauge("queue_depth")
        depth.set(4)
        clock.advance(2)
        return registry

    def test_render_json_round_trips(self):
        registry = self._registry()
        document = json.loads(registry.render_json())
        assert document == registry.snapshot()
        assert document["frames_total"]["type"] == "counter"
        assert document["rejects_total"]["labels"] == ["reason"]

    def test_render_text_one_aligned_line_per_series(self):
        text = self._registry().render_text()
        lines = text.splitlines()
        by_name = {line.split()[0]: line for line in lines}
        assert by_name["frames_total"].split() == ["frames_total", "counter", "7"]
        assert "rejects_total{reason=wire}" in by_name
        assert "count=2" in by_name["fold_seconds"]
        assert "mean=0.1" in by_name["fold_seconds"]
        assert "value=4" in by_name["queue_depth"]
        # aligned columns: every kind starts at the same offset
        offsets = {line.index(line.split()[1]) for line in lines}
        assert len(offsets) == 1

    def test_render_text_empty_registry(self):
        assert "no metrics" in MetricsRegistry().render_text()


# ---------------------------------------------------------------------------
# Structured event log
# ---------------------------------------------------------------------------


class TestEvents:
    def test_emit_renders_one_json_object_per_line(self):
        stream = io.StringIO()
        handler = enable_json_logs(stream)
        try:
            emit(event_logger("test_gw"), "frame_accepted", seq=3, users=40)
            emit(
                event_logger("test_gw"),
                "fold_failed",
                level=logging.ERROR,
                error="boom",
            )
        finally:
            disable_json_logs(handler)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["event"] == "frame_accepted"
        assert first["logger"] == "repro.test_gw"
        assert first["level"] == "info"
        assert first["seq"] == 3 and first["users"] == 40
        assert isinstance(first["ts"], float)
        assert second["level"] == "error"
        assert second["error"] == "boom"

    def test_enable_is_idempotent_per_stream(self):
        stream = io.StringIO()
        handler = enable_json_logs(stream)
        try:
            again = enable_json_logs(stream)
            assert again is handler
            emit(event_logger("test_idem"), "ping")
        finally:
            disable_json_logs(handler)
        assert len(stream.getvalue().strip().splitlines()) == 1

    def test_emit_without_handler_is_a_cheap_noop(self):
        # DEBUG is disabled by default on the repro tree: emit must not
        # build a record at all, let alone raise.
        emit(event_logger("test_silent"), "fold", level=logging.DEBUG, shard=0)

    def test_plain_records_degrade_gracefully(self):
        formatter = JsonEventFormatter()
        record = logging.LogRecord(
            "other", logging.WARNING, __file__, 1, "plain %s", ("msg",), None
        )
        document = json.loads(formatter.format(record))
        assert document["event"] == "log"
        assert document["message"] == "plain msg"

    def test_exception_info_lands_in_error_field(self):
        formatter = JsonEventFormatter()
        try:
            raise ValueError("kaput")
        except ValueError:
            import sys

            record = logging.LogRecord(
                "repro.x", logging.ERROR, __file__, 1, "evt", (), sys.exc_info()
            )
        assert json.loads(formatter.format(record))["error"] == "kaput"


# ---------------------------------------------------------------------------
# Instrumented collection stack
# ---------------------------------------------------------------------------


class TestGatewayTelemetry:
    def test_round_snapshot_is_internally_consistent(self):
        """Acceptance: accepted == folded == acked, and the registry's
        latency/fold instruments agree with the plain counters."""

        frame_lists = [_frames(1), _frames(2)]

        async def scenario():
            registry = MetricsRegistry()
            server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
            gateway = await serve_collection(
                server, "127.0.0.1", 0, queue_depth=2, metrics=registry
            )
            contract = _contract()

            async def one_client(frames):
                sender = await AsyncReportSender.connect(
                    "127.0.0.1", gateway.port, contract
                )
                async with sender:
                    for frame in frames:
                        await sender.send_encoded(frame)
                    await sender.heartbeat()

            await asyncio.gather(*(one_client(f) for f in frame_lists))
            await gateway.stop()
            return gateway, registry

        gateway, registry = asyncio.run(scenario())
        snapshot = gateway.stats_snapshot()
        counters = snapshot["counters"]
        total_frames = sum(len(f) for f in frame_lists) + 2  # + heartbeats
        assert counters["frames_accepted"] == total_frames
        assert counters["rejections_total"] == 0
        assert counters["users_accepted"] == counters["users_folded"] == 240
        assert counters["heartbeats"] == 2
        families = snapshot["metrics"]
        assert set(families) == set(registry.snapshot())
        # every accepted frame was folded and its latency observed
        assert (
            families["gateway_fold_seconds"]["values"][""]["count"]
            == total_frames
        )
        assert (
            families["gateway_ack_latency_seconds"]["values"][""]["count"]
            == total_frames
        )
        assert (
            families["gateway_frames_accepted_total"]["values"][""]
            == total_frames
        )
        # the instrumented server's fold counters agree too
        assert families["server_users_folded_total"]["values"][""] == 240.0
        assert families["server_batches_folded_total"]["values"][""] == total_frames
        # both shard queues left their depth series behind
        assert set(families["gateway_queue_depth"]["values"]) == {
            "shard=0",
            "shard=1",
        }

    def test_stats_request_serves_the_same_counters_mid_round(self):
        """Acceptance: STATS over the socket == stats_snapshot(), while
        a round is still in flight and the sender stays connected."""

        frames = _frames(3)

        async def scenario():
            registry = MetricsRegistry()
            server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
            gateway = await serve_collection(
                server, "127.0.0.1", 0, queue_depth=2, metrics=registry
            )
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with sender:
                await sender.send_encoded(frames[0])
                await gateway.drain()
                live = await request_stats("127.0.0.1", gateway.port)
                # the open reporting connection survived the stats poll
                await sender.send_encoded(frames[1])
            mid_round = dict(live["counters"])
            await gateway.stop()
            return gateway, mid_round

        gateway, mid_round = asyncio.run(scenario())
        assert mid_round["frames_accepted"] == 1
        assert mid_round["users_accepted"] == mid_round["users_folded"] == 40
        assert mid_round["rejections_total"] == 0
        # stats polls are counted but are not handshake rejections
        final = gateway.stats_snapshot()
        assert final["counters"]["handshakes_rejected"] == 0
        assert final["counters"]["frames_accepted"] == 2
        assert (
            final["metrics"]["gateway_stats_requests_total"]["values"][""]
            == 1.0
        )

    def test_stats_request_times_out_against_a_silent_peer(self):
        """Satellite (ISSUE 8): a peer that accepts the connection but
        never answers cannot hang the admin client — request_stats gives
        up after its timeout with a typed TransportError."""

        async def scenario():
            # A server that reads nothing and writes nothing: the
            # connection opens, then silence.
            stalls = asyncio.Event()

            async def black_hole(reader, writer):
                stalls.set()
                await asyncio.sleep(3600)

            server = await asyncio.start_server(
                black_hole, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(TransportError, match="did not answer"):
                    await request_stats("127.0.0.1", port, timeout=0.2)
                assert stalls.is_set()  # it really connected, then hung
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_uninstrumented_gateway_still_snapshots(self):
        """No metrics= argument: the gateway builds its own registry."""

        async def scenario():
            server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
            gateway = await serve_collection(server, "127.0.0.1", 0)
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with sender:
                await sender.send_encoded(_frames(4, users=40, batches=1)[0])
            await gateway.stop()
            return gateway.stats_snapshot()

        snapshot = asyncio.run(scenario())
        assert snapshot["counters"]["frames_accepted"] == 1
        assert snapshot["metrics"]["gateway_frames_accepted_total"][
            "values"
        ][""] == 1.0

    def test_rejections_are_labelled_by_reason(self):
        async def scenario():
            registry = MetricsRegistry()
            server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
            gateway = await serve_collection(
                server, "127.0.0.1", 0, metrics=registry
            )
            rogue = LDPClient(SCHEMA, epsilon=9.0, protocols=SPEC)
            with pytest.raises(Exception):
                await AsyncReportSender.connect(
                    "127.0.0.1", gateway.port, rogue
                )
            await gateway.stop()
            return gateway.stats_snapshot()

        snapshot = asyncio.run(scenario())
        assert snapshot["counters"]["rejections_total"] == 1
        rejected = snapshot["metrics"]["gateway_handshakes_rejected_total"]
        assert rejected["values"]["reason=contract_mismatch"] == 1.0

    def test_sender_metrics_mirror_delivery(self):
        frames = _frames(5, users=40, batches=2)

        async def scenario():
            server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
            gateway = await serve_collection(server, "127.0.0.1", 0)
            registry = MetricsRegistry()
            await replay_frames(
                "127.0.0.1",
                gateway.port,
                _contract(),
                frames,
                b"\x31" * 16,
                metrics=registry,
            )
            await gateway.stop()
            return registry.snapshot()

        shot = asyncio.run(scenario())
        assert shot["sender_connects_total"]["values"][""] == 1.0
        assert shot["sender_frames_sent_total"]["values"][""] == 2.0
        assert shot["sender_frames_skipped_total"]["values"][""] == 0.0
        assert shot["sender_bytes_sent_total"]["values"][""] == sum(
            len(f) for f in frames
        )


class TestStorageTelemetry:
    def _document(self):
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        return server.state_dict()

    @pytest.mark.parametrize("backend", ["file", "sqlite", "segments"])
    def test_save_load_recover_are_observed(self, backend, tmp_path):
        store = {
            "file": lambda: JsonFileStore(tmp_path / "t.json"),
            "sqlite": lambda: SqliteStore(tmp_path / "t.db"),
            "segments": lambda: SegmentLogStore(tmp_path / "t-log"),
        }[backend]()
        registry = MetricsRegistry()
        store.attach_telemetry(registry)
        document = self._document()
        with store:
            store.save(document)
            assert store.load() == document
            assert store.recover() == document
        shot = registry.snapshot()
        label = "backend=%s" % store.scheme
        # the file backend's recover() is exactly a strict load(), so its
        # load series counts the inner call too
        loads = 2 if backend == "file" else 1
        assert shot["storage_save_seconds"]["values"][label]["count"] == 1
        assert shot["storage_load_seconds"]["values"][label]["count"] == loads
        assert shot["storage_recover_seconds"]["values"][label]["count"] == 1
        assert shot["storage_bytes_written_total"]["values"][label] > 0

    def test_sqlite_corrupt_generation_skip_is_counted(self, tmp_path):
        registry = MetricsRegistry()
        with SqliteStore(tmp_path / "t.db") as store:
            store.attach_telemetry(registry)
            store.save({"generation": "one"})
            store.save({"generation": "two"})
            # tamper with the newest generation's document: CRC fails
            connection = store._connect()
            connection.execute(
                "UPDATE checkpoints SET document = ? WHERE generation = "
                "(SELECT MAX(generation) FROM checkpoints)",
                (b"{ mangled",),
            )
            connection.commit()
            assert store.recover() == {"generation": "one"}
        shot = registry.snapshot()
        skips = shot["storage_corrupt_records_skipped_total"]["values"]
        assert skips["backend=sqlite"] == 1.0

    def test_segments_corrupt_tail_skip_is_counted(self, tmp_path):
        registry = MetricsRegistry()
        with SegmentLogStore(tmp_path / "t-log") as store:
            store.attach_telemetry(registry)
            store.save({"generation": "one"})
            store.save({"generation": "two"})
            newest = store.segments()[-1]
            blob = bytearray(newest.read_bytes())
            blob[-3] ^= 0xFF  # flip a payload byte: CRC now fails
            newest.write_bytes(bytes(blob))
            assert store.recover() == {"generation": "one"}
        shot = registry.snapshot()
        skips = shot["storage_corrupt_records_skipped_total"]["values"]
        assert skips["backend=segments"] == 1.0

    def test_uninstrumented_store_works_untouched(self, tmp_path):
        with JsonFileStore(tmp_path / "t.json") as store:
            assert store.telemetry is None
            store.save(self._document())
            assert store.recover() is not None

    def test_corruption_beyond_recovery_still_raises(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{ not json")
        registry = MetricsRegistry()
        with JsonFileStore(path) as store:
            store.attach_telemetry(registry)
            with pytest.raises(CheckpointCorruptError):
                store.load()
