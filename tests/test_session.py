"""Tests for the unified client/server session API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AggregationError, DimensionError, DomainError
from repro.hdr4me import Recalibrator, true_frequencies
from repro.mechanisms import (
    LaplaceMechanism,
    available_mechanisms,
    available_protocols,
    get_protocol,
)
from repro.mechanisms.registry import _PROTOCOLS, register_protocol
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    MechanismProtocol,
    NumericAttribute,
    ReportBatch,
    Schema,
    StreamingSum,
    sample_attribute_mask,
)

MIXED = Schema(
    [
        NumericAttribute("a"),
        NumericAttribute("b"),
        CategoricalAttribute("c", n_categories=4),
    ]
)


def mixed_records(users: int, seed: int = 0) -> np.ndarray:
    gen = np.random.default_rng(seed)
    return np.column_stack(
        [
            gen.uniform(-1, 1, users),
            np.clip(gen.normal(0.4, 0.2, users), -1, 1),
            gen.choice(4, users, p=[0.5, 0.25, 0.15, 0.1]),
        ]
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(DimensionError):
            Schema([NumericAttribute("x"), NumericAttribute("x")])

    def test_empty_schema_rejected(self):
        with pytest.raises(DimensionError):
            Schema([])

    def test_lookup_by_name_and_index(self):
        assert MIXED["c"].n_categories == 4
        assert MIXED[0].name == "a"
        with pytest.raises(KeyError):
            MIXED["nope"]

    def test_numeric_domain_enforced(self):
        attr = NumericAttribute("x", domain=(0.0, 1.0))
        with pytest.raises(DomainError):
            attr.validate_column(np.array([1.5]))
        with pytest.raises(DomainError):
            attr.validate_column(np.array([np.nan]))

    def test_degenerate_domain_rejected(self):
        with pytest.raises(DomainError):
            NumericAttribute("x", domain=(1.0, 1.0))

    def test_categorical_labels_enforced(self):
        attr = CategoricalAttribute("c", n_categories=3)
        with pytest.raises(DomainError):
            attr.validate_column(np.array([3]))
        with pytest.raises(DomainError):
            attr.validate_column(np.array([0.5]))
        np.testing.assert_array_equal(
            attr.validate_column(np.array([0.0, 2.0])), [0, 2]
        )

    def test_too_few_categories_rejected(self):
        with pytest.raises(DimensionError):
            CategoricalAttribute("c", n_categories=1)

    def test_matrix_shape_validated(self):
        with pytest.raises(DimensionError):
            MIXED.validate_matrix(np.zeros((5, 2)))

    def test_indices_partition(self):
        assert MIXED.numeric_indices == [0, 1]
        assert MIXED.categorical_indices == [2]


class TestStreamingSum:
    def test_batch_split_invariance_is_bitwise(self):
        gen = np.random.default_rng(7)
        rows = gen.normal(size=(5000, 3)) * 1e3
        one_shot = StreamingSum(3)
        one_shot.add(rows)
        streamed = StreamingSum(3)
        for chunk in np.array_split(rows, 13):
            streamed.add(chunk)
        assert np.array_equal(one_shot.value(), streamed.value())
        assert one_shot.rows == streamed.rows == 5000

    def test_value_does_not_mutate(self):
        acc = StreamingSum(2)
        acc.add(np.ones((3, 2)))
        first = acc.value()
        acc.add(np.ones((2, 2)))
        np.testing.assert_array_equal(first, [3.0, 3.0])
        np.testing.assert_array_equal(acc.value(), [5.0, 5.0])

    def test_reset(self):
        acc = StreamingSum(1)
        acc.add(np.ones((4, 1)))
        acc.reset()
        assert acc.rows == 0
        np.testing.assert_array_equal(acc.value(), [0.0])

    def test_shape_validated(self):
        with pytest.raises(DimensionError):
            StreamingSum(2).add(np.ones((3, 4)))


class TestUnifiedRegistry:
    def test_every_mechanism_name_resolves(self):
        for name in available_mechanisms():
            protocol = get_protocol(name)
            assert protocol.name == name

    @pytest.mark.parametrize("name", ["grr", "oue", "olh"])
    def test_oracle_names_resolve(self, name):
        protocol = get_protocol(name)
        collector = protocol.bind(CategoricalAttribute("c", 5), 1.0)
        assert collector.attribute.n_categories == 5

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="oue"):
            get_protocol("nope")

    def test_available_protocols_covers_both_families(self):
        names = available_protocols()
        assert set(available_mechanisms()) <= set(names)
        assert {"grr", "oue", "olh"} <= set(names)

    def test_mechanism_protocol_serves_both_kinds(self):
        protocol = get_protocol("laplace")
        numeric = protocol.bind(NumericAttribute("x"), 1.0)
        categorical = protocol.bind(CategoricalAttribute("c", 3), 1.0)
        assert numeric.attribute.name == "x"
        assert categorical.epsilon_per_entry == pytest.approx(0.5)

    def test_oracle_protocol_rejects_numeric(self):
        with pytest.raises(DimensionError):
            get_protocol("oue").bind(NumericAttribute("x"), 1.0)

    def test_register_protocol_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_protocol("grr", lambda: None)
        with pytest.raises(ValueError):
            register_protocol("laplace", lambda: None)

    def test_mechanism_cannot_shadow_protocol_name(self):
        """A mechanism named like an oracle would be unreachable through
        get_protocol (protocols resolve first), so it must be refused."""
        from repro.mechanisms import register_mechanism

        with pytest.raises(ValueError, match="unified protocol registry"):
            register_mechanism("oue", LaplaceMechanism)

    def test_register_and_resolve_custom_protocol(self):
        try:
            register_protocol(
                "custom_test_protocol",
                lambda: MechanismProtocol(
                    LaplaceMechanism(), name="custom_test_protocol"
                ),
            )
            assert get_protocol("custom_test_protocol").name == "custom_test_protocol"
            assert "custom_test_protocol" in available_protocols()
        finally:
            _PROTOCOLS.pop("custom_test_protocol", None)


class TestClient:
    def test_single_report_spends_exactly_m(self, rng):
        client = LDPClient(MIXED, epsilon=1.0, sampled_attributes=2)
        batch = client.report(np.array([0.1, -0.2, 3.0]), rng)
        assert batch.users == 1
        assert batch.total_reports == 2

    def test_batch_total_reports_exactly_n_times_m(self, rng):
        client = LDPClient(MIXED, epsilon=1.0, sampled_attributes=1)
        batch = client.report_batch(mixed_records(500), rng)
        assert batch.total_reports == 500

    def test_mask_has_exactly_m_per_user(self, rng):
        mask = sample_attribute_mask(300, 10, 4, rng)
        np.testing.assert_array_equal(mask.sum(axis=1), np.full(300, 4))

    def test_unknown_protocol_attribute_rejected(self):
        with pytest.raises(DimensionError):
            LDPClient(MIXED, epsilon=1.0, protocols={"zzz": "oue"})

    def test_record_validated(self, rng):
        client = LDPClient(MIXED, epsilon=1.0)
        with pytest.raises(DomainError):
            client.report(np.array([5.0, 0.0, 1.0]), rng)
        with pytest.raises(DimensionError):
            client.report(np.array([0.0, 0.0]), rng)


class TestMixedRoundTrip:
    @pytest.mark.parametrize("spec", ["piecewise", {"c": "grr"}, {"c": "oue"}])
    def test_recovers_truth_at_large_budget(self, spec, rng):
        records = mixed_records(30_000, seed=1)
        client = LDPClient(MIXED, epsilon=24.0, protocols=spec)
        server = LDPServer(MIXED, epsilon=24.0, protocols=spec)
        server.ingest(client.report_batch(records, rng))
        estimate = server.estimate()
        np.testing.assert_allclose(
            estimate.numeric_means(), records[:, :2].mean(axis=0), atol=0.05
        )
        truth = true_frequencies(records[:, 2].astype(np.int64), 4)
        np.testing.assert_allclose(
            estimate.frequencies("c"), truth, atol=0.08
        )

    def test_hdr4me_postprocess_end_to_end(self, rng):
        """Acceptance: mixed schema + streaming + HDR4ME post-processing."""
        records = mixed_records(20_000, seed=2)
        client = LDPClient(MIXED, epsilon=2.0, protocols={"c": "oue"})
        server = LDPServer(MIXED, epsilon=2.0, protocols={"c": "oue"})
        for chunk in np.array_split(records, 5):
            server.ingest(client.report_batch(chunk, rng))
        estimate = server.estimate(postprocess=Recalibrator(norm="l1"))
        for attr in estimate.attributes:
            assert attr.enhanced is not None
            assert np.all(np.isfinite(attr.enhanced))
        assert estimate["a"].scalar == pytest.approx(
            float(estimate.numeric_means()[0])
        )

    def test_numeric_recalibration_is_joint(self, rng):
        """L1 on a sparse numeric schema suppresses pure-noise attributes."""
        gen = np.random.default_rng(3)
        schema = Schema([NumericAttribute("x%d" % j) for j in range(30)])
        records = np.clip(gen.normal(0.0, 0.05, size=(4000, 30)), -1, 1)
        client = LDPClient(schema, epsilon=0.4, protocols="laplace")
        server = LDPServer(schema, epsilon=0.4, protocols="laplace")
        server.ingest(client.report_batch(records, rng))
        enhanced = server.estimate(postprocess=Recalibrator(norm="l1"))
        suppressed = np.sum(enhanced.numeric_means() == 0.0)
        assert suppressed > 0  # pure-noise dimensions get zeroed


class TestStreamingEquivalence:
    @pytest.mark.parametrize(
        "spec",
        ["piecewise", "laplace", {"c": "grr"}, {"c": "oue"}, {"c": "olh"}],
    )
    def test_ten_batches_bit_identical_to_one_shot(self, spec):
        """Acceptance: incremental ingest == one-shot on concatenated reports."""
        records = mixed_records(5000, seed=4)
        client = LDPClient(MIXED, epsilon=4.0, sampled_attributes=2, protocols=spec)
        batches = [
            client.report_batch(chunk, np.random.default_rng(i))
            for i, chunk in enumerate(np.array_split(records, 10))
        ]
        streamed = LDPServer(MIXED, epsilon=4.0, sampled_attributes=2, protocols=spec)
        for batch in batches:
            streamed.ingest(batch)
        one_shot = LDPServer(MIXED, epsilon=4.0, sampled_attributes=2, protocols=spec)
        one_shot.ingest(ReportBatch.concat(batches, one_shot.collectors))

        recal = Recalibrator(norm="l2")
        a = streamed.estimate(postprocess=recal)
        b = one_shot.estimate(postprocess=recal)
        assert a.users == b.users == 5000
        for attr_a, attr_b in zip(a.attributes, b.attributes):
            assert attr_a.reports == attr_b.reports
            assert np.array_equal(attr_a.raw, attr_b.raw), attr_a.name
            assert np.array_equal(attr_a.enhanced, attr_b.enhanced), attr_a.name

    def test_estimate_mid_stream_is_non_destructive(self, rng):
        records = mixed_records(2000, seed=5)
        client = LDPClient(MIXED, epsilon=4.0)
        server = LDPServer(MIXED, epsilon=4.0)
        first, second = np.array_split(records, 2)
        server.ingest(client.report_batch(first, rng))
        early = server.estimate()
        server.ingest(client.report_batch(second, rng))
        final = server.estimate()
        assert early.users == 1000 and final.users == 2000
        # A second read of the final state is identical: nothing consumed.
        again = server.estimate()
        for x, y in zip(final.attributes, again.attributes):
            assert np.array_equal(x.raw, y.raw)


class TestServerBehaviour:
    def test_estimate_without_reports_raises(self):
        server = LDPServer(MIXED, epsilon=1.0)
        with pytest.raises(AggregationError):
            server.estimate()

    def test_unknown_batch_attribute_rejected(self, rng):
        other = Schema([NumericAttribute("z")])
        batch = LDPClient(other, epsilon=1.0).report_batch(
            np.zeros((5, 1)), rng
        )
        server = LDPServer(MIXED, epsilon=1.0)
        with pytest.raises(DimensionError):
            server.ingest(batch)

    @pytest.mark.parametrize("server_spec", [{"c": "oue"}, {"c": "grr"}])
    def test_protocol_mismatch_rejected(self, server_spec, rng):
        """Shape-compatible payloads from the wrong protocol must not
        aggregate silently (OUE bit matrices and histogram-encoded
        entries are both (k, v) floats)."""
        schema = Schema([CategoricalAttribute("c", n_categories=4)])
        client = LDPClient(schema, epsilon=2.0, protocols="piecewise")
        server = LDPServer(schema, epsilon=2.0, protocols=server_spec)
        batch = client.report_batch(np.zeros((50, 1)), rng)
        with pytest.raises(DimensionError, match="produced by protocol"):
            server.ingest(batch)

    def test_reset_starts_a_new_round(self, rng):
        client = LDPClient(MIXED, epsilon=2.0)
        server = LDPServer(MIXED, epsilon=2.0)
        server.ingest(client.report_batch(mixed_records(100), rng))
        server.reset()
        assert server.users == 0
        with pytest.raises(AggregationError):
            server.estimate()

    def test_report_counts_tracks_sampling(self, rng):
        client = LDPClient(MIXED, epsilon=1.0, sampled_attributes=1)
        server = LDPServer(MIXED, epsilon=1.0, sampled_attributes=1)
        server.ingest(client.report_batch(mixed_records(900), rng))
        counts = server.report_counts()
        assert sum(counts.values()) == 900

    def test_ingest_is_atomic_across_attributes(self, rng):
        """A malformed attribute mid-batch must not leave earlier
        attributes' state partially updated."""
        client = LDPClient(MIXED, epsilon=2.0)
        server = LDPServer(MIXED, epsilon=2.0)
        good = client.report_batch(mixed_records(200), rng)
        server.ingest(good)
        before = server.estimate()
        before_counts = server.report_counts()

        bad = client.report_batch(mixed_records(100, seed=9), rng)
        payloads = dict(bad.payloads)
        payloads["c"] = np.ones((100, 99))  # wrong histogram width
        malformed = ReportBatch(
            users=bad.users,
            payloads=payloads,
            counts=dict(bad.counts),
            protocols=dict(bad.protocols),
        )
        with pytest.raises(DimensionError):
            server.ingest(malformed)

        assert server.users == 200
        assert server.report_counts() == before_counts
        after = server.estimate()
        for x, y in zip(before.attributes, after.attributes):
            assert np.array_equal(x.raw, y.raw), x.name

    def test_ingest_validates_counts_against_payloads(self, rng):
        client = LDPClient(MIXED, epsilon=2.0)
        server = LDPServer(MIXED, epsilon=2.0)
        batch = client.report_batch(mixed_records(50), rng)
        lying = ReportBatch(
            users=batch.users,
            payloads=batch.payloads,
            counts={name: count + 1 for name, count in batch.counts.items()},
            protocols=batch.protocols,
        )
        with pytest.raises(DimensionError, match="declares"):
            server.ingest(lying)
        assert server.users == 0

    def test_ingest_validates_users_against_counts(self, rng):
        """A frame lying about its user count must not skew accounting."""
        client = LDPClient(MIXED, epsilon=2.0)
        server = LDPServer(MIXED, epsilon=2.0)
        batch = client.report_batch(mixed_records(50), rng)
        understated = ReportBatch(
            users=0,
            payloads=batch.payloads,
            counts=batch.counts,
            protocols=batch.protocols,
        )
        with pytest.raises(DimensionError, match="at most once"):
            server.ingest(understated)
        assert server.users == 0
        assert sum(server.report_counts().values()) == 0

    def test_ingest_rejects_non_finite_reports(self, rng):
        client = LDPClient(MIXED, epsilon=2.0)
        server = LDPServer(MIXED, epsilon=2.0)
        batch = client.report_batch(mixed_records(20), rng)
        payloads = dict(batch.payloads)
        poisoned = np.asarray(payloads["a"], dtype=np.float64).copy()
        poisoned[0] = np.inf
        payloads["a"] = poisoned
        evil = ReportBatch(
            users=batch.users,
            payloads=payloads,
            counts=batch.counts,
            protocols=batch.protocols,
        )
        with pytest.raises(DomainError):
            server.ingest(evil)
        assert server.users == 0

    def test_callable_postprocess_supported(self, rng):
        client = LDPClient(MIXED, epsilon=4.0)
        server = LDPServer(MIXED, epsilon=4.0)
        server.ingest(client.report_batch(mixed_records(1000), rng))
        estimate = server.estimate(postprocess=lambda theta, model: theta * 0.5)
        np.testing.assert_allclose(
            estimate.numeric_means(), estimate.numeric_means(enhanced=False) * 0.5
        )
