"""Tests for the SCDF mechanism (staircase with γ = 1/2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import (
    LaplaceMechanism,
    SCDFMechanism,
    StaircaseMechanism,
    get_mechanism,
    monte_carlo_moments,
)


class TestIdentity:
    def test_registered(self):
        mech = get_mechanism("scdf")
        assert isinstance(mech, SCDFMechanism)
        assert not mech.bounded

    def test_gamma_fixed_at_half(self):
        assert SCDFMechanism().gamma == 0.5

    def test_is_a_staircase(self):
        assert isinstance(SCDFMechanism(), StaircaseMechanism)


class TestMoments:
    @pytest.mark.parametrize("eps", [0.5, 2.0])
    def test_variance_matches_monte_carlo(self, eps, rng):
        mech = SCDFMechanism()
        _, var_mc = monte_carlo_moments(mech, 0.1, eps, 300_000, rng)
        assert var_mc == pytest.approx(mech.noise_variance(eps), rel=0.03)

    def test_beats_laplace_at_moderate_eps(self):
        # SCDF's optimality claim: lower variance than Laplace for eps
        # large enough that the step structure pays off.
        for eps in (2.0, 4.0):
            assert (
                SCDFMechanism().noise_variance(eps)
                < LaplaceMechanism().noise_variance(eps)
            )

    def test_optimal_staircase_at_least_as_good(self):
        # Geng et al.'s gamma*(eps) optimizes over the family containing
        # gamma = 1/2, so it can never be worse.
        for eps in (0.3, 1.0, 3.0):
            assert (
                StaircaseMechanism().noise_variance(eps)
                <= SCDFMechanism().noise_variance(eps) + 1e-12
            )

    def test_unbiased(self, rng):
        bias, _ = monte_carlo_moments(SCDFMechanism(), -0.6, 1.0, 200_000, rng)
        assert bias == pytest.approx(0.0, abs=0.05)


class TestFrameworkIntegration:
    def test_deviation_model_lemma2(self):
        from repro.framework import build_deviation_model

        mech = SCDFMechanism()
        model = build_deviation_model(mech, 0.5, 1000)
        assert model.sigma == pytest.approx(
            np.sqrt(mech.noise_variance(0.5) / 1000)
        )

    def test_pipeline_end_to_end(self, rng):
        from repro.analysis import mse, true_mean
        from repro.protocol import MeanEstimationPipeline

        data = rng.uniform(-1, 1, size=(20_000, 5))
        pipeline = MeanEstimationPipeline(SCDFMechanism(), 10.0, dimensions=5)
        result = pipeline.run(data, rng)
        assert mse(result.theta_hat, true_mean(data)) < 0.01
