"""Failure-injection tests: adversarial and degenerate inputs across the stack.

A production library must fail loudly (typed exceptions) or degrade
gracefully (finite outputs) — never emit silently-wrong statistics. These
tests feed NaNs, infinities, extreme budgets and pathological shapes into
every layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DomainError,
    MeanEstimationPipeline,
    PrivacyBudgetError,
    Recalibrator,
    ReproError,
    ValueDistribution,
    get_mechanism,
)
from repro.exceptions import CalibrationError, DistributionError
from repro.framework import DeviationModel, MultivariateDeviationModel


class TestMechanismInputs:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_values_rejected(self, bad, rng):
        mech = get_mechanism("piecewise")
        with pytest.raises(ReproError):
            mech.perturb(np.array([bad]), 1.0, rng)

    @pytest.mark.parametrize("bad_eps", [0.0, -3.0, float("nan"), float("inf")])
    def test_bad_budgets_rejected_everywhere(self, bad_eps, rng):
        mech = get_mechanism("laplace")
        with pytest.raises(PrivacyBudgetError):
            mech.perturb(np.zeros(2), bad_eps, rng)
        with pytest.raises(PrivacyBudgetError):
            mech.conditional_variance(np.zeros(2), bad_eps)

    def test_tiny_budget_stays_finite(self, rng):
        # eps = 1e-6: enormous noise, but never NaN/inf from the sampler
        # of any bounded mechanism (unbounded ones have huge-but-finite
        # scale parameters).
        for name in ("duchi", "piecewise", "hybrid", "square_wave"):
            out = get_mechanism(name).perturb(np.zeros(1000), 1e-6, rng)
            assert np.all(np.isfinite(out)), name

    def test_object_dtype_coerced_or_rejected(self, rng):
        mech = get_mechanism("laplace")
        out = mech.perturb([0.1, 0.2], 1.0, rng)  # plain list
        assert out.shape == (2,)
        with pytest.raises((ReproError, ValueError, TypeError)):
            mech.perturb(np.array(["a", "b"]), 1.0, rng)


class TestPipelineInputs:
    def test_nan_data_rejected_before_collection(self, rng):
        pipeline = MeanEstimationPipeline(
            get_mechanism("piecewise"), 1.0, dimensions=3
        )
        data = rng.uniform(-1, 1, size=(10, 3))
        data[4, 1] = np.nan
        with pytest.raises(ReproError):
            pipeline.run(data, rng)

    def test_out_of_domain_data_rejected(self, rng):
        pipeline = MeanEstimationPipeline(
            get_mechanism("piecewise"), 1.0, dimensions=2
        )
        with pytest.raises(DomainError):
            pipeline.run(np.full((5, 2), 3.0), rng)

    def test_single_user_dataset(self, rng):
        pipeline = MeanEstimationPipeline(
            get_mechanism("laplace"), 1.0, dimensions=2
        )
        result = pipeline.run(np.zeros((1, 2)), rng)
        assert result.users == 1
        assert np.all(np.isfinite(result.theta_hat))

    def test_single_dimension(self, rng):
        pipeline = MeanEstimationPipeline(
            get_mechanism("laplace"), 1.0, dimensions=1
        )
        result = pipeline.run(rng.uniform(-1, 1, size=(100, 1)), rng)
        assert result.theta_hat.shape == (1,)


class TestFrameworkInputs:
    def test_nan_probabilities_rejected(self):
        with pytest.raises(DistributionError):
            ValueDistribution(np.array([0.0, 1.0]), np.array([np.nan, 1.0]))

    def test_recalibrator_rejects_nan_lambdas(self):
        model = MultivariateDeviationModel(
            [DeviationModel(delta=0.0, sigma=1.0, reports=10, epsilon=1.0)]
        )
        # A NaN estimate propagates into the plug-in lambda path; the
        # solver must reject non-finite weights rather than emit NaN.
        from repro.hdr4me.solvers import recalibrate_l1

        with pytest.raises(CalibrationError):
            recalibrate_l1(np.array([0.0]), np.array([np.nan]))

    def test_degenerate_sigma_rejected(self):
        with pytest.raises(DistributionError):
            DeviationModel(delta=0.0, sigma=float("nan"), reports=10, epsilon=1.0)

    def test_recalibration_of_nan_estimate_contained(self):
        # NaN theta_hat: L1 soft-threshold of NaN is NaN; the library
        # cannot invent data, but it must not corrupt other dimensions.
        model = MultivariateDeviationModel(
            [
                DeviationModel(delta=0.0, sigma=1.0, reports=10, epsilon=1.0)
                for _ in range(2)
            ]
        )
        result = Recalibrator(norm="l1").recalibrate(
            np.array([np.nan, 5.0]), model
        )
        assert np.isfinite(result.theta_star[1])


class TestExtremeScales:
    def test_huge_dimension_count_models(self):
        # 10k-dimension analytical model: must be fast and finite.
        models = [
            DeviationModel(delta=0.0, sigma=1.0, reports=10, epsilon=1.0)
            for _ in range(10_000)
        ]
        joint = MultivariateDeviationModel(models)
        assert 0.0 <= joint.box_probability(1.0) <= 1.0
        assert np.isfinite(joint.predicted_mse())

    def test_box_probability_underflow_handled(self):
        # 5000 dimensions each with probability ~0.68 => product ~1e-830,
        # far below float range; must return 0.0, not raise.
        models = [
            DeviationModel(delta=0.0, sigma=1.0, reports=10, epsilon=1.0)
            for _ in range(5_000)
        ]
        joint = MultivariateDeviationModel(models)
        p = joint.box_probability(1.0)
        assert p == 0.0 or np.isfinite(p)

    def test_huge_budget_pipeline(self, rng):
        # Essentially no privacy: the estimate must equal the mean.
        data = rng.uniform(-1, 1, size=(500, 3))
        pipeline = MeanEstimationPipeline(
            get_mechanism("piecewise"), 1e4, dimensions=3
        )
        result = pipeline.run(data, rng)
        np.testing.assert_allclose(result.theta_hat, data.mean(axis=0),
                                   atol=0.02)
