"""Tests for the wire codec and the collection-contract handshake."""

from __future__ import annotations

import json
import pathlib
import struct
import zlib

import numpy as np
import pytest

from repro.exceptions import ContractMismatchError, WireFormatError
from repro.mechanisms import available_mechanisms
from repro.mechanisms.registry import resolve_protocol_name
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
)
from repro.wire import (
    MAGIC,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    CollectionContract,
    decode_batch,
    encode_batch,
    iter_attribute_blocks,
    read_fingerprint,
)

ORACLES = ("grr", "oue", "olh")

MIXED = Schema(
    [
        NumericAttribute("a"),
        NumericAttribute("b", domain=(0.0, 2.0)),
        CategoricalAttribute("c", n_categories=5),
    ]
)
CATEGORICAL_ONLY = Schema([CategoricalAttribute("c", n_categories=5)])


def _session(protocol):
    """(schema, spec) pair appropriate for one protocol name."""
    if protocol in ORACLES:
        return CATEGORICAL_ONLY, {"c": protocol}
    return MIXED, protocol


def _records(schema, users, seed):
    gen = np.random.default_rng(seed)
    columns = []
    for attr in schema:
        if attr.kind == "numeric":
            lo, hi = attr.domain
            columns.append(gen.uniform(lo, hi, users))
        else:
            columns.append(gen.integers(0, attr.n_categories, users))
    return np.column_stack(columns)


def every_protocol():
    return sorted(available_mechanisms()) + list(ORACLES)


class TestRoundTrip:
    @pytest.mark.parametrize("protocol", every_protocol())
    def test_decode_encode_ingests_bit_identically(self, protocol):
        """Acceptance: the wire adds nothing and loses nothing."""
        schema, spec = _session(protocol)
        client = LDPClient(schema, epsilon=2.0, protocols=spec)
        batches = [
            client.report_batch(_records(schema, 400, seed), seed)
            for seed in range(3)
        ]
        in_memory = LDPServer(schema, epsilon=2.0, protocols=spec)
        in_memory.ingest(batches)
        from_wire = LDPServer(schema, epsilon=2.0, protocols=spec)
        for batch in batches:
            from_wire.ingest_encoded(client.encode(batch))
        a, b = in_memory.estimate(), from_wire.estimate()
        assert a.users == b.users
        for x, y in zip(a.attributes, b.attributes):
            assert x.reports == y.reports
            assert np.array_equal(x.raw, y.raw), (protocol, x.name)

    @pytest.mark.parametrize("protocol", ["piecewise", "grr", "oue", "olh"])
    def test_payloads_survive_exactly(self, protocol):
        schema, spec = _session(protocol)
        client = LDPClient(schema, epsilon=1.0, protocols=spec)
        batch = client.report_batch(_records(schema, 123, 7), 7)
        decoded = decode_batch(client.encode(batch), contract=client.contract)
        assert decoded.users == batch.users
        assert dict(decoded.counts) == dict(batch.counts)
        assert dict(decoded.protocols) == dict(batch.protocols)
        for name, payload in batch.payloads.items():
            other = decoded.payloads[name]
            if protocol == "olh":
                assert np.array_equal(payload.seeds, other.seeds)
                assert np.array_equal(payload.buckets, other.buckets)
            else:
                assert np.array_equal(np.asarray(payload), np.asarray(other))
                assert np.asarray(payload).dtype == np.asarray(other).dtype

    def test_sampled_batches_encode_missing_attributes(self, rng):
        client = LDPClient(MIXED, epsilon=1.0, sampled_attributes=1)
        batch = client.report_batch(_records(MIXED, 50, 3), rng)
        decoded = decode_batch(client.encode(batch))
        assert set(decoded.payloads) == set(batch.payloads)
        assert decoded.users == 50


class TestStrictDecoding:
    def _frame(self):
        client = LDPClient(MIXED, epsilon=1.0)
        return client, client.encode(client.report_batch(_records(MIXED, 60, 1), 1))

    def test_truncation_raises_typed_error(self):
        _, frame = self._frame()
        for cut in (0, 3, 10, 33, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireFormatError):
                decode_batch(frame[:cut])

    def test_corruption_raises_typed_error(self):
        _, frame = self._frame()
        for position in (6, 40, len(frame) // 2, len(frame) - 2):
            damaged = bytearray(frame)
            damaged[position] ^= 0x40
            with pytest.raises(WireFormatError):
                decode_batch(bytes(damaged))

    def test_trailing_garbage_rejected(self):
        _, frame = self._frame()
        with pytest.raises(WireFormatError):
            decode_batch(frame + b"xx")

    def test_bad_magic_rejected(self):
        _, frame = self._frame()
        with pytest.raises(WireFormatError, match="magic"):
            decode_batch(b"NOPE" + frame[4:])

    def test_unsupported_version_rejected(self):
        _, frame = self._frame()
        mutated = bytearray(frame)
        mutated[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(WireFormatError, match="version"):
            decode_batch(bytes(mutated))

    def test_unknown_protocol_name_rejected(self):
        client, frame = self._frame()
        # Re-encode a batch that lies about its protocol name.
        batch = client.report_batch(_records(MIXED, 10, 2), 2)
        forged = dict(batch.protocols)
        with pytest.raises(WireFormatError):
            # encode checks against the contract first
            from repro.session import ReportBatch

            lying = ReportBatch(
                users=batch.users,
                payloads=batch.payloads,
                counts=batch.counts,
                protocols={name: "zzz" for name in forged},
            )
            encode_batch(lying, client.contract)

    @pytest.mark.parametrize(
        "not_a_batch", [[1, 2, 3], b"bytes", {"users": 3}, None, 42]
    )
    def test_encode_rejects_non_batches_with_typed_error(self, not_a_batch):
        """Regression: a list used to blow up with a raw AttributeError."""
        client, _ = self._frame()
        with pytest.raises(WireFormatError, match="ReportBatch"):
            encode_batch(not_a_batch, client.contract)

    def test_fingerprint_peek(self):
        client, frame = self._frame()
        assert read_fingerprint(frame) == client.contract.fingerprint
        with pytest.raises(WireFormatError):
            read_fingerprint(b"short")


class TestContract:
    def test_client_and_server_agree(self):
        client = LDPClient(MIXED, epsilon=1.5, protocols={"c": "oue"})
        server = LDPServer(MIXED, epsilon=1.5, protocols={"c": "oue"})
        assert client.contract.fingerprint == server.contract.fingerprint
        assert len(client.contract.digest) == 16

    def test_fingerprint_is_deterministic(self):
        first = LDPClient(MIXED, epsilon=1.0).contract.fingerprint
        second = LDPClient(MIXED, epsilon=1.0).contract.fingerprint
        assert first == second

    @pytest.mark.parametrize(
        "variant",
        [
            dict(epsilon=2.0),
            dict(sampled_attributes=2),
            dict(protocols="laplace"),
            dict(protocols={"c": "grr"}),
        ],
    )
    def test_fingerprint_sensitive_to_contract_terms(self, variant):
        base = LDPClient(MIXED, epsilon=1.0).contract
        changed = LDPClient(MIXED, **{"epsilon": 1.0, **variant}).contract
        assert base.fingerprint != changed.fingerprint

    def test_fingerprint_sensitive_to_schema(self):
        base = LDPClient(MIXED, epsilon=1.0).contract
        other_schema = Schema(
            [
                NumericAttribute("a"),
                NumericAttribute("b", domain=(0.0, 3.0)),
                CategoricalAttribute("c", n_categories=5),
            ]
        )
        changed = LDPClient(other_schema, epsilon=1.0).contract
        assert base.fingerprint != changed.fingerprint

    def test_mismatched_batch_rejected_before_aggregation(self, rng):
        sender = LDPClient(MIXED, epsilon=4.0)
        receiver = LDPServer(MIXED, epsilon=1.0)
        frame = sender.report_encoded(_records(MIXED, 40, 5), rng)
        with pytest.raises(ContractMismatchError, match="contract"):
            receiver.ingest_encoded(frame)
        assert receiver.users == 0

    def test_describe_is_json_stable(self):
        import json

        contract = LDPClient(MIXED, epsilon=1.0).contract
        dumped = json.dumps(contract.describe(), sort_keys=True)
        assert json.loads(dumped) == contract.describe()

    def test_contract_validates_protocol_count(self):
        with pytest.raises(Exception):
            CollectionContract(
                schema=MIXED, epsilon=1.0, sampled_attributes=3, protocols=("x",)
            )


class TestRegistryNames:
    def test_resolve_protocol_name_canonicalizes(self):
        assert resolve_protocol_name("OUE") == "oue"
        assert resolve_protocol_name("Laplace") == "laplace"

    def test_resolve_protocol_name_unknown(self):
        with pytest.raises(KeyError, match="available"):
            resolve_protocol_name("nope")

    def test_wire_constants_stable(self):
        # Changing these breaks persisted frames; bump deliberately.
        assert MAGIC == b"LDPW"
        assert WIRE_VERSION == 2
        assert SUPPORTED_WIRE_VERSIONS == (1, 2)
        # Family tags are wire constants too: persisted v2 frames break
        # if any of these move.
        from repro.wire import (
            BIT_MATRIX,
            FLOAT_MATRIX,
            FLOAT_VECTOR,
            INT_VECTOR,
            OLH_REPORTS,
            SPARSE_MATRIX,
        )

        assert (
            FLOAT_VECTOR,
            FLOAT_MATRIX,
            INT_VECTOR,
            OLH_REPORTS,
            BIT_MATRIX,
            SPARSE_MATRIX,
        ) == (0, 1, 2, 3, 4, 5)


# ---------------------------------------------------------------------------
# Wire format v2: compressed families, zero-copy views, back-compat
# ---------------------------------------------------------------------------

_V2_HEADER = struct.Struct("<4sH16sQI")
_V2_ATTR_HEAD = struct.Struct("<HHQB")

GOLDEN_DIR = pathlib.Path(__file__).parent / "data"


def _manual_frame(contract, users, blocks, version=2):
    """Assemble a frame by hand (valid CRC) for adversarial bodies.

    ``blocks`` is a list of ``(name, protocol, count, body)`` where
    ``body`` is the family tag byte followed by the family payload.
    """
    parts = [_V2_HEADER.pack(MAGIC, version, contract.digest, users, len(blocks))]
    for name, protocol, count, body in blocks:
        name_bytes = name.encode("utf-8")
        protocol_bytes = protocol.encode("utf-8")
        parts.append(
            _V2_ATTR_HEAD.pack(len(name_bytes), len(protocol_bytes), count, body[0])
        )
        parts.append(name_bytes)
        parts.append(protocol_bytes)
        parts.append(body[1:])
    frame = b"".join(parts)
    return frame + struct.pack("<I", zlib.crc32(frame))


def _sparse_body(width, indices, values, nnz=None):
    from repro.wire import SPARSE_MATRIX

    indices = np.asarray(indices, dtype="<i8")
    values = np.asarray(values, dtype="<f8")
    nnz = indices.size if nnz is None else nnz
    return (
        bytes([SPARSE_MATRIX])
        + struct.pack("<I", width)
        + struct.pack("<Q", nnz)
        + indices.tobytes()
        + values.tobytes()
    )


def _sparse_payload_batch():
    """A batch whose histogram matrix is low-density → SPARSE_MATRIX."""
    from repro.session import ReportBatch

    matrix = np.zeros((6, 5))
    matrix[0, 2] = 1.5
    matrix[4, 1] = -0.75
    return ReportBatch(
        users=6,
        payloads={"c": matrix},
        counts={"c": 6},
        protocols={"c": "piecewise"},
    )


class TestWireV2Families:
    def test_oue_frame_at_least_8x_smaller_than_v1(self):
        """The headline compression: OUE bit matrices pack 64× tighter,
        bringing whole OUE frames under 1/8 of their v1 size."""
        client = LDPClient(CATEGORICAL_ONLY, epsilon=1.0, protocols={"c": "oue"})
        batch = client.report_batch(_records(CATEGORICAL_ONLY, 1000, 3), 3)
        v2 = encode_batch(batch, client.contract)
        v1 = encode_batch(batch, client.contract, version=1)
        assert len(v2) * 8 <= len(v1)
        assert np.array_equal(
            decode_batch(v1, contract=client.contract).payloads["c"],
            decode_batch(v2, contract=client.contract).payloads["c"],
        )

    def test_grr_labels_travel_narrow(self):
        client = LDPClient(CATEGORICAL_ONLY, epsilon=1.0, protocols={"c": "grr"})
        batch = client.report_batch(_records(CATEGORICAL_ONLY, 1000, 4), 4)
        v2 = encode_batch(batch, client.contract)
        v1 = encode_batch(batch, client.contract, version=1)
        assert len(v2) < len(v1) / 4  # int8 lane vs int64
        decoded = decode_batch(v2, contract=client.contract)
        assert decoded.payloads["c"].dtype == np.int64
        assert np.array_equal(decoded.payloads["c"], batch.payloads["c"])

    @pytest.mark.parametrize("width", [1, 5, 8, 9, 16, 64, 65])
    def test_bit_matrix_roundtrip_every_padding_shape(self, width):
        rng = np.random.default_rng(width)
        matrix = rng.integers(0, 2, size=(37, width)).astype(np.float64)
        from repro.wire.codec import _Reader, _decode_payload, _encode_payload

        body = _encode_payload("c", matrix, 37, 2)
        from repro.wire import BIT_MATRIX

        assert body[0] == BIT_MATRIX
        reader = _Reader(memoryview(bytes(body[1:])))
        out = _decode_payload(reader, body[0], 37, "c", 2)
        assert reader.exhausted
        assert out.dtype == np.float64
        assert np.array_equal(out, matrix)

    def test_sparse_matrix_roundtrip_exact(self):
        batch = _sparse_payload_batch()
        client = LDPClient(MIXED, epsilon=1.0)
        frame = encode_batch(batch, client.contract)
        from repro.wire import SPARSE_MATRIX

        # The block really took the sparse family (tag byte is in-frame).
        assert bytes([SPARSE_MATRIX]) in frame
        decoded = decode_batch(frame, contract=client.contract)
        assert decoded.payloads["c"].dtype == np.float64
        assert np.array_equal(decoded.payloads["c"], batch.payloads["c"])

    def test_dense_fallback_above_density_cutoff(self):
        from repro.session import ReportBatch
        from repro.wire import FLOAT_MATRIX
        from repro.wire.codec import _encode_payload

        rng = np.random.default_rng(0)
        dense = rng.normal(size=(20, 5))  # all-nonzero, not 0/1
        body = _encode_payload("c", dense, 20, 2)
        assert body[0] == FLOAT_MATRIX
        batch = ReportBatch(
            users=20,
            payloads={"c": dense},
            counts={"c": 20},
            protocols={"c": "piecewise"},
        )
        client = LDPClient(MIXED, epsilon=1.0)
        decoded = decode_batch(
            encode_batch(batch, client.contract), contract=client.contract
        )
        assert np.array_equal(decoded.payloads["c"], dense)


class TestWireV2Adversarial:
    """Strictness of the new decoder surface, block by block."""

    def _v2_frame(self):
        """A v2 frame exercising BIT_MATRIX + FLOAT_VECTOR + INT_VECTOR."""
        schema = Schema(
            [
                NumericAttribute("a"),
                CategoricalAttribute("c", n_categories=11),
            ]
        )
        client = LDPClient(schema, epsilon=1.0, protocols={"c": "oue"})
        frame = client.encode(client.report_batch(_records(schema, 16, 9), 9))
        return client, frame

    def test_truncation_at_every_boundary(self):
        """Exhaustive: cutting the frame anywhere raises the typed error —
        which covers every new family's internal boundaries too."""
        _, frame = self._v2_frame()
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                decode_batch(frame[:cut])

    def test_bit_flip_at_every_position(self):
        """CRC coverage: flips inside packed blocks are never folded."""
        _, frame = self._v2_frame()
        for position in range(len(frame)):
            damaged = bytearray(frame)
            damaged[position] ^= 0x10
            with pytest.raises(WireFormatError):
                decode_batch(bytes(damaged))

    def test_corruption_inside_sparse_block(self):
        client = LDPClient(MIXED, epsilon=1.0)
        frame = encode_batch(_sparse_payload_batch(), client.contract)
        for position in range(len(frame) - 60, len(frame)):
            damaged = bytearray(frame)
            damaged[position] ^= 0x20
            with pytest.raises(WireFormatError):
                decode_batch(bytes(damaged))

    def test_non_canonical_padding_bits_rejected(self):
        from repro.wire import BIT_MATRIX

        client = LDPClient(MIXED, epsilon=1.0)
        # width 5 → 3 padding bits per row byte; set one.
        body = bytes([BIT_MATRIX]) + struct.pack("<I", 5) + bytes([0b10101100])
        frame = _manual_frame(
            client.contract, 1, [("c", "piecewise", 1, body)]
        )
        with pytest.raises(WireFormatError, match="padding"):
            decode_batch(frame, contract=client.contract)

    def test_sparse_index_out_of_range(self):
        client = LDPClient(MIXED, epsilon=1.0)
        for bad in ([-1], [30], [2, 30]):
            values = [1.0] * len(bad)
            frame = _manual_frame(
                client.contract,
                6,
                [("c", "piecewise", 6, _sparse_body(5, bad, values))],
            )
            with pytest.raises(WireFormatError, match="range|entries"):
                decode_batch(frame, contract=client.contract)

    def test_sparse_indices_must_increase(self):
        client = LDPClient(MIXED, epsilon=1.0)
        for bad in ([4, 2], [7, 7]):
            frame = _manual_frame(
                client.contract,
                6,
                [("c", "piecewise", 6, _sparse_body(5, bad, [1.0, 2.0]))],
            )
            with pytest.raises(WireFormatError, match="increasing"):
                decode_batch(frame, contract=client.contract)

    def test_sparse_explicit_zero_rejected(self):
        client = LDPClient(MIXED, epsilon=1.0)
        frame = _manual_frame(
            client.contract,
            6,
            [("c", "piecewise", 6, _sparse_body(5, [3], [0.0]))],
        )
        with pytest.raises(WireFormatError, match="zero"):
            decode_batch(frame, contract=client.contract)

    def test_sparse_entry_count_bounded_by_matrix(self):
        client = LDPClient(MIXED, epsilon=1.0)
        indices = list(range(31))
        frame = _manual_frame(
            client.contract,
            6,
            [("c", "piecewise", 6, _sparse_body(5, indices, [1.0] * 31))],
        )
        with pytest.raises(WireFormatError, match="entries"):
            decode_batch(frame, contract=client.contract)

    def test_invalid_int_lane_width_rejected(self):
        from repro.wire import INT_VECTOR

        client = LDPClient(CATEGORICAL_ONLY, epsilon=1.0, protocols={"c": "grr"})
        body = bytes([INT_VECTOR]) + bytes([3]) + b"\0" * 6
        frame = _manual_frame(client.contract, 2, [("c", "grr", 2, body)])
        with pytest.raises(WireFormatError, match="width"):
            decode_batch(frame, contract=client.contract)

    def test_v2_families_refused_in_v1_frames(self):
        """A frame claiming version 1 may not carry compressed families."""
        from repro.wire import BIT_MATRIX

        client = LDPClient(MIXED, epsilon=1.0)
        body = bytes([BIT_MATRIX]) + struct.pack("<I", 5) + bytes([0b10100000])
        frame = _manual_frame(
            client.contract, 1, [("c", "piecewise", 1, body)], version=1
        )
        with pytest.raises(WireFormatError, match="family"):
            decode_batch(frame, contract=client.contract)


class TestWireVersioning:
    def test_v1_frames_still_decode(self):
        """Cross-version: yesterday's frames fold bit-identically."""
        client = LDPClient(MIXED, epsilon=1.0, protocols={"c": "oue"})
        batch = client.report_batch(_records(MIXED, 80, 11), 11)
        v1 = encode_batch(batch, client.contract, version=1)
        decoded = decode_batch(v1, contract=client.contract)
        for name, payload in batch.payloads.items():
            assert np.array_equal(np.asarray(payload), np.asarray(decoded.payloads[name]))
            assert np.asarray(payload).dtype == np.asarray(decoded.payloads[name]).dtype

    def test_v2_frames_carry_version_2_in_header(self):
        """The field a v1 decoder checks (and refuses on) is bytes 4:6 —
        a v2 frame announces itself there, so the existing version check
        in any v1 build rejects it with its typed error."""
        client = LDPClient(MIXED, epsilon=1.0)
        frame = client.encode(client.report_batch(_records(MIXED, 10, 2), 2))
        assert frame[:4] == MAGIC
        assert frame[4:6] == (2).to_bytes(2, "little")

    def test_future_versions_refused_typed(self):
        client = LDPClient(MIXED, epsilon=1.0)
        frame = bytearray(client.encode(client.report_batch(_records(MIXED, 10, 2), 2)))
        frame[4:6] = (3).to_bytes(2, "little")
        with pytest.raises(WireFormatError, match="version"):
            decode_batch(bytes(frame))
        with pytest.raises(WireFormatError, match="version"):
            read_fingerprint(bytes(frame))

    def test_encode_refuses_unknown_version(self):
        client = LDPClient(MIXED, epsilon=1.0)
        batch = client.report_batch(_records(MIXED, 4, 1), 1)
        with pytest.raises(WireFormatError, match="version"):
            encode_batch(batch, client.contract, version=7)

    def test_golden_v1_fixture_decodes(self):
        """Back-compat cannot rot silently: a checked-in v1 frame must
        keep decoding and folding to the recorded estimates."""
        frame = (GOLDEN_DIR / "golden_v1_frame.bin").read_bytes()
        expected = json.loads((GOLDEN_DIR / "golden_v1_frame.json").read_text())
        schema = Schema(
            [
                NumericAttribute("a"),
                CategoricalAttribute("c", n_categories=5),
                CategoricalAttribute("g", n_categories=7),
                CategoricalAttribute("h", n_categories=6),
            ]
        )
        protocols = {"c": "oue", "g": "grr", "h": "olh"}
        server = LDPServer(schema, epsilon=expected["epsilon"], protocols=protocols)
        assert server.contract.fingerprint == expected["fingerprint"]
        assert read_fingerprint(frame) == expected["fingerprint"]
        server.ingest_encoded(frame)
        estimate = server.estimate()
        assert estimate.users == expected["users"]
        raws = {
            attr.name: [float(x).hex() for x in np.atleast_1d(attr.raw)]
            for attr in estimate.attributes
        }
        assert raws == expected["raw_hex"]


class TestZeroCopyDecode:
    def test_payloads_are_read_only_views(self):
        client = LDPClient(MIXED, epsilon=1.0)
        frame = client.encode(client.report_batch(_records(MIXED, 50, 5), 5))
        decoded = decode_batch(frame, contract=client.contract)
        vector = decoded.payloads["a"]
        assert not vector.flags.writeable
        assert vector.base is not None  # aliases the frame buffer
        with pytest.raises((ValueError, RuntimeError)):
            vector[0] = 0.0

    def test_views_survive_frame_reference_drop(self):
        client = LDPClient(MIXED, epsilon=1.0)
        decoded = decode_batch(
            client.encode(client.report_batch(_records(MIXED, 50, 6), 6)),
            contract=client.contract,
        )
        # The frame bytes object is unreferenced now; views keep it alive.
        assert float(np.sum(decoded.payloads["a"])) == float(
            np.sum(np.asarray(decoded.payloads["a"]))
        )
        server = LDPServer(MIXED, epsilon=1.0)
        server.ingest(decoded)
        assert server.users == 50

    def test_iter_attribute_blocks_streams_validated_blocks(self):
        client = LDPClient(MIXED, epsilon=1.0)
        batch = client.report_batch(_records(MIXED, 30, 8), 8)
        users, blocks = iter_attribute_blocks(
            client.encode(batch), contract=client.contract
        )
        assert users == 30
        seen = {}
        for block in blocks:
            assert block.count == batch.counts[block.name]
            assert block.protocol == batch.protocols[block.name]
            seen[block.name] = block.payload
        assert set(seen) == set(batch.payloads)

    def test_iter_attribute_blocks_rejects_internal_trailing_bytes(self):
        client = LDPClient(MIXED, epsilon=1.0)
        from repro.wire.codec import _encode_payload

        body = _encode_payload("a", np.zeros(2), 2, 2)
        frame = _manual_frame(
            client.contract, 2, [("a", "piecewise", 2, body + b"xtra")]
        )
        users, blocks = iter_attribute_blocks(frame, contract=client.contract)
        with pytest.raises(WireFormatError, match="trailing"):
            list(blocks)
