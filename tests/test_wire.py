"""Tests for the wire codec and the collection-contract handshake."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ContractMismatchError, WireFormatError
from repro.mechanisms import available_mechanisms
from repro.mechanisms.registry import resolve_protocol_name
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
)
from repro.wire import (
    MAGIC,
    WIRE_VERSION,
    CollectionContract,
    decode_batch,
    encode_batch,
    read_fingerprint,
)

ORACLES = ("grr", "oue", "olh")

MIXED = Schema(
    [
        NumericAttribute("a"),
        NumericAttribute("b", domain=(0.0, 2.0)),
        CategoricalAttribute("c", n_categories=5),
    ]
)
CATEGORICAL_ONLY = Schema([CategoricalAttribute("c", n_categories=5)])


def _session(protocol):
    """(schema, spec) pair appropriate for one protocol name."""
    if protocol in ORACLES:
        return CATEGORICAL_ONLY, {"c": protocol}
    return MIXED, protocol


def _records(schema, users, seed):
    gen = np.random.default_rng(seed)
    columns = []
    for attr in schema:
        if attr.kind == "numeric":
            lo, hi = attr.domain
            columns.append(gen.uniform(lo, hi, users))
        else:
            columns.append(gen.integers(0, attr.n_categories, users))
    return np.column_stack(columns)


def every_protocol():
    return sorted(available_mechanisms()) + list(ORACLES)


class TestRoundTrip:
    @pytest.mark.parametrize("protocol", every_protocol())
    def test_decode_encode_ingests_bit_identically(self, protocol):
        """Acceptance: the wire adds nothing and loses nothing."""
        schema, spec = _session(protocol)
        client = LDPClient(schema, epsilon=2.0, protocols=spec)
        batches = [
            client.report_batch(_records(schema, 400, seed), seed)
            for seed in range(3)
        ]
        in_memory = LDPServer(schema, epsilon=2.0, protocols=spec)
        in_memory.ingest(batches)
        from_wire = LDPServer(schema, epsilon=2.0, protocols=spec)
        for batch in batches:
            from_wire.ingest_encoded(client.encode(batch))
        a, b = in_memory.estimate(), from_wire.estimate()
        assert a.users == b.users
        for x, y in zip(a.attributes, b.attributes):
            assert x.reports == y.reports
            assert np.array_equal(x.raw, y.raw), (protocol, x.name)

    @pytest.mark.parametrize("protocol", ["piecewise", "grr", "oue", "olh"])
    def test_payloads_survive_exactly(self, protocol):
        schema, spec = _session(protocol)
        client = LDPClient(schema, epsilon=1.0, protocols=spec)
        batch = client.report_batch(_records(schema, 123, 7), 7)
        decoded = decode_batch(client.encode(batch), contract=client.contract)
        assert decoded.users == batch.users
        assert dict(decoded.counts) == dict(batch.counts)
        assert dict(decoded.protocols) == dict(batch.protocols)
        for name, payload in batch.payloads.items():
            other = decoded.payloads[name]
            if protocol == "olh":
                assert np.array_equal(payload.seeds, other.seeds)
                assert np.array_equal(payload.buckets, other.buckets)
            else:
                assert np.array_equal(np.asarray(payload), np.asarray(other))
                assert np.asarray(payload).dtype == np.asarray(other).dtype

    def test_sampled_batches_encode_missing_attributes(self, rng):
        client = LDPClient(MIXED, epsilon=1.0, sampled_attributes=1)
        batch = client.report_batch(_records(MIXED, 50, 3), rng)
        decoded = decode_batch(client.encode(batch))
        assert set(decoded.payloads) == set(batch.payloads)
        assert decoded.users == 50


class TestStrictDecoding:
    def _frame(self):
        client = LDPClient(MIXED, epsilon=1.0)
        return client, client.encode(client.report_batch(_records(MIXED, 60, 1), 1))

    def test_truncation_raises_typed_error(self):
        _, frame = self._frame()
        for cut in (0, 3, 10, 33, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireFormatError):
                decode_batch(frame[:cut])

    def test_corruption_raises_typed_error(self):
        _, frame = self._frame()
        for position in (6, 40, len(frame) // 2, len(frame) - 2):
            damaged = bytearray(frame)
            damaged[position] ^= 0x40
            with pytest.raises(WireFormatError):
                decode_batch(bytes(damaged))

    def test_trailing_garbage_rejected(self):
        _, frame = self._frame()
        with pytest.raises(WireFormatError):
            decode_batch(frame + b"xx")

    def test_bad_magic_rejected(self):
        _, frame = self._frame()
        with pytest.raises(WireFormatError, match="magic"):
            decode_batch(b"NOPE" + frame[4:])

    def test_unsupported_version_rejected(self):
        _, frame = self._frame()
        mutated = bytearray(frame)
        mutated[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(WireFormatError, match="version"):
            decode_batch(bytes(mutated))

    def test_unknown_protocol_name_rejected(self):
        client, frame = self._frame()
        # Re-encode a batch that lies about its protocol name.
        batch = client.report_batch(_records(MIXED, 10, 2), 2)
        forged = dict(batch.protocols)
        with pytest.raises(WireFormatError):
            # encode checks against the contract first
            from repro.session import ReportBatch

            lying = ReportBatch(
                users=batch.users,
                payloads=batch.payloads,
                counts=batch.counts,
                protocols={name: "zzz" for name in forged},
            )
            encode_batch(lying, client.contract)

    @pytest.mark.parametrize(
        "not_a_batch", [[1, 2, 3], b"bytes", {"users": 3}, None, 42]
    )
    def test_encode_rejects_non_batches_with_typed_error(self, not_a_batch):
        """Regression: a list used to blow up with a raw AttributeError."""
        client, _ = self._frame()
        with pytest.raises(WireFormatError, match="ReportBatch"):
            encode_batch(not_a_batch, client.contract)

    def test_fingerprint_peek(self):
        client, frame = self._frame()
        assert read_fingerprint(frame) == client.contract.fingerprint
        with pytest.raises(WireFormatError):
            read_fingerprint(b"short")


class TestContract:
    def test_client_and_server_agree(self):
        client = LDPClient(MIXED, epsilon=1.5, protocols={"c": "oue"})
        server = LDPServer(MIXED, epsilon=1.5, protocols={"c": "oue"})
        assert client.contract.fingerprint == server.contract.fingerprint
        assert len(client.contract.digest) == 16

    def test_fingerprint_is_deterministic(self):
        first = LDPClient(MIXED, epsilon=1.0).contract.fingerprint
        second = LDPClient(MIXED, epsilon=1.0).contract.fingerprint
        assert first == second

    @pytest.mark.parametrize(
        "variant",
        [
            dict(epsilon=2.0),
            dict(sampled_attributes=2),
            dict(protocols="laplace"),
            dict(protocols={"c": "grr"}),
        ],
    )
    def test_fingerprint_sensitive_to_contract_terms(self, variant):
        base = LDPClient(MIXED, epsilon=1.0).contract
        changed = LDPClient(MIXED, **{"epsilon": 1.0, **variant}).contract
        assert base.fingerprint != changed.fingerprint

    def test_fingerprint_sensitive_to_schema(self):
        base = LDPClient(MIXED, epsilon=1.0).contract
        other_schema = Schema(
            [
                NumericAttribute("a"),
                NumericAttribute("b", domain=(0.0, 3.0)),
                CategoricalAttribute("c", n_categories=5),
            ]
        )
        changed = LDPClient(other_schema, epsilon=1.0).contract
        assert base.fingerprint != changed.fingerprint

    def test_mismatched_batch_rejected_before_aggregation(self, rng):
        sender = LDPClient(MIXED, epsilon=4.0)
        receiver = LDPServer(MIXED, epsilon=1.0)
        frame = sender.report_encoded(_records(MIXED, 40, 5), rng)
        with pytest.raises(ContractMismatchError, match="contract"):
            receiver.ingest_encoded(frame)
        assert receiver.users == 0

    def test_describe_is_json_stable(self):
        import json

        contract = LDPClient(MIXED, epsilon=1.0).contract
        dumped = json.dumps(contract.describe(), sort_keys=True)
        assert json.loads(dumped) == contract.describe()

    def test_contract_validates_protocol_count(self):
        with pytest.raises(Exception):
            CollectionContract(
                schema=MIXED, epsilon=1.0, sampled_attributes=3, protocols=("x",)
            )


class TestRegistryNames:
    def test_resolve_protocol_name_canonicalizes(self):
        assert resolve_protocol_name("OUE") == "oue"
        assert resolve_protocol_name("Laplace") == "laplace"

    def test_resolve_protocol_name_unknown(self):
        with pytest.raises(KeyError, match="available"):
            resolve_protocol_name("nope")

    def test_wire_constants_stable(self):
        # Changing these breaks persisted frames; bump deliberately.
        assert MAGIC == b"LDPW"
        assert WIRE_VERSION == 1
