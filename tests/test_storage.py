"""Tests for the repro.storage subpackage (ISSUE 6 tentpole).

The store contract across all three backends: ``save`` is durable and
atomic, ``load`` is strict (damage raises
:class:`~repro.exceptions.CheckpointCorruptError`, never a raw ``json``
or ``sqlite3`` exception), ``recover`` steps back to the newest intact
checkpoint where the backend retains history — and after any corruption
scenario the store is still readable at its previous checkpoint. Plus
the URI front door, the document codec, and the AutoCheckpointer
triggers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import (
    CheckpointCorruptError,
    StorageError,
    WireFormatError,
)
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
)
from repro.storage import (
    AutoCheckpointer,
    JsonFileStore,
    SegmentLogStore,
    SqliteStore,
    decode_document,
    encode_document,
    open_store,
    parse_storage_uri,
)
from repro.storage.segments import RECORD_MAGIC

SCHEMA = Schema(
    [NumericAttribute("x"), CategoricalAttribute("c", n_categories=4)]
)
SPEC = {"c": "grr"}
EPSILON = 2.0


def _store_for(backend, tmp_path, **kwargs):
    if backend == "file":
        return JsonFileStore(tmp_path / "ckpt.json", **kwargs)
    if backend == "sqlite":
        return SqliteStore(tmp_path / "ckpt.db", **kwargs)
    return SegmentLogStore(tmp_path / "ckpt-log", **kwargs)


BACKENDS = ["file", "sqlite", "segments"]


class TestStoreContract:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_store_loads_none(self, backend, tmp_path):
        with _store_for(backend, tmp_path) as store:
            assert store.load() is None
            assert store.recover() is None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_newest_document_wins(self, backend, tmp_path):
        with _store_for(backend, tmp_path) as store:
            for n in range(5):
                store.save({"round": n, "nested": {"values": [n, n + 1]}})
            assert store.load()["round"] == 4
            assert store.recover()["round"] == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_location_is_a_reopenable_uri(self, backend, tmp_path):
        with _store_for(backend, tmp_path) as store:
            store.save({"round": 7})
            uri = store.location
        with open_store(uri) as reopened:
            assert reopened.load() == {"round": 7}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unserializable_document_refused_before_touching_state(
        self, backend, tmp_path
    ):
        with _store_for(backend, tmp_path) as store:
            store.save({"round": 1})
            with pytest.raises(StorageError):
                store.save({"bad": object()})
            with pytest.raises(StorageError):
                store.save(["not", "a", "mapping"])
            # The refusal left the previous checkpoint untouched.
            assert store.load() == {"round": 1}


class TestCorruptionMatrix:
    """Satellite: garbage bytes, torn tails and schema drift per backend.

    Every scenario must (a) surface as the typed corruption error — a
    :class:`WireFormatError` subclass, so wire-layer guards keep working
    — and (b) leave the store readable at its previous checkpoint where
    the backend retains one.
    """

    def test_jsonfile_garbage_bytes(self, tmp_path):
        store = JsonFileStore(tmp_path / "ckpt.json")
        store.path.write_bytes(b"\xff\xfe not json")
        with pytest.raises(CheckpointCorruptError):
            store.load()
        # Single-document backend: no history, recover raises too.
        with pytest.raises(CheckpointCorruptError):
            store.recover()
        # Wire-layer guards keep catching storage corruption (MRO).
        assert issubclass(CheckpointCorruptError, WireFormatError)

    def test_jsonfile_scalar_document(self, tmp_path):
        store = JsonFileStore(tmp_path / "ckpt.json")
        store.path.write_text("42\n")
        with pytest.raises(CheckpointCorruptError, match="JSON int"):
            store.load()

    def test_sqlite_garbage_file(self, tmp_path):
        path = tmp_path / "ckpt.db"
        path.write_bytes(b"this is not a sqlite database at all")
        store = SqliteStore(path)
        with pytest.raises(CheckpointCorruptError, match="sqlite"):
            store.load()
        with pytest.raises(CheckpointCorruptError):
            store.recover()

    def test_sqlite_damaged_newest_row_recovers_previous(self, tmp_path):
        with SqliteStore(tmp_path / "ckpt.db", keep=3) as store:
            store.save({"round": 1})
            store.save({"round": 2})
            store._connect().execute(
                "UPDATE checkpoints SET document = ? WHERE generation = "
                "(SELECT MAX(generation) FROM checkpoints)",
                (b"{torn...",),
            )
            store._connection.commit()
            with pytest.raises(CheckpointCorruptError):
                store.load()  # strict: damage is reported
            assert store.recover() == {"round": 1}  # history survives

    def test_sqlite_no_generation_readable(self, tmp_path):
        with SqliteStore(tmp_path / "ckpt.db") as store:
            store.save({"round": 1})
            store._connect().execute(
                "UPDATE checkpoints SET crc = crc + 1"
            )
            store._connection.commit()
            with pytest.raises(CheckpointCorruptError, match="none is readable"):
                store.recover()

    def test_segments_torn_tail_recovers_previous(self, tmp_path):
        store = SegmentLogStore(tmp_path / "log")
        store.save({"round": 1})
        store.save({"round": 2})
        # SIGKILL mid-append: a partial record head lands on the tail.
        with open(store.segments()[-1], "ab") as handle:
            handle.write(RECORD_MAGIC + b"\x40")
        with pytest.raises(CheckpointCorruptError, match="torn"):
            store.load()
        assert store.recover() == {"round": 2}

    def test_segments_corrupt_crc_recovers_previous(self, tmp_path):
        store = SegmentLogStore(tmp_path / "log")
        store.save({"round": 1})
        store.save({"round": 2})
        path = store.segments()[-1]
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload byte of the newest record
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError, match="CRC"):
            store.load()
        assert store.recover() == {"round": 1}

    def test_segments_all_records_damaged(self, tmp_path):
        store = SegmentLogStore(tmp_path / "log")
        store.save({"round": 1})
        path = store.segments()[-1]
        path.write_bytes(b"\x00" * path.stat().st_size)
        with pytest.raises(CheckpointCorruptError, match="not one is intact"):
            store.recover()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_schema_drifted_document_rejected_by_restore(
        self, backend, tmp_path
    ):
        """A well-stored but drifted document fails *typed* at restore."""
        with _store_for(backend, tmp_path) as store:
            store.save({"format": "somebody-elses-state", "state_version": 99})
            drifted = store.load()  # the store itself is fine with it
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        with pytest.raises(WireFormatError):
            server.load_state_dict(drifted)


class TestSegmentLog:
    def test_segments_roll_at_size_limit(self, tmp_path):
        store = SegmentLogStore(
            tmp_path / "log", segment_max_bytes=64, compact_every=1000
        )
        for n in range(8):
            store.save({"round": n})
        assert len(store.segments()) > 1
        assert store.load() == {"round": 7}

    def test_compaction_keeps_newest_and_drops_history(self, tmp_path):
        store = SegmentLogStore(
            tmp_path / "log", segment_max_bytes=64, compact_every=1000
        )
        for n in range(10):
            store.save({"round": n})
        before = store.log_bytes()
        store.compact()
        assert len(store.segments()) == 1
        assert store.log_bytes() < before
        assert store.load() == {"round": 9}

    def test_auto_compaction_bounds_the_log(self, tmp_path):
        store = SegmentLogStore(tmp_path / "log", compact_every=4)
        for n in range(12):
            store.save({"round": n})
        # Compacted every 4 saves: never more than one compacted record
        # plus compact_every appended ones.
        assert len(store.segments()) == 1
        assert store.load() == {"round": 11}

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(StorageError):
            SegmentLogStore(tmp_path / "log", segment_max_bytes=0)
        with pytest.raises(StorageError):
            SegmentLogStore(tmp_path / "log", compact_every=0)


class TestSqliteGenerations:
    def test_history_is_pruned_to_keep(self, tmp_path):
        with SqliteStore(tmp_path / "ckpt.db", keep=3) as store:
            for n in range(10):
                store.save({"round": n})
            assert store.generations() == 3
            assert store.load() == {"round": 9}

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(StorageError):
            SqliteStore(tmp_path / "ckpt.db", keep=0)


class TestJsonFileAtomicity:
    def test_failed_write_cleans_scratch(self, tmp_path, monkeypatch):
        import pathlib

        store = JsonFileStore(tmp_path / "ckpt.json")
        store.save({"round": 1})
        real_write = pathlib.Path.write_text

        def broken(self, text, *args, **kwargs):
            real_write(self, text[: len(text) // 2], *args, **kwargs)
            raise OSError("disk full")

        monkeypatch.setattr(pathlib.Path, "write_text", broken)
        with pytest.raises(OSError, match="disk full"):
            store.save({"round": 2})
        monkeypatch.undo()
        # No scratch litter, and the previous checkpoint survived.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.json"]
        assert store.load() == {"round": 1}

    def test_load_required_raises_on_missing(self, tmp_path):
        with pytest.raises(StorageError, match="no checkpoint"):
            JsonFileStore(tmp_path / "absent.json").load_required()


class TestUri:
    def test_bare_path_means_json_file(self, tmp_path):
        scheme, path = parse_storage_uri(str(tmp_path / "state.json"))
        assert scheme == "file"
        store = open_store(str(tmp_path / "state.json"))
        assert isinstance(store, JsonFileStore)

    @pytest.mark.parametrize(
        "scheme,cls",
        [("file", JsonFileStore), ("sqlite", SqliteStore),
         ("segments", SegmentLogStore)],
    )
    def test_schemes_resolve(self, scheme, cls, tmp_path):
        store = open_store("%s://%s" % (scheme, tmp_path / "target"))
        assert isinstance(store, cls)
        assert store.scheme == scheme

    def test_unknown_scheme_lists_known_ones(self, tmp_path):
        with pytest.raises(StorageError, match="file, segments, sqlite"):
            open_store("redis://somewhere")

    def test_empty_inputs_rejected(self):
        with pytest.raises(StorageError):
            parse_storage_uri("")
        with pytest.raises(StorageError):
            parse_storage_uri("file://")


class TestDocumentCodec:
    def test_canonical_encoding_round_trips(self):
        blob = encode_document({"b": 2, "a": [1, {"z": None}]})
        assert blob == encode_document({"a": [1, {"z": None}], "b": 2})
        assert decode_document(blob, "test") == {"a": [1, {"z": None}], "b": 2}

    def test_decode_rejects_garbage_and_non_objects(self):
        with pytest.raises(CheckpointCorruptError):
            decode_document(b"\xff\xff", "test")
        with pytest.raises(CheckpointCorruptError):
            decode_document(b"[1, 2]", "test")


def _ingest_some(server, seed=0, users=40):
    gen = np.random.default_rng(seed)
    records = np.column_stack(
        [gen.uniform(-1, 1, users), gen.integers(0, 4, users)]
    )
    client = LDPClient(SCHEMA, EPSILON, protocols=SPEC)
    server.ingest(client.report_batch(records, gen))


class TestAutoCheckpointer:
    def test_requires_a_trigger(self, tmp_path):
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        store = JsonFileStore(tmp_path / "a.json")
        with pytest.raises(StorageError, match="trigger"):
            AutoCheckpointer(server, store)
        with pytest.raises(StorageError):
            AutoCheckpointer(server, store, every_frames=0)
        with pytest.raises(StorageError):
            AutoCheckpointer(server, store, every_seconds=0.0)

    def test_frame_trigger_checkpoints_every_n(self, tmp_path):
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        store = JsonFileStore(tmp_path / "a.json")
        auto = AutoCheckpointer(server, store, every_frames=2)
        client = LDPClient(SCHEMA, EPSILON, protocols=SPEC)
        gen = np.random.default_rng(1)
        for _ in range(6):
            records = np.column_stack(
                [gen.uniform(-1, 1, 10), gen.integers(0, 4, 10)]
            )
            auto.ingest(client.report_batch(records, gen))
        assert auto.checkpoints_written == 3
        restored = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        restored.load_state_dict(store.load())
        assert restored.users == server.users  # last checkpoint at frame 6

    def test_time_trigger_with_fake_clock(self, tmp_path):
        ticks = [0.0]
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        store = JsonFileStore(tmp_path / "a.json")
        auto = AutoCheckpointer(
            server, store, every_seconds=10.0, clock=lambda: ticks[0]
        )
        _ingest_some(server)  # direct ingest: no frame note, no trigger
        auto._note_frame = auto._note_frame  # (explicitness only)
        auto.ingest_encoded(
            LDPClient(SCHEMA, EPSILON, protocols=SPEC).report_encoded(
                np.column_stack([[0.1], [2]]), np.random.default_rng(2)
            )
        )
        assert auto.checkpoints_written == 0  # clock hasn't moved
        ticks[0] = 11.0
        auto.ingest_encoded(
            LDPClient(SCHEMA, EPSILON, protocols=SPEC).report_encoded(
                np.column_stack([[0.2], [3]]), np.random.default_rng(3)
            )
        )
        assert auto.checkpoints_written == 1

    def test_resume_restores_and_reports(self, tmp_path):
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        store = JsonFileStore(tmp_path / "a.json")
        auto = AutoCheckpointer(server, store, every_frames=1)
        assert auto.resume() is False  # empty store
        _ingest_some(server)
        auto.checkpoint()
        fresh = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        fresh_auto = AutoCheckpointer(fresh, store, every_frames=1)
        assert fresh_auto.resume() is True
        assert fresh.users == server.users
        assert json.dumps(fresh.state_dict(), sort_keys=True) == json.dumps(
            server.state_dict(), sort_keys=True
        )
