"""Property-based tests (hypothesis) on mechanism invariants.

These are the load-bearing invariants of the whole reproduction: every
moment the framework consumes must be a genuine expectation of the actual
sampler, and the samplers must respect their declared supports.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mechanisms import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
    StaircaseMechanism,
)

EPSILONS = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)
UNIT_VALUES = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
STANDARD_VALUES = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)

STANDARD_MECHS = [
    LaplaceMechanism,
    StaircaseMechanism,
    DuchiMechanism,
    PiecewiseMechanism,
    HybridMechanism,
]


@pytest.mark.parametrize("mech_cls", STANDARD_MECHS)
@given(t=STANDARD_VALUES, eps=EPSILONS)
@settings(max_examples=25, deadline=None)
def test_variance_positive_and_finite(mech_cls, t, eps):
    mech = mech_cls()
    var = mech.conditional_variance(np.array([t]), eps)[0]
    assert np.isfinite(var)
    assert var > 0.0


@pytest.mark.parametrize("mech_cls", STANDARD_MECHS)
@given(t=STANDARD_VALUES, eps=EPSILONS)
@settings(max_examples=25, deadline=None)
def test_unbiased_mechanisms_have_zero_bias(mech_cls, t, eps):
    mech = mech_cls()
    assert mech.conditional_bias(np.array([t]), eps)[0] == pytest.approx(0.0)


@given(t=UNIT_VALUES, eps=EPSILONS)
@settings(max_examples=25, deadline=None)
def test_square_wave_mean_stays_in_support(t, eps):
    # E[t*|t] = t + delta(t) must lie inside [-b, 1+b].
    mech = SquareWaveMechanism()
    b = mech.half_width(eps)
    mean = t + mech.conditional_bias(np.array([t]), eps)[0]
    assert -b - 1e-9 <= mean <= 1.0 + b + 1e-9


@given(t=UNIT_VALUES, eps=EPSILONS)
@settings(max_examples=25, deadline=None)
def test_square_wave_variance_below_support_bound(t, eps):
    # Var of a variable supported on an interval of length L is <= L^2/4.
    mech = SquareWaveMechanism()
    b = mech.half_width(eps)
    length = 1.0 + 2.0 * b
    var = mech.conditional_variance(np.array([t]), eps)[0]
    assert 0.0 < var <= length**2 / 4.0 + 1e-12


@pytest.mark.parametrize(
    "mech_cls", [DuchiMechanism, PiecewiseMechanism, HybridMechanism]
)
@given(t=STANDARD_VALUES, eps=EPSILONS, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_bounded_samples_stay_in_support(mech_cls, t, eps, seed):
    mech = mech_cls()
    lo, hi = mech.output_support(eps)
    out = mech.perturb(np.full(256, t), eps, np.random.default_rng(seed))
    assert out.min() >= lo - 1e-9
    assert out.max() <= hi + 1e-9


@given(eps=EPSILONS)
@settings(max_examples=25, deadline=None)
def test_piecewise_variance_decreases_with_budget(eps):
    mech = PiecewiseMechanism()
    t = np.array([0.5])
    tighter = mech.conditional_variance(t, eps)[0]
    looser = mech.conditional_variance(t, eps * 2.0)[0]
    assert looser < tighter


@given(eps=EPSILONS)
@settings(max_examples=25, deadline=None)
def test_laplace_variance_scales_inverse_square(eps):
    mech = LaplaceMechanism()
    assert mech.noise_variance(eps) == pytest.approx(
        4.0 * mech.noise_variance(2.0 * eps)
    )


@given(
    t=STANDARD_VALUES,
    eps=st.floats(min_value=0.1, max_value=5.0),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=10, deadline=None)
def test_perturbation_is_reproducible_from_seed(t, eps, seed):
    mech = PiecewiseMechanism()
    a = mech.perturb(np.full(64, t), eps, np.random.default_rng(seed))
    b = mech.perturb(np.full(64, t), eps, np.random.default_rng(seed))
    np.testing.assert_array_equal(a, b)
