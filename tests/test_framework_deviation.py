"""Tests for the Lemma 2 / Lemma 3 deviation models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import DistributionError
from repro.framework import DeviationModel, ValueDistribution, build_deviation_model
from repro.mechanisms import (
    LaplaceMechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
    get_mechanism,
)


class TestBuild:
    def test_lemma2_laplace(self):
        mech = LaplaceMechanism()
        model = build_deviation_model(mech, 0.5, 1000)
        assert model.delta == 0.0
        assert model.sigma == pytest.approx(
            math.sqrt(mech.noise_variance(0.5) / 1000)
        )

    def test_lemma2_ignores_population(self):
        mech = LaplaceMechanism()
        with_pop = build_deviation_model(
            mech, 0.5, 1000, ValueDistribution.case_study().rescale(2, -1.1)
        )
        without = build_deviation_model(mech, 0.5, 1000)
        assert with_pop.sigma == without.sigma

    def test_lemma3_requires_population(self):
        with pytest.raises(DistributionError):
            build_deviation_model(PiecewiseMechanism(), 0.5, 1000)

    def test_lemma3_piecewise_case_study(self):
        model = build_deviation_model(
            PiecewiseMechanism(), 0.001, 10_000, ValueDistribution.case_study()
        )
        assert model.delta == pytest.approx(0.0)
        assert model.sigma**2 == pytest.approx(533.210, abs=0.05)

    def test_lemma3_square_case_study(self):
        model = build_deviation_model(
            SquareWaveMechanism(), 0.001, 10_000, ValueDistribution.case_study()
        )
        assert model.delta == pytest.approx(-0.050, abs=2e-3)
        assert model.sigma**2 == pytest.approx(3.33e-5, rel=0.05)

    def test_more_reports_shrink_sigma(self):
        mech = LaplaceMechanism()
        small = build_deviation_model(mech, 0.5, 100)
        large = build_deviation_model(mech, 0.5, 10_000)
        assert large.sigma == pytest.approx(small.sigma / 10.0)

    def test_invalid_reports(self):
        with pytest.raises(ValueError):
            build_deviation_model(LaplaceMechanism(), 0.5, 0)


class TestModelQueries:
    @pytest.fixture()
    def model(self):
        return DeviationModel(delta=0.1, sigma=0.5, reports=100, epsilon=1.0)

    def test_pdf_matches_gaussian(self, model):
        from scipy import stats

        x = np.linspace(-2, 2, 11)
        np.testing.assert_allclose(
            model.pdf(x), stats.norm.pdf(x, 0.1, 0.5), rtol=1e-12
        )

    def test_pdf_integrates_to_one(self, model):
        x = np.linspace(-6, 6, 100_001)
        assert np.trapezoid(model.pdf(x), x) == pytest.approx(1.0, abs=1e-6)

    def test_supremum_probability_limits(self, model):
        assert model.supremum_probability(0.0) == pytest.approx(0.0, abs=1e-12)
        assert model.supremum_probability(100.0) == pytest.approx(1.0)

    def test_supremum_plus_exceedance_is_one(self, model):
        xi = 0.7
        total = model.supremum_probability(xi) + model.exceedance_probability(xi)
        assert total == pytest.approx(1.0)

    def test_interval_probability_monotone(self, model):
        assert model.interval_probability(-1, 1) < model.interval_probability(-2, 2)

    def test_negative_supremum_rejected(self, model):
        with pytest.raises(ValueError):
            model.supremum_probability(-0.1)

    def test_empty_interval_rejected(self, model):
        with pytest.raises(ValueError):
            model.interval_probability(1.0, 0.0)

    def test_envelope_default_is_three_sigma(self, model):
        assert model.envelope() == pytest.approx(abs(model.delta) + 3 * model.sigma,
                                                 rel=1e-3)

    def test_envelope_grows_with_confidence(self, model):
        assert model.envelope(0.999) > model.envelope(0.9)

    def test_envelope_invalid_confidence(self, model):
        with pytest.raises(ValueError):
            model.envelope(1.0)

    def test_sample_moments(self, model, rng):
        sample = model.sample(200_000, rng)
        assert sample.mean() == pytest.approx(model.delta, abs=0.01)
        assert sample.std() == pytest.approx(model.sigma, rel=0.02)

    def test_nonpositive_sigma_rejected(self):
        with pytest.raises(DistributionError):
            DeviationModel(delta=0.0, sigma=0.0, reports=10, epsilon=1.0)


class TestAgainstSimulation:
    """The framework's core claim: the Gaussian matches actual aggregation."""

    @pytest.mark.parametrize("name", ["laplace", "piecewise", "square_wave_unit"])
    def test_deviation_distribution(self, name, rng):
        mech = get_mechanism(name)
        lo, hi = mech.input_domain
        population = ValueDistribution.uniform_grid(
            lo + 0.1 * (hi - lo), hi, 10
        )
        reports, eps, repeats = 2_000, 0.1, 300
        column = population.sample(reports, rng)
        empirical_pop = ValueDistribution.from_data(column, bins=None)
        model = build_deviation_model(mech, eps, reports, empirical_pop)
        bias = mech.deterministic_bias(eps) or 0.0
        deviations = np.array([
            mech.perturb(column, eps, rng).mean() - bias - column.mean()
            for _ in range(repeats)
        ])
        assert deviations.mean() == pytest.approx(
            model.delta, abs=4 * model.sigma / math.sqrt(repeats)
        )
        assert deviations.std(ddof=1) == pytest.approx(model.sigma, rel=0.2)
