"""Tests for the one-off solvers and proximal gradient descent."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import CalibrationError
from repro.hdr4me import (
    ProximalGradientSolver,
    get_regularizer,
    recalibrate_l1,
    recalibrate_l2,
)

VECTORS = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=32),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
)


class TestClosedForms:
    def test_l1_eq34(self):
        theta = np.array([2.5, 0.7, -2.5, 0.0])
        out = recalibrate_l1(theta, 1.0)
        np.testing.assert_allclose(out, [1.5, 0.0, -1.5, 0.0])

    def test_l2_eq42(self):
        theta = np.array([3.0, -6.0])
        out = recalibrate_l2(theta, np.array([1.0, 2.5]))
        np.testing.assert_allclose(out, [1.0, -1.0])

    def test_per_dimension_lambdas(self):
        theta = np.array([2.0, 2.0])
        out = recalibrate_l1(theta, np.array([0.5, 1.5]))
        np.testing.assert_allclose(out, [1.5, 0.5])

    def test_shape_preserved(self):
        theta = np.zeros((3,))
        assert recalibrate_l1(theta, 1.0).shape == (3,)

    def test_lambda_size_mismatch(self):
        with pytest.raises(CalibrationError):
            recalibrate_l1(np.zeros(3), np.zeros(2))

    def test_negative_lambda_rejected(self):
        with pytest.raises(CalibrationError):
            recalibrate_l2(np.zeros(2), np.array([1.0, -1.0]))

    def test_nan_lambda_rejected(self):
        with pytest.raises(CalibrationError):
            recalibrate_l1(np.zeros(1), np.array([np.nan]))


class TestPGD:
    def test_converges_in_one_productive_step(self):
        solver = ProximalGradientSolver(get_regularizer("l1"))
        result = solver.solve(np.array([3.0, 0.2]), 1.0)
        assert result.converged
        assert result.iterations <= 2

    def test_invalid_step_size(self):
        with pytest.raises(CalibrationError):
            ProximalGradientSolver(get_regularizer("l1"), step_size=2.0)

    def test_invalid_max_iter(self):
        with pytest.raises(CalibrationError):
            ProximalGradientSolver(get_regularizer("l1"), max_iter=0)

    def test_theta_init_shape_checked(self):
        solver = ProximalGradientSolver(get_regularizer("l1"))
        with pytest.raises(CalibrationError):
            solver.solve(np.zeros(3), 1.0, theta_init=np.zeros(2))

    def test_partial_steps_still_converge(self):
        # Smaller steps need more iterations but reach the same point.
        solver = ProximalGradientSolver(
            get_regularizer("l2"), step_size=0.5, max_iter=500, tolerance=1e-13
        )
        theta = np.array([4.0, -2.0])
        result = solver.solve(theta, 1.0)
        assert result.converged
        np.testing.assert_allclose(result.theta, recalibrate_l2(theta, 1.0),
                                   atol=1e-9)

    def test_objective_reported(self):
        solver = ProximalGradientSolver(get_regularizer("l1"))
        result = solver.solve(np.array([3.0]), 1.0)
        # theta* = 2; objective = 0.5*(2-3)^2 + |2| = 2.5
        assert result.objective == pytest.approx(2.5)

    @given(theta=VECTORS, lam=st.floats(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_property_pgd_equals_closed_form_l1(self, theta, lam):
        solver = ProximalGradientSolver(get_regularizer("l1"))
        result = solver.solve(theta, lam)
        np.testing.assert_allclose(
            result.theta, recalibrate_l1(theta, lam), atol=1e-10
        )

    @given(theta=VECTORS, lam=st.floats(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_property_pgd_equals_closed_form_l2(self, theta, lam):
        solver = ProximalGradientSolver(get_regularizer("l2"))
        result = solver.solve(theta, lam)
        np.testing.assert_allclose(
            result.theta, recalibrate_l2(theta, lam), atol=1e-10
        )

    @given(theta=VECTORS, lam=st.floats(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_property_solution_minimizes_objective(self, theta, lam):
        """No coordinate perturbation of theta* improves the L1 objective."""
        out = recalibrate_l1(theta, lam)
        lam_vec = np.full(theta.size, lam)

        def objective(x):
            return 0.5 * np.sum((x - theta) ** 2) + np.sum(lam_vec * np.abs(x))

        best = objective(out)
        for j in range(theta.size):
            for delta in (-0.01, 0.01):
                candidate = out.copy()
                candidate[j] += delta
                assert objective(candidate) >= best - 1e-9
