"""Tests for :class:`repro.framework.ValueDistribution`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DistributionError
from repro.framework import ValueDistribution


class TestConstruction:
    def test_sorts_values(self):
        dist = ValueDistribution(np.array([0.5, -0.5]), np.array([0.25, 0.75]))
        np.testing.assert_array_equal(dist.values, [-0.5, 0.5])
        np.testing.assert_array_equal(dist.probabilities, [0.75, 0.25])

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            ValueDistribution(np.empty(0), np.empty(0))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DistributionError):
            ValueDistribution(np.array([1.0]), np.array([0.5, 0.5]))

    def test_rejects_negative_probability(self):
        with pytest.raises(DistributionError):
            ValueDistribution(np.array([0.0, 1.0]), np.array([-0.1, 1.1]))

    def test_rejects_unnormalized(self):
        with pytest.raises(DistributionError):
            ValueDistribution(np.array([0.0, 1.0]), np.array([0.4, 0.4]))


class TestConstructors:
    def test_from_data_exact_uniques(self):
        dist = ValueDistribution.from_data([1.0, 1.0, 2.0, 3.0], bins=None)
        np.testing.assert_array_equal(dist.values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(dist.probabilities, [0.5, 0.25, 0.25])

    def test_from_data_binned(self, rng):
        column = rng.normal(size=10_000)
        dist = ValueDistribution.from_data(column, bins=32)
        assert len(dist) <= 32
        assert dist.mean() == pytest.approx(column.mean(), abs=0.05)

    def test_from_data_empty_rejected(self):
        with pytest.raises(DistributionError):
            ValueDistribution.from_data([])

    def test_uniform_grid(self):
        dist = ValueDistribution.uniform_grid(0.0, 1.0, 5)
        np.testing.assert_allclose(dist.probabilities, 0.2)
        assert dist.support == (0.0, 1.0)

    def test_case_study_matches_paper(self):
        dist = ValueDistribution.case_study()
        np.testing.assert_allclose(dist.values, np.linspace(0.1, 1.0, 10))
        assert dist.mean() == pytest.approx(0.55)

    def test_point_mass(self):
        dist = ValueDistribution.point_mass(0.3)
        assert dist.mean() == 0.3
        assert dist.variance() == 0.0


class TestQueries:
    def test_expect_linearity(self):
        dist = ValueDistribution.case_study()
        assert dist.expect(lambda v: 2.0 * v) == pytest.approx(2.0 * dist.mean())

    def test_variance_against_numpy(self):
        dist = ValueDistribution.from_data([0.0, 0.0, 1.0, 2.0], bins=None)
        assert dist.variance() == pytest.approx(np.var([0, 0, 1, 2]))

    def test_sample_distribution(self, rng):
        dist = ValueDistribution.case_study()
        sample = dist.sample(100_000, rng)
        assert sample.mean() == pytest.approx(0.55, abs=0.01)
        assert set(np.round(np.unique(sample), 10)) <= set(
            np.round(dist.values, 10)
        )

    def test_rescale(self):
        dist = ValueDistribution.case_study().rescale(2.0, -1.0)
        assert dist.mean() == pytest.approx(2.0 * 0.55 - 1.0)
        assert dist.support == (pytest.approx(-0.8), pytest.approx(1.0))

    def test_rescale_zero_slope_rejected(self):
        with pytest.raises(DistributionError):
            ValueDistribution.case_study().rescale(0.0, 0.0)


@given(
    values=st.lists(
        st.floats(min_value=-1, max_value=1, allow_nan=False),
        min_size=1,
        max_size=30,
        unique=True,
    ),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_property_empirical_distribution_roundtrip(values, seed):
    """from_data(bins=None) reproduces exactly the empirical frequencies."""
    rng = np.random.default_rng(seed)
    column = rng.choice(np.asarray(values), size=200)
    dist = ValueDistribution.from_data(column, bins=None)
    assert dist.probabilities.sum() == pytest.approx(1.0)
    assert dist.mean() == pytest.approx(column.mean(), abs=1e-9)
