"""Tests for the Theorem 2 Berry–Esseen machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.framework import (
    ValueDistribution,
    berry_esseen_bound,
    convergence_curve,
)
from repro.mechanisms import (
    DuchiMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
)


class TestBound:
    def test_laplace_closed_form(self):
        # rho = 6 lambda^3, s = sqrt(2) lambda; lambdas cancel.
        result = berry_esseen_bound(LaplaceMechanism(), 1.0, 1_000)
        s3 = 2.0 * math.sqrt(2.0)
        expected = 0.33554 * (6.0 + 0.415 * s3) / (s3 * math.sqrt(1_000))
        assert result.bound == pytest.approx(expected)

    def test_independent_of_epsilon_for_laplace(self):
        a = berry_esseen_bound(LaplaceMechanism(), 0.3, 500).bound
        b = berry_esseen_bound(LaplaceMechanism(), 3.0, 500).bound
        assert a == pytest.approx(b)

    def test_decays_as_inverse_sqrt(self):
        base = berry_esseen_bound(LaplaceMechanism(), 1.0, 100)
        assert base.at_reports(400).bound == pytest.approx(base.bound / 2.0)

    def test_at_reports_validates(self):
        base = berry_esseen_bound(LaplaceMechanism(), 1.0, 100)
        with pytest.raises(ValueError):
            base.at_reports(0)

    def test_bounded_mechanism_requires_population(self):
        with pytest.raises(ValueError):
            berry_esseen_bound(PiecewiseMechanism(), 0.5, 100)

    def test_bounded_mechanism_with_population(self, rng):
        result = berry_esseen_bound(
            DuchiMechanism(),
            0.5,
            1_000,
            ValueDistribution.case_study().rescale(2.0, -1.1),
            rng=rng,
        )
        assert 0.0 < result.bound < 1.0
        assert result.per_report_std > 0
        assert result.third_moment > 0

    def test_invalid_reports(self):
        with pytest.raises(ValueError):
            berry_esseen_bound(LaplaceMechanism(), 1.0, 0)

    def test_paper_worked_example_reading(self):
        # The paper reports ~1.57% at r=1000, computed with rho = 3 lambda^3
        # (a typo: the true Laplace moment is 6 lambda^3). Check we can
        # reproduce their arithmetic under their reading.
        s3 = 2.0 * math.sqrt(2.0)
        paper = 0.33554 * (3.0 + 0.415 * s3) / (s3 * math.sqrt(1_000))
        assert paper == pytest.approx(0.0157, abs=2e-4)


class TestCurve:
    def test_matches_pointwise_bounds(self):
        counts = [100, 400, 1600]
        curve = convergence_curve(LaplaceMechanism(), 1.0, counts)
        for r, bound in zip(counts, curve):
            direct = berry_esseen_bound(LaplaceMechanism(), 1.0, r).bound
            assert bound == pytest.approx(direct)

    def test_empty_counts(self):
        assert convergence_curve(LaplaceMechanism(), 1.0, []).size == 0

    def test_monotone_decreasing(self):
        curve = convergence_curve(LaplaceMechanism(), 1.0, [10, 100, 1000])
        assert np.all(np.diff(curve) < 0)

    def test_empirical_distance_below_bound(self, rng):
        """The actual KS distance sits below the Theorem 2 bound."""
        from repro.experiments import (
            empirical_cdf_distance,
            simulate_dimension_deviations,
        )
        from repro.framework import build_deviation_model

        mech = LaplaceMechanism()
        eps, reports, repeats = 1.0, 400, 400
        column = rng.uniform(-1, 1, reports)
        deviations = simulate_dimension_deviations(
            mech, column, eps, 1.0, repeats, rng
        )
        model = build_deviation_model(mech, eps, reports)
        distance = empirical_cdf_distance(deviations, model.delta, model.sigma)
        bound = berry_esseen_bound(mech, eps, reports).bound
        dkw = math.sqrt(math.log(2.0 / 1e-3) / (2.0 * repeats))
        assert distance <= bound + dkw
