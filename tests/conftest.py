"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import available_mechanisms, get_mechanism

#: Mechanisms operating on the standard [-1, 1] domain (kept in sync with
#: tests/testutil.py, which test modules import directly).
STANDARD_MECHANISMS = ("laplace", "staircase", "duchi", "piecewise", "hybrid",
                       "square_wave")

#: All registered mechanisms (includes the unit-domain square wave).
ALL_MECHANISMS = tuple(sorted(available_mechanisms()))


@pytest.fixture()
def rng():
    """Deterministic generator, fresh per test."""
    return np.random.default_rng(20220119)


@pytest.fixture(params=ALL_MECHANISMS)
def any_mechanism(request):
    """Parametrized fixture yielding every registered mechanism."""
    return get_mechanism(request.param)


@pytest.fixture(params=STANDARD_MECHANISMS)
def standard_mechanism(request):
    """Parametrized fixture over mechanisms on the [-1, 1] domain."""
    return get_mechanism(request.param)
