"""Tests for the Norm-Sub simplex projection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import DimensionError
from repro.hdr4me import norm_sub_frequencies

NOISY_FREQ = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=64),
    elements=st.floats(min_value=-1.0, max_value=2.0, allow_nan=False),
)


class TestBasics:
    def test_already_on_simplex_unchanged(self):
        freq = np.array([0.25, 0.5, 0.25])
        np.testing.assert_allclose(norm_sub_frequencies(freq), freq, atol=1e-12)

    def test_worked_example(self):
        out = norm_sub_frequencies(np.array([0.5, 0.4, 0.3, -0.1]))
        assert out.sum() == pytest.approx(1.0)
        assert out[3] == 0.0
        # A uniform offset is removed from the surviving entries.
        np.testing.assert_allclose(np.diff(out[:3]), [-0.1, -0.1], atol=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            norm_sub_frequencies(np.array([]))

    def test_single_entry(self):
        np.testing.assert_allclose(norm_sub_frequencies(np.array([0.2])), [1.0])

    def test_preserves_order_better_than_rescale(self):
        # Norm-sub removes noise additively, so dominant frequencies keep
        # their absolute gap; clip-and-rescale shrinks them.
        noisy = np.array([0.6, 0.3, 0.2, 0.1])
        out = norm_sub_frequencies(noisy)
        assert out[0] - out[1] == pytest.approx(0.3, abs=1e-12)


@given(freq=NOISY_FREQ)
@settings(max_examples=80, deadline=None)
def test_property_output_on_simplex(freq):
    out = norm_sub_frequencies(freq)
    assert out.min() >= 0.0
    assert out.sum() == pytest.approx(1.0, abs=1e-9)


@given(freq=NOISY_FREQ)
@settings(max_examples=80, deadline=None)
def test_property_order_preserved(freq):
    out = norm_sub_frequencies(freq)
    order_in = np.argsort(freq, kind="stable")
    projected = out[order_in]
    assert np.all(np.diff(projected) >= -1e-12)


@given(freq=NOISY_FREQ)
@settings(max_examples=40, deadline=None)
def test_property_euclidean_projection(freq):
    """No simplex point found by local perturbation is closer to the input."""
    out = norm_sub_frequencies(freq)
    base = np.sum((out - freq) ** 2)
    if freq.size < 2:
        return
    for i in range(min(freq.size, 5)):
        for j in range(min(freq.size, 5)):
            if i == j:
                continue
            candidate = out.copy()
            shift = min(0.01, candidate[i])
            candidate[i] -= shift
            candidate[j] += shift
            assert np.sum((candidate - freq) ** 2) >= base - 1e-9
