"""Sanity tests of the public package surface."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.analysis",
    "repro.datasets",
    "repro.experiments",
    "repro.framework",
    "repro.hdr4me",
    "repro.mechanisms",
    "repro.protocol",
    "repro.session",
    "repro.storage",
    "repro.transport",
    "repro.wire",
]


class TestImports:
    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_subpackage_imports(self, module):
        importlib.import_module(module)

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", ()):
            assert hasattr(mod, name), "%s.%s" % (module, name)

    def test_exceptions_form_hierarchy(self):
        from repro import (
            AggregationError,
            CalibrationError,
            DimensionError,
            DistributionError,
            DomainError,
            PrivacyBudgetError,
            ReproError,
        )

        for exc in (
            AggregationError,
            CalibrationError,
            DimensionError,
            DistributionError,
            DomainError,
            PrivacyBudgetError,
        ):
            assert issubclass(exc, ReproError)

    def test_quickstart_docstring_runs(self):
        """The usage example in the package docstring must stay valid."""
        import numpy as np

        from repro import (
            CategoricalAttribute,
            LDPClient,
            LDPServer,
            NumericAttribute,
            Recalibrator,
            Schema,
        )

        schema = Schema(
            [
                NumericAttribute("screen_time"),
                CategoricalAttribute("top_app", n_categories=16),
            ]
        )
        client = LDPClient(schema, epsilon=1.0, protocols="piecewise")
        server = LDPServer(schema, epsilon=1.0, protocols="piecewise")
        gen = np.random.default_rng(0)
        records = np.column_stack(
            [gen.uniform(-1, 1, 5_000), gen.integers(0, 16, 5_000)]
        )
        for batch in np.array_split(records, 10):
            server.ingest(client.report_batch(batch, rng=gen))
        estimate = server.estimate(postprocess=Recalibrator(norm="l1"))
        assert np.isfinite(estimate["screen_time"].scalar)
        assert estimate.frequencies("top_app").shape == (16,)

    def test_legacy_pipeline_facade_runs(self):
        """The pre-session entry points keep their documented flow."""
        from repro import (
            MeanEstimationPipeline,
            Recalibrator,
            gaussian_dataset,
            get_mechanism,
            mse,
            true_mean,
        )

        data = gaussian_dataset(users=2_000, dimensions=20, rng=0)
        pipeline = MeanEstimationPipeline(
            get_mechanism("piecewise"), epsilon=0.5, dimensions=20
        )
        result = pipeline.run(data, rng=1)
        model = pipeline.deviation_model(users=result.users, data=data)
        enhanced = Recalibrator(norm="l1").recalibrate(result.theta_hat, model)
        assert mse(enhanced.theta_star, true_mean(data)) <= mse(
            result.theta_hat, true_mean(data)
        )

    def test_public_items_have_docstrings(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__"
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, undocumented
