"""Tests for padding-and-sampling set-valued collection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionError, DomainError
from repro.hdr4me import Recalibrator
from repro.protocol import PaddingAndSampling, item_frequencies


def _make_sets(rng, users, n_items, max_size, popular=None):
    sets = []
    for _ in range(users):
        size = int(rng.integers(1, max_size + 1))
        items = list(rng.choice(n_items, size=size, replace=False))
        if popular is not None and rng.random() < 0.5:
            items.append(popular)
        sets.append(items)
    return sets


class TestGroundTruth:
    def test_item_frequencies_dedupes(self):
        freq = item_frequencies([[0, 0, 1], [1]], 3)
        np.testing.assert_allclose(freq, [0.5, 1.0, 0.0])

    def test_empty_user_set_ok(self):
        freq = item_frequencies([[], [0]], 2)
        np.testing.assert_allclose(freq, [0.5, 0.0])


class TestSampling:
    def test_labels_in_extended_domain(self, rng):
        ps = PaddingAndSampling(epsilon=2.0, n_items=10, padding_length=3)
        sets = _make_sets(rng, 500, 10, 3)
        labels = ps.sample_items(sets, rng)
        assert labels.min() >= 0
        assert labels.max() < 10 + 3

    def test_singleton_sets_sampled_at_rate_one_over_l(self, rng):
        # A set {7} padded to L: item 7 is reported with prob 1/L.
        ps = PaddingAndSampling(epsilon=2.0, n_items=10, padding_length=4)
        sets = [[7]] * 20_000
        labels = ps.sample_items(sets, rng)
        assert np.mean(labels == 7) == pytest.approx(0.25, abs=0.01)

    def test_oversized_sets_truncated(self, rng):
        ps = PaddingAndSampling(epsilon=2.0, n_items=10, padding_length=2)
        labels = ps.sample_items([list(range(10))] * 100, rng)
        # Every slot holds a real item (set size exceeds L), none dummy.
        assert labels.max() < 10

    def test_item_domain_validated(self, rng):
        ps = PaddingAndSampling(epsilon=2.0, n_items=5, padding_length=2)
        with pytest.raises(DomainError):
            ps.sample_items([[5]], rng)

    def test_configuration_validated(self):
        with pytest.raises(DimensionError):
            PaddingAndSampling(epsilon=1.0, n_items=0, padding_length=2)
        with pytest.raises(DimensionError):
            PaddingAndSampling(epsilon=1.0, n_items=5, padding_length=0)


class TestEstimation:
    def test_recovers_frequencies(self, rng):
        n_items, users = 16, 40_000
        sets = _make_sets(rng, users, n_items, 3)
        truth = item_frequencies(sets, n_items)
        ps = PaddingAndSampling(epsilon=3.0, n_items=n_items, padding_length=4)
        estimate = ps.run(sets, rng)
        np.testing.assert_allclose(estimate.best(), truth, atol=0.05)

    def test_popular_item_detected(self, rng):
        n_items = 12
        sets = _make_sets(rng, 30_000, n_items, 2, popular=5)
        truth = item_frequencies(sets, n_items)
        ps = PaddingAndSampling(epsilon=3.0, n_items=n_items, padding_length=3)
        estimate = ps.run(sets, rng)
        assert np.argmax(estimate.best()) == np.argmax(truth) == 5

    def test_oue_backend(self, rng):
        sets = _make_sets(rng, 20_000, 32, 3)
        ps = PaddingAndSampling(
            epsilon=2.0, n_items=32, padding_length=4, oracle="oue"
        )
        estimate = ps.run(sets, rng)
        truth = item_frequencies(sets, 32)
        np.testing.assert_allclose(estimate.best(), truth, atol=0.08)

    def test_with_recalibration(self, rng):
        sets = _make_sets(rng, 20_000, 16, 3)
        ps = PaddingAndSampling(
            epsilon=2.0,
            n_items=16,
            padding_length=4,
            recalibrator=Recalibrator(norm="l2"),
        )
        estimate = ps.run(sets, rng)
        assert estimate.enhanced is not None
        assert np.all(
            np.abs(estimate.enhanced) <= np.abs(estimate.frequencies) + 1e-12
        )

    def test_empty_input_rejected(self, rng):
        ps = PaddingAndSampling(epsilon=1.0, n_items=4, padding_length=2)
        with pytest.raises(DimensionError):
            ps.run([], rng)

    def test_truncation_bias_shrinks_with_padding(self, rng):
        # Large sets + tiny L -> truncation underestimates; growing L
        # toward the true set size removes the bias.
        n_items, users = 10, 40_000
        sets = [list(rng.choice(n_items, size=5, replace=False))
                for _ in range(users)]
        truth = item_frequencies(sets, n_items)
        errors = {}
        for padding in (1, 5):
            ps = PaddingAndSampling(
                epsilon=4.0, n_items=n_items, padding_length=padding
            )
            estimate = ps.run(sets, rng)
            errors[padding] = np.abs(estimate.best() - truth).mean()
        assert errors[5] < errors[1]
