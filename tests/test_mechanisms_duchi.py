"""Tests for Duchi et al.'s binary mechanism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DomainError
from repro.mechanisms import DuchiMechanism, monte_carlo_moments


class TestOutputs:
    def test_outputs_are_binary(self, rng):
        mech = DuchiMechanism()
        out = mech.perturb(rng.uniform(-1, 1, 10_000), 1.0, rng)
        big_c = mech.magnitude(1.0)
        assert set(np.round(np.unique(out), 10)) == {
            round(-big_c, 10),
            round(big_c, 10),
        }

    def test_magnitude_formula(self):
        assert DuchiMechanism.magnitude(1.0) == pytest.approx(
            (np.e + 1) / (np.e - 1)
        )

    def test_magnitude_decreases_with_eps(self):
        mags = [DuchiMechanism.magnitude(e) for e in (0.2, 0.5, 1.0, 3.0)]
        assert all(a > b for a, b in zip(mags, mags[1:]))

    def test_rejects_out_of_domain(self, rng):
        with pytest.raises(DomainError):
            DuchiMechanism().perturb(np.array([1.2]), 1.0, rng)


class TestMoments:
    @pytest.mark.parametrize("t", [-0.9, 0.0, 0.6])
    def test_unbiased(self, t, rng):
        bias_mc, _ = monte_carlo_moments(DuchiMechanism(), t, 1.0, 300_000, rng)
        assert bias_mc == pytest.approx(0.0, abs=0.02)

    def test_variance_formula(self, rng):
        mech = DuchiMechanism()
        _, var_mc = monte_carlo_moments(mech, 0.4, 1.0, 300_000, rng)
        assert var_mc == pytest.approx(
            mech.conditional_variance(np.array([0.4]), 1.0)[0], rel=0.02
        )

    def test_third_moment_exact_two_point_sum(self, rng):
        mech = DuchiMechanism()
        t, eps = 0.3, 1.0
        analytic = mech.abs_third_central_moment(np.array([t]), eps)[0]
        draws = mech.perturb(np.full(300_000, t), eps, rng)
        empirical = np.mean(np.abs(draws - t) ** 3)
        assert empirical == pytest.approx(analytic, rel=0.02)


class TestPrivacy:
    def test_ldp_ratio_exact(self):
        # For a binary output the LDP constraint is a ratio of pmfs at the
        # two extreme inputs; it must be exactly exp(eps) at the boundary.
        eps = 0.9
        p_plus_1 = 0.5 + 1.0 * np.expm1(eps) / (2 * (np.exp(eps) + 1))
        p_minus_1 = 0.5 - 1.0 * np.expm1(eps) / (2 * (np.exp(eps) + 1))
        assert p_plus_1 / p_minus_1 == pytest.approx(np.exp(eps))

    def test_report_probability_monotone_in_value(self, rng):
        mech = DuchiMechanism()
        eps = 1.0
        big_c = mech.magnitude(eps)
        counts = []
        for t in (-1.0, 0.0, 1.0):
            out = mech.perturb(np.full(100_000, t), eps, rng)
            counts.append(np.mean(out == big_c))
        assert counts[0] < counts[1] < counts[2]
