"""Tests for :mod:`repro.mechanisms.base`: validation, the ABC contract,
and the affine domain adapter."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import DomainError, PrivacyBudgetError
from repro.mechanisms import (
    AffineTransformedMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
    monte_carlo_moments,
    validate_epsilon,
    validate_values,
)
from testutil import interior_value


class TestValidateEpsilon:
    @pytest.mark.parametrize("epsilon", [0.001, 0.1, 1, 10, 5000])
    def test_accepts_positive(self, epsilon):
        assert validate_epsilon(epsilon) == float(epsilon)

    @pytest.mark.parametrize("epsilon", [0, -1, float("nan"), float("inf")])
    def test_rejects_invalid(self, epsilon):
        with pytest.raises(PrivacyBudgetError):
            validate_epsilon(epsilon)


class TestValidateValues:
    def test_clips_roundoff(self):
        out = validate_values(np.array([1.0 + 1e-12, -1.0 - 1e-12]), (-1, 1))
        assert out.max() <= 1.0
        assert out.min() >= -1.0

    def test_rejects_out_of_domain(self):
        with pytest.raises(DomainError):
            validate_values(np.array([1.5]), (-1, 1))

    def test_returns_float64(self):
        out = validate_values([0, 1], (-1, 1))
        assert out.dtype == np.float64

    def test_empty_ok(self):
        assert validate_values(np.empty(0), (-1, 1)).size == 0


class TestMechanismContract:
    def test_perturb_preserves_shape(self, any_mechanism, rng):
        lo, hi = any_mechanism.input_domain
        values = rng.uniform(lo, hi, size=(7, 5))
        out = any_mechanism.perturb(values, 1.0, rng)
        assert out.shape == (7, 5)

    def test_perturb_rejects_bad_epsilon(self, any_mechanism, rng):
        with pytest.raises(PrivacyBudgetError):
            any_mechanism.perturb(np.zeros(3) + interior_value(any_mechanism),
                                  -1.0, rng)

    def test_bounded_outputs_stay_in_support(self, any_mechanism, rng):
        if not any_mechanism.bounded:
            pytest.skip("unbounded mechanism")
        lo, hi = any_mechanism.input_domain
        values = rng.uniform(lo, hi, size=5000)
        out = any_mechanism.perturb(values, 0.8, rng)
        support = any_mechanism.output_support(0.8)
        assert out.min() >= support[0] - 1e-9
        assert out.max() <= support[1] + 1e-9

    def test_unbounded_support_is_infinite(self, any_mechanism):
        if any_mechanism.bounded:
            pytest.skip("bounded mechanism")
        lo, hi = any_mechanism.output_support(1.0)
        assert lo == -math.inf and hi == math.inf

    def test_second_moment_consistent(self, any_mechanism):
        values = np.array([interior_value(any_mechanism)])
        eps = 1.3
        mean = values + any_mechanism.conditional_bias(values, eps)
        second = any_mechanism.conditional_second_moment(values, eps)
        variance = any_mechanism.conditional_variance(values, eps)
        np.testing.assert_allclose(second, variance + mean**2, rtol=1e-12)

    def test_deterministic_bias_unbiased_mechanisms(self, any_mechanism):
        if any_mechanism.name.startswith("square_wave"):
            assert any_mechanism.deterministic_bias(1.0) is None
        else:
            assert any_mechanism.deterministic_bias(1.0) == pytest.approx(0.0)


class TestAffineTransformedMechanism:
    def test_roundtrip_moments(self, rng):
        inner = SquareWaveMechanism()
        outer = AffineTransformedMechanism(inner, (-1.0, 1.0))
        t_outer = 0.2  # maps to u = 0.6
        bias_inner = inner.conditional_bias(np.array([0.6]), 1.0)[0]
        bias_outer = outer.conditional_bias(np.array([t_outer]), 1.0)[0]
        assert bias_outer == pytest.approx(2.0 * bias_inner)
        var_inner = inner.conditional_variance(np.array([0.6]), 1.0)[0]
        var_outer = outer.conditional_variance(np.array([t_outer]), 1.0)[0]
        assert var_outer == pytest.approx(4.0 * var_inner)

    def test_monte_carlo_agrees(self, rng):
        outer = AffineTransformedMechanism(SquareWaveMechanism(), (-1.0, 1.0))
        bias_mc, var_mc = monte_carlo_moments(outer, -0.4, 0.7, 150_000, rng)
        bias_an = outer.conditional_bias(np.array([-0.4]), 0.7)[0]
        var_an = outer.conditional_variance(np.array([-0.4]), 0.7)[0]
        assert bias_mc == pytest.approx(bias_an, abs=0.01)
        assert var_mc == pytest.approx(var_an, rel=0.05)

    def test_output_support_mapped(self):
        outer = AffineTransformedMechanism(SquareWaveMechanism(), (-1.0, 1.0))
        b = SquareWaveMechanism.half_width(1.0)
        lo, hi = outer.output_support(1.0)
        assert lo == pytest.approx(-1.0 - 2.0 * b)
        assert hi == pytest.approx(1.0 + 2.0 * b)

    def test_identity_wrap_of_standard_domain(self, rng):
        outer = AffineTransformedMechanism(PiecewiseMechanism(), (-1.0, 1.0))
        values = rng.uniform(-1, 1, 100)
        np.testing.assert_allclose(
            outer.conditional_variance(values, 1.0),
            PiecewiseMechanism().conditional_variance(values, 1.0),
        )

    def test_degenerate_domain_rejected(self):
        with pytest.raises(DomainError):
            AffineTransformedMechanism(LaplaceMechanism(), (1.0, 1.0))

    def test_rejects_values_outside_outer_domain(self, rng):
        outer = AffineTransformedMechanism(SquareWaveMechanism(), (0.0, 10.0))
        with pytest.raises(DomainError):
            outer.perturb(np.array([11.0]), 1.0, rng)

    def test_third_moment_scales_cubically(self, rng):
        inner = SquareWaveMechanism()
        outer = AffineTransformedMechanism(inner, (-1.0, 1.0))
        rho_inner = inner.abs_third_central_moment(
            np.array([0.6]), 1.0, rng=1, samples=50_000
        )[0]
        rho_outer = outer.abs_third_central_moment(
            np.array([0.2]), 1.0, rng=1, samples=50_000
        )[0]
        assert rho_outer == pytest.approx(8.0 * rho_inner, rel=0.1)
