"""Tests for the analytical mechanism benchmark (Table II machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework import ValueDistribution, benchmark_mechanisms
from repro.mechanisms import (
    LaplaceMechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
)


@pytest.fixture()
def table():
    return benchmark_mechanisms(
        [PiecewiseMechanism(), SquareWaveMechanism()],
        epsilon_per_dim=0.001,
        reports=10_000,
        suprema=(0.001, 0.01, 0.05, 0.1),
        default_population=ValueDistribution.case_study(),
    )


class TestTable:
    def test_row_per_mechanism(self, table):
        assert [row.mechanism for row in table.rows] == [
            "piecewise",
            "square_wave_unit",
        ]

    def test_probabilities_monotone_in_suprema(self, table):
        for row in table.rows:
            assert np.all(np.diff(row.probabilities) >= 0)

    def test_paper_table2_winners(self, table):
        assert table.winner_at(0.001) == "piecewise"
        assert table.winner_at(0.01) == "piecewise"
        assert table.winner_at(0.05) == "square_wave_unit"
        assert table.winner_at(0.1) == "square_wave_unit"

    def test_piecewise_cells_match_paper(self, table):
        row = table.rows[0]
        np.testing.assert_allclose(
            row.probabilities[:2], [3.46e-5, 3.46e-4], rtol=0.02
        )

    def test_as_dict_roundtrip(self, table):
        mapping = table.as_dict()
        assert set(mapping) == {"piecewise", "square_wave_unit"}
        assert len(mapping["piecewise"]) == 4

    def test_format_contains_all_rows(self, table):
        text = table.format()
        assert "piecewise" in text and "square_wave_unit" in text
        assert text.count("\n") == 2

    def test_best_at_interpolates(self, table):
        row = table.rows[0]
        mid = row.best_at(0.005)
        assert row.probabilities[0] < mid < row.probabilities[1]


class TestValidation:
    def test_empty_suprema_rejected(self):
        with pytest.raises(ValueError):
            benchmark_mechanisms(
                [LaplaceMechanism()], 0.1, 100, suprema=()
            )

    def test_unbounded_mechanism_without_population(self):
        table = benchmark_mechanisms(
            [LaplaceMechanism()], 0.1, 100, suprema=(0.5, 1.0)
        )
        assert len(table.rows) == 1

    def test_per_mechanism_population_override(self):
        override = ValueDistribution.point_mass(0.9)
        table = benchmark_mechanisms(
            [PiecewiseMechanism()],
            0.1,
            100,
            suprema=(1.0,),
            populations={"piecewise": override},
        )
        # Variance at t=0.9 exceeds variance at the case-study mix, so the
        # probability of staying within xi is lower than with the default.
        default = benchmark_mechanisms(
            [PiecewiseMechanism()],
            0.1,
            100,
            suprema=(1.0,),
            default_population=ValueDistribution.point_mass(0.0),
        )
        assert (
            table.rows[0].probabilities[0] < default.rows[0].probabilities[0]
        )
