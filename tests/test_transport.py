"""Tests for the asyncio socket transport (gateway + sender).

The load-bearing invariant (ISSUE 5 acceptance): a localhost socket
round — multiple concurrent clients, sharded consumers, mid-round
backpressure — produces estimates bit-identical to one-shot in-process
ingestion of the same report multiset. Plus the boundary hardening:
contract mismatches are rejected at the handshake (before any payload
bytes flow), malformed frames are answered with typed errors and never
touch aggregation state, and zero-user heartbeat frames are valid
no-ops end to end.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import (
    AggregationError,
    ContractMismatchError,
    DimensionError,
    TransportError,
    WireFormatError,
)
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    ReportBatch,
    Schema,
    ShardedServer,
)
from repro.transport import (
    STATUS_OK,
    TRANSPORT_MAGIC,
    TRANSPORT_VERSION,
    AsyncReportSender,
    CollectionGateway,
    serve_collection,
)
from repro.transport.framing import HELLO, HELLO_REPLY, SENDER_ID_SIZE, read_status

SCHEMA = Schema(
    [
        NumericAttribute("a"),
        NumericAttribute("b"),
        CategoricalAttribute("c", n_categories=5),
    ]
)
SPEC = {"c": "oue"}
EPSILON = 2.0


def _contract():
    return LDPClient(SCHEMA, EPSILON, protocols=SPEC).contract


def _frames(seed, users=240, batches=3):
    gen = np.random.default_rng(seed)
    records = np.column_stack(
        [
            gen.uniform(-1, 1, users),
            gen.uniform(-1, 1, users),
            gen.integers(0, 5, users),
        ]
    )
    client = LDPClient(SCHEMA, EPSILON, protocols=SPEC)
    return [
        client.report_encoded(chunk, gen)
        for chunk in np.array_split(records, batches)
    ]


def _reference(frame_lists):
    server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
    for frames in frame_lists:
        for frame in frames:
            server.ingest_encoded(frame)
    return server.estimate()


def _assert_estimates_equal(a, b):
    assert a.users == b.users
    for x, y in zip(a.attributes, b.attributes):
        assert x.reports == y.reports, x.name
        assert np.array_equal(x.raw, y.raw), x.name


async def _gateway(shards=2, queue_depth=2, **kwargs):
    server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=shards)
    return await serve_collection(server, "127.0.0.1", 0, queue_depth=queue_depth, **kwargs)


class TestHandshake:
    def test_contract_mismatch_rejected_before_any_payload(self):
        """Acceptance: a misconfigured sender never ships a report."""

        async def scenario():
            gateway = await _gateway()
            rogue = LDPClient(SCHEMA, epsilon=9.0, protocols=SPEC)
            with pytest.raises(ContractMismatchError, match="contract"):
                await AsyncReportSender.connect(
                    "127.0.0.1", gateway.port, rogue
                )
            stats = (
                gateway.handshakes_rejected,
                gateway.frames_accepted,
                gateway.users_accepted,
            )
            await gateway.stop()
            return stats

        rejected, accepted, users = asyncio.run(scenario())
        assert rejected == 1
        assert accepted == 0
        assert users == 0

    def test_client_requires_a_contract(self):
        async def scenario():
            with pytest.raises(TransportError, match="CollectionContract"):
                await AsyncReportSender.connect("127.0.0.1", 1, "nope")

        asyncio.run(scenario())

    def test_bad_magic_answered_and_closed(self):
        async def scenario():
            gateway = await _gateway()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            writer.write(b"X" * HELLO.size)
            await writer.drain()
            magic, version, digest, resume = HELLO_REPLY.unpack(
                await reader.readexactly(HELLO_REPLY.size)
            )
            status, message = await read_status(reader)
            writer.close()
            await gateway.stop()
            return magic, version, status, message

        magic, version, status, message = asyncio.run(scenario())
        assert magic == TRANSPORT_MAGIC
        assert version == TRANSPORT_VERSION
        assert status != STATUS_OK
        assert "magic" in message

    def test_version_mismatch_rejected(self):
        async def scenario():
            gateway = await _gateway()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            writer.write(
                HELLO.pack(
                    TRANSPORT_MAGIC,
                    99,
                    _contract().digest,
                    b"\x01" * SENDER_ID_SIZE,
                )
            )
            await writer.drain()
            await reader.readexactly(HELLO_REPLY.size)
            status, message = await read_status(reader)
            writer.close()
            rejected = gateway.handshakes_rejected
            await gateway.stop()
            return status, message, rejected

        status, message, rejected = asyncio.run(scenario())
        assert status != STATUS_OK
        assert "version" in message
        assert rejected == 1

    def test_probe_connection_is_harmless(self):
        """A connect-and-close scan leaves the gateway serving."""

        async def scenario():
            gateway = await _gateway()
            _, writer = await asyncio.open_connection("127.0.0.1", gateway.port)
            writer.close()
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with sender:
                await sender.send_encoded(_frames(0, users=30, batches=1)[0])
            await gateway.stop()
            return gateway.frames_accepted

        assert asyncio.run(scenario()) == 1


class TestSocketRound:
    def test_concurrent_round_is_bit_identical_to_in_process(self):
        """Acceptance: sockets + shards + backpressure change nothing."""

        async def scenario():
            # queue_depth=1 over 3 shards: producers outnumber queue
            # slots, so senders stall on un-acked frames mid-round —
            # the explicit backpressure path, not just the happy path.
            gateway = await _gateway(shards=3, queue_depth=1)
            contract = _contract()

            async def one_client(seed):
                sender = await AsyncReportSender.connect(
                    "127.0.0.1", gateway.port, contract
                )
                async with sender:
                    for frame in _frames(seed):
                        await sender.send_encoded(frame)
                    await sender.heartbeat()
                return sender.frames_sent

            sent = await asyncio.gather(*(one_client(s) for s in (1, 2, 3, 4)))
            await gateway.stop()
            return gateway, sent

        gateway, sent = asyncio.run(scenario())
        assert sent == [4, 4, 4, 4]  # 3 frames + 1 heartbeat each
        assert gateway.heartbeats == 4
        _assert_estimates_equal(
            gateway.estimate(), _reference([_frames(s) for s in (1, 2, 3, 4)])
        )
        # every shard consumer actually participated
        assert all(shard.users > 0 for shard in gateway.server.shards)

    def test_zero_user_heartbeats_are_noops(self):
        """Satellite: empty frames flush through without moving estimates."""

        async def scenario(heartbeats):
            gateway = await _gateway()
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with sender:
                for index, frame in enumerate(_frames(7)):
                    if heartbeats:
                        await sender.heartbeat()
                    await sender.send_encoded(frame)
                if heartbeats:
                    await sender.heartbeat()
            await gateway.stop()
            return gateway

        quiet = asyncio.run(scenario(False))
        chatty = asyncio.run(scenario(True))
        assert chatty.heartbeats == 4
        assert chatty.users_accepted == quiet.users_accepted
        _assert_estimates_equal(quiet.estimate(), chatty.estimate())

    def test_heartbeat_alone_leaves_gateway_empty(self):
        async def scenario():
            gateway = await _gateway()
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with sender:
                await sender.heartbeat()
            await gateway.stop()
            return gateway

        gateway = asyncio.run(scenario())
        assert gateway.frames_accepted == 1
        assert gateway.users == 0
        with pytest.raises(AggregationError):
            gateway.estimate()

    def test_mid_round_drain_sees_consistent_prefix(self):
        async def scenario():
            gateway = await _gateway()
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with sender:
                first, second, third = _frames(11)
                await sender.send_encoded(first)
                await gateway.drain()
                mid_users = gateway.users
                mid = gateway.estimate()
                await sender.send_encoded(second)
                await sender.send_encoded(third)
            await gateway.stop()
            return mid_users, mid, gateway

        mid_users, mid, gateway = asyncio.run(scenario())
        assert mid_users == 80
        assert mid.users == 80
        _assert_estimates_equal(gateway.estimate(), _reference([_frames(11)]))


class TestFrameRejection:
    def test_corrupted_frame_raises_and_leaves_state_untouched(self):
        async def scenario():
            gateway = await _gateway()
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            frame = bytearray(_frames(5, users=40, batches=1)[0])
            frame[len(frame) // 2] ^= 0x20
            with pytest.raises(WireFormatError):
                await sender.send_encoded(bytes(frame))
            # the gateway closed that connection; a fresh one still works
            replacement = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with replacement:
                await replacement.send_encoded(_frames(5, users=40, batches=1)[0])
            await gateway.stop()
            return gateway

        gateway = asyncio.run(scenario())
        assert gateway.frames_rejected == 1
        assert gateway.frames_accepted == 1
        _assert_estimates_equal(
            gateway.estimate(), _reference([_frames(5, users=40, batches=1)])
        )

    def test_oversized_frame_rejected_without_allocation(self):
        async def scenario():
            gateway = await _gateway(max_frame_bytes=1024)
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            with pytest.raises(WireFormatError, match="limit"):
                await sender.send_encoded(b"x" * 2048)
            users = gateway.users_accepted
            await gateway.stop()
            return users

        assert asyncio.run(scenario()) == 0

    def test_wrong_contract_frame_after_valid_handshake(self):
        """A forged frame under another contract is caught per-frame too."""

        async def scenario():
            gateway = await _gateway()
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            stranger = LDPClient(SCHEMA, epsilon=9.0, protocols=SPEC)
            forged = stranger.report_encoded(
                np.column_stack(
                    [
                        np.zeros(10),
                        np.zeros(10),
                        np.zeros(10, dtype=np.int64),
                    ]
                ),
                np.random.default_rng(0),
            )
            with pytest.raises(ContractMismatchError):
                await sender.send_encoded(forged)
            users = gateway.users_accepted
            await gateway.stop()
            return users

        assert asyncio.run(scenario()) == 0

    def test_send_after_close_raises(self):
        async def scenario():
            gateway = await _gateway()
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            await sender.close()
            with pytest.raises(TransportError, match="closed"):
                await sender.send_encoded(b"anything")
            await gateway.stop()

        asyncio.run(scenario())


class TestGatewayLifecycle:
    def test_queue_depth_validated(self):
        server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
        with pytest.raises(DimensionError):
            CollectionGateway(server, queue_depth=0)
        # Same bug class as ShardedServer(shards=2.5): no silent int()
        with pytest.raises(DimensionError, match="integer"):
            CollectionGateway(server, queue_depth=2.5)
        with pytest.raises(DimensionError, match="integer"):
            CollectionGateway(server, max_frame_bytes=1e6)

    def test_port_requires_serving(self):
        server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
        gateway = CollectionGateway(server)
        with pytest.raises(TransportError):
            gateway.port

    def test_double_start_rejected(self):
        async def scenario():
            gateway = await _gateway()
            with pytest.raises(TransportError, match="already"):
                await gateway.start()
            await gateway.stop()

        asyncio.run(scenario())

    def test_context_manager_aborts_open_connections(self):
        async def scenario():
            server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
            async with await serve_collection(server, "127.0.0.1", 0) as gateway:
                sender = await AsyncReportSender.connect(
                    "127.0.0.1", gateway.port, _contract()
                )
                await sender.send_encoded(_frames(3, users=20, batches=1)[0])
                # sender left open on purpose: __aexit__ must not hang
            return gateway.frames_accepted

        assert asyncio.run(scenario()) == 1

    def test_connection_arriving_during_stop_is_refused_not_acked(self):
        """Regression: a handler whose first step lands after stop()
        began is in neither _connections nor _writers — it must refuse
        (close before handshake/ack) instead of pumping frames no
        consumer will ever fold."""

        async def scenario():
            gateway = await _gateway()
            port = gateway.port
            # Simulate the race deterministically: stop() has begun (the
            # flag is set) but the listener is still accepting.
            gateway._stopping = True
            with pytest.raises(TransportError, match="handshake"):
                await AsyncReportSender.connect("127.0.0.1", port, _contract())
            gateway._stopping = False
            stats = (gateway.frames_accepted, gateway.users_accepted)
            await gateway.stop()
            return stats

        assert asyncio.run(scenario()) == (0, 0)

    def test_dead_shard_consumer_poisons_gateway_not_estimate(self):
        """Regression: a fold that raises used to kill its consumer
        silently — later frames were acked but never folded, drain()
        hung forever, and estimate() served a partial aggregate."""

        async def scenario():
            gateway = await _gateway(shards=1)
            shard = gateway.server.shards[0]
            frames = _frames(11, users=40, batches=2)

            def broken_fold(users, canonical):
                raise RuntimeError("allocation failed mid-fold")

            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with sender:
                original = shard._fold_validated
                shard._fold_validated = broken_fold
                try:
                    await sender.send_encoded(frames[0])  # acked, fold dies
                    await gateway.drain()  # must NOT hang on the dead shard
                finally:
                    shard._fold_validated = original
                with pytest.raises(TransportError, match="aggregation failed"):
                    await sender.send_encoded(frames[1])
            with pytest.raises(TransportError, match="incomplete"):
                gateway.estimate()
            with pytest.raises(TransportError, match="incomplete"):
                gateway.merged()
            await gateway.stop()  # must not hang either

        asyncio.run(scenario())

    def test_wait_for_users_raises_when_poisoned_mid_wait(self):
        """Satellite: a poisoned gateway used to leave wait_for_users
        sleeping forever — the expected user count can never arrive once
        every frame is refused, so the waiter must be woken and told."""

        async def scenario():
            gateway = await _gateway(shards=1)
            shard = gateway.server.shards[0]
            waiter = asyncio.ensure_future(gateway.wait_for_users(10_000))
            await asyncio.sleep(0)  # the waiter is parked on the event

            def broken_fold(users, canonical):
                raise RuntimeError("allocation failed mid-fold")

            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with sender:
                original = shard._fold_validated
                shard._fold_validated = broken_fold
                try:
                    await sender.send_encoded(
                        _frames(12, users=40, batches=1)[0]
                    )
                    # must raise promptly, not time out
                    with pytest.raises(TransportError, match="incomplete"):
                        await asyncio.wait_for(waiter, timeout=5)
                finally:
                    shard._fold_validated = original
            await gateway.stop()

        asyncio.run(scenario())

    def test_wait_for_users_raises_when_already_poisoned(self):
        """Entering the wait after the fold died must fail fast too."""

        async def scenario():
            gateway = await _gateway(shards=1)
            shard = gateway.server.shards[0]

            def broken_fold(users, canonical):
                raise RuntimeError("allocation failed mid-fold")

            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract()
            )
            async with sender:
                original = shard._fold_validated
                shard._fold_validated = broken_fold
                try:
                    await sender.send_encoded(
                        _frames(12, users=40, batches=1)[0]
                    )
                    await gateway.drain()
                finally:
                    shard._fold_validated = original
            with pytest.raises(TransportError, match="incomplete"):
                await asyncio.wait_for(
                    gateway.wait_for_users(10_000), timeout=5
                )
            await gateway.stop()

        asyncio.run(scenario())

    def test_failed_bind_leaves_no_consumers(self):
        """Regression: a busy port used to leak spawned shard consumers."""

        async def scenario():
            gateway = await _gateway()
            other = CollectionGateway(
                ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
            )
            with pytest.raises(OSError):
                await other.start("127.0.0.1", gateway.port)
            leaked = list(other._consumers)
            await other.start("127.0.0.1", 0)  # retry works, no orphans
            await other.stop()
            await gateway.stop()
            return leaked

        assert asyncio.run(scenario()) == []


class TestEmptyBatchWirePath:
    """Satellite: zero-user frames round-trip the in-process wire path."""

    def test_empty_batch_round_trips_through_codec_and_ingest(self):
        from repro.wire import decode_batch, encode_batch

        contract = _contract()
        empty = ReportBatch(users=0, payloads={}, counts={}, protocols={})
        frame = encode_batch(empty, contract)
        decoded = decode_batch(frame, contract=contract)
        assert decoded.users == 0
        assert dict(decoded.payloads) == {}
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        server.ingest_encoded(frame)
        assert server.users == 0
        with pytest.raises(AggregationError):
            server.estimate()


class TestCliSocketRound:
    """The socket modes of the collection CLI, in one event loop."""

    def test_parse_endpoint(self):
        from repro.experiments.socket_round import parse_endpoint

        assert parse_endpoint("127.0.0.1:80") == ("127.0.0.1", 80)
        assert parse_endpoint("::1:8080") == ("::1", 8080)
        for bad in ("no-port", "host:", "host:abc", ":8080"):
            with pytest.raises(ValueError, match="HOST:PORT"):
                parse_endpoint(bad)

    def test_parse_endpoint_bracketed_ipv6(self):
        """Satellite (ISSUE 8): ``[::1]:9000`` splits on the bracket."""
        from repro.experiments.socket_round import parse_endpoint

        assert parse_endpoint("[::1]:9000") == ("::1", 9000)
        assert parse_endpoint("[fe80::2]:0") == ("fe80::2", 0)
        # A bracketed host keeps its inner colons; an unbracketed IPv6
        # still splits on the *last* colon (backwards compatible).
        assert parse_endpoint("[::1:8080]:9") == ("::1:8080", 9)
        for bad in (":::", "[::1]", "[::1]:", "[::1]:abc", "[]:80", "[::1"):
            with pytest.raises(ValueError, match="PORT"):
                parse_endpoint(bad)

    def test_round_frames_are_deterministic(self):
        from repro.experiments.socket_round import round_frames

        assert round_frames(3, 64, 2) == round_frames(3, 64, 2)

    def test_gateway_round_matches_oneshot_reference(self):
        from repro.experiments.socket_round import (
            format_round_estimate,
            round_contract,
            round_frames,
            round_schema,
            run_oneshot_reference,
        )
        from repro.experiments.socket_round import (
            ROUND_EPSILON,
            ROUND_PROTOCOLS,
        )

        users, batches = 400, 2

        async def scenario():
            server = ShardedServer(
                round_schema(),
                ROUND_EPSILON,
                protocols=ROUND_PROTOCOLS,
                shards=2,
            )
            gateway = await serve_collection(server, "127.0.0.1", 0)
            contract = round_contract()

            async def one_client(seed):
                sender = await AsyncReportSender.connect(
                    "127.0.0.1", gateway.port, contract
                )
                async with sender:
                    for frame in round_frames(seed, users, batches):
                        await sender.send_encoded(frame)
                    await sender.heartbeat()

            await asyncio.gather(one_client(7), one_client(8))
            await gateway.wait_for_users(2 * users)
            await gateway.stop()
            return format_round_estimate(gateway.estimate())

        over_sockets = asyncio.run(scenario())
        in_process = run_oneshot_reference([7, 8], users=users, batches=batches)
        assert over_sockets == in_process

    def test_port_file_is_written(self, tmp_path):
        import threading

        from repro.experiments.socket_round import (
            run_collection_gateway,
            run_collection_sender,
        )

        port_file = tmp_path / "port.txt"
        result = {}

        def serve():
            result["estimate"] = run_collection_gateway(
                "127.0.0.1:0",
                shards=2,
                expect_users=100,
                port_file=port_file,
            )

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            for _ in range(200):
                if port_file.exists() and port_file.read_text().strip():
                    break
                thread.join(timeout=0.05)
            port = int(port_file.read_text())
            summary = run_collection_sender(
                "127.0.0.1:%d" % port, seed=5, users=100, batches=2
            )
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert "sent 2 frames" in summary
        assert result["estimate"].startswith("users 100")
