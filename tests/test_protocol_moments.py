"""Tests for two-phase variance estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.hdr4me import Recalibrator
from repro.mechanisms import SquareWaveMechanism, get_mechanism
from repro.protocol import VarianceEstimationPipeline, true_variance


class TestGroundTruth:
    def test_true_variance(self):
        data = np.array([[0.0, 1.0], [2.0, 1.0]])
        np.testing.assert_allclose(true_variance(data), [1.0, 0.0])

    def test_needs_matrix(self):
        with pytest.raises(DimensionError):
            true_variance(np.zeros(3))


class TestPipeline:
    @pytest.mark.parametrize("name", ["laplace", "piecewise"])
    def test_recovers_variance(self, name, rng):
        data = rng.uniform(-1, 1, size=(30_000, 6))
        pipeline = VarianceEstimationPipeline(
            get_mechanism(name), epsilon=16.0, dimensions=6
        )
        result = pipeline.run(data, rng)
        np.testing.assert_allclose(
            result.variance, true_variance(data), atol=0.08
        )

    def test_mean_also_returned(self, rng):
        data = rng.uniform(-1, 1, size=(30_000, 4))
        pipeline = VarianceEstimationPipeline(
            get_mechanism("piecewise"), epsilon=16.0, dimensions=4
        )
        result = pipeline.run(data, rng)
        np.testing.assert_allclose(result.mean, data.mean(axis=0), atol=0.08)

    def test_variance_never_negative(self, rng):
        # At a tiny budget the raw difference E[t^2] - E[t]^2 is noise
        # and can go negative; the estimate must clip.
        data = rng.uniform(-1, 1, size=(300, 10))
        pipeline = VarianceEstimationPipeline(
            get_mechanism("laplace"), epsilon=0.05, dimensions=10
        )
        result = pipeline.run(data, rng)
        assert np.all(result.variance >= 0.0)

    def test_budget_split_in_half(self):
        pipeline = VarianceEstimationPipeline(
            get_mechanism("laplace"), epsilon=3.0, dimensions=4
        )
        assert pipeline._mean_pipeline.plan.epsilon == pytest.approx(1.5)
        assert pipeline._square_pipeline.plan.epsilon == pytest.approx(1.5)

    def test_domain_checked(self):
        with pytest.raises(DimensionError):
            VarianceEstimationPipeline(
                SquareWaveMechanism(), epsilon=1.0, dimensions=3
            )

    def test_shape_checked(self, rng):
        pipeline = VarianceEstimationPipeline(
            get_mechanism("laplace"), epsilon=1.0, dimensions=3
        )
        with pytest.raises(DimensionError):
            pipeline.run(rng.uniform(-1, 1, size=(10, 4)), rng)

    def test_recalibration_improves_high_dim(self, rng):
        # The headline composition: HDR4ME on both moment vectors beats
        # the raw two-phase estimate in the high-d / small-eps regime.
        d, n, eps = 100, 8_000, 0.4
        data = rng.uniform(-1, 1, size=(n, d))
        truth = true_variance(data)
        plain = VarianceEstimationPipeline(
            get_mechanism("laplace"), epsilon=eps, dimensions=d
        ).run(data, rng=3)
        enhanced = VarianceEstimationPipeline(
            get_mechanism("laplace"),
            epsilon=eps,
            dimensions=d,
            recalibrator=Recalibrator(norm="l2"),
        ).run(data, rng=3)
        plain_mse = np.mean((plain.variance - truth) ** 2)
        enhanced_mse = np.mean((enhanced.variance - truth) ** 2)
        assert enhanced_mse < plain_mse
