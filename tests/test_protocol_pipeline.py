"""Tests for the vectorized end-to-end pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import mse, true_mean
from repro.exceptions import DimensionError
from repro.framework import ValueDistribution
from repro.hdr4me import Recalibrator
from repro.mechanisms import LaplaceMechanism, PiecewiseMechanism, get_mechanism
from repro.protocol import (
    FrequencyEstimationPipeline,
    MeanEstimationPipeline,
    build_populations,
)


class TestMeanPipeline:
    def test_full_reporting_counts(self, rng):
        data = rng.uniform(-1, 1, size=(500, 6))
        pipeline = MeanEstimationPipeline(LaplaceMechanism(), 1.0, dimensions=6)
        result = pipeline.run(data, rng)
        assert np.all(result.aggregation.report_counts == 500)
        assert result.users == 500

    def test_sampled_reporting_counts(self, rng):
        data = rng.uniform(-1, 1, size=(4000, 10))
        pipeline = MeanEstimationPipeline(
            LaplaceMechanism(), 1.0, dimensions=10, sampled_dimensions=3
        )
        result = pipeline.run(data, rng)
        counts = result.aggregation.report_counts
        assert counts.sum() == 4000 * 3
        expected = 4000 * 3 / 10
        assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected))

    def test_recovers_mean_large_budget(self, rng):
        data = rng.uniform(-1, 1, size=(20_000, 5))
        pipeline = MeanEstimationPipeline(PiecewiseMechanism(), 20.0, dimensions=5)
        result = pipeline.run(data, rng)
        np.testing.assert_allclose(
            result.theta_hat, true_mean(data), atol=0.05
        )

    def test_chunking_invariance(self):
        data = np.random.default_rng(3).uniform(-1, 1, size=(1000, 4))
        small = MeanEstimationPipeline(
            LaplaceMechanism(), 1.0, dimensions=4, chunk_size=64
        ).run(data, rng=7)
        big = MeanEstimationPipeline(
            LaplaceMechanism(), 1.0, dimensions=4, chunk_size=100_000
        ).run(data, rng=7)
        # Different chunking consumes randomness differently, so compare
        # statistically rather than exactly.
        assert mse(small.theta_hat, big.theta_hat) < 1.0

    def test_shape_validation(self, rng):
        pipeline = MeanEstimationPipeline(LaplaceMechanism(), 1.0, dimensions=4)
        with pytest.raises(DimensionError):
            pipeline.run(rng.uniform(-1, 1, size=(10, 5)), rng)

    def test_invalid_chunk_size(self):
        with pytest.raises(DimensionError):
            MeanEstimationPipeline(
                LaplaceMechanism(), 1.0, dimensions=4, chunk_size=0
            )

    def test_mask_has_exactly_m_per_row(self, rng):
        pipeline = MeanEstimationPipeline(
            LaplaceMechanism(), 1.0, dimensions=12, sampled_dimensions=5
        )
        mask = pipeline._sample_mask(200, rng)
        np.testing.assert_array_equal(mask.sum(axis=1), np.full(200, 5))

    def test_matches_reference_client_distribution(self, rng):
        """The vectorized path agrees with the per-user reference Client."""
        from repro.protocol import Aggregator, BudgetPlan, Client

        data = np.tile(np.array([-0.4, 0.1, 0.7]), (30_000, 1))
        mech = PiecewiseMechanism()
        pipeline = MeanEstimationPipeline(
            mech, 2.0, dimensions=3, sampled_dimensions=2
        )
        fast = pipeline.run(data, rng)

        plan = BudgetPlan(epsilon=2.0, dimensions=3, sampled_dimensions=2)
        client = Client(mech, plan)
        agg = Aggregator(mech, plan)
        for row in data[:30_000]:
            agg.add_report(client.report(row, rng))
        slow = agg.aggregate()
        np.testing.assert_allclose(fast.theta_hat, slow.theta_hat, atol=0.05)


class TestDeviationModelBridge:
    def test_unbounded_needs_no_population(self, rng):
        pipeline = MeanEstimationPipeline(LaplaceMechanism(), 1.0, dimensions=6)
        model = pipeline.deviation_model(users=1000)
        assert model.ndim == 6

    def test_bounded_from_data(self, rng):
        data = rng.uniform(-1, 1, size=(2000, 4))
        pipeline = MeanEstimationPipeline(PiecewiseMechanism(), 1.0, dimensions=4)
        model = pipeline.deviation_model(users=2000, data=data)
        assert model.ndim == 4
        assert np.all(model.sigmas > 0)

    def test_bounded_from_shared_population(self):
        pipeline = MeanEstimationPipeline(PiecewiseMechanism(), 1.0, dimensions=3)
        model = pipeline.deviation_model(
            users=500, populations=ValueDistribution.point_mass(0.0)
        )
        assert np.allclose(model.sigmas, model.sigmas[0])

    def test_reports_scale_with_m(self):
        full = MeanEstimationPipeline(LaplaceMechanism(), 1.0, dimensions=10)
        sampled = MeanEstimationPipeline(
            LaplaceMechanism(), 1.0, dimensions=10, sampled_dimensions=5
        )
        # Same collective budget: sampling halves reports but doubles the
        # per-dimension budget, so the sigmas differ accordingly.
        model_full = full.deviation_model(users=1000)
        model_sampled = sampled.deviation_model(users=1000)
        assert model_sampled.sigmas[0] != model_full.sigmas[0]

    def test_build_populations_validates(self):
        with pytest.raises(DimensionError):
            build_populations(np.zeros(5))

    def test_run_enhanced_convenience(self, rng):
        data = rng.uniform(-1, 1, size=(3000, 50))
        pipeline = MeanEstimationPipeline(LaplaceMechanism(), 0.2, dimensions=50)
        result = pipeline.run_enhanced(data, Recalibrator(norm="l1"), rng)
        baseline = pipeline.run(data, rng)
        assert mse(result.theta_star, true_mean(data)) < mse(
            baseline.theta_hat, true_mean(data)
        )


class TestFrequencyPipeline:
    def test_multi_dimension_estimates(self, rng):
        labels = rng.integers(0, 4, size=(20_000, 3))
        pipeline = FrequencyEstimationPipeline(
            get_mechanism("piecewise"), epsilon=8.0, category_counts=[4, 4, 4]
        )
        estimates = pipeline.run(labels, rng)
        assert len(estimates) == 3
        for j, estimate in enumerate(estimates):
            truth = np.bincount(labels[:, j], minlength=4) / labels.shape[0]
            np.testing.assert_allclose(estimate.best(), truth, atol=0.08)

    def test_sampled_dimensions_reduce_reports(self, rng):
        labels = rng.integers(0, 3, size=(9000, 3))
        pipeline = FrequencyEstimationPipeline(
            get_mechanism("laplace"),
            epsilon=2.0,
            category_counts=[3, 3, 3],
            sampled_dimensions=1,
        )
        estimates = pipeline.run(labels, rng)
        for estimate in estimates:
            assert estimate.reports < 9000
            assert estimate.reports == pytest.approx(3000, rel=0.2)

    def test_label_shape_validated(self, rng):
        pipeline = FrequencyEstimationPipeline(
            get_mechanism("laplace"), epsilon=1.0, category_counts=[3, 3]
        )
        with pytest.raises(DimensionError):
            pipeline.run(np.zeros((10, 3), dtype=int), rng)

    def test_empty_category_counts_rejected(self):
        with pytest.raises(DimensionError):
            FrequencyEstimationPipeline(
                get_mechanism("laplace"), epsilon=1.0, category_counts=[]
            )

    def test_no_user_exceeds_m_reports(self, rng):
        """Privacy-accounting regression: exactly m of d dimensions per user.

        The historical per-dimension Bernoulli(m/d) sampling could let a
        user report more than m dimensions while paying only eps/m each,
        overspending the collective budget. With exactly-m sampling the
        total report count is deterministically n*m (Bernoulli sampling
        only hits that in expectation) and no user can exceed m.
        """
        users, m = 4000, 2
        labels = rng.integers(0, 3, size=(users, 5))
        pipeline = FrequencyEstimationPipeline(
            get_mechanism("laplace"),
            epsilon=2.0,
            category_counts=[3] * 5,
            sampled_dimensions=m,
        )
        estimates = pipeline.run(labels, rng)
        assert sum(e.reports for e in estimates) == users * m
        assert all(e.reports <= users for e in estimates)

    def test_per_user_sampling_mask_never_exceeds_m(self, rng):
        """The sampling primitive itself guarantees the per-user cap."""
        from repro.session import sample_attribute_mask

        mask = sample_attribute_mask(1000, 7, 3, rng)
        assert mask.sum(axis=1).max() == 3
