"""Tests for the empirical ε-LDP auditor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import audit_mechanism
from repro.exceptions import DimensionError
from repro.mechanisms import LaplaceMechanism, Mechanism, get_mechanism


class TestShippedMechanismsPass:
    @pytest.mark.parametrize(
        "name",
        ["laplace", "staircase", "scdf", "duchi", "piecewise", "hybrid",
         "square_wave", "square_wave_unit"],
    )
    @pytest.mark.parametrize("epsilon", [0.5, 2.0])
    def test_audit_within_budget(self, name, epsilon, rng):
        result = audit_mechanism(
            get_mechanism(name), epsilon, samples=120_000, rng=rng
        )
        assert result.bins_scored > 0
        assert result.satisfied_with_slack(1.2), (
            name,
            epsilon,
            result.max_log_ratio,
        )

    def test_extreme_pair_ratio_is_tight_for_piecewise(self, rng):
        # The bound is achieved (not just respected) between the domain
        # endpoints: the audit should measure a ratio close to e^eps.
        eps = 1.5
        result = audit_mechanism(
            get_mechanism("piecewise"),
            eps,
            inputs=(-1.0, 1.0),
            samples=300_000,
            rng=rng,
        )
        assert result.max_log_ratio > 0.75 * eps


class TestAuditorCatchesViolations:
    def test_flags_mechanism_lying_about_budget(self, rng):
        # A "mechanism" that spends half the declared budget's noise:
        # perturbs with eps' = 4*eps (too little noise for the claim).
        class Cheater(LaplaceMechanism):
            def sample_noise(self, size, epsilon, rng=None):
                return super().sample_noise(size, 4.0 * epsilon, rng)

        result = audit_mechanism(Cheater(), 0.5, samples=200_000, rng=rng)
        assert not result.satisfied_with_slack(1.2)

    def test_flags_biased_sampler(self, rng):
        # Deterministic (non-private) release must blow the ratio up.
        class Leaky(Mechanism):
            name = "leaky"
            bounded = True

            def perturb(self, values, epsilon, rng=None):
                return np.asarray(values, dtype=np.float64)

            def conditional_bias(self, values, epsilon):
                return np.zeros_like(np.asarray(values, dtype=np.float64))

            def conditional_variance(self, values, epsilon):
                return np.ones_like(np.asarray(values, dtype=np.float64))

            def output_support(self, epsilon):
                return (-1.0, 1.0)

        result = audit_mechanism(Leaky(), 1.0, samples=50_000, rng=rng)
        # Disjoint supports -> no shared bins with mass on both sides, or
        # (with the midpoint input) enormous ratios. Either signal works:
        assert result.bins_scored == 0 or not result.satisfied_with_slack(2.0)


class TestValidation:
    def test_needs_enough_samples(self, rng):
        with pytest.raises(DimensionError):
            audit_mechanism(LaplaceMechanism(), 1.0, samples=10, rng=rng)

    def test_needs_two_inputs(self, rng):
        with pytest.raises(DimensionError):
            audit_mechanism(LaplaceMechanism(), 1.0, inputs=(0.0,), rng=rng)

    def test_result_fields(self, rng):
        result = audit_mechanism(
            LaplaceMechanism(), 1.0, samples=50_000, rng=rng
        )
        assert result.epsilon == 1.0
        assert len(result.worst_pair) == 2
        assert isinstance(result.satisfied, bool)
