"""End-to-end integration tests of the paper's headline claims.

Each test wires together mechanisms → protocol → framework → HDR4ME at a
small but statistically meaningful scale and checks a claim from the
paper's abstract/evaluation:

1. the analytical framework predicts the experimental deviation
   distribution and MSE;
2. HDR4ME enhances high-dimensional mean estimation for Laplace and
   Piecewise without touching the mechanisms;
3. the enhancement does not apply to the Square wave (deviations below
   the Lemma 4/5 thresholds);
4. the frequency extension works end-to-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import gaussian_fit, mse, true_mean
from repro.experiments import simulate_dimension_deviations
from repro.framework import ValueDistribution, build_deviation_model
from repro.hdr4me import FrequencyEstimator, Recalibrator, true_frequencies
from repro.mechanisms import get_mechanism
from repro.protocol import MeanEstimationPipeline, build_populations


class TestFrameworkPredictsExperiment:
    @pytest.mark.parametrize("name", ["laplace", "staircase", "piecewise",
                                      "duchi", "hybrid"])
    def test_deviation_gaussian_fits(self, name, rng):
        mech = get_mechanism(name)
        column = rng.uniform(-1, 1, 1500)
        population = ValueDistribution.from_data(column, bins=None)
        eps, repeats = 0.2, 250
        model = build_deviation_model(mech, eps, column.size, population)
        deviations = simulate_dimension_deviations(
            mech, column, eps, 1.0, repeats, rng
        )
        fit = gaussian_fit(deviations, model)
        assert fit.mean_error < 0.3 * model.sigma
        assert 0.8 < fit.std_ratio < 1.2

    def test_mse_prediction_full_pipeline(self, rng):
        d, n = 50, 4000
        data = rng.uniform(-1, 1, size=(n, d))
        mech = get_mechanism("piecewise")
        pipeline = MeanEstimationPipeline(mech, 1.0, dimensions=d)
        model = pipeline.deviation_model(
            users=n, populations=build_populations(data)
        )
        observed = np.mean([
            mse(pipeline.run(data, rng).theta_hat, true_mean(data))
            for _ in range(8)
        ])
        assert observed == pytest.approx(model.predicted_mse(), rel=0.25)


class TestHdr4meEnhancement:
    @pytest.mark.parametrize("name", ["laplace", "piecewise"])
    @pytest.mark.parametrize("norm", ["l1", "l2"])
    def test_enhances_high_dimensional_estimation(self, name, norm, rng):
        d, n, eps = 150, 4000, 0.4
        data = rng.normal(0.0, 1.0 / 16.0, size=(n, d))
        data[:, :15] += 0.9
        data = np.clip(data, -1, 1)
        mech = get_mechanism(name)
        pipeline = MeanEstimationPipeline(mech, eps, dimensions=d)
        result = pipeline.run(data, rng)
        model = pipeline.deviation_model(
            users=n,
            populations=build_populations(data) if mech.bounded else None,
        )
        enhanced = Recalibrator(norm=norm).recalibrate(result.theta_hat, model)
        truth = true_mean(data)
        assert mse(enhanced.theta_star, truth) < 0.5 * mse(result.theta_hat, truth)
        # Theorem 3/4 should be near-certain in this regime.
        assert enhanced.guarantee.paper_bound > 0.99

    def test_square_wave_not_enhanced(self, rng):
        # The paper's caveat: Square wave deviations are tiny, thresholds
        # unmet, so re-calibration gives no big win (L1 may zero good
        # estimates and hurt).
        d, n, eps = 100, 4000, 0.4
        data = np.clip(rng.normal(0.3, 0.2, size=(n, d)), -1, 1)
        mech = get_mechanism("square_wave")
        pipeline = MeanEstimationPipeline(mech, eps, dimensions=d)
        result = pipeline.run(data, rng)
        model = pipeline.deviation_model(
            users=n, populations=build_populations(data)
        )
        enhanced = Recalibrator(norm="l1").recalibrate(result.theta_hat, model)
        truth = true_mean(data)
        improvement = mse(result.theta_hat, truth) / mse(
            enhanced.theta_star, truth
        )
        # No order-of-magnitude gain (contrast with the Laplace/Piecewise
        # cases above where the gain exceeds 2x).
        assert improvement < 2.0

    def test_mechanism_untouched_by_recalibration(self, rng):
        """HDR4ME acts only on the aggregate: same reports, same theta_hat."""
        d, n = 20, 1000
        data = rng.uniform(-1, 1, size=(n, d))
        mech = get_mechanism("laplace")
        pipeline = MeanEstimationPipeline(mech, 0.5, dimensions=d)
        result = pipeline.run(data, rng=5)
        model = pipeline.deviation_model(users=n)
        before = result.theta_hat.copy()
        Recalibrator(norm="l1").recalibrate(result.theta_hat, model)
        Recalibrator(norm="l2").recalibrate(result.theta_hat, model)
        np.testing.assert_array_equal(result.theta_hat, before)


class TestFrequencyExtension:
    def test_end_to_end_with_enhancement(self, rng):
        labels = rng.choice(16, size=30_000)
        mech = get_mechanism("piecewise")
        plain = FrequencyEstimator(mech, epsilon=2.0)
        enhanced = FrequencyEstimator(
            mech, epsilon=2.0, recalibrator=Recalibrator(norm="l2")
        )
        truth = true_frequencies(labels, 16)
        est_plain = plain.estimate(labels, 16, rng=11)
        est_enh = enhanced.estimate(labels, 16, rng=11)
        # Identical perturbation stream; both recover the truth sanely.
        assert np.mean((est_plain.best() - truth) ** 2) < 1e-3
        assert np.mean((est_enh.best() - truth) ** 2) < 1e-3


class TestPrivacyAccounting:
    def test_per_dimension_budget_composes(self, rng):
        """m-dimension reporting uses eps/m per dimension: the noise scale
        observed in reports matches the diluted budget, not the full one."""
        from repro.protocol import BudgetPlan, Client

        d, m, eps = 10, 2, 1.0
        plan = BudgetPlan(epsilon=eps, dimensions=d, sampled_dimensions=m)
        mech = get_mechanism("laplace")
        client = Client(mech, plan)
        values = np.concatenate(
            [client.report(np.zeros(d), rng).values for _ in range(4000)]
        )
        diluted_std = np.sqrt(mech.noise_variance(eps / m))
        full_std = np.sqrt(mech.noise_variance(eps))
        assert abs(values.std() - diluted_std) < abs(values.std() - full_std)
