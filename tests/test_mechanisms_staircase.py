"""Tests for the Staircase mechanism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import StaircaseMechanism, monte_carlo_moments, optimal_gamma


class TestParameters:
    def test_optimal_gamma_formula(self):
        assert optimal_gamma(2.0) == pytest.approx(1.0 / (1.0 + np.exp(1.0)))

    def test_optimal_gamma_monotone_decreasing(self):
        gammas = [optimal_gamma(e) for e in (0.1, 0.5, 1.0, 2.0, 5.0)]
        assert all(a > b for a, b in zip(gammas, gammas[1:]))

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            StaircaseMechanism(gamma=1.5)

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            StaircaseMechanism(sensitivity=-1.0)


class TestMoments:
    @pytest.mark.parametrize("eps", [0.5, 1.0, 3.0])
    def test_variance_closed_form_vs_monte_carlo(self, eps, rng):
        mech = StaircaseMechanism()
        _, var_mc = monte_carlo_moments(mech, 0.2, eps, 300_000, rng)
        assert var_mc == pytest.approx(mech.noise_variance(eps), rel=0.03)

    def test_zero_mean_noise(self, rng):
        mech = StaircaseMechanism()
        noise = mech.sample_noise((300_000,), 1.0, rng)
        assert np.mean(noise) == pytest.approx(0.0, abs=0.05)

    def test_beats_laplace_variance(self):
        # Geng et al.'s point: staircase noise has lower variance than
        # Laplace at the same eps (same sensitivity).
        from repro.mechanisms import LaplaceMechanism

        for eps in (0.5, 1.0, 2.0, 4.0):
            assert (
                StaircaseMechanism().noise_variance(eps)
                < LaplaceMechanism().noise_variance(eps)
            )

    def test_third_moment_closed_form_vs_monte_carlo(self, rng):
        mech = StaircaseMechanism()
        analytic = mech.abs_third_central_moment(np.array([0.0]), 1.0)[0]
        noise = mech.sample_noise((400_000,), 1.0, rng)
        empirical = np.mean(np.abs(noise) ** 3)
        assert empirical == pytest.approx(analytic, rel=0.05)

    def test_custom_gamma_respected(self, rng):
        mech = StaircaseMechanism(gamma=0.5)
        _, var_mc = monte_carlo_moments(mech, 0.0, 1.0, 300_000, rng)
        assert var_mc == pytest.approx(mech.noise_variance(1.0), rel=0.03)


class TestPdf:
    def test_pdf_integrates_to_one(self):
        mech = StaircaseMechanism()
        x = np.linspace(-100, 100, 2_000_001)
        total = np.trapezoid(mech.pdf(x, 1.0), x)
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_pdf_matches_histogram(self, rng):
        mech = StaircaseMechanism()
        noise = mech.sample_noise((400_000,), 1.0, rng)
        hist, edges = np.histogram(noise, bins=60, range=(-10, 10), density=True)
        centers = 0.5 * (edges[:-1] + edges[1:])
        predicted = mech.pdf(centers, 1.0)
        # Exclude bins straddling a step edge where the histogram smears.
        mask = predicted > 1e-4
        assert np.mean(np.abs(hist[mask] - predicted[mask])) < 0.01

    def test_ldp_ratio_within_step_structure(self):
        # Adjacent inputs shift the noise by at most the sensitivity; the
        # density ratio between points Δ apart is exactly e^{-eps} per step.
        mech = StaircaseMechanism()
        eps = 1.0
        x = np.linspace(0.0, 20.0, 2001)
        ratio = mech.pdf(x, eps) / mech.pdf(x + mech.sensitivity, eps)
        assert ratio.max() <= np.exp(eps) * (1 + 1e-9)
