"""Tests for the Section V-C frequency-estimation extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionError, DomainError
from repro.hdr4me import (
    FrequencyEstimator,
    Recalibrator,
    one_hot_encode,
    postprocess_frequencies,
    true_frequencies,
)
from repro.hdr4me.frequency import adapt_to_unit_domain
from repro.mechanisms import (
    LaplaceMechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
    get_mechanism,
)


class TestEncoding:
    def test_one_hot_shape_and_rows(self):
        encoded = one_hot_encode(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_row_sums_are_one(self, rng):
        labels = rng.integers(0, 5, size=100)
        encoded = one_hot_encode(labels, 5)
        np.testing.assert_array_equal(encoded.sum(axis=1), np.ones(100))

    def test_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            one_hot_encode(np.array([0, 3]), 3)

    def test_rejects_negative_labels(self):
        with pytest.raises(DomainError):
            one_hot_encode(np.array([-1]), 3)

    def test_rejects_matrix_input(self):
        with pytest.raises(DimensionError):
            one_hot_encode(np.zeros((2, 2), dtype=int), 3)

    def test_rejects_single_category(self):
        with pytest.raises(DimensionError):
            one_hot_encode(np.array([0]), 1)

    def test_true_frequencies(self):
        freq = true_frequencies(np.array([0, 0, 1, 2]), 4)
        np.testing.assert_allclose(freq, [0.5, 0.25, 0.25, 0.0])


class TestPostprocess:
    def test_clips_and_normalizes(self):
        out = postprocess_frequencies(np.array([-0.2, 0.5, 0.9]))
        assert out.min() >= 0.0
        assert out.sum() == pytest.approx(1.0)

    def test_no_normalize(self):
        out = postprocess_frequencies(np.array([0.2, 0.3]), normalize=False)
        np.testing.assert_allclose(out, [0.2, 0.3])

    def test_all_zero_stays_zero(self):
        out = postprocess_frequencies(np.array([-1.0, -2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0])


class TestAdaptation:
    def test_unit_domain_mechanism_unchanged(self):
        mech = SquareWaveMechanism()
        assert adapt_to_unit_domain(mech) is mech

    def test_standard_domain_mechanism_wrapped(self):
        wrapped = adapt_to_unit_domain(PiecewiseMechanism())
        assert wrapped.input_domain == (0.0, 1.0)


class TestEstimator:
    @pytest.mark.parametrize("name", ["laplace", "piecewise", "square_wave_unit"])
    def test_recovers_frequencies(self, name, rng):
        labels = rng.choice(4, size=40_000, p=[0.5, 0.3, 0.15, 0.05])
        estimator = FrequencyEstimator(get_mechanism(name), epsilon=4.0)
        estimate = estimator.estimate(labels, 4, rng)
        truth = true_frequencies(labels, 4)
        np.testing.assert_allclose(estimate.best(), truth, atol=0.05)

    def test_epsilon_per_entry_is_half_per_dim(self):
        estimator = FrequencyEstimator(
            LaplaceMechanism(), epsilon=2.0, sampled_dimensions=4
        )
        assert estimator.epsilon_per_entry == pytest.approx(0.25)

    def test_with_recalibration(self, rng):
        labels = rng.choice(8, size=20_000)
        estimator = FrequencyEstimator(
            PiecewiseMechanism(),
            epsilon=1.0,
            recalibrator=Recalibrator(norm="l2"),
        )
        estimate = estimator.estimate(labels, 8, rng)
        assert estimate.enhanced is not None
        # L2 shrinks, never amplifies.
        assert np.all(np.abs(estimate.enhanced) <= np.abs(estimate.raw) + 1e-12)

    def test_without_recalibration_enhanced_is_none(self, rng):
        estimator = FrequencyEstimator(LaplaceMechanism(), epsilon=1.0)
        estimate = estimator.estimate(rng.choice(3, size=1000), 3, rng)
        assert estimate.enhanced is None
        assert estimate.reports == 1000

    def test_empty_input_rejected(self, rng):
        estimator = FrequencyEstimator(LaplaceMechanism(), epsilon=1.0)
        with pytest.raises(DimensionError):
            estimator.estimate(np.empty(0, dtype=int), 3, rng)

    def test_invalid_sampled_dimensions(self):
        with pytest.raises(DimensionError):
            FrequencyEstimator(LaplaceMechanism(), 1.0, sampled_dimensions=0)

    def test_best_falls_back_to_raw(self, rng):
        estimator = FrequencyEstimator(LaplaceMechanism(), epsilon=4.0)
        estimate = estimator.estimate(rng.choice(3, size=5000), 3, rng)
        np.testing.assert_allclose(
            estimate.best(normalize=False),
            np.clip(estimate.raw, 0.0, 1.0),
        )
