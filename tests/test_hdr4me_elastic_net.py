"""Tests for the elastic-net extension of HDR4ME."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import CalibrationError
from repro.hdr4me import ProximalGradientSolver, recalibrate_l1, recalibrate_l2
from repro.hdr4me.elastic_net import (
    ElasticNetRegularizer,
    recalibrate_elastic_net,
)

VECTORS = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=24),
    elements=st.floats(min_value=-30, max_value=30, allow_nan=False),
)


class TestLimits:
    def test_alpha_one_is_l1(self, rng):
        theta = rng.normal(scale=5, size=32)
        lam = np.abs(rng.normal(scale=2, size=32))
        np.testing.assert_allclose(
            recalibrate_elastic_net(theta, lam, alpha=1.0),
            recalibrate_l1(theta, lam),
        )

    def test_alpha_zero_is_l2(self, rng):
        theta = rng.normal(scale=5, size=32)
        lam = np.abs(rng.normal(scale=2, size=32))
        np.testing.assert_allclose(
            recalibrate_elastic_net(theta, lam, alpha=0.0),
            recalibrate_l2(theta, lam),
        )

    def test_invalid_alpha(self):
        with pytest.raises(CalibrationError):
            ElasticNetRegularizer(alpha=1.5)

    def test_shape_mismatch(self):
        with pytest.raises(CalibrationError):
            recalibrate_elastic_net(np.zeros(3), np.zeros(2))

    def test_scalar_lambda_broadcasts(self):
        out = recalibrate_elastic_net(np.array([4.0, 0.2]), np.array([1.0]), 0.5)
        assert out.shape == (2,)
        assert out[1] == 0.0  # |0.2| < alpha*lam = 0.5 -> zeroed


class TestBehaviour:
    def test_sparsifies_like_l1(self):
        theta = np.array([0.3, 5.0])
        out = recalibrate_elastic_net(theta, np.array([1.0, 1.0]), alpha=0.5)
        assert out[0] == 0.0
        assert 0.0 < out[1] < 5.0

    def test_shrinks_survivors_more_than_pure_l1(self):
        theta = np.array([5.0])
        lam = np.array([1.0])
        l1_out = recalibrate_l1(theta, lam)[0]
        en_out = recalibrate_elastic_net(theta, lam, alpha=0.5)[0]
        assert 0.0 < en_out < l1_out

    def test_penalty_interpolates(self):
        theta, lam = np.array([2.0]), np.array([1.5])
        en = ElasticNetRegularizer(alpha=0.25)
        l1_pen = np.sum(np.abs(lam * theta))
        l2_pen = np.sum(lam * theta**2)
        assert en.penalty(theta, lam) == pytest.approx(
            0.25 * l1_pen + 0.75 * l2_pen
        )

    @given(
        theta=VECTORS,
        lam=st.floats(min_value=0, max_value=10),
        alpha=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_prox_matches_pgd(self, theta, lam, alpha):
        """The composed closed form is the true proximal minimizer."""
        solver = ProximalGradientSolver(ElasticNetRegularizer(alpha))
        result = solver.solve(theta, lam)
        np.testing.assert_allclose(
            result.theta,
            recalibrate_elastic_net(theta, np.full(theta.size, lam), alpha),
            atol=1e-9,
        )

    @given(
        theta=VECTORS,
        lam=st.floats(min_value=0, max_value=10),
        alpha=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_contraction_and_sign(self, theta, lam, alpha):
        out = recalibrate_elastic_net(theta, np.full(theta.size, lam), alpha)
        assert np.all(np.abs(out) <= np.abs(theta) + 1e-12)
        assert np.all(out * theta >= 0.0)

    @given(theta=VECTORS, lam=st.floats(min_value=0.01, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_property_grid_optimality(self, theta, lam):
        """prox output beats coordinate perturbations on the EN objective."""
        alpha = 0.5
        lam_vec = np.full(theta.size, lam)
        out = recalibrate_elastic_net(theta, lam_vec, alpha)
        en = ElasticNetRegularizer(alpha)

        def objective(x):
            return 0.5 * np.sum((x - theta) ** 2) + en.penalty(x, lam_vec)

        best = objective(out)
        for j in range(theta.size):
            for delta in (-0.01, 0.01):
                candidate = out.copy()
                candidate[j] += delta
                assert objective(candidate) >= best - 1e-9
