"""Repository-consistency tests: docs, examples and harness stay in sync.

Documentation that drifts from the code is worse than no documentation;
these tests pin the load-bearing cross-references.
"""

from __future__ import annotations

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parents[1]


def _read(name: str) -> str:
    path = REPO / name
    assert path.exists(), "%s is missing" % name
    return path.read_text()


class TestTopLevelDocs:
    def test_design_lists_every_paper_artefact(self):
        design = _read("DESIGN.md")
        for artefact in ("Table II", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5",
                         "Theorem 2"):
            assert artefact in design, artefact

    def test_design_records_substitutions(self):
        design = _read("DESIGN.md")
        assert "COV-19" in design
        assert "latent-factor" in design

    def test_experiments_covers_every_bench_family(self):
        experiments = _read("EXPERIMENTS.md")
        bench_files = {p.stem for p in (REPO / "benchmarks").glob("bench_*.py")} - {"bench_config"}
        referenced = set(re.findall(r"bench_\w+", experiments))
        missing = bench_files - referenced
        assert not missing, "benches undocumented in EXPERIMENTS.md: %s" % missing

    def test_readme_lists_every_example(self):
        readme = _read("README.md")
        for example in (REPO / "examples").glob("*.py"):
            assert example.name in readme, example.name

    def test_experiments_records_known_deviations(self):
        experiments = _read("EXPERIMENTS.md")
        assert "Eq. 14" in experiments  # Piecewise variance typo
        assert "6λ³" in experiments or "6*lambda" in experiments.lower()


class TestBenchHarness:
    def test_every_paper_artefact_has_a_bench(self):
        names = {p.stem for p in (REPO / "benchmarks").glob("bench_*.py")}
        for required in ("bench_table2", "bench_fig2", "bench_fig3",
                         "bench_fig4", "bench_fig5", "bench_theorem2"):
            assert required in names, required

    def test_bench_files_use_recording_fixture(self):
        # Every paper-artefact bench archives its rows/series.
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            if path.stem in ("bench_throughput", "bench_config"):
                continue  # engineering bench, no artefact
            assert "record_artefact" in path.read_text(), path.name


class TestExamples:
    def test_examples_have_main_guard_and_docstring(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert text.lstrip().startswith('"""'), path.name
            assert '__name__ == "__main__"' in text, path.name

    def test_at_least_four_domain_examples(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 4


class TestVersionCoherence:
    def test_pyproject_version_matches_package(self):
        import repro

        pyproject = _read("pyproject.toml")
        assert 'version = "%s"' % repro.__version__ in pyproject
