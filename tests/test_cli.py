"""Tests for the ``python -m repro.experiments`` CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "piecewise" in out
        assert "533.2" in out

    def test_requires_artefact(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_artefact(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_theorem2_without_quick(self, capsys):
        assert main(["theorem2"]) == 0
        out = capsys.readouterr().out
        assert "worked example" in out
        assert "bound" in out

    def test_fig4_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["fig4", "--dataset", "imagenet"])

    def test_seed_accepted(self, capsys):
        assert main(["table2", "--seed", "7"]) == 0

    def test_prediction_quick(self, capsys):
        assert main(["prediction", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert "piecewise" in out
