"""Tests for the MSE-prediction driver and series serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    SeriesRow,
    SerializationError,
    read_series_csv,
    read_series_json,
    run_mse_prediction,
    write_series_csv,
    write_series_json,
)


class TestPrediction:
    def test_tiny_grid(self):
        result = run_mse_prediction(
            datasets=("uniform",),
            mechanisms=("laplace", "piecewise"),
            users=3000,
            dimensions=10,
            repeats=2,
            rng=0,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.predicted > 0
            assert 0.4 < row.ratio < 2.5

    def test_format_contains_grid(self):
        result = run_mse_prediction(
            datasets=("uniform",),
            mechanisms=("laplace",),
            users=2000,
            dimensions=8,
            repeats=1,
            rng=0,
        )
        text = result.format()
        assert "uniform" in text and "laplace" in text and "ratio" in text

    def test_worst_ratio_error(self):
        result = run_mse_prediction(
            datasets=("uniform",),
            mechanisms=("laplace",),
            users=4000,
            dimensions=10,
            repeats=3,
            rng=0,
        )
        assert result.worst_ratio_error() == abs(result.rows[0].ratio - 1.0)


@pytest.fixture()
def rows():
    return [
        SeriesRow(x=0.1, values={"baseline": 1.5, "l1": 0.2}),
        SeriesRow(x=0.2, values={"baseline": 0.7, "l1": 0.1}),
    ]


class TestCsv:
    def test_roundtrip(self, rows, tmp_path):
        path = tmp_path / "series.csv"
        write_series_csv(path, "epsilon", ("baseline", "l1"), rows)
        x_label, labels, loaded = read_series_csv(path)
        assert x_label == "epsilon"
        assert labels == ["baseline", "l1"]
        assert [r.x for r in loaded] == [0.1, 0.2]
        assert loaded[0].values == rows[0].values

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SerializationError):
            read_series_csv(path)

    def test_bad_width_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,a\n1,2,3\n")
        with pytest.raises(SerializationError):
            read_series_csv(path)

    def test_header_needs_values(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("x\n1\n")
        with pytest.raises(SerializationError):
            read_series_csv(path)


class TestJson:
    def test_roundtrip_with_metadata(self, rows, tmp_path):
        path = tmp_path / "series.json"
        write_series_json(
            path, "epsilon", ("baseline", "l1"), rows, metadata={"seed": 7}
        )
        x_label, labels, loaded, metadata = read_series_json(path)
        assert x_label == "epsilon"
        assert metadata == {"seed": 7}
        np.testing.assert_allclose(
            [r.values["l1"] for r in loaded], [0.2, 0.1]
        )

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            read_series_json(path)

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "missing.json"
        path.write_text('{"rows": []}')
        with pytest.raises(SerializationError):
            read_series_json(path)
