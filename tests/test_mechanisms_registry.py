"""Tests for the mechanism registry."""

from __future__ import annotations

import pytest

from repro.mechanisms import (
    LaplaceMechanism,
    Mechanism,
    available_mechanisms,
    get_mechanism,
    register_mechanism,
)
from repro.mechanisms.registry import _REGISTRY


class TestLookup:
    def test_all_builtins_present(self):
        names = available_mechanisms()
        for expected in (
            "laplace",
            "staircase",
            "duchi",
            "piecewise",
            "hybrid",
            "square_wave",
            "square_wave_unit",
        ):
            assert expected in names

    def test_lookup_is_case_insensitive(self):
        assert isinstance(get_mechanism("LAPLACE"), LaplaceMechanism)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="laplace"):
            get_mechanism("nope")

    def test_fresh_instance_per_call(self):
        assert get_mechanism("laplace") is not get_mechanism("laplace")


class TestRegistration:
    def _cleanup(self, name):
        _REGISTRY.pop(name, None)

    def test_register_and_resolve(self):
        class Custom(LaplaceMechanism):
            name = "custom_test_mech"

        try:
            register_mechanism("custom_test_mech", Custom)
            assert isinstance(get_mechanism("custom_test_mech"), Custom)
            assert isinstance(get_mechanism("custom_test_mech"), Mechanism)
        finally:
            self._cleanup("custom_test_mech")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_mechanism("laplace", LaplaceMechanism)

    def test_overwrite_allowed_explicitly(self):
        try:
            register_mechanism("tmp_mech", LaplaceMechanism)
            register_mechanism("tmp_mech", LaplaceMechanism, overwrite=True)
        finally:
            self._cleanup("tmp_mech")
