"""Crash-recovery tests for the checkpointing socket gateway (ISSUE 6).

The acceptance invariant: a collection round interrupted by gateway
death and resumed from a checkpoint store finishes with estimates
bit-identical to an uninterrupted round, with zero double-counted
frames. The gateway dies *without* a final checkpoint here (tasks are
torn down mid-round, like SIGKILL), so resume runs from the periodic
frame-triggered checkpoints alone; the restarted gateway may even use a
different shard count — checkpoints are topology-independent.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import (
    CheckpointCorruptError,
    ContractMismatchError,
    StorageError,
    TransportError,
    WireFormatError,
)
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
    ShardedServer,
)
from repro.storage import (
    JsonFileStore,
    SegmentLogStore,
    SqliteStore,
    parse_round_checkpoint,
    round_checkpoint_document,
)
from repro.transport import (
    AsyncReportSender,
    CollectionGateway,
    replay_frames,
    serve_collection,
)

SCHEMA = Schema(
    [
        NumericAttribute("a"),
        NumericAttribute("b"),
        CategoricalAttribute("c", n_categories=5),
    ]
)
SPEC = {"c": "oue"}
EPSILON = 2.0

SENDER_ONE = b"\x11" * 16
SENDER_TWO = b"\x22" * 16


def _contract():
    return LDPClient(SCHEMA, EPSILON, protocols=SPEC).contract


def _frames(seed, users=120, batches=4):
    gen = np.random.default_rng(seed)
    records = np.column_stack(
        [
            gen.uniform(-1, 1, users),
            gen.uniform(-1, 1, users),
            gen.integers(0, 5, users),
        ]
    )
    client = LDPClient(SCHEMA, EPSILON, protocols=SPEC)
    return [
        client.report_encoded(chunk, gen)
        for chunk in np.array_split(records, batches)
    ]


def _reference(frame_lists):
    server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
    for frames in frame_lists:
        for frame in frames:
            server.ingest_encoded(frame)
    return server.estimate()


def _assert_estimates_equal(a, b):
    assert a.users == b.users
    for x, y in zip(a.attributes, b.attributes):
        assert x.reports == y.reports, x.name
        assert np.array_equal(x.raw, y.raw), x.name


async def _gateway(store=None, shards=2, checkpoint_every=None, **kwargs):
    server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=shards)
    return await serve_collection(
        server,
        "127.0.0.1",
        0,
        queue_depth=2,
        store=store,
        checkpoint_every_frames=checkpoint_every,
        **kwargs,
    )


async def _crash(gateway):
    """Tear the gateway down mid-round: no drain, no final checkpoint.

    The in-process stand-in for SIGKILL — whatever the periodic
    checkpoints persisted is all a restarted gateway gets.
    """
    tcp, gateway._tcp = gateway._tcp, None
    if tcp is not None:
        tcp.close()
    tasks = list(gateway._consumers) + list(gateway._connections)
    if gateway._timer is not None:
        tasks.append(gateway._timer)
    for task in tasks:
        task.cancel()
    await asyncio.gather(*tasks, return_exceptions=True)
    if tcp is not None:
        await tcp.wait_closed()


def _store_for(backend, tmp_path):
    if backend == "file":
        return JsonFileStore(tmp_path / "round.json")
    if backend == "sqlite":
        return SqliteStore(tmp_path / "round.db")
    return SegmentLogStore(tmp_path / "round-log")


class TestKillAndResume:
    @pytest.mark.parametrize("backend", ["file", "sqlite", "segments"])
    def test_killed_gateway_resumes_bit_identical(self, backend, tmp_path):
        """Acceptance: kill mid-round, restart (different shard count),
        replay every sender — estimates bit-identical to an
        uninterrupted round, zero frames double-counted."""

        frames_one = _frames(1)
        frames_two = _frames(2)

        async def scenario():
            store = _store_for(backend, tmp_path)
            gateway = await _gateway(store=store, shards=2, checkpoint_every=1)
            port = gateway.port
            # Sender one completes its whole round before the crash.
            await replay_frames(
                "127.0.0.1", port, _contract(), frames_one, SENDER_ONE
            )
            # Sender two gets half its round through, then the gateway
            # dies without any orderly shutdown.
            partial = await AsyncReportSender.connect(
                "127.0.0.1", port, _contract(), sender_id=SENDER_TWO
            )
            async with partial:
                for frame in frames_two[:2]:
                    await partial.send_encoded(frame)
            await _crash(gateway)

            # Restart from the same store — different topology on a
            # fresh port — and let both senders replay their rounds.
            resumed = await _gateway(store=store, shards=3, checkpoint_every=2)
            replay_one = await replay_frames(
                "127.0.0.1", resumed.port, _contract(), frames_one, SENDER_ONE
            )
            replay_two = await replay_frames(
                "127.0.0.1", resumed.port, _contract(), frames_two, SENDER_TWO
            )
            await resumed.stop()
            estimate = resumed.estimate()
            store.close()
            return estimate, replay_one, replay_two, resumed

        estimate, replay_one, replay_two, resumed = asyncio.run(scenario())
        # Every pre-crash frame was durable (checkpoint_every=1), so the
        # replays skipped exactly the durable prefixes.
        assert replay_one.frames_skipped == len(frames_one)
        assert replay_one.frames_sent == 0
        assert replay_two.frames_skipped == 2
        assert replay_two.frames_sent == len(frames_two) - 2
        _assert_estimates_equal(
            estimate, _reference([frames_one, frames_two])
        )

    def test_resume_survives_a_second_restart(self, tmp_path):
        """Checkpoint chains: crash, resume, crash again, resume again."""

        frames = _frames(3, batches=6)

        async def scenario():
            store = SqliteStore(tmp_path / "round.db")
            first = await _gateway(store=store, checkpoint_every=1)
            sender = await AsyncReportSender.connect(
                "127.0.0.1", first.port, _contract(), sender_id=SENDER_ONE
            )
            async with sender:
                for frame in frames[:2]:
                    await sender.send_encoded(frame)
            await _crash(first)

            second = await _gateway(store=store, checkpoint_every=1)
            sender = await AsyncReportSender.connect(
                "127.0.0.1", second.port, _contract(), sender_id=SENDER_ONE
            )
            assert sender.resume_seq == 2
            async with sender:
                for frame in frames:  # full replay; prefix skipped
                    await sender.send_encoded(frame)
                    if sender.frames_sent == 2:  # frames 3 and 4 landed
                        break
            await _crash(second)

            third = await _gateway(store=store, checkpoint_every=1)
            final = await replay_frames(
                "127.0.0.1", third.port, _contract(), frames, SENDER_ONE
            )
            await third.stop()
            estimate = third.estimate()
            store.close()
            return estimate, final

        estimate, final = asyncio.run(scenario())
        assert final.frames_skipped == 4
        assert final.frames_sent == 2
        _assert_estimates_equal(estimate, _reference([frames]))


class TestDedupAndSequencing:
    def test_gateway_dedups_resent_frames(self, tmp_path):
        """A sender that ignores the watermark cannot double-count."""

        frames = _frames(4, batches=3)

        async def scenario():
            store = JsonFileStore(tmp_path / "round.json")
            gateway = await _gateway(store=store, checkpoint_every=1)
            await replay_frames(
                "127.0.0.1", gateway.port, _contract(), frames, SENDER_ONE
            )
            # Reconnect and force a full resend: pretend the resume
            # watermark was never heard.
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract(), sender_id=SENDER_ONE
            )
            assert sender.resume_seq == len(frames)
            sender.resume_seq = 0
            async with sender:
                for frame in frames:
                    await sender.send_encoded(frame)
            deduped = gateway.frames_deduped
            await gateway.stop()
            estimate = gateway.estimate()
            store.close()
            return estimate, deduped

        estimate, deduped = asyncio.run(scenario())
        assert deduped == len(frames)
        _assert_estimates_equal(estimate, _reference([frames]))

    def test_sequence_gap_is_a_protocol_violation(self):
        async def scenario():
            gateway = await _gateway()
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract(), sender_id=SENDER_ONE
            )
            sender._next_seq = 5  # skip ahead of the watermark
            frame = _frames(5, batches=1)[0]
            with pytest.raises(WireFormatError, match="skips ahead"):
                await sender.send_encoded(frame)
            rejected = gateway.frames_rejected
            await gateway.stop()
            return rejected, gateway.users

        rejected, users = asyncio.run(scenario())
        assert rejected == 1
        assert users == 0

    def test_concurrent_duplicate_sender_id_refused(self):
        async def scenario():
            gateway = await _gateway()
            first = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract(), sender_id=SENDER_ONE
            )
            with pytest.raises(TransportError, match="already connected"):
                await AsyncReportSender.connect(
                    "127.0.0.1", gateway.port, _contract(), sender_id=SENDER_ONE
                )
            await first.close()
            # The id frees up once its connection is gone.
            second = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract(), sender_id=SENDER_ONE
            )
            await second.close()
            rejected = gateway.handshakes_rejected
            await gateway.stop()
            return rejected

        assert asyncio.run(scenario()) == 1


class TestDurability:
    def test_frame_trigger_is_durable_before_the_ack(self, tmp_path):
        """Once a send() returns, the frame is in the store."""

        frames = _frames(6, batches=3)

        async def scenario():
            store = JsonFileStore(tmp_path / "round.json")
            gateway = await _gateway(store=store, checkpoint_every=1)
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract(), sender_id=SENDER_ONE
            )
            watermarks = []
            async with sender:
                for frame in frames:
                    await sender.send_encoded(frame)
                    _, progress, _ = parse_round_checkpoint(
                        store.load(), _contract()
                    )
                    watermarks.append(progress[SENDER_ONE])
            await gateway.stop()
            store.close()
            return watermarks

        assert asyncio.run(scenario()) == [1, 2, 3]

    def test_time_trigger_checkpoints_idle_free(self, tmp_path):
        """The timer only writes when frames arrived since the last one."""

        frames = _frames(7, batches=2)

        async def scenario():
            store = JsonFileStore(tmp_path / "round.json")
            gateway = await _gateway(
                store=store, checkpoint_every_seconds=0.05
            )
            await replay_frames(
                "127.0.0.1", gateway.port, _contract(), frames, SENDER_ONE
            )
            await asyncio.sleep(0.2)  # several timer periods, no frames
            written_after_round = gateway.checkpoints_written
            await asyncio.sleep(0.2)
            assert gateway.checkpoints_written == written_after_round
            await gateway.stop()
            store.close()
            return written_after_round

        assert asyncio.run(scenario()) >= 1

    def test_stop_writes_a_final_checkpoint(self, tmp_path):
        frames = _frames(8, batches=2)

        async def scenario():
            store = JsonFileStore(tmp_path / "round.json")
            # No periodic trigger at all: only stop() persists.
            gateway = await _gateway(store=store)
            await replay_frames(
                "127.0.0.1", gateway.port, _contract(), frames, SENDER_ONE
            )
            await gateway.stop()
            state, progress, total = parse_round_checkpoint(
                store.load(), _contract()
            )
            store.close()
            return progress, total

        progress, total = asyncio.run(scenario())
        assert progress[SENDER_ONE] == len(frames)
        assert total == len(frames)

    def test_triggers_require_a_store(self):
        server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
        with pytest.raises(StorageError, match="store"):
            CollectionGateway(server, checkpoint_every_frames=1)
        with pytest.raises(StorageError):
            CollectionGateway(
                server, store=None, checkpoint_every_seconds=1.0
            )


class TestCheckpointTimerEdges:
    """Satellite: the gateway's timer trigger and the in-process
    AutoCheckpointer, at their edges."""

    def test_timer_checkpoint_failure_poisons_gateway_and_stops_acks(
        self, tmp_path
    ):
        """A timer-cut checkpoint that fails must poison the whole
        gateway — acks stop flowing (durability was promised and broken)
        and waiters are woken with the error, not left hanging."""

        class FlakyStore(JsonFileStore):
            fail = False

            def save(self, document):
                if self.fail:
                    raise StorageError("disk full")
                super().save(document)

        frames = _frames(12, batches=3)

        async def scenario():
            store = FlakyStore(tmp_path / "round.json")
            gateway = await _gateway(
                store=store, checkpoint_every_seconds=0.05
            )
            sender = await AsyncReportSender.connect(
                "127.0.0.1", gateway.port, _contract(), sender_id=SENDER_ONE
            )
            async with sender:
                await sender.send_encoded(frames[0])  # acked
                store.fail = True
                for _ in range(200):  # the next timer tick must fail
                    if gateway._fold_error is not None:
                        break
                    await asyncio.sleep(0.02)
                assert gateway._fold_error is not None
                with pytest.raises(TransportError, match="aggregation"):
                    await sender.send_encoded(frames[1])
            with pytest.raises(TransportError, match="incomplete"):
                await asyncio.wait_for(
                    gateway.wait_for_users(1000), timeout=5
                )
            store.fail = False  # let stop() cut its final checkpoint
            await gateway.stop()
            snapshot = gateway.stats_snapshot()
            store.close()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot["counters"]["frames_accepted"] == 1
        rejected = snapshot["metrics"]["gateway_frames_rejected_total"]
        assert rejected["values"].get("reason=poisoned") == 1.0

    def test_auto_time_trigger_is_evaluated_on_ingest_not_idle(
        self, tmp_path
    ):
        """The AutoCheckpointer's time trigger fires on the first frame
        after the period elapsed — never while the server sits idle."""
        from repro.storage import AutoCheckpointer

        clock = _FakeClock()
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        store = JsonFileStore(tmp_path / "auto.json")
        auto = AutoCheckpointer(
            server, store, every_seconds=5.0, clock=clock
        )
        clock.advance(100)  # long idle: zero new frames, zero writes
        assert auto.checkpoints_written == 0
        assert store.recover() is None
        auto.ingest_encoded(_frames(13, users=30, batches=1)[0])
        assert auto.checkpoints_written == 1
        store.close()

    def test_auto_checkpointer_telemetry_agrees_with_folds(self, tmp_path):
        """Counters triangulate: auto checkpoints written == the plain
        counter, and the instrumented server's fold totals match the
        frames actually ingested."""
        from repro.storage import AutoCheckpointer
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        server.attach_telemetry(registry)
        store = JsonFileStore(tmp_path / "auto.json")
        auto = AutoCheckpointer(
            server, store, every_frames=2, metrics=registry
        )
        frames = _frames(14, users=120, batches=4)
        for frame in frames:
            auto.ingest_encoded(frame)
        assert auto.checkpoints_written == 2
        shot = registry.snapshot()
        assert shot["auto_checkpoints_written_total"]["values"][""] == 2.0
        assert shot["auto_checkpoint_seconds"]["values"][""]["count"] == 2
        assert shot["server_batches_folded_total"]["values"][""] == 4.0
        assert shot["server_users_folded_total"]["values"][""] == 120.0
        # the store was auto-instrumented into the same registry
        saves = shot["storage_save_seconds"]["values"]["backend=file"]
        assert saves["count"] == 2
        assert server.users == 120
        store.close()


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRestoreValidation:
    def test_foreign_contract_names_both_fingerprints(self, tmp_path):
        """Satellite: a mismatched checkpoint fails loudly, with both
        fingerprints in the message."""

        stranger = LDPServer(SCHEMA, epsilon=9.0, protocols=SPEC)
        store = JsonFileStore(tmp_path / "round.json")
        store.save(
            round_checkpoint_document(stranger.state_dict(), {}, 0)
        )

        async def scenario():
            gateway = await _gateway(store=store)
            await gateway.stop()

        with pytest.raises(ContractMismatchError) as excinfo:
            asyncio.run(scenario())
        message = str(excinfo.value)
        assert stranger.contract.fingerprint in message
        assert _contract().fingerprint in message

    def test_corrupt_store_raises_typed_error_on_start(self, tmp_path):
        path = tmp_path / "round.json"
        path.write_text("definitely { not json")
        store = JsonFileStore(path)

        async def scenario():
            gateway = await _gateway(store=store)
            await gateway.stop()

        with pytest.raises(CheckpointCorruptError):
            asyncio.run(scenario())

    def test_structurally_drifted_checkpoint_rejected(self, tmp_path):
        store = JsonFileStore(tmp_path / "round.json")
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        document = round_checkpoint_document(server.state_dict(), {}, 0)
        document["progress"] = {"ab": -3}  # negative watermark
        store.save(document)
        with pytest.raises(CheckpointCorruptError, match="watermark"):
            parse_round_checkpoint(store.load(), _contract())

    def test_round_checkpoint_round_trips(self):
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        progress = {SENDER_ONE: 4, SENDER_TWO: 9}
        document = round_checkpoint_document(
            server.state_dict(), progress, 13
        )
        state, parsed, frames = parse_round_checkpoint(
            document, _contract()
        )
        assert parsed == progress
        assert frames == 13
        restored = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        restored.load_state_dict(state)
        assert restored.users == 0


class TestReplayRetry:
    def test_replay_rides_out_a_gateway_restart(self, tmp_path):
        """replay_frames keeps trying while the gateway is down."""

        frames = _frames(9, batches=3)

        async def scenario():
            store = SegmentLogStore(tmp_path / "round-log")
            gateway = await _gateway(store=store, checkpoint_every=1)
            port = gateway.port
            partial = await AsyncReportSender.connect(
                "127.0.0.1", port, _contract(), sender_id=SENDER_ONE
            )
            async with partial:
                await partial.send_encoded(frames[0])
            await _crash(gateway)

            async def restart_later():
                await asyncio.sleep(0.3)
                server = ShardedServer(
                    SCHEMA, EPSILON, protocols=SPEC, shards=2
                )
                replacement = CollectionGateway(
                    server, queue_depth=2, store=store,
                    checkpoint_every_frames=1,
                )
                await replacement.start("127.0.0.1", port)
                return replacement

            restart = asyncio.ensure_future(restart_later())
            sender = await replay_frames(
                "127.0.0.1",
                port,
                _contract(),
                frames,
                SENDER_ONE,
                attempts=20,
                retry_delay=0.1,
            )
            replacement = await restart
            await replacement.stop()
            estimate = replacement.estimate()
            store.close()
            return estimate, sender

        estimate, sender = asyncio.run(scenario())
        assert sender.frames_skipped == 1
        assert sender.frames_sent == len(frames) - 1
        _assert_estimates_equal(estimate, _reference([frames]))

    def test_exhausted_attempts_enumerate_every_attempt(self):
        """Satellite: the final error names the attempt count and each
        attempt number — not just the last failure."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()

        async def scenario():
            with pytest.raises(TransportError) as excinfo:
                await replay_frames(
                    "127.0.0.1",
                    dead_port,
                    _contract(),
                    _frames(11, batches=1),
                    SENDER_ONE,
                    attempts=3,
                    retry_delay=0.01,
                )
            return str(excinfo.value)

        message = asyncio.run(scenario())
        assert "3 attempt(s)" in message
        # all three refusals collapse into one distinct error, with
        # every attempt number listed against it
        assert "attempts 1,2,3" in message

    def test_exhausted_attempts_report_all_distinct_errors(self):
        """Satellite: a round that bounced off *different* problems
        shows each of them, in first-seen order, with its attempts —
        intermediate errors are not swallowed by the final one."""
        from unittest import mock

        from repro.telemetry import MetricsRegistry
        from repro.transport.sender import AsyncReportSender as Sender

        errors = [
            TransportError("handshake refused: gateway is stopping"),
            ConnectionRefusedError("connection refused"),
            ConnectionRefusedError("connection refused"),
        ]

        async def failing_connect(*args, **kwargs):
            raise errors.pop(0)

        registry = MetricsRegistry()

        async def scenario():
            with mock.patch.object(
                Sender, "connect", side_effect=failing_connect
            ):
                with pytest.raises(TransportError) as excinfo:
                    await replay_frames(
                        "127.0.0.1",
                        1,
                        _contract(),
                        _frames(11, batches=1),
                        SENDER_ONE,
                        attempts=3,
                        retry_delay=0.01,
                        metrics=registry,
                    )
            return excinfo.value

        error = asyncio.run(scenario())
        message = str(error)
        assert "3 attempt(s)" in message
        assert "attempt 1: handshake refused: gateway is stopping" in message
        assert "attempts 2,3: connection refused" in message
        # first-seen order: the handshake refusal comes first
        assert message.index("handshake refused") < message.index(
            "connection refused"
        )
        # chained from the last underlying failure
        assert isinstance(error.__cause__, ConnectionRefusedError)
        shot = registry.snapshot()
        assert shot["sender_retries_total"]["values"][""] == 3.0

    def test_typed_rejections_are_not_retried(self):
        async def scenario():
            gateway = await _gateway()
            rogue = LDPClient(SCHEMA, epsilon=9.0, protocols=SPEC)
            with pytest.raises(ContractMismatchError):
                await replay_frames(
                    "127.0.0.1",
                    gateway.port,
                    rogue.contract,
                    _frames(10, batches=1),
                    SENDER_ONE,
                    attempts=50,
                    retry_delay=0.1,
                )
            rejected = gateway.handshakes_rejected
            await gateway.stop()
            return rejected

        # One handshake attempt, not fifty: the mismatch is final.
        assert asyncio.run(scenario()) == 1
