"""Tests for the L1/L2 regularizers and proximal operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hdr4me import (
    L1Regularizer,
    L2Regularizer,
    get_regularizer,
    ridge_shrink,
    soft_threshold,
)

FINITE = st.floats(min_value=-100, max_value=100, allow_nan=False)
NONNEG = st.floats(min_value=0, max_value=100, allow_nan=False)


class TestSoftThreshold:
    def test_kills_small_values(self):
        out = soft_threshold(np.array([0.5, -0.5]), np.array([1.0, 1.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_shrinks_large_values(self):
        out = soft_threshold(np.array([3.0, -3.0]), np.array([1.0, 1.0]))
        np.testing.assert_allclose(out, [2.0, -2.0])

    def test_paper_eq34_cases(self):
        # The three branches of Eq. 34.
        lam = np.array([1.0])
        assert soft_threshold(np.array([2.5]), lam)[0] == pytest.approx(1.5)
        assert soft_threshold(np.array([0.7]), lam)[0] == 0.0
        assert soft_threshold(np.array([-2.5]), lam)[0] == pytest.approx(-1.5)

    def test_scalar_threshold_broadcasts(self):
        out = soft_threshold(np.array([2.0, -0.1, 5.0]), 1.0)
        np.testing.assert_allclose(out, [1.0, 0.0, 4.0])

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            soft_threshold(np.array([1.0]), np.array([-0.1]))

    @given(z=FINITE, lam=NONNEG)
    @settings(max_examples=60, deadline=None)
    def test_property_prox_of_l1(self, z, lam):
        """S(z, lam) minimizes 0.5 (x-z)^2 + lam |x| (checked on a grid)."""
        out = float(soft_threshold(np.array([z]), np.array([lam]))[0])
        objective = lambda x: 0.5 * (x - z) ** 2 + lam * abs(x)
        grid = np.linspace(z - 2 * lam - 1, z + 2 * lam + 1, 2001)
        assert objective(out) <= np.min([objective(x) for x in grid]) + 1e-6

    @given(z=FINITE, lam=NONNEG)
    @settings(max_examples=60, deadline=None)
    def test_property_shrinks_toward_zero(self, z, lam):
        out = float(soft_threshold(np.array([z]), np.array([lam]))[0])
        assert abs(out) <= abs(z) + 1e-12
        assert out * z >= 0.0  # never flips sign


class TestRidgeShrink:
    def test_paper_eq42(self):
        out = ridge_shrink(np.array([3.0]), np.array([1.0]))
        assert out[0] == pytest.approx(1.0)

    def test_zero_weight_is_identity(self):
        values = np.array([1.0, -2.0, 0.3])
        np.testing.assert_array_equal(ridge_shrink(values, 0.0), values)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ridge_shrink(np.array([1.0]), np.array([-1.0]))

    @given(z=FINITE, lam=NONNEG)
    @settings(max_examples=60, deadline=None)
    def test_property_prox_of_weighted_ridge(self, z, lam):
        """z/(2 lam + 1) minimizes 0.5 (x-z)^2 + lam x^2 exactly."""
        out = float(ridge_shrink(np.array([z]), np.array([lam]))[0])
        # First-order condition: (x - z) + 2 lam x = 0.
        assert (out - z) + 2 * lam * out == pytest.approx(0.0, abs=1e-9)

    @given(z=FINITE, lam=NONNEG)
    @settings(max_examples=60, deadline=None)
    def test_property_contraction(self, z, lam):
        out = float(ridge_shrink(np.array([z]), np.array([lam]))[0])
        assert abs(out) <= abs(z) + 1e-12


class TestRegularizerObjects:
    def test_get_regularizer(self):
        assert isinstance(get_regularizer("l1"), L1Regularizer)
        assert isinstance(get_regularizer("L2"), L2Regularizer)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_regularizer("l3")

    def test_l1_penalty(self):
        reg = L1Regularizer()
        value = reg.penalty(np.array([1.0, -2.0]), np.array([0.5, 1.0]))
        assert value == pytest.approx(0.5 + 2.0)

    def test_l2_penalty(self):
        reg = L2Regularizer()
        value = reg.penalty(np.array([1.0, -2.0]), np.array([0.5, 1.0]))
        assert value == pytest.approx(0.5 * 1 + 1.0 * 4)

    def test_prox_delegation(self):
        z = np.array([2.0, -3.0])
        lam = np.array([1.0, 1.0])
        np.testing.assert_allclose(
            L1Regularizer().prox(z, lam), soft_threshold(z, lam)
        )
        np.testing.assert_allclose(
            L2Regularizer().prox(z, lam), ridge_shrink(z, lam)
        )
