"""Tests for the Laplace mechanism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import LaplaceMechanism, monte_carlo_moments


class TestScale:
    def test_scale_formula(self):
        assert LaplaceMechanism().scale(0.5) == pytest.approx(4.0)

    def test_custom_sensitivity(self):
        assert LaplaceMechanism(sensitivity=1.0).scale(0.5) == pytest.approx(2.0)

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(sensitivity=0.0)


class TestMoments:
    def test_variance_formula(self):
        mech = LaplaceMechanism()
        lam = mech.scale(1.0)
        assert mech.noise_variance(1.0) == pytest.approx(2.0 * lam**2)

    def test_unbiased(self, rng):
        mech = LaplaceMechanism()
        bias_mc, _ = monte_carlo_moments(mech, 0.5, 1.0, 200_000, rng)
        assert bias_mc == pytest.approx(0.0, abs=0.03)

    def test_variance_monte_carlo(self, rng):
        mech = LaplaceMechanism()
        _, var_mc = monte_carlo_moments(mech, -0.7, 2.0, 200_000, rng)
        assert var_mc == pytest.approx(mech.noise_variance(2.0), rel=0.03)

    def test_variance_independent_of_value(self):
        mech = LaplaceMechanism()
        values = np.linspace(-1, 1, 9)
        variances = mech.conditional_variance(values, 0.7)
        assert np.allclose(variances, variances[0])

    def test_third_moment_closed_form(self, rng):
        mech = LaplaceMechanism()
        lam = mech.scale(1.0)
        analytic = mech.abs_third_central_moment(np.array([0.0]), 1.0)[0]
        assert analytic == pytest.approx(6.0 * lam**3)
        draws = rng.laplace(0.0, lam, size=400_000)
        empirical = np.mean(np.abs(draws) ** 3)
        assert empirical == pytest.approx(analytic, rel=0.05)


class TestPdf:
    def test_pdf_integrates_to_one(self):
        mech = LaplaceMechanism()
        lam = mech.scale(1.0)
        x = np.linspace(-40 * lam, 40 * lam, 400_001)
        total = np.trapezoid(mech.pdf(x, 1.0), x)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_pdf_symmetric(self):
        mech = LaplaceMechanism()
        x = np.linspace(0.1, 5, 20)
        np.testing.assert_allclose(mech.pdf(x, 1.0), mech.pdf(-x, 1.0))

    def test_ldp_ratio_bounded_by_exp_eps(self):
        # The defining LDP property: for any output x and inputs t1, t2,
        # pdf(x - t1) / pdf(x - t2) <= exp(eps).
        mech = LaplaceMechanism()
        eps = 0.8
        outputs = np.linspace(-6, 6, 101)
        for t1 in (-1.0, 0.0, 1.0):
            for t2 in (-1.0, 0.3, 1.0):
                ratio = mech.pdf(outputs - t1, eps) / mech.pdf(outputs - t2, eps)
                assert ratio.max() <= np.exp(eps) * (1 + 1e-9)
