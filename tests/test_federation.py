"""Tests for the hierarchical federation tier (ISSUE 8).

The load-bearing invariant: edges folding client frames locally and
pushing merged state snapshots upstream yield a root estimate
**bit-identical** to one-shot in-process ingestion of every client's
reports — for any edge count, any client-to-edge split, duplicate or
replayed pushes, and across edge *and* root crash-restarts. Plus the
boundary hardening one tier up: contract mismatches refused at the
``STATE`` handshake, corrupt push payloads refused by their CRC seal
before touching aggregation state, report streams and push streams
mutually rejected with typed errors, and TLS on either hop changing the
estimate by exactly nothing.
"""

from __future__ import annotations

import asyncio
import shutil
import subprocess

import numpy as np
import pytest

from repro.exceptions import (
    CheckpointCorruptError,
    ContractMismatchError,
    StorageError,
    TransportError,
    WireFormatError,
)
from repro.federation import (
    EdgeAggregator,
    RootAggregator,
    StatePusher,
    decode_state_push,
    encode_state_push,
    federation_checkpoint_document,
    parse_federation_checkpoint,
    serve_root,
    state_dict_delta,
)
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
)
from repro.storage import JsonFileStore
from repro.transport import AsyncReportSender, replay_frames, request_stats

SCHEMA = Schema(
    [
        NumericAttribute("a"),
        NumericAttribute("b"),
        CategoricalAttribute("c", n_categories=5),
    ]
)
SPEC = {"c": "oue"}
EPSILON = 2.0


def _contract():
    return LDPClient(SCHEMA, EPSILON, protocols=SPEC).contract


def _frames(seed, users=120, batches=3):
    gen = np.random.default_rng(seed)
    records = np.column_stack(
        [
            gen.uniform(-1, 1, users),
            gen.uniform(-1, 1, users),
            gen.integers(0, 5, users),
        ]
    )
    client = LDPClient(SCHEMA, EPSILON, protocols=SPEC)
    return [
        client.report_encoded(chunk, gen)
        for chunk in np.array_split(records, batches)
    ]


def _reference(frame_lists):
    server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
    for frames in frame_lists:
        for frame in frames:
            server.ingest_encoded(frame)
    return server.estimate()


def _assert_estimates_equal(a, b, context=""):
    assert a.users == b.users, context
    for x, y in zip(a.attributes, b.attributes):
        assert x.reports == y.reports, (context, x.name)
        assert np.array_equal(x.raw, y.raw), (context, x.name)


def _sender_id(n):
    return bytes([n]) * 16


def _edge_id(n):
    return bytes([0xE0, n]) * 8


async def _root(**kwargs):
    return await serve_root(
        SCHEMA, EPSILON, protocols=SPEC, host="127.0.0.1", port=0, **kwargs
    )


async def _edge(root_port, **kwargs):
    kwargs.setdefault("shards", 2)
    edge = EdgeAggregator(SCHEMA, EPSILON, protocols=SPEC, **kwargs)
    return await edge.start("127.0.0.1", root_port)


class TestStatePushCodec:
    def test_round_trip(self):
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        server.ingest_encoded(_frames(1)[0])
        payload = encode_state_push(
            server.state_dict(), {"frames_accepted": 1}
        )
        push = decode_state_push(payload, server.contract)
        assert push.counters == {"frames_accepted": 1}
        assert push.kind == "snapshot"
        assert push.base_epoch == 0
        restored = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        restored.load_state_dict(push.state)
        _assert_estimates_equal(server.estimate(), restored.estimate())

    def test_crc_seal_catches_corruption(self):
        payload = bytearray(
            encode_state_push(
                LDPServer(SCHEMA, EPSILON, protocols=SPEC).state_dict()
            )
        )
        payload[10] ^= 0xFF
        with pytest.raises(WireFormatError, match="CRC"):
            decode_state_push(bytes(payload), _contract())
        with pytest.raises(WireFormatError, match="shorter"):
            decode_state_push(b"\x01", _contract())

    def test_foreign_contract_refused_by_fingerprint(self):
        foreign = LDPServer(SCHEMA, epsilon=9.0, protocols=SPEC)
        payload = encode_state_push(foreign.state_dict())
        with pytest.raises(ContractMismatchError, match="state push"):
            decode_state_push(payload, _contract())

    def test_malformed_documents_refused(self):
        import json
        import struct
        import zlib

        def sealed(document):
            blob = json.dumps(document).encode()
            return struct.pack("<I", zlib.crc32(blob) & 0xFFFFFFFF) + blob

        contract = _contract()
        state = LDPServer(SCHEMA, EPSILON, protocols=SPEC).state_dict()
        good = {
            "format": "repro-federation-state-push",
            "push_version": 1,
            "fingerprint": contract.fingerprint,
            "state": state,
            "counters": {},
        }
        for damage in (
            {"format": "nope"},
            {"push_version": 99},
            {"fingerprint": "zz"},
            {"state": "not-a-dict"},
            {"counters": []},
        ):
            with pytest.raises(WireFormatError):
                decode_state_push(sealed({**good, **damage}), contract)
        with pytest.raises(WireFormatError, match="JSON"):
            decode_state_push(
                struct.pack("<I", zlib.crc32(b"{") & 0xFFFFFFFF) + b"{",
                contract,
            )
        with pytest.raises(WireFormatError, match="state_dict"):
            encode_state_push({"no": "fingerprint"})


class TestDeltaPushes:
    """Delta pushes: exact difference upstream, exact merge at the root."""

    def _grown_pair(self, seed=40):
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        frames = _frames(seed=seed)
        server.ingest_encoded(frames[0])
        previous = server.state_dict()
        for frame in frames[1:]:
            server.ingest_encoded(frame)
        return server, previous, server.state_dict()

    def test_delta_merges_back_to_current_exactly(self):
        server, previous, current = self._grown_pair()
        delta = state_dict_delta(current, previous)
        merged = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        merged.load_state_dict(previous)
        merged.merge_state_dict(delta)
        assert merged.state_dict() == current
        _assert_estimates_equal(server.estimate(), merged.estimate())

    def test_delta_refuses_non_prefix_and_foreign_pairs(self):
        _, previous, current = self._grown_pair()
        with pytest.raises(ValueError, match="prefix|users"):
            state_dict_delta(previous, current)  # swapped: users go down
        foreign = LDPServer(SCHEMA, epsilon=9.0, protocols=SPEC)
        with pytest.raises(ValueError, match="fingerprint|round"):
            state_dict_delta(current, foreign.state_dict())
        with pytest.raises(ValueError, match="differs|malformed|mapping"):
            state_dict_delta(current, {"format": current["format"]})
        truncated = {
            key: current[key]
            for key in ("format", "state_version", "fingerprint")
        }
        with pytest.raises(ValueError, match="malformed"):
            state_dict_delta(current, truncated)

    def test_push_kind_validation(self):
        _, _, current = self._grown_pair()
        contract = _contract()
        with pytest.raises(WireFormatError, match="kind"):
            encode_state_push(current, kind="increment")
        with pytest.raises(WireFormatError, match="base"):
            encode_state_push(current, kind="delta", base_epoch=0)
        with pytest.raises(WireFormatError, match="base"):
            encode_state_push(current, kind="snapshot", base_epoch=3)
        push = decode_state_push(
            encode_state_push(current, kind="delta", base_epoch=4), contract
        )
        assert (push.kind, push.base_epoch) == ("delta", 4)

    def test_v2_payload_is_much_smaller_than_v1(self):
        """The v2 token + zlib transform cuts push bytes ~4x, losslessly."""
        import json
        import struct
        import zlib

        _, _, current = self._grown_pair()
        contract = _contract()
        v2 = encode_state_push(current)
        blob = json.dumps(
            {
                "format": "repro-federation-state-push",
                "push_version": 1,
                "fingerprint": contract.fingerprint,
                "state": current,
                "counters": {},
            },
            sort_keys=True,
        ).encode()
        v1 = struct.pack("<I", zlib.crc32(blob) & 0xFFFFFFFF) + blob
        assert len(v2) * 3 < len(v1)
        assert decode_state_push(v2, contract).state == current
        assert decode_state_push(v1, contract).state == current

    def test_malformed_accumulator_tokens_refused(self):
        import json
        import struct
        import zlib

        _, _, current = self._grown_pair()
        contract = _contract()
        for token in ("12p3", "0x1", "1pp2", "1p-4", "zzp3", ""):
            damaged = json.loads(json.dumps(current))
            damaged["attributes"]["a"]["sums"]["sums"] = [token]
            blob = zlib.compress(
                json.dumps(
                    {
                        "format": "repro-federation-state-push",
                        "push_version": 2,
                        "fingerprint": contract.fingerprint,
                        "kind": "snapshot",
                        "base_epoch": 0,
                        "state": damaged,
                        "counters": {},
                    },
                    sort_keys=True,
                ).encode()
            )
            payload = struct.pack("<I", zlib.crc32(blob) & 0xFFFFFFFF) + blob
            if token == "12p3":  # well-formed token: decodes to 0x12 << 3
                push = decode_state_push(payload, contract)
                assert push.state["attributes"]["a"]["sums"]["sums"] == [144]
            else:
                with pytest.raises(WireFormatError, match="token"):
                    decode_state_push(payload, contract)

    def test_root_applies_delta_bit_identically(self):
        async def scenario():
            root = await _root()
            server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
            frames = _frames(seed=41)
            server.ingest_encoded(frames[0])
            previous = server.state_dict()
            async with await StatePusher.connect(
                "127.0.0.1", root.port, server.contract, _edge_id(1)
            ) as pusher:
                assert await pusher.push(previous) == 1
                for frame in frames[1:]:
                    server.ingest_encoded(frame)
                delta = state_dict_delta(server.state_dict(), previous)
                epoch = await pusher.push(
                    delta, kind="delta", base_epoch=1
                )
                assert epoch == 2
                assert pusher.acked_epoch == 2
            await root.stop()
            return root, [frames]

        root, frame_lists = asyncio.run(scenario())
        assert root.deltas_applied == 1
        assert root.pushes_accepted == 2
        _assert_estimates_equal(_reference(frame_lists), root.estimate())

    def test_root_refuses_delta_on_wrong_or_missing_base(self):
        async def scenario():
            root = await _root()
            server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
            server.ingest_encoded(_frames(seed=42)[0])
            state = server.state_dict()
            delta = state_dict_delta(state, state)
            # no snapshot on record yet: any delta is unappliable
            pusher = await StatePusher.connect(
                "127.0.0.1", root.port, server.contract, _edge_id(1)
            )
            with pytest.raises(WireFormatError, match="no state"):
                await pusher.push(delta, kind="delta", base_epoch=1)
            # root folded epoch 1; a delta naming another base is refused
            async with await StatePusher.connect(
                "127.0.0.1", root.port, server.contract, _edge_id(1)
            ) as good:
                await good.push(state)
            pusher = await StatePusher.connect(
                "127.0.0.1", root.port, server.contract, _edge_id(1)
            )
            with pytest.raises(WireFormatError, match="full snapshot"):
                await pusher.push(delta, kind="delta", base_epoch=7)
            await root.stop()
            return root

        root = asyncio.run(scenario())
        assert root.pushes_rejected == 2
        assert root.deltas_applied == 0

    def test_edge_ships_deltas_then_falls_back_after_reconnect(self):
        """An edge's steady state is deltas; a lost ack forces a snapshot."""

        async def scenario():
            root = await _root()
            # no automatic push trigger: this test drives pushes by hand
            edge = await _edge(root.port, edge_id=_edge_id(9))
            frames = _frames(seed=43)
            await replay_frames(
                "127.0.0.1", edge.port, root.contract, frames, _sender_id(1)
            )
            await edge.gateway.drain()
            first = await edge.push_now()
            second = await edge.push_now()  # same connection: delta
            assert second == first + 1
            deltas_before = edge.delta_pushes
            # simulate an edge that lost its base (crash-restart)
            edge._base_state = None
            edge._base_epoch = 0
            await edge.push_now()  # full snapshot again, still folded
            await edge.stop()
            await root.stop()
            return root, edge, deltas_before, [frames]

        root, edge, deltas_before, frame_lists = asyncio.run(scenario())
        assert deltas_before >= 1
        assert root.deltas_applied == edge.delta_pushes
        assert root.pushes_rejected == 0
        _assert_estimates_equal(_reference(frame_lists), root.estimate())


class TestFederationCheckpointCodec:
    def test_round_trip(self):
        contract = _contract()
        server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
        server.ingest_encoded(_frames(2)[0])
        edges = {_edge_id(1): (3, server.state_dict(), {"bytes": 12})}
        document = federation_checkpoint_document(contract, edges)
        assert parse_federation_checkpoint(document, contract) == edges

    def test_damage_is_typed(self):
        contract = _contract()
        state = LDPServer(SCHEMA, EPSILON, protocols=SPEC).state_dict()
        good = federation_checkpoint_document(
            contract, {_edge_id(1): (1, state, {})}
        )
        for damage in (
            {"format": "nope"},
            {"federation_version": 9},
            {"fingerprint": "zz"},
            {"edges": None},
            {"edges": {"xx": {"epoch": 1, "state": state, "counters": {}}}},
            {"edges": {"aa": "not-a-record"}},
            {"edges": {"aa": {"epoch": 0, "state": state, "counters": {}}}},
            {"edges": {"aa": {"epoch": True, "state": state, "counters": {}}}},
            {"edges": {"aa": {"epoch": 1, "state": 3, "counters": {}}}},
            {"edges": {"aa": {"epoch": 1, "state": state, "counters": 3}}},
        ):
            with pytest.raises(CheckpointCorruptError):
                parse_federation_checkpoint({**good, **damage}, contract)
        foreign = LDPServer(SCHEMA, epsilon=9.0, protocols=SPEC)
        with pytest.raises(ContractMismatchError):
            parse_federation_checkpoint(
                federation_checkpoint_document(foreign.contract, {}), contract
            )


class TestFederatedBitIdentity:
    def test_three_edges_match_oneshot(self):
        """Acceptance: clients split across edges == one-shot, bitwise."""

        async def scenario():
            root = await _root()
            edges = [
                await _edge(root.port, push_every_frames=2, edge_id=_edge_id(n))
                for n in range(3)
            ]
            contract = root.contract
            frame_lists = []
            for n, edge in enumerate(edges):
                frames = _frames(seed=10 + n)
                frame_lists.append(frames)
                await replay_frames(
                    "127.0.0.1", edge.port, contract, frames, _sender_id(n + 1)
                )
            for edge in edges:
                await edge.stop()
            await root.wait_for_users(3 * 120)
            await root.stop()
            return root, frame_lists

        root, frame_lists = asyncio.run(scenario())
        assert root.edges == 3
        assert root.pushes_rejected == 0
        _assert_estimates_equal(_reference(frame_lists), root.estimate())

    def test_merge_is_edge_order_invariant_and_repeatable(self):
        async def scenario():
            root = await _root()
            for n in range(2):
                edge = await _edge(root.port, edge_id=_edge_id(n))
                await replay_frames(
                    "127.0.0.1",
                    edge.port,
                    root.contract,
                    _frames(seed=20 + n),
                    _sender_id(n + 1),
                )
                await edge.stop()
            await root.wait_for_users(240)
            await root.stop()
            return root

        root = asyncio.run(scenario())
        # estimate() merges fresh each call: repeatable, source untouched
        _assert_estimates_equal(root.estimate(), root.estimate())

    def test_duplicate_pushes_are_deduped_not_double_counted(self):
        """A pusher replaying already-folded epochs is acked, not folded."""

        async def scenario():
            root = await _root()
            server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
            frames = _frames(seed=30)
            for frame in frames:
                server.ingest_encoded(frame)
            state = server.state_dict()
            async with await StatePusher.connect(
                "127.0.0.1", root.port, server.contract, _edge_id(1)
            ) as pusher:
                assert pusher.resume_epoch == 0
                assert await pusher.push(state) == 1
            # reconnect: watermark resumed, but force a replay of epoch 1
            pusher = await StatePusher.connect(
                "127.0.0.1", root.port, server.contract, _edge_id(1)
            )
            assert pusher.resume_epoch == 1
            pusher._next_epoch = 1  # simulate an edge that lost the ack
            async with pusher:
                assert await pusher.push(state) == 1  # acked ...
                assert await pusher.push(state) == 2  # ... then continues
            await root.stop()
            return root, [frames]

        root, frame_lists = asyncio.run(scenario())
        assert root.pushes_deduped == 1
        assert root.pushes_accepted == 2
        _assert_estimates_equal(_reference(frame_lists), root.estimate())

    def test_cumulative_pushes_keep_only_the_newest_epoch(self):
        """Each push covers all prior ones; the root never double-folds."""

        async def scenario():
            root = await _root()
            edge = await _edge(
                root.port, push_every_frames=1, edge_id=_edge_id(7)
            )
            frames = _frames(seed=31)
            await replay_frames(
                "127.0.0.1", edge.port, root.contract, frames, _sender_id(1)
            )
            # the frame trigger fires asynchronously; let it land so the
            # round provably contains a mid-round push AND the final one
            for _ in range(500):
                if edge.pushes_completed >= 1:
                    break
                await asyncio.sleep(0.01)
            assert edge.pushes_completed >= 1
            await edge.stop()
            await root.stop()
            return root, [frames], edge

        root, frame_lists, edge = asyncio.run(scenario())
        assert root.pushes_accepted >= 2  # mid-round push(es) + the final one
        assert root.edges == 1
        assert edge.pushes_completed == root.pushes_accepted
        _assert_estimates_equal(_reference(frame_lists), root.estimate())


class TestFederationHandshake:
    def test_report_stream_refused_by_root(self):
        """A report sender dialing a root gets a helpful typed error."""

        async def scenario():
            root = await _root()
            with pytest.raises(TransportError, match="not report frames"):
                await AsyncReportSender.connect(
                    "127.0.0.1", root.port, _contract()
                )
            rejected = root.handshakes_rejected
            await root.stop()
            return rejected

        assert asyncio.run(scenario()) == 1

    def test_push_stream_refused_by_gateway(self):
        """A pusher dialing a plain collection gateway is refused too."""
        from repro.session import ShardedServer
        from repro.transport import serve_collection

        async def scenario():
            server = ShardedServer(SCHEMA, EPSILON, protocols=SPEC, shards=2)
            gateway = await serve_collection(server, "127.0.0.1", 0)
            with pytest.raises(TransportError, match="bad magic"):
                await StatePusher.connect(
                    "127.0.0.1", gateway.port, _contract(), _edge_id(1)
                )
            await gateway.stop()

        asyncio.run(scenario())

    def test_contract_mismatch_refused_before_any_payload(self):
        async def scenario():
            root = await _root()
            foreign = LDPServer(SCHEMA, epsilon=9.0, protocols=SPEC)
            with pytest.raises(ContractMismatchError, match="contract"):
                await StatePusher.connect(
                    "127.0.0.1", root.port, foreign.contract, _edge_id(1)
                )
            assert root.pushes_accepted == 0
            rejected = root.handshakes_rejected
            await root.stop()
            return rejected

        assert asyncio.run(scenario()) == 1

    def test_concurrent_connections_under_one_edge_id_refused(self):
        async def scenario():
            root = await _root()
            first = await StatePusher.connect(
                "127.0.0.1", root.port, _contract(), _edge_id(3)
            )
            with pytest.raises(TransportError, match="already connected"):
                await StatePusher.connect(
                    "127.0.0.1", root.port, _contract(), _edge_id(3)
                )
            await first.close()
            await root.stop()

        asyncio.run(scenario())

    def test_corrupt_push_refused_without_touching_state(self):
        """A damaged payload is answered with a typed status; the edge
        table stays clean and the connection is closed."""
        from repro.transport.framing import write_frame

        async def scenario():
            root = await _root()
            pusher = await StatePusher.connect(
                "127.0.0.1", root.port, _contract(), _edge_id(4)
            )
            payload = bytearray(
                encode_state_push(
                    LDPServer(SCHEMA, EPSILON, protocols=SPEC).state_dict()
                )
            )
            payload[6] ^= 0xFF
            write_frame(pusher._writer, 1, bytes(payload))
            await pusher._writer.drain()
            from repro.transport.framing import read_status

            status, message = await read_status(pusher._reader)
            await pusher.close()
            counters = (root.pushes_rejected, root.pushes_accepted, root.edges)
            await root.stop()
            return status, message, counters

        status, message, (rejected, accepted, edges) = asyncio.run(scenario())
        assert status != 0 and "CRC" in message
        assert (rejected, accepted, edges) == (1, 0, 0)

    def test_stats_request_served_by_root(self):
        """The admin STATS poll works against a root and aggregates the
        per-edge counters across the topology."""

        async def scenario():
            root = await _root()
            edge = await _edge(root.port, edge_id=_edge_id(5))
            await replay_frames(
                "127.0.0.1",
                edge.port,
                root.contract,
                _frames(seed=40),
                _sender_id(1),
            )
            await edge.stop()
            snapshot = await request_stats("127.0.0.1", root.port)
            await root.stop()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot["counters"]["edges"] == 1
        assert snapshot["counters"]["users"] == 120
        assert snapshot["counters"]["rejections_total"] == 0
        assert snapshot["edge_totals"]["frames_accepted"] == 3
        (record,) = snapshot["edges"].values()
        assert record["users"] == 120


class TestCrashRecovery:
    def test_root_restart_resumes_the_round(self, tmp_path):
        """A new root process over the same store continues the round;
        the reconnecting edge hears its true watermark; the estimate is
        bit-identical to an uninterrupted round."""

        async def scenario():
            store = JsonFileStore(tmp_path / "root.json")
            root = await _root(store=store)
            server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
            frames = _frames(seed=50)
            server.ingest_encoded(frames[0])
            async with await StatePusher.connect(
                "127.0.0.1", root.port, server.contract, _edge_id(1)
            ) as pusher:
                await pusher.push(server.state_dict())
            # "crash": abandon the old root object entirely
            await root.stop()
            revived = await _root(store=store)
            assert revived.users == 120 // 3
            for frame in frames[1:]:
                server.ingest_encoded(frame)
            async with await StatePusher.connect(
                "127.0.0.1", revived.port, server.contract, _edge_id(1)
            ) as pusher:
                assert pusher.resume_epoch == 1  # recovered watermark
                await pusher.push(server.state_dict())
            await revived.stop()
            return revived, [frames]

        revived, frame_lists = asyncio.run(scenario())
        _assert_estimates_equal(_reference(frame_lists), revived.estimate())

    def test_edge_restart_resumes_from_checkpoint(self, tmp_path):
        """An edge killed mid-round resumes from its local store under
        the same edge id; its next cumulative push re-covers everything;
        the root dedups by epoch and the estimate stays exact."""

        async def scenario():
            root = await _root()
            store = JsonFileStore(tmp_path / "edge.json")
            edge = await _edge(
                root.port,
                store=store,
                checkpoint_every_frames=1,
                edge_id=_edge_id(9),
                push_every_frames=2,
            )
            frames = _frames(seed=60, batches=4)
            await replay_frames(
                "127.0.0.1",
                edge.port,
                root.contract,
                frames[:2],
                _sender_id(1),
            )
            await edge.gateway.drain()
            # "SIGKILL": no stop(), no final push — just drop the tasks
            await edge.gateway.stop(abort_connections=True)
            if edge._loop_task is not None:
                edge._loop_task.cancel()
            await edge._close_pusher()
            revived = await _edge(
                root.port,
                store=store,
                checkpoint_every_frames=1,
                edge_id=_edge_id(9),
                push_every_frames=2,
            )
            assert revived.users == 60  # recovered the folded half
            # the client replays its whole round; durable frames skipped
            await replay_frames(
                "127.0.0.1",
                revived.port,
                root.contract,
                frames,
                _sender_id(1),
            )
            await revived.stop()
            await root.wait_for_users(120)
            await root.stop()
            return root, [frames]

        root, frame_lists = asyncio.run(scenario())
        assert root.edges == 1
        assert root.pushes_rejected == 0
        _assert_estimates_equal(_reference(frame_lists), root.estimate())

    def test_durable_before_ack_poisons_on_store_failure(self, tmp_path):
        """A root that cannot persist a fold refuses the push and every
        later one — an acked epoch is never less durable than promised."""

        class BrokenStore(JsonFileStore):
            def save(self, document):
                raise StorageError("disk full")

        async def scenario():
            root = await _root(store=BrokenStore(tmp_path / "broken.json"))
            server = LDPServer(SCHEMA, EPSILON, protocols=SPEC)
            server.ingest_encoded(_frames(seed=70)[0])
            pusher = await StatePusher.connect(
                "127.0.0.1", root.port, server.contract, _edge_id(1)
            )
            with pytest.raises(TransportError, match="checkpoint failed"):
                await pusher.push(server.state_dict())
            with pytest.raises(TransportError, match="disk full"):
                await root.wait_for_users(1)
            counters = (root.pushes_accepted, root.pushes_rejected)
            await root.stop()
            return counters

        accepted, rejected = asyncio.run(scenario())
        assert accepted == 0
        assert rejected == 1

    def test_invalid_snapshot_never_replaces_a_good_one(self):
        """A push whose state fails restoration is refused pre-fold."""
        import json
        import struct
        import zlib

        async def scenario():
            root = await _root()
            contract = _contract()
            state = LDPServer(SCHEMA, EPSILON, protocols=SPEC).state_dict()
            state["users"] = -5  # structurally JSON, semantically broken
            blob = json.dumps(
                {
                    "format": "repro-federation-state-push",
                    "push_version": 1,
                    "fingerprint": contract.fingerprint,
                    "state": state,
                    "counters": {},
                }
            ).encode()
            payload = (
                struct.pack("<I", zlib.crc32(blob) & 0xFFFFFFFF) + blob
            )
            pusher = await StatePusher.connect(
                "127.0.0.1", root.port, contract, _edge_id(2)
            )
            from repro.transport.framing import read_status, write_frame

            write_frame(pusher._writer, 1, payload)
            await pusher._writer.drain()
            status, _ = await read_status(pusher._reader)
            await pusher.close()
            counters = (status, root.pushes_rejected, root.edges)
            await root.stop()
            return counters

        status, rejected, edges = asyncio.run(scenario())
        assert status != 0
        assert rejected == 1
        assert edges == 0


def _make_certs(directory):
    openssl = shutil.which("openssl")
    if openssl is None:
        pytest.skip("openssl CLI not available for test certificates")
    cert = directory / "cert.pem"
    key = directory / "key.pem"
    subprocess.run(
        [
            openssl,
            "req",
            "-x509",
            "-newkey",
            "rsa:2048",
            "-nodes",
            "-keyout",
            str(key),
            "-out",
            str(cert),
            "-days",
            "1",
            "-subj",
            "/CN=localhost",
            "-addext",
            "subjectAltName=IP:127.0.0.1,DNS:localhost",
        ],
        check=True,
        capture_output=True,
    )
    return cert, key


class TestTls:
    def test_both_hops_over_tls_stay_bit_identical(self, tmp_path):
        """Client→edge and edge→root both TLS: same bits out."""
        from repro.experiments.socket_round import (
            client_ssl_context,
            server_ssl_context,
        )

        cert, key = _make_certs(tmp_path)

        async def scenario():
            server_ctx = server_ssl_context(cert, key)
            client_ctx = client_ssl_context(cert)
            root = await _root(ssl=server_ctx)
            edge = EdgeAggregator(
                SCHEMA,
                EPSILON,
                protocols=SPEC,
                shards=2,
                edge_id=_edge_id(1),
                push_every_frames=2,
            )
            await edge.start(
                "127.0.0.1",
                root.port,
                ssl=server_ssl_context(cert, key),
                upstream_ssl=client_ctx,
            )
            frames = _frames(seed=80)
            await replay_frames(
                "127.0.0.1",
                edge.port,
                root.contract,
                frames,
                _sender_id(1),
                ssl=client_ssl_context(cert),
            )
            await edge.stop()
            await root.wait_for_users(120)
            await root.stop()
            return root, [frames]

        root, frame_lists = asyncio.run(scenario())
        assert root.pushes_rejected == 0
        _assert_estimates_equal(_reference(frame_lists), root.estimate())

    def test_plaintext_client_cannot_reach_a_tls_root(self, tmp_path):
        from repro.experiments.socket_round import server_ssl_context

        cert, key = _make_certs(tmp_path)

        async def scenario():
            root = await _root(ssl=server_ssl_context(cert, key))
            with pytest.raises((TransportError, ConnectionError, OSError)):
                await asyncio.wait_for(
                    StatePusher.connect(
                        "127.0.0.1", root.port, _contract(), _edge_id(1)
                    ),
                    timeout=5.0,
                )
            assert root.pushes_accepted == 0
            await root.stop(grace=0.2)

        asyncio.run(scenario())


class TestEdgeAggregatorBehaviour:
    def test_parameter_validation(self):
        for kwargs in (
            dict(push_every_frames=0),
            dict(push_every_seconds=0.0),
            dict(push_attempts=0),
        ):
            with pytest.raises(TransportError):
                EdgeAggregator(SCHEMA, EPSILON, protocols=SPEC, **kwargs)

    def test_stop_always_pushes_even_when_idle(self):
        """An edge that accepted nothing still registers at the root."""

        async def scenario():
            root = await _root()
            edge = await _edge(root.port, edge_id=_edge_id(1))
            await edge.stop()
            await root.stop()
            return root, edge

        root, edge = asyncio.run(scenario())
        assert edge.pushes_completed == 1
        assert root.edges == 1
        assert root.users == 0

    def test_push_retries_ride_out_a_root_restart(self, tmp_path):
        """The edge's push loop reconnects (re-learning the watermark)
        while the root restarts from its store mid-round."""

        async def scenario():
            store = JsonFileStore(tmp_path / "root.json")
            root = await _root(store=store)
            edge = await _edge(
                root.port,
                edge_id=_edge_id(6),
                push_attempts=20,
                push_retry_delay=0.05,
            )
            frames = _frames(seed=90)
            await replay_frames(
                "127.0.0.1", edge.port, root.contract, frames, _sender_id(1)
            )
            await edge.push_now()
            port = root.port
            await root.stop()  # root gone; edge's connection is dead

            async def restart_later():
                await asyncio.sleep(0.2)
                revived = RootAggregator(
                    SCHEMA, EPSILON, protocols=SPEC, store=store
                )
                await revived.start("127.0.0.1", port)
                return revived

            revival = asyncio.ensure_future(restart_later())
            await edge.stop()  # final push retries until the root is back
            revived = await revival
            await revived.wait_for_users(120)
            await revived.stop()
            return revived, [frames], edge

        revived, frame_lists, edge = asyncio.run(scenario())
        assert edge.push_retries >= 1
        assert revived.pushes_rejected == 0
        _assert_estimates_equal(_reference(frame_lists), revived.estimate())

    def test_root_refuses_double_serve_and_unstarted_waits(self):
        async def scenario():
            root = await _root()
            with pytest.raises(TransportError, match="already serving"):
                await root.start()
            await root.stop()
            fresh = RootAggregator(SCHEMA, EPSILON, protocols=SPEC)
            with pytest.raises(TransportError, match="not serving"):
                await fresh.wait_for_users(1)
            with pytest.raises(TransportError, match="not serving"):
                fresh.port

        asyncio.run(scenario())
