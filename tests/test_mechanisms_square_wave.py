"""Tests for the Square-wave mechanism (paper Eq. 5, 17, 18)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import SquareWaveMechanism, monte_carlo_moments
from repro.mechanisms.square_wave import standardized


class TestHalfWidth:
    def test_limit_small_eps(self):
        # b -> 1/2 as eps -> 0.
        assert SquareWaveMechanism.half_width(1e-6) == pytest.approx(0.5, abs=1e-4)

    def test_limit_large_eps(self):
        # b -> 0 as eps -> inf.
        assert SquareWaveMechanism.half_width(50.0) < 1e-6

    def test_monotone_decreasing(self):
        widths = [SquareWaveMechanism.half_width(e) for e in (0.1, 0.5, 1, 3, 10)]
        assert all(a > b for a, b in zip(widths, widths[1:]))

    def test_numerically_stable_at_tiny_eps(self):
        b = SquareWaveMechanism.half_width(1e-5)
        assert 0.49 < b < 0.5

    @pytest.mark.parametrize("eps", [100.0, 800.0, 5000.0])
    def test_numerically_stable_at_huge_eps(self, eps, rng):
        # The paper sweeps collective budgets up to 5000; exp(eps)
        # overflows past ~709, so everything must route through b*e^eps.
        mech = SquareWaveMechanism()
        assert np.isfinite(mech.half_width(eps))
        out = mech.perturb(np.full(2000, 0.3), eps, rng)
        assert np.all(np.isfinite(out))
        assert out.mean() == pytest.approx(0.3, abs=0.02)
        bias = mech.conditional_bias(np.array([0.3]), eps)[0]
        var = mech.conditional_variance(np.array([0.3]), eps)[0]
        assert np.isfinite(bias) and abs(bias) < 0.01
        assert np.isfinite(var) and 0 < var < 0.01


class TestOutputs:
    def test_support(self, rng):
        mech = SquareWaveMechanism()
        eps = 0.8
        out = mech.perturb(rng.uniform(0, 1, 50_000), eps, rng)
        b = mech.half_width(eps)
        assert out.min() >= -b - 1e-12
        assert out.max() <= 1.0 + b + 1e-12

    def test_center_mass(self, rng):
        # P(|t - t*| < b) = 2b e^eps / (2b e^eps + 1).
        mech = SquareWaveMechanism()
        eps, t = 1.2, 0.4
        b = mech.half_width(eps)
        out = mech.perturb(np.full(200_000, t), eps, rng)
        inside = np.mean(np.abs(out - t) < b)
        expected = 2 * b * np.exp(eps) / (2 * b * np.exp(eps) + 1)
        assert inside == pytest.approx(expected, abs=0.01)


class TestMoments:
    @pytest.mark.parametrize("eps", [0.3, 1.0, 4.0])
    @pytest.mark.parametrize("t", [0.0, 0.35, 0.9])
    def test_bias_eq17(self, eps, t, rng):
        mech = SquareWaveMechanism()
        bias_mc, _ = monte_carlo_moments(mech, t, eps, 200_000, rng)
        analytic = mech.conditional_bias(np.array([t]), eps)[0]
        assert bias_mc == pytest.approx(analytic, abs=0.01)

    @pytest.mark.parametrize("eps", [0.3, 1.0, 4.0])
    def test_variance_eq18(self, eps, rng):
        mech = SquareWaveMechanism()
        t = 0.6
        _, var_mc = monte_carlo_moments(mech, t, eps, 200_000, rng)
        analytic = mech.conditional_variance(np.array([t]), eps)[0]
        assert var_mc == pytest.approx(analytic, rel=0.05)

    def test_bias_pulls_toward_center(self):
        # E[t*] is a contraction toward 1/2: bias positive below, negative
        # above.
        mech = SquareWaveMechanism()
        biases = mech.conditional_bias(np.array([0.0, 0.5, 1.0]), 1.0)
        assert biases[0] > 0
        assert biases[1] == pytest.approx(0.0, abs=1e-12)
        assert biases[2] < 0

    def test_case_study_constants(self):
        # Section IV-C: E_t[delta] ~ -0.049, E_t[Var]/r ~ 3.365e-5.
        mech = SquareWaveMechanism()
        values = np.linspace(0.1, 1.0, 10)
        delta = mech.conditional_bias(values, 0.001).mean()
        variance = mech.conditional_variance(values, 0.001).mean()
        assert delta == pytest.approx(-0.049, abs=2e-3)
        assert variance / 10_000 == pytest.approx(3.365e-5, abs=5e-7)


class TestDensity:
    def test_pdf_integrates_to_one(self):
        mech = SquareWaveMechanism()
        eps, t = 1.0, 0.3
        b = mech.half_width(eps)
        x = np.linspace(-b, 1 + b, 200_001)
        total = np.trapezoid(mech.pdf(x, np.full_like(x, t), eps), x)
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_ldp_ratio_bounded(self):
        mech = SquareWaveMechanism()
        eps = 1.0
        b = mech.half_width(eps)
        outputs = np.linspace(-b + 1e-9, 1 + b - 1e-9, 4001)
        inputs = (0.0, 0.3, 0.7, 1.0)
        densities = [
            mech.pdf(outputs, np.full_like(outputs, t), eps) for t in inputs
        ]
        for da in densities:
            for db in densities:
                assert (da / db).max() <= np.exp(eps) * (1 + 1e-9)


class TestStandardized:
    def test_domain(self):
        assert standardized().input_domain == (-1.0, 1.0)

    def test_registry_alias(self):
        from repro.mechanisms import get_mechanism

        mech = get_mechanism("square_wave")
        assert mech.input_domain == (-1.0, 1.0)
        assert mech.bounded

    def test_bias_sign_flips_at_zero(self):
        mech = standardized()
        biases = mech.conditional_bias(np.array([-0.8, 0.0, 0.8]), 1.0)
        assert biases[0] > 0
        assert biases[1] == pytest.approx(0.0, abs=1e-12)
        assert biases[2] < 0
