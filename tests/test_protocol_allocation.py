"""Tests for non-uniform budget allocation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DimensionError, PrivacyBudgetError
from repro.mechanisms import LaplaceMechanism, PiecewiseMechanism
from repro.protocol import (
    SignalProportionalAllocation,
    UniformAllocation,
    WeightedAllocation,
    allocated_pipeline_run,
)


class TestUniform:
    def test_equal_shares(self):
        eps = UniformAllocation().allocate(2.0, 8)
        np.testing.assert_allclose(eps, 0.25)

    def test_composition_invariant(self):
        eps = UniformAllocation().allocate(1.7, 13)
        assert eps.sum() == pytest.approx(1.7)

    def test_validation(self):
        with pytest.raises(PrivacyBudgetError):
            UniformAllocation().allocate(0.0, 4)
        with pytest.raises(DimensionError):
            UniformAllocation().allocate(1.0, 0)


class TestWeighted:
    def test_proportional(self):
        eps = WeightedAllocation(np.array([1.0, 3.0])).allocate(4.0, 2)
        np.testing.assert_allclose(eps, [1.0, 3.0])

    def test_zero_weight_floored(self):
        eps = WeightedAllocation(np.array([0.0, 1.0])).allocate(1.0, 2)
        assert eps[0] > 0.0
        assert eps.sum() == pytest.approx(1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            WeightedAllocation(np.zeros(3))

    def test_negative_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            WeightedAllocation(np.array([1.0, -1.0]))

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            WeightedAllocation(np.ones(3)).allocate(1.0, 4)

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            WeightedAllocation(np.empty(0))


class TestSignalProportional:
    def test_prior_drives_shares(self):
        strategy = SignalProportionalAllocation(np.array([0.9, 0.0, 0.0]))
        eps = strategy.allocate(1.0, 3)
        assert eps[0] > eps[1]
        assert eps.sum() == pytest.approx(1.0)

    def test_temperature_zero_is_uniform(self):
        strategy = SignalProportionalAllocation(
            np.array([0.9, 0.1]), temperature=0.0
        )
        eps = strategy.allocate(1.0, 2)
        np.testing.assert_allclose(eps, 0.5, rtol=1e-6)

    def test_negative_temperature_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            SignalProportionalAllocation(np.ones(2), temperature=-1.0)


class TestAllocatedRun:
    def test_uniform_matches_plain_pipeline_statistically(self, rng):
        data = rng.uniform(-1, 1, size=(4000, 5))
        theta, eps = allocated_pipeline_run(
            LaplaceMechanism(), data, 5.0, UniformAllocation(), rng=rng
        )
        np.testing.assert_allclose(eps, 1.0)
        np.testing.assert_allclose(theta, data.mean(axis=0), atol=0.2)

    def test_weighted_improves_prioritized_dimensions(self, rng):
        # Concentrating budget on the first dimensions must shrink their
        # error relative to uniform allocation.
        d, n, eps = 10, 3000, 1.0
        data = rng.uniform(-1, 1, size=(n, d))
        weights = np.array([10.0] * 2 + [1.0] * (d - 2))
        repeats = 12
        err_uniform = np.zeros(2)
        err_weighted = np.zeros(2)
        for _ in range(repeats):
            theta_u, _ = allocated_pipeline_run(
                LaplaceMechanism(), data, eps, UniformAllocation(), rng=rng
            )
            theta_w, _ = allocated_pipeline_run(
                LaplaceMechanism(), data, eps, WeightedAllocation(weights), rng=rng
            )
            err_uniform += (theta_u[:2] - data.mean(axis=0)[:2]) ** 2
            err_weighted += (theta_w[:2] - data.mean(axis=0)[:2]) ** 2
        assert err_weighted.sum() < err_uniform.sum()

    def test_bounded_mechanism_supported(self, rng):
        data = rng.uniform(-1, 1, size=(2000, 3))
        theta, _ = allocated_pipeline_run(
            PiecewiseMechanism(), data, 6.0, rng=rng
        )
        np.testing.assert_allclose(theta, data.mean(axis=0), atol=0.2)

    def test_matrix_required(self, rng):
        with pytest.raises(DimensionError):
            allocated_pipeline_run(LaplaceMechanism(), np.zeros(4), 1.0, rng=rng)


@given(
    eps=st.floats(min_value=0.1, max_value=10),
    weights=st.lists(
        st.floats(min_value=0, max_value=100), min_size=1, max_size=16
    ).filter(lambda w: sum(w) > 0),
)
@settings(max_examples=50, deadline=None)
def test_property_composition_always_holds(eps, weights):
    """Any weighted allocation sums to the collective budget (ε-LDP)."""
    allocation = WeightedAllocation(np.array(weights))
    shares = allocation.allocate(eps, len(weights))
    assert shares.sum() == pytest.approx(eps)
    assert np.all(shares > 0)
