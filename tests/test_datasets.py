"""Tests for the dataset generators and normalization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    ColumnScaler,
    available_datasets,
    cov19_like,
    discretized_uniform_dataset,
    fit_scaler,
    gaussian_dataset,
    load_dataset,
    mean_absolute_correlation,
    normalize,
    poisson_dataset,
    resample_dimensions,
    uniform_dataset,
)
from repro.exceptions import DimensionError, DomainError


class TestNormalize:
    def test_range(self, rng):
        data = rng.normal(size=(100, 5)) * 10 + 3
        out = normalize(data)
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)

    def test_roundtrip(self, rng):
        data = rng.normal(size=(50, 3))
        scaler = fit_scaler(data)
        back = scaler.inverse(scaler.transform(data))
        np.testing.assert_allclose(back, data, atol=1e-12)

    def test_constant_column_rejected(self):
        data = np.ones((10, 2))
        with pytest.raises(DomainError):
            fit_scaler(data)

    def test_degenerate_target_rejected(self, rng):
        with pytest.raises(DomainError):
            fit_scaler(rng.normal(size=(10, 2)), target=(1.0, 1.0))

    def test_custom_target(self, rng):
        out = normalize(rng.normal(size=(40, 2)), target=(0.0, 1.0))
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_non_matrix_rejected(self):
        with pytest.raises(DomainError):
            normalize(np.zeros(10))


class TestGaussian:
    def test_shape_and_domain(self):
        data = gaussian_dataset(500, 40, rng=0)
        assert data.shape == (500, 40)
        assert data.min() >= -1.0 and data.max() <= 1.0

    def test_sparse_signal_structure(self):
        data = gaussian_dataset(4000, 100, rng=0)
        means = data.mean(axis=0)
        high = np.sum(means > 0.5)
        assert high == 10  # 10% of 100 dimensions at mu = 0.9.
        assert np.sum(np.abs(means) < 0.2) == 90

    def test_custom_fraction(self):
        data = gaussian_dataset(2000, 10, high_fraction=0.5, rng=0)
        assert np.sum(data.mean(axis=0) > 0.5) == 5

    def test_invalid_fraction(self):
        with pytest.raises(DimensionError):
            gaussian_dataset(10, 10, high_fraction=1.5)

    def test_reproducible(self):
        np.testing.assert_array_equal(
            gaussian_dataset(50, 5, rng=1), gaussian_dataset(50, 5, rng=1)
        )


class TestPoisson:
    def test_shape_and_domain(self):
        data = poisson_dataset(300, 20, rng=0)
        assert data.shape == (300, 20)
        assert data.min() == pytest.approx(-1.0)
        assert data.max() == pytest.approx(1.0)

    def test_invalid_rates(self):
        with pytest.raises(DimensionError):
            poisson_dataset(10, 10, min_rate=5, max_rate=1)


class TestUniform:
    def test_domain(self):
        data = uniform_dataset(1000, 10, rng=0)
        assert data.min() >= -1.0 and data.max() <= 1.0
        assert abs(data.mean()) < 0.05

    def test_discretized_levels(self):
        data = discretized_uniform_dataset(500, 4, levels=10, rng=0)
        values = np.unique(data)
        np.testing.assert_allclose(values, np.linspace(0.1, 1.0, 10), atol=1e-12)

    def test_invalid_shape(self):
        with pytest.raises(DimensionError):
            uniform_dataset(0, 10)


class TestCov19Like:
    def test_shape_and_domain(self):
        data = cov19_like(400, 30, rng=0)
        assert data.shape == (400, 30)
        assert data.min() == pytest.approx(-1.0)
        assert data.max() == pytest.approx(1.0)

    def test_high_correlation_vs_uniform(self):
        correlated = cov19_like(2000, 40, n_factors=4, rng=0)
        independent = uniform_dataset(2000, 40, rng=0)
        assert mean_absolute_correlation(correlated, rng=0) > 0.2
        assert mean_absolute_correlation(independent, rng=0) < 0.1

    def test_fewer_factors_more_correlation(self):
        tight = cov19_like(2000, 40, n_factors=2, rng=0)
        loose = cov19_like(2000, 40, n_factors=32, rng=0)
        assert mean_absolute_correlation(tight, rng=0) > mean_absolute_correlation(
            loose, rng=0
        )

    def test_resample_subset(self):
        base = cov19_like(100, 50, rng=0)
        small = resample_dimensions(base, 20, rng=0)
        assert small.shape == (100, 20)

    def test_resample_with_replacement_beyond_base(self):
        base = cov19_like(100, 50, rng=0)
        big = resample_dimensions(base, 120, rng=0)
        assert big.shape == (100, 120)

    def test_resample_validation(self):
        with pytest.raises(DimensionError):
            resample_dimensions(np.zeros(5), 2)
        with pytest.raises(DimensionError):
            resample_dimensions(np.zeros((5, 5)), 0)

    def test_invalid_parameters(self):
        with pytest.raises(DimensionError):
            cov19_like(10, 10, n_factors=0)
        with pytest.raises(DimensionError):
            cov19_like(10, 10, noise=-1.0)


class TestLoader:
    def test_names(self):
        names = available_datasets()
        for expected in ("gaussian", "poisson", "uniform", "cov19"):
            assert expected in names

    def test_shape_override(self):
        data = load_dataset("gaussian", users=100, dimensions=7, rng=0)
        assert data.shape == (100, 7)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="gaussian"):
            load_dataset("imagenet")

    def test_case_insensitive(self):
        data = load_dataset("UNIFORM", users=10, dimensions=2, rng=0)
        assert data.shape == (10, 2)
