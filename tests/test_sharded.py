"""Tests for mergeable/checkpointable state and the sharded collector.

The load-bearing invariant (ISSUE 3 acceptance): for every registered
protocol, ingesting encoded batches through a :class:`ShardedServer`
(any shard count), then merging, yields estimates bit-identical to
one-shot in-memory ingestion; ``save_state`` → ``load_state`` resumes a
round with identical estimates; and contract-fingerprint mismatches are
rejected.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.exceptions import (
    AggregationError,
    ContractMismatchError,
    DimensionError,
    WireFormatError,
)
from repro.mechanisms import available_mechanisms
from repro.session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
    ShardedServer,
    StreamingSum,
)

ORACLES = ("grr", "oue", "olh")

MIXED = Schema(
    [
        NumericAttribute("a"),
        NumericAttribute("b"),
        CategoricalAttribute("c", n_categories=4),
    ]
)
CATEGORICAL_ONLY = Schema([CategoricalAttribute("c", n_categories=4)])


def _session(protocol):
    if protocol in ORACLES:
        return CATEGORICAL_ONLY, {"c": protocol}
    return MIXED, protocol


def _records(schema, users, seed):
    gen = np.random.default_rng(seed)
    columns = []
    for attr in schema:
        if attr.kind == "numeric":
            columns.append(gen.uniform(-1, 1, users))
        else:
            columns.append(gen.integers(0, attr.n_categories, users))
    return np.column_stack(columns)


def _batches(schema, spec, count=6, users=300):
    client = LDPClient(schema, epsilon=2.0, protocols=spec)
    return client, [
        client.report_batch(_records(schema, users, seed), seed)
        for seed in range(count)
    ]


def _assert_estimates_equal(a, b, context=""):
    assert a.users == b.users, context
    for x, y in zip(a.attributes, b.attributes):
        assert x.reports == y.reports, (context, x.name)
        assert np.array_equal(x.raw, y.raw), (context, x.name)


class TestShardEquivalence:
    @pytest.mark.parametrize(
        "protocol", sorted(available_mechanisms()) + list(ORACLES)
    )
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_sharded_merge_is_bit_identical_to_one_shot(self, protocol, shards):
        """Acceptance: any shard count == one-shot in-memory ingestion."""
        schema, spec = _session(protocol)
        client, batches = _batches(schema, spec)
        one_shot = LDPServer(schema, epsilon=2.0, protocols=spec)
        one_shot.ingest(batches)
        sharded = ShardedServer(
            schema, epsilon=2.0, protocols=spec, shards=shards
        )
        for batch in batches:
            sharded.ingest_encoded(client.encode(batch))
        _assert_estimates_equal(
            one_shot.estimate(), sharded.estimate(), protocol
        )

    def test_merge_order_cannot_matter(self):
        """Aggregation is exact, so even *reversed* merges agree."""
        schema, spec = _session("piecewise")
        client, batches = _batches(schema, spec)
        sharded = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=3)
        sharded.ingest(batches)
        forward = LDPServer(schema, epsilon=2.0, protocols=spec)
        for shard in sharded.shards:
            forward.merge(shard)
        backward = LDPServer(schema, epsilon=2.0, protocols=spec)
        for shard in reversed(sharded.shards):
            backward.merge(shard)
        _assert_estimates_equal(forward.estimate(), backward.estimate())

    def test_merge_accumulates_users_and_reports(self):
        schema, spec = _session("laplace")
        _, batches = _batches(schema, spec, count=4, users=100)
        left = LDPServer(schema, epsilon=2.0, protocols=spec)
        left.ingest(batches[:2])
        right = LDPServer(schema, epsilon=2.0, protocols=spec)
        right.ingest(batches[2:])
        left.merge(right)
        assert left.users == 400
        assert sum(left.report_counts().values()) == 400 * schema.dimensions

    def test_merge_rejects_contract_mismatch(self):
        schema, spec = _session("piecewise")
        server = LDPServer(schema, epsilon=2.0, protocols=spec)
        other = LDPServer(schema, epsilon=3.0, protocols=spec)
        with pytest.raises(ContractMismatchError):
            server.merge(other)
        with pytest.raises(DimensionError):
            server.merge("not a server")

    def test_merging_does_not_disturb_the_source(self):
        schema, spec = _session("oue")
        _, batches = _batches(schema, spec, count=2)
        source = LDPServer(schema, epsilon=2.0, protocols=spec)
        source.ingest(batches)
        before = source.estimate()
        target = LDPServer(schema, epsilon=2.0, protocols=spec)
        target.merge(source)
        _assert_estimates_equal(before, source.estimate())
        _assert_estimates_equal(before, target.estimate())


class TestCrossTopologyMerges:
    """Satellite (ISSUE 8): merges across topologies stay bit-identical.

    The federation tier leans on these shapes — an edge that pushed
    before receiving anything, a root restoring snapshots cut under a
    different shard count, states recovered from heterogeneous storage
    backends — so each is pinned against the one-shot reference here.
    """

    def test_merge_with_an_empty_side_is_identity(self):
        schema, spec = _session("piecewise")
        _, batches = _batches(schema, spec, count=4, users=100)
        one_shot = LDPServer(schema, epsilon=2.0, protocols=spec)
        one_shot.ingest(batches)
        # full.merge(empty): the empty server contributes nothing
        full = LDPServer(schema, epsilon=2.0, protocols=spec)
        full.ingest(batches)
        full.merge(LDPServer(schema, epsilon=2.0, protocols=spec))
        _assert_estimates_equal(one_shot.estimate(), full.estimate(), "r-empty")
        # empty.merge(full): the empty target becomes the full state
        target = LDPServer(schema, epsilon=2.0, protocols=spec)
        source = LDPServer(schema, epsilon=2.0, protocols=spec)
        source.ingest(batches)
        target.merge(source)
        _assert_estimates_equal(
            one_shot.estimate(), target.estimate(), "l-empty"
        )

    def test_snapshot_from_different_shard_count_restores_and_merges(self):
        """A 3-shard snapshot restores into a 2-shard topology, keeps
        ingesting, merges — still bit-identical to one-shot."""
        schema, spec = _session("oue")
        client, batches = _batches(schema, spec, count=6, users=100)
        one_shot = LDPServer(schema, epsilon=2.0, protocols=spec)
        one_shot.ingest(batches)
        first = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=3)
        for batch in batches[:3]:
            first.ingest_encoded(client.encode(batch))
        second = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=2)
        second.load_state_dict(first.state_dict())
        for batch in batches[3:]:
            second.ingest_encoded(client.encode(batch))
        _assert_estimates_equal(one_shot.estimate(), second.estimate())

    def test_merge_state_dict_folds_instead_of_replacing(self):
        """The additive verb: two halves fold into one running server."""
        schema, spec = _session("grr")
        _, batches = _batches(schema, spec, count=4, users=100)
        one_shot = LDPServer(schema, epsilon=2.0, protocols=spec)
        one_shot.ingest(batches)
        left = LDPServer(schema, epsilon=2.0, protocols=spec)
        left.ingest(batches[:2])
        right = LDPServer(schema, epsilon=2.0, protocols=spec)
        right.ingest(batches[2:])
        left.merge_state_dict(right.state_dict())
        _assert_estimates_equal(one_shot.estimate(), left.estimate(), "plain")
        # Same through a ShardedServer (lands on shard 0, invisible in
        # the merged estimate), and a foreign snapshot is still refused.
        sharded = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=2)
        sharded.merge_state_dict(left.state_dict())
        _assert_estimates_equal(
            one_shot.estimate(), sharded.estimate(), "sharded"
        )
        foreign = LDPServer(schema, epsilon=3.0, protocols=spec)
        with pytest.raises(ContractMismatchError):
            sharded.merge_state_dict(foreign.state_dict())

    def test_states_restored_from_different_backends_merge_identically(
        self, tmp_path
    ):
        """file:// and sqlite:// halves of a round merge to one-shot."""
        from repro.storage import open_store

        schema, spec = _session("olh")
        _, batches = _batches(schema, spec, count=4, users=100)
        one_shot = LDPServer(schema, epsilon=2.0, protocols=spec)
        one_shot.ingest(batches)
        stores = [
            open_store("file://%s" % (tmp_path / "half.json")),
            open_store("sqlite://%s" % (tmp_path / "half.db")),
        ]
        try:
            for store, half in zip(stores, (batches[:2], batches[2:])):
                server = LDPServer(schema, epsilon=2.0, protocols=spec)
                server.ingest(half)
                store.save(server.state_dict())
            merged = LDPServer(schema, epsilon=2.0, protocols=spec)
            for store in stores:
                merged.merge_state_dict(store.recover())
        finally:
            for store in stores:
                store.close()
        _assert_estimates_equal(one_shot.estimate(), merged.estimate())


class TestCheckpoints:
    @pytest.mark.parametrize("protocol", ["piecewise", "grr", "oue", "olh"])
    def test_save_load_resumes_identically(self, protocol, tmp_path):
        """Acceptance: a restored round continues without losing an ulp."""
        schema, spec = _session(protocol)
        _, batches = _batches(schema, spec)
        uninterrupted = LDPServer(schema, epsilon=2.0, protocols=spec)
        uninterrupted.ingest(batches)

        first = LDPServer(schema, epsilon=2.0, protocols=spec)
        first.ingest(batches[:3])
        path = tmp_path / "round.json"
        first.save_state(path)
        resumed = LDPServer(schema, epsilon=2.0, protocols=spec).load_state(path)
        resumed.ingest(batches[3:])
        _assert_estimates_equal(
            uninterrupted.estimate(), resumed.estimate(), protocol
        )

    def test_sharded_checkpoint_restores_into_any_topology(self, tmp_path):
        schema, spec = _session("piecewise")
        client, batches = _batches(schema, spec)
        sharded = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=3)
        for batch in batches[:3]:
            sharded.ingest_encoded(client.encode(batch))
        path = tmp_path / "sharded.json"
        sharded.save_state(path)
        # Resume on a *different* shard count: exactness makes it moot.
        resumed = ShardedServer(
            schema, epsilon=2.0, protocols=spec, shards=2
        ).load_state(path)
        for batch in batches[3:]:
            resumed.ingest_encoded(client.encode(batch))
        reference = LDPServer(schema, epsilon=2.0, protocols=spec)
        reference.ingest(batches)
        _assert_estimates_equal(reference.estimate(), resumed.estimate())

    def test_load_rejects_contract_mismatch(self, tmp_path):
        schema, spec = _session("piecewise")
        _, batches = _batches(schema, spec, count=1)
        server = LDPServer(schema, epsilon=2.0, protocols=spec)
        server.ingest(batches)
        path = tmp_path / "state.json"
        server.save_state(path)
        stranger = LDPServer(schema, epsilon=1.0, protocols=spec)
        with pytest.raises(ContractMismatchError):
            stranger.load_state(path)

    def test_load_rejects_malformed_documents(self, tmp_path):
        schema, spec = _session("piecewise")
        server = LDPServer(schema, epsilon=2.0, protocols=spec)
        path = tmp_path / "bad.json"
        path.write_text("not json at all {")
        with pytest.raises(WireFormatError):
            server.load_state(path)
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(WireFormatError):
            server.load_state(path)

    def test_failed_sharded_load_preserves_existing_state(self, tmp_path):
        """A bad checkpoint must not wipe a mid-round sharded collector."""
        schema, spec = _session("piecewise")
        client, batches = _batches(schema, spec, count=4)
        sharded = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=2)
        for batch in batches:
            sharded.ingest_encoded(client.encode(batch))
        before = sharded.estimate()
        path = tmp_path / "corrupt.json"
        path.write_text("{broken")
        with pytest.raises(WireFormatError):
            sharded.load_state(path)
        # mismatched contract is equally non-destructive
        other = LDPServer(schema, epsilon=9.0, protocols=spec)
        other.ingest(
            LDPClient(schema, epsilon=9.0, protocols=spec).report_batch(
                _records(schema, 10, 0), 0
            )
        )
        other.save_state(path)
        with pytest.raises(ContractMismatchError):
            sharded.load_state(path)
        _assert_estimates_equal(before, sharded.estimate())

    def test_load_rejects_tampered_attribute_states(self, tmp_path):
        schema, spec = _session("grr")
        _, batches = _batches(schema, spec, count=1)
        server = LDPServer(schema, epsilon=2.0, protocols=spec)
        server.ingest(batches)
        document = server.state_dict()
        document["attributes"]["c"]["counts"] = [1, 2]  # wrong category count
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(document))
        fresh = LDPServer(schema, epsilon=2.0, protocols=spec)
        with pytest.raises(WireFormatError):
            fresh.load_state(path)
        # ... and the failed load left the server untouched.
        assert fresh.users == 0

    def test_load_rejects_boolean_user_count(self, tmp_path):
        schema, spec = _session("piecewise")
        _, batches = _batches(schema, spec, count=1)
        server = LDPServer(schema, epsilon=2.0, protocols=spec)
        server.ingest(batches)
        document = server.state_dict()
        document["users"] = True
        fresh = LDPServer(schema, epsilon=2.0, protocols=spec)
        with pytest.raises(WireFormatError, match="user count"):
            fresh.load_state_dict(document)

    def test_failed_save_cleans_up_its_scratch_file(self, tmp_path, monkeypatch):
        """Regression: a crashed checkpoint used to leave a stale .tmp."""
        import pathlib

        schema, spec = _session("piecewise")
        _, batches = _batches(schema, spec, count=1)
        server = LDPServer(schema, epsilon=2.0, protocols=spec)
        server.ingest(batches)
        real_write = pathlib.Path.write_text

        def partial_write(self, text, *args, **kwargs):
            real_write(self, text[: len(text) // 2], *args, **kwargs)
            raise OSError("disk full")

        monkeypatch.setattr(pathlib.Path, "write_text", partial_write)
        with pytest.raises(OSError, match="disk full"):
            server.save_state(tmp_path / "state.json")
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_failed_rename_cleans_up_its_scratch_file(self, tmp_path, monkeypatch):
        import os

        schema, spec = _session("piecewise")
        _, batches = _batches(schema, spec, count=1)
        server = LDPServer(schema, epsilon=2.0, protocols=spec)
        server.ingest(batches)

        def broken_replace(src, dst, **kwargs):
            raise OSError("cross-device link")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="cross-device"):
            server.save_state(tmp_path / "state.json")
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_save_state_is_atomic(self, tmp_path):
        """Checkpointing never leaves temp litter and safely overwrites."""
        schema, spec = _session("piecewise")
        _, batches = _batches(schema, spec, count=2)
        server = LDPServer(schema, epsilon=2.0, protocols=spec)
        server.ingest(batches[0])
        path = tmp_path / "state.json"
        server.save_state(path)
        server.ingest(batches[1])
        server.save_state(path)  # overwrite in place
        assert list(tmp_path.iterdir()) == [path]
        clone = LDPServer(schema, epsilon=2.0, protocols=spec).load_state(path)
        _assert_estimates_equal(server.estimate(), clone.estimate())

    def test_state_dict_is_json_round_trippable(self):
        schema, spec = _session("olh")
        _, batches = _batches(schema, spec, count=2)
        server = LDPServer(schema, epsilon=2.0, protocols=spec)
        server.ingest(batches)
        document = json.loads(json.dumps(server.state_dict()))
        clone = LDPServer(schema, epsilon=2.0, protocols=spec)
        clone.load_state_dict(document)
        _assert_estimates_equal(server.estimate(), clone.estimate())


class TestShardedServerBehaviour:
    def test_rejects_zero_shards(self):
        with pytest.raises(DimensionError):
            ShardedServer(MIXED, epsilon=1.0, shards=0)

    @pytest.mark.parametrize("shards", [2.5, 2.0, "2", None])
    def test_rejects_non_integral_shard_counts(self, shards):
        """Regression: 2.5 shards used to be silently truncated to 2."""
        with pytest.raises(DimensionError, match="integer"):
            ShardedServer(MIXED, epsilon=1.0, shards=shards)

    def test_accepts_integer_like_shard_counts(self):
        sharded = ShardedServer(MIXED, epsilon=1.0, shards=np.int64(3))
        assert sharded.n_shards == 3

    def test_round_robin_routing(self):
        schema, spec = _session("laplace")
        _, batches = _batches(schema, spec, count=5, users=10)
        sharded = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=2)
        sharded.ingest(batches)
        assert [shard.users for shard in sharded.shards] == [30, 20]
        assert sharded.users == 50

    def test_estimate_requires_reports(self):
        sharded = ShardedServer(MIXED, epsilon=1.0, shards=2)
        with pytest.raises(AggregationError):
            sharded.estimate()

    def test_reset_clears_all_shards(self):
        schema, spec = _session("laplace")
        _, batches = _batches(schema, spec, count=2, users=10)
        sharded = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=2)
        sharded.ingest(batches)
        sharded.reset()
        assert sharded.users == 0
        assert all(shard.users == 0 for shard in sharded.shards)

    def test_report_counts_aggregate_over_shards(self):
        schema, spec = _session("laplace")
        _, batches = _batches(schema, spec, count=4, users=25)
        sharded = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=3)
        sharded.ingest(batches)
        assert sum(sharded.report_counts().values()) == 100 * schema.dimensions

    def test_multi_batch_ingest_is_atomic_across_shards(self):
        """A malformed batch mid-iterable leaves every shard untouched."""
        from repro.session import ReportBatch

        schema, spec = _session("piecewise")
        client, batches = _batches(schema, spec, count=3, users=50)
        bad_payloads = dict(batches[2].payloads)
        bad_payloads["c"] = np.ones((50, 99))
        malformed = ReportBatch(
            users=50,
            payloads=bad_payloads,
            counts=dict(batches[2].counts),
            protocols=dict(batches[2].protocols),
        )
        sharded = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=2)
        with pytest.raises(DimensionError):
            sharded.ingest([batches[0], batches[1], malformed])
        assert sharded.users == 0
        assert all(shard.users == 0 for shard in sharded.shards)

    def test_postprocess_passes_through(self, rng):
        schema, spec = _session("piecewise")
        client, batches = _batches(schema, spec)
        sharded = ShardedServer(schema, epsilon=2.0, protocols=spec, shards=2)
        sharded.ingest(batches)
        estimate = sharded.estimate(postprocess=lambda theta, model: theta * 0.5)
        raw = sharded.estimate()
        np.testing.assert_allclose(
            estimate.numeric_means(), raw.numeric_means(enhanced=False) * 0.5
        )


class TestExactAccumulation:
    """The StreamingSum properties the distributed API leans on."""

    def test_sum_is_exact(self):
        gen = np.random.default_rng(3)
        rows = gen.normal(size=(4000, 2)) * np.array([1e6, 1e-6])
        acc = StreamingSum(2)
        acc.add(rows)
        expected = np.array([math.fsum(rows[:, 0]), math.fsum(rows[:, 1])])
        assert np.array_equal(acc.value(), expected)

    def test_order_invariance_is_bitwise(self):
        gen = np.random.default_rng(4)
        rows = gen.normal(size=(3000, 3)) * 1e8
        forward = StreamingSum(3)
        forward.add(rows)
        permuted = StreamingSum(3)
        for chunk in np.array_split(rows[gen.permutation(3000)], 11):
            permuted.add(chunk)
        assert np.array_equal(forward.value(), permuted.value())

    def test_catastrophic_cancellation_survives(self):
        acc = StreamingSum(1)
        acc.add(np.array([[1e16], [1.0], [-1e16], [2.0]]))
        assert acc.value()[0] == 3.0

    def test_merge_equals_sequential(self):
        gen = np.random.default_rng(5)
        rows = gen.normal(size=(1000, 2))
        whole = StreamingSum(2)
        whole.add(rows)
        left, right = StreamingSum(2), StreamingSum(2)
        left.add(rows[:400])
        right.add(rows[400:])
        left.merge(right)
        assert np.array_equal(whole.value(), left.value())
        assert left.rows == 1000
        with pytest.raises(DimensionError):
            left.merge(StreamingSum(3))

    def test_state_dict_round_trip(self):
        gen = np.random.default_rng(6)
        acc = StreamingSum(2)
        acc.add(gen.normal(size=(500, 2)) * 1e12)
        restored = StreamingSum.from_state_dict(
            json.loads(json.dumps(acc.state_dict()))
        )
        assert np.array_equal(acc.value(), restored.value())
        assert restored.rows == acc.rows

    def test_state_dict_validation(self):
        acc = StreamingSum(2)
        with pytest.raises(WireFormatError):
            StreamingSum.from_state_dict({"kind": "wrong"})
        state = acc.state_dict()
        state["sums"] = [0]  # width mismatch
        with pytest.raises(WireFormatError):
            StreamingSum.from_state_dict(state)

    def test_non_finite_rejected(self):
        acc = StreamingSum(1)
        with pytest.raises(Exception):
            acc.add(np.array([[np.nan]]))

    def test_list_backed_olh_payload_is_canonicalized(self):
        """check_payload must return arrays even for list-backed reports."""
        from repro.freq_oracles.olh import OlhReports
        from repro.mechanisms import get_protocol

        collector = get_protocol("olh").bind(
            CategoricalAttribute("c", n_categories=4), 1.0
        )
        raw = OlhReports(seeds=[[1, 2], [3, 4]], buckets=[0, 1])
        canonical = collector.check_payload(raw)
        assert collector.payload_rows(canonical) == 2
        state = collector.new_state()
        collector.fold(state, canonical)
        assert collector.reports(state) == 2
