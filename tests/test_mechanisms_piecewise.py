"""Tests for the Piecewise mechanism (paper Eq. 4 and Eq. 14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import PiecewiseMechanism, monte_carlo_moments


class TestGeometry:
    def test_boundary_formula(self):
        eps = 1.0
        half = np.exp(eps / 2.0)
        assert PiecewiseMechanism.boundary(eps) == pytest.approx(
            (half + 1) / (half - 1)
        )

    def test_center_interval_width_is_q_minus_one(self):
        eps = 0.7
        left, right = PiecewiseMechanism.center_interval(
            np.linspace(-1, 1, 11), eps
        )
        np.testing.assert_allclose(
            right - left, PiecewiseMechanism.boundary(eps) - 1.0
        )

    def test_center_interval_inside_support(self):
        eps = 0.7
        big_q = PiecewiseMechanism.boundary(eps)
        left, right = PiecewiseMechanism.center_interval(
            np.array([-1.0, 1.0]), eps
        )
        assert left.min() >= -big_q - 1e-12
        assert right.max() <= big_q + 1e-12

    def test_outputs_within_boundary(self, rng):
        mech = PiecewiseMechanism()
        out = mech.perturb(rng.uniform(-1, 1, 50_000), 0.6, rng)
        big_q = mech.boundary(0.6)
        assert np.all(np.abs(out) <= big_q + 1e-12)


class TestMoments:
    @pytest.mark.parametrize("t", [-0.8, 0.0, 0.5, 1.0])
    def test_unbiased(self, t, rng):
        bias_mc, _ = monte_carlo_moments(PiecewiseMechanism(), t, 1.0, 300_000, rng)
        assert bias_mc == pytest.approx(0.0, abs=0.05)

    @pytest.mark.parametrize("eps", [0.3, 1.0, 4.0])
    def test_variance_eq14_corrected(self, eps, rng):
        # Eq. 14 with the t -> t^2 typo corrected (see DESIGN.md §5).
        mech = PiecewiseMechanism()
        t = 0.6
        _, var_mc = monte_carlo_moments(mech, t, eps, 300_000, rng)
        analytic = mech.conditional_variance(np.array([t]), eps)[0]
        assert var_mc == pytest.approx(analytic, rel=0.05)

    def test_variance_grows_with_magnitude(self):
        mech = PiecewiseMechanism()
        variances = mech.conditional_variance(np.array([0.0, 0.5, 1.0]), 1.0)
        assert variances[0] < variances[1] < variances[2]

    def test_case_study_sigma(self):
        # The Section IV-C constant: E_t[Var]/r = 533.210 at eps=0.001.
        mech = PiecewiseMechanism()
        values = np.linspace(0.1, 1.0, 10)
        mean_var = mech.conditional_variance(values, 0.001).mean()
        assert mean_var / 10_000 == pytest.approx(533.210, abs=0.05)


class TestDensity:
    def test_pdf_integrates_to_one(self):
        mech = PiecewiseMechanism()
        eps, t = 0.8, 0.3
        big_q = mech.boundary(eps)
        x = np.linspace(-big_q, big_q, 200_001)
        total = np.trapezoid(mech.pdf(x, np.full_like(x, t), eps), x)
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_pdf_zero_outside_support(self):
        mech = PiecewiseMechanism()
        big_q = mech.boundary(1.0)
        assert mech.pdf(np.array([big_q + 1.0]), np.array([0.0]), 1.0)[0] == 0.0

    def test_ldp_ratio_bounded(self):
        # Pure eps-LDP: sup-ratio of densities across any pair of inputs.
        mech = PiecewiseMechanism()
        eps = 1.0
        big_q = mech.boundary(eps)
        outputs = np.linspace(-big_q + 1e-9, big_q - 1e-9, 4001)
        inputs = (-1.0, -0.3, 0.4, 1.0)
        densities = [
            mech.pdf(outputs, np.full_like(outputs, t), eps) for t in inputs
        ]
        for da in densities:
            for db in densities:
                ratio = da / db
                assert ratio.max() <= np.exp(eps) * (1 + 1e-9)

    def test_high_low_density_ratio_is_exp_eps(self):
        mech = PiecewiseMechanism()
        eps = 1.3
        high = (np.exp(eps) - np.exp(eps / 2)) / (2 * np.exp(eps / 2) + 2)
        low = (1 - np.exp(-eps / 2)) / (2 * np.exp(eps / 2) + 2)
        assert high / low == pytest.approx(np.exp(eps))

    def test_center_mass(self, rng):
        # P(t* in [l, r]) = e^{eps/2} / (e^{eps/2} + 1).
        mech = PiecewiseMechanism()
        eps, t = 0.9, 0.25
        left, right = mech.center_interval(np.array([t]), eps)
        out = mech.perturb(np.full(200_000, t), eps, rng)
        inside = np.mean((out >= left[0]) & (out <= right[0]))
        half = np.exp(eps / 2)
        assert inside == pytest.approx(half / (half + 1), abs=0.01)
