"""Batch-split-invariant streaming accumulation.

Floating-point addition is not associative, so a naive streaming collector
("add each batch's column sum to a running total") produces estimates that
depend on *how* the report stream was batched — a 10-batch ingest and a
one-shot ingest of the same reports would disagree in the last few ulps.
The session API promises bit-identical estimates for any batching, which
is what makes incremental ingestion trustworthy (and testable) at scale.

:class:`StreamingSum` restores the invariance by always reducing in fixed
size chunks aligned to the absolute arrival order: rows ``[0, C)``,
``[C, 2C)``, … are summed as blocks regardless of the batch boundaries
they arrived under, and the running total adds those block sums in the
same order every time. Memory stays ``O(C · width)``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import DimensionError

#: Rows per internal reduction block.
DEFAULT_BLOCK_ROWS = 1024


class StreamingSum:
    """Streaming column sums whose value is independent of batch splits.

    Parameters
    ----------
    width:
        Number of columns being summed.
    block_rows:
        Rows per internal reduction block; any positive value yields
        batching-invariant results, the default balances memory and speed.
    """

    def __init__(self, width: int, block_rows: int = DEFAULT_BLOCK_ROWS) -> None:
        if width < 1:
            raise DimensionError("width must be >= 1, got %d" % width)
        if block_rows < 1:
            raise DimensionError("block_rows must be >= 1, got %d" % block_rows)
        self.width = int(width)
        self.block_rows = int(block_rows)
        self._total = np.zeros(self.width, dtype=np.float64)
        self._pending: List[np.ndarray] = []
        self._pending_rows = 0
        self._rows = 0

    @property
    def rows(self) -> int:
        """Total number of rows accumulated so far."""
        return self._rows

    def add(self, rows: np.ndarray) -> None:
        """Accumulate a ``(k, width)`` batch of rows (``k`` may be 0)."""
        block = np.asarray(rows, dtype=np.float64)
        if block.ndim == 1:
            block = block[:, None]
        if block.ndim != 2 or block.shape[1] != self.width:
            raise DimensionError(
                "expected (k, %d) rows, got %s" % (self.width, block.shape)
            )
        if block.shape[0] == 0:
            return
        self._rows += block.shape[0]
        self._pending.append(block)
        self._pending_rows += block.shape[0]
        while self._pending_rows >= self.block_rows:
            self._flush_block()

    def _flush_block(self) -> None:
        """Reduce exactly ``block_rows`` pending rows into the total."""
        buffered = (
            self._pending[0]
            if len(self._pending) == 1
            else np.concatenate(self._pending, axis=0)
        )
        self._total += buffered[: self.block_rows].sum(axis=0)
        rest = buffered[self.block_rows :]
        self._pending = [rest] if rest.shape[0] else []
        self._pending_rows = rest.shape[0]

    def value(self) -> np.ndarray:
        """Current column sums (does not mutate the accumulator).

        Equal, bit for bit, to the value any other batching of the same
        row sequence would produce.
        """
        if not self._pending_rows:
            return self._total.copy()
        buffered = (
            self._pending[0]
            if len(self._pending) == 1
            else np.concatenate(self._pending, axis=0)
        )
        return self._total + buffered.sum(axis=0)

    def reset(self) -> None:
        """Discard all accumulated rows."""
        self._total.fill(0.0)
        self._pending = []
        self._pending_rows = 0
        self._rows = 0
