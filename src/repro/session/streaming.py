"""Exact, order-invariant streaming accumulation.

Floating-point addition is not associative, so a naive streaming
collector ("add each batch's column sum to a running total") produces
estimates that depend on *how* the report stream was batched — and a
sharded collector would additionally depend on how batches were routed
across shards and in which order the shards were merged.

:class:`StreamingSum` removes the problem at the root: it accumulates the
**exact** sum. Every float64 is an integer multiple of ``2**-1074``, so a
column sum is representable as one arbitrary-precision integer; the
accumulator decomposes incoming values into (mantissa, exponent) pairs
with :func:`numpy.frexp`, reduces them bin-by-exponent with exact
float-integer arithmetic, and folds the bins into one Python big int per
column. :meth:`value` rounds the exact integer sum to the nearest float64
(integer true division is correctly rounded).

Consequences, all load-bearing for the distributed collection API:

* **batching invariance** — the value after ten small batches is
  bit-identical to the value after one concatenated batch;
* **order invariance** — permuting the batches (e.g. routing them
  round-robin over shards) cannot change the value;
* **exact merge** — merging two accumulators is big-int addition, so a
  shard-merged estimate is bit-identical to one-shot ingestion, and a
  snapshot/restore cycle resumes a round without losing a single ulp.

The decomposition is vectorized (``frexp``/``ldexp``/``bincount``); the
only Python-level work is one loop over the few dozen occupied exponent
bins per ``add`` call.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..exceptions import AggregationError, DimensionError, DomainError, WireFormatError

#: ``frexp`` exponents of finite float64 values lie in [-1073, 1024];
#: shifting by the offset makes every bin index non-negative.
_EXPONENT_OFFSET = 1073
_BIN_COUNT = 2098

#: Accumulators store ``sum * 2**_SCALE_BITS`` as exact integers: a
#: mantissa contributes ``m * 2**(e - 53)``, i.e. ``m << (e + 1073)``
#: at this scale.
_SCALE_BITS = _EXPONENT_OFFSET + 53
_SCALE_DEN = 1 << _SCALE_BITS

#: Mantissas are split into 27-bit halves so :func:`numpy.bincount` can
#: reduce them in float64 without rounding: partial sums stay integers
#: below 2**53 for any block up to ``_MAX_BLOCK`` rows.
_SPLIT_BITS = 27
_MAX_BLOCK = 1 << 24

#: Identifier stamped into (and required from) state dictionaries.
STATE_KIND = "exact-sum"


class StreamingSum:
    """Exact streaming column sums, invariant to batching *and* order.

    Parameters
    ----------
    width:
        Number of columns being summed.
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise DimensionError("width must be >= 1, got %d" % width)
        self.width = int(width)
        self._acc: List[int] = [0] * self.width
        self._rows = 0

    @property
    def rows(self) -> int:
        """Total number of rows accumulated so far."""
        return self._rows

    def add(self, rows: np.ndarray, assume_finite: bool = False) -> None:
        """Accumulate a ``(k, width)`` batch of rows (``k`` may be 0).

        ``assume_finite`` skips the non-finite guard for callers that
        already validated the block (the collectors' fold path scans
        payloads once in ``check_payload``).
        """
        block = np.asarray(rows, dtype=np.float64)
        if block.ndim == 1:
            block = block[:, None]
        if block.ndim != 2 or block.shape[1] != self.width:
            raise DimensionError(
                "expected (k, %d) rows, got %s" % (self.width, block.shape)
            )
        if block.shape[0] == 0:
            return
        if not assume_finite and not np.all(np.isfinite(block)):
            raise DomainError("cannot accumulate non-finite values")
        for start in range(0, block.shape[0], _MAX_BLOCK):
            self._add_block(block[start : start + _MAX_BLOCK])
        self._rows += block.shape[0]

    def _add_block(self, block: np.ndarray) -> None:
        """Exactly fold one ``(k <= _MAX_BLOCK, width)`` block.

        Every step below is exact in float64: ``m * 2**53`` is an
        integer with <= 53 significant bits (frexp mantissas lie in
        ±[0.5, 1)), splitting it at bit 27 uses only power-of-two
        scalings and differences of exactly representable integers, and
        the bincount reductions sum integers far below 2**53.
        """
        mantissa, exponent = np.frexp(block)
        m53 = mantissa * float(1 << 53)
        high = np.floor(m53 * (1.0 / (1 << _SPLIT_BITS)))
        low = m53 - high * float(1 << _SPLIT_BITS)
        # One bincount over (exponent, column) pairs, windowed to the
        # exponent range actually present in the block.
        base = int(exponent.min())
        span = int(exponent.max()) - base + 1
        index = (
            (exponent - base) * self.width
            + np.arange(self.width, dtype=exponent.dtype)
        ).ravel()
        high_sums = np.bincount(
            index, weights=high.ravel(), minlength=span * self.width
        )
        low_sums = np.bincount(
            index, weights=low.ravel(), minlength=span * self.width
        )
        occupied = np.flatnonzero((high_sums != 0.0) | (low_sums != 0.0))
        shift_base = base + _EXPONENT_OFFSET
        for flat in occupied.tolist():
            contribution = (int(high_sums[flat]) << _SPLIT_BITS) + int(
                low_sums[flat]
            )
            column = flat % self.width
            self._acc[column] += contribution << (flat // self.width + shift_base)

    def value(self) -> np.ndarray:
        """Current column sums (does not mutate the accumulator).

        Equal, bit for bit, to the value any other batching — or any
        other *ordering* — of the same rows would produce: the integer
        accumulator is exact and the final division rounds correctly.
        """
        out = np.empty(self.width, dtype=np.float64)
        for column, acc in enumerate(self._acc):
            try:
                out[column] = acc / _SCALE_DEN
            except OverflowError:
                raise AggregationError(
                    "exact column sum exceeds the float64 range"
                ) from None
        return out

    def merge(self, other: "StreamingSum") -> None:
        """Fold ``other``'s rows into this accumulator (exactly).

        Bit-identical to having added ``other``'s rows directly, in any
        order. ``other`` is left untouched.
        """
        if not isinstance(other, StreamingSum) or other.width != self.width:
            raise DimensionError(
                "can only merge a StreamingSum of width %d" % self.width
            )
        for column in range(self.width):
            self._acc[column] += other._acc[column]
        self._rows += other._rows

    def reset(self) -> None:
        """Discard all accumulated rows."""
        self._acc = [0] * self.width
        self._rows = 0

    # ------------------------------------------------------------- snapshots

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the exact accumulator state."""
        return {
            "kind": STATE_KIND,
            "width": self.width,
            "rows": self._rows,
            "scale_bits": _SCALE_BITS,
            "sums": list(self._acc),
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "StreamingSum":
        """Reconstruct an accumulator from :meth:`state_dict` output."""
        if not isinstance(state, dict) or state.get("kind") != STATE_KIND:
            raise WireFormatError(
                "not a %r state dictionary: %r" % (STATE_KIND, state)
            )
        if state.get("scale_bits") != _SCALE_BITS:
            raise WireFormatError(
                "unsupported accumulator scale %r" % state.get("scale_bits")
            )
        try:
            width = int(state["width"])
            rows = int(state["rows"])
            sums = [int(total) for total in state["sums"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise WireFormatError("malformed accumulator state: %s" % exc) from None
        if len(sums) != width or rows < 0:
            raise WireFormatError(
                "accumulator state is inconsistent: width=%d, %d sums, rows=%d"
                % (width, len(sums), rows)
            )
        restored = cls(width)
        restored._acc = sums
        restored._rows = rows
        return restored
