"""The unified client/server collection API (the canonical entry surface).

The paper frames LDP collection as one protocol — users perturb locally,
a collector aggregates, HDR4ME re-calibrates — and this subpackage
exposes it as one API regardless of whether attributes are numeric or
categorical and which perturbation backend serves them:

* :class:`Schema` with typed :class:`NumericAttribute` /
  :class:`CategoricalAttribute` entries describes one user's record;
* :class:`LDPClient` perturbs whole records, sampling exactly ``m`` of
  the ``d`` attributes under a shared :class:`~repro.protocol.BudgetPlan`;
* :class:`LDPServer` ingests :class:`ReportBatch` streams incrementally
  and estimates on demand, with re-calibration as a composable
  ``estimate(postprocess=Recalibrator(...))`` step;
* the unified registry (:func:`repro.mechanisms.registry.get_protocol`)
  resolves numeric mechanisms *and* the GRR/OUE/OLH frequency oracles
  into interchangeable :class:`~repro.session.adapters.CollectionProtocol`
  backends;
* the wire layer (:mod:`repro.wire`) carries a round across processes:
  contract-fingerprinted binary frames (:meth:`LDPClient.report_encoded`
  → :meth:`LDPServer.ingest_encoded`), exact :meth:`LDPServer.merge`,
  JSON checkpoints (:meth:`LDPServer.save_state` /
  :meth:`LDPServer.load_state`), and :class:`ShardedServer`, which fans
  a batch stream over ``N`` workers with bit-identical merged estimates.

Quickstart::

    import numpy as np
    from repro import (
        CategoricalAttribute, LDPClient, LDPServer, NumericAttribute,
        Recalibrator, Schema,
    )

    schema = Schema([
        NumericAttribute("screen_time"),
        CategoricalAttribute("top_app", n_categories=16),
    ])
    client = LDPClient(schema, epsilon=1.0, protocols="piecewise")
    server = LDPServer(schema, epsilon=1.0, protocols="piecewise")
    rng = np.random.default_rng(0)                 # one stream for all batches
    for batch in np.array_split(records, 10):      # streaming ingestion
        server.ingest(client.report_batch(batch, rng))
    estimate = server.estimate(postprocess=Recalibrator(norm="l1"))
    print(estimate["screen_time"].scalar, estimate.frequencies("top_app"))
"""

from .adapters import (
    AttributeCollector,
    CollectionProtocol,
    MechanismProtocol,
    OracleProtocol,
)
from .client import (
    DEFAULT_PROTOCOL,
    LDPClient,
    ReportBatch,
    resolve_collectors,
    sample_attribute_mask,
)
from .schema import Attribute, CategoricalAttribute, NumericAttribute, Schema
from .server import AttributeEstimate, LDPServer, SessionEstimate
from .sharded import ShardedServer
from .streaming import StreamingSum

__all__ = [
    "Attribute",
    "AttributeCollector",
    "AttributeEstimate",
    "CategoricalAttribute",
    "CollectionProtocol",
    "DEFAULT_PROTOCOL",
    "LDPClient",
    "LDPServer",
    "MechanismProtocol",
    "NumericAttribute",
    "OracleProtocol",
    "ReportBatch",
    "Schema",
    "SessionEstimate",
    "ShardedServer",
    "StreamingSum",
    "resolve_collectors",
    "sample_attribute_mask",
]
