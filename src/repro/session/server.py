"""Collector-side of the unified collection API.

:class:`LDPServer` owns one additive aggregation state per schema
attribute and exposes the two verbs real telemetry backends need:

* :meth:`LDPServer.ingest` — fold a :class:`~repro.session.ReportBatch`
  (or several) into the state. Batches can arrive in any split: the
  states are strictly additive and float reductions are batching-
  invariant (see :mod:`repro.session.streaming`), so incremental
  ingestion is *bit-identical* to one-shot ingestion of the concatenated
  reports.
* :meth:`LDPServer.estimate` — read the calibrated estimates out of the
  current state without consuming it; call it as often as you like while
  the stream keeps flowing.

Re-calibration is a composable post-processing step: pass
``estimate(postprocess=Recalibrator(norm="l1"))`` and the server builds
each attribute group's deviation model from its protocol adapter and
re-calibrates — HDR4ME is applied jointly across the numeric attributes
(that is the high-dimensional setting of the paper) and per categorical
attribute over its frequency vector, with no recalibration state threaded
through constructors.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..exceptions import AggregationError, DimensionError, WireFormatError
from ..framework.multivariate import MultivariateDeviationModel
from ..protocol.budget import BudgetPlan
from ..wire.codec import decode_batch
from ..wire.contract import CollectionContract
from .client import ProtocolSpec, ReportBatch, resolve_collectors
from .schema import Schema

#: Identifier and version of the JSON checkpoint documents written by
#: :meth:`LDPServer.save_state`.
STATE_FORMAT = "repro-ldp-server-state"
STATE_VERSION = 1

#: A post-processing step: a :class:`~repro.hdr4me.Recalibrator` (anything
#: with a ``recalibrate(theta_hat, model)`` method) or a plain callable
#: ``(theta_hat, model) -> ndarray``.
Postprocessor = Union[Callable[..., Any], Any]


@dataclass(frozen=True)
class AttributeEstimate:
    """One attribute's estimate after a collection round.

    Attributes
    ----------
    name:
        Attribute name from the schema.
    kind:
        ``"numeric"`` or ``"categorical"``.
    raw:
        Calibrated estimate — length-1 vector (mean) for numeric
        attributes, length-``v`` frequency vector for categorical ones.
    enhanced:
        Post-processed (e.g. HDR4ME re-calibrated) estimate, present when
        a postprocessor was supplied to :meth:`LDPServer.estimate`.
    reports:
        Number of user reports this attribute received.
    epsilon:
        Per-attribute budget ``ε/m`` the reports were perturbed with.
    entry_means:
        Uncalibrated encoded-entry means for histogram-encoded
        categorical attributes; ``None`` otherwise.
    """

    name: str
    kind: str
    raw: np.ndarray
    enhanced: Optional[np.ndarray]
    reports: int
    epsilon: float
    entry_means: Optional[np.ndarray] = None

    @property
    def value(self) -> np.ndarray:
        """Best available estimate (enhanced when present, else raw)."""
        return self.enhanced if self.enhanced is not None else self.raw

    @property
    def scalar(self) -> float:
        """The mean as a float (numeric attributes only)."""
        if self.kind != "numeric":
            raise DimensionError(
                "attribute %r is categorical; use the frequency vector"
                % self.name
            )
        return float(self.value[0])


@dataclass(frozen=True)
class SessionEstimate:
    """Everything the server can say after (or during) a collection round.

    Attributes
    ----------
    attributes:
        Per-attribute estimates in schema order.
    users:
        Number of users ingested so far.
    plan:
        The shared budget plan.
    """

    attributes: List[AttributeEstimate]
    users: int
    plan: BudgetPlan

    def __getitem__(self, name: str) -> AttributeEstimate:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(
            "unknown attribute %r; estimates cover: %s"
            % (name, ", ".join(a.name for a in self.attributes))
        )

    def numeric_means(self, enhanced: bool = True) -> np.ndarray:
        """Vector of numeric-attribute means in schema order."""
        return np.array(
            [
                (a.value if enhanced else a.raw)[0]
                for a in self.attributes
                if a.kind == "numeric"
            ]
        )

    def frequencies(self, name: str, enhanced: bool = True) -> np.ndarray:
        """Frequency vector of a categorical attribute."""
        attr = self[name]
        if attr.kind != "categorical":
            raise DimensionError("attribute %r is numeric" % name)
        return attr.value if enhanced else attr.raw


class LDPServer:
    """Streaming collector for typed records.

    Construct it with the *same* schema, budget and protocol spec as the
    :class:`~repro.session.LDPClient` producing the reports — those three
    are the collection contract.

    Parameters
    ----------
    schema:
        The record :class:`~repro.session.Schema`.
    epsilon:
        Collective per-user privacy budget ``ε``.
    sampled_attributes:
        The ``m`` of the protocol; defaults to all attributes.
    protocols:
        Protocol spec, as for :class:`~repro.session.LDPClient`.
    """

    def __init__(
        self,
        schema: Schema,
        epsilon: float,
        sampled_attributes: Optional[int] = None,
        protocols: ProtocolSpec = None,
    ) -> None:
        m = (
            schema.dimensions
            if sampled_attributes is None
            else int(sampled_attributes)
        )
        self.schema = schema
        self.plan = BudgetPlan(
            epsilon=epsilon, dimensions=schema.dimensions, sampled_dimensions=m
        )
        self.collectors = resolve_collectors(schema, self.plan, protocols)
        self.contract = CollectionContract.for_session(
            schema, self.plan, self.collectors
        )
        self._states: Dict[str, Any] = {
            name: collector.new_state()
            for name, collector in self.collectors.items()
        }
        self._users = 0
        # Observability is opt-in: the fold hot path pays one None check
        # until attach_telemetry() is called.
        self.telemetry = None

    def attach_telemetry(self, metrics) -> "LDPServer":
        """Instrument this server against a telemetry registry.

        Registers batch/user fold counters, a wire-decode latency
        histogram and a decoded-bytes counter in ``metrics`` (a
        :class:`~repro.telemetry.MetricsRegistry`; registration is
        idempotent, so many servers can share one registry). Returns
        ``self`` for chaining. Telemetry never alters aggregation —
        estimates with and without it are bit-identical.
        """
        self.telemetry = metrics
        self._m_batches_folded = metrics.counter(
            "server_batches_folded_total",
            "Report batches folded into aggregation state",
        )
        self._m_users_folded = metrics.counter(
            "server_users_folded_total",
            "Users folded into aggregation state",
        )
        self._m_decode_seconds = metrics.histogram(
            "server_decode_seconds",
            "Wire-frame decode + contract check in ingest_encoded()",
        )
        self._m_bytes_decoded = metrics.counter(
            "server_bytes_decoded_total",
            "Wire-frame bytes decoded by ingest_encoded()",
        )
        self._m_merges = metrics.counter(
            "server_merges_total",
            "Peer server states merged into this one",
        )
        return self

    # -------------------------------------------------------------- ingest

    @property
    def users(self) -> int:
        """Number of users ingested so far."""
        return self._users

    def report_counts(self) -> Dict[str, int]:
        """Reports received so far, per attribute name."""
        return {
            name: collector.reports(self._states[name])
            for name, collector in self.collectors.items()
        }

    def _validate_batch(self, batch: ReportBatch) -> Tuple[int, Dict[str, Any]]:
        """Validate every payload of a batch without touching any state.

        Returns ``(users, canonical payloads by attribute name)``;
        raising here leaves the server exactly as it was.
        """
        unknown = set(batch.payloads) - set(self.collectors)
        if unknown:
            raise DimensionError(
                "batch reports unknown attributes: %s"
                % ", ".join(sorted(unknown))
            )
        users = int(batch.users)
        if users < 0:
            raise DimensionError("batch user count must be >= 0, got %d" % users)
        canonical: Dict[str, Any] = {}
        for name, payload in batch.payloads.items():
            canonical[name] = self._validate_block(
                name,
                batch.protocols.get(name),
                int(batch.counts[name]),
                payload,
                users,
            )
        return users, canonical

    def _validate_block(
        self,
        name: str,
        declared: Optional[str],
        count: int,
        payload: Any,
        users: int,
    ) -> Any:
        """Validate one attribute's payload; returns its canonical form.

        The single-attribute unit shared by :meth:`_validate_batch` and
        the streaming :meth:`_validate_blocks` path — raising here never
        touches state.
        """
        collector = self.collectors.get(name)
        if collector is None:
            raise DimensionError(
                "batch reports unknown attributes: %s" % name
            )
        if declared is not None and declared != collector.protocol_name:
            raise DimensionError(
                "attribute %r: batch was produced by protocol %r "
                "but this server aggregates with %r"
                % (name, declared, collector.protocol_name)
            )
        canonical = collector.check_payload(payload)
        rows = collector.payload_rows(canonical)
        if rows != count:
            raise DimensionError(
                "attribute %r: batch declares %d reports but the "
                "payload carries %d" % (name, count, rows)
            )
        if count > users:
            raise DimensionError(
                "attribute %r: %d reports from a batch of %d users "
                "(each user reports an attribute at most once)"
                % (name, count, users)
            )
        return canonical

    def _validate_blocks(
        self, users: int, blocks: Iterable[Any]
    ) -> Dict[str, Any]:
        """Validate attribute blocks as they stream off the wire.

        ``blocks`` yields ``(name, protocol, count, payload)`` tuples —
        the shape :func:`repro.wire.iter_attribute_blocks` produces — and
        each block is validated the moment it is parsed, without
        materializing a :class:`~repro.session.ReportBatch` first.
        Returns the canonical payload dict for :meth:`_fold_validated`;
        any raise (from parsing or validation) leaves state untouched
        because nothing is folded until every block has passed.
        """
        users = int(users)
        if users < 0:
            raise DimensionError("batch user count must be >= 0, got %d" % users)
        canonical: Dict[str, Any] = {}
        for name, protocol, count, payload in blocks:
            canonical[name] = self._validate_block(
                name, protocol, int(count), payload, users
            )
        return canonical

    def _fold_validated(self, users: int, canonical: Mapping[str, Any]) -> None:
        """Accumulate one batch's canonical payloads (validation done)."""
        for name, payload in canonical.items():
            self.collectors[name].fold(self._states[name], payload)
        self._users += users
        if self.telemetry is not None:
            self._m_batches_folded.inc()
            self._m_users_folded.inc(users)

    def ingest(
        self, reports: Union[ReportBatch, Iterable[ReportBatch]]
    ) -> "LDPServer":
        """Fold one batch — or an iterable of batches — into the state.

        Ingestion is atomic per call: every payload of every batch is
        validated (protocol name, shape, value domain, report counts)
        *before* anything is accumulated, so a malformed attribute can
        never leave earlier attributes' state partially updated.

        Returns ``self`` so streaming loops can chain
        ``server.ingest(batch).estimate()``.
        """
        batches = [reports] if isinstance(reports, ReportBatch) else list(reports)
        validated: List[Tuple[int, Dict[str, Any]]] = [
            self._validate_batch(batch) for batch in batches
        ]
        for users, canonical in validated:
            self._fold_validated(users, canonical)
        return self

    def ingest_encoded(self, data: bytes) -> "LDPServer":
        """Decode one wire frame and fold it into the state.

        The frame's embedded contract fingerprint must match this
        server's :attr:`contract`; mismatches raise
        :class:`~repro.exceptions.ContractMismatchError` and malformed
        bytes raise :class:`~repro.exceptions.WireFormatError`, in both
        cases before any state is touched.
        """
        if self.telemetry is None:
            return self.ingest(decode_batch(data, contract=self.contract))
        started = self.telemetry.clock()
        batch = decode_batch(data, contract=self.contract)
        self._m_decode_seconds.observe(self.telemetry.clock() - started)
        self._m_bytes_decoded.inc(len(data))
        return self.ingest(batch)

    def merge(self, other: "LDPServer") -> "LDPServer":
        """Fold another server's accumulated state into this one.

        Both servers must share the collection contract (schema, budget
        and per-attribute protocols). The merge is exact: estimates after
        merging are bit-identical to having ingested the other server's
        batches directly, in any order — which is what makes
        shard-parallel ingestion reproducible.
        """
        if not isinstance(other, LDPServer):
            raise DimensionError(
                "can only merge another LDPServer, got %s" % type(other).__name__
            )
        self.contract.require_digest(other.contract.digest, "merged server state")
        for name, collector in self.collectors.items():
            collector.merge_states(self._states[name], other._states[name])
        self._users += other._users
        if self.telemetry is not None:
            self._m_merges.inc()
        return self

    def reset(self) -> None:
        """Discard all accumulated reports (start a new round)."""
        for name, collector in self.collectors.items():
            self._states[name] = collector.new_state()
        self._users = 0

    def merge_state_dict(self, state: Mapping[str, Any]) -> "LDPServer":
        """Fold a :meth:`state_dict` snapshot *into* the current state.

        The additive counterpart of :meth:`load_state_dict` (which
        replaces): the snapshot's accumulators are added to this
        server's, exactly — merging a peer's snapshot is bit-identical
        to having ingested the peer's batches directly. This is the
        merge surface the federation tier rides: a root aggregator folds
        edge ``state_dict`` pushes without ever seeing a report frame.

        All-or-nothing like the other state verbs: the snapshot is fully
        validated and restored (contract fingerprint, format, every
        attribute) before any accumulator is touched.
        """
        restored, users = self._restore_states(state)
        for name, collector in self.collectors.items():
            collector.merge_states(self._states[name], restored[name])
        self._users += users
        if self.telemetry is not None:
            self._m_merges.inc()
        return self

    # --------------------------------------------------------- checkpoints

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the full aggregation state.

        The document embeds the contract fingerprint (and its readable
        description); :meth:`load_state_dict` refuses snapshots produced
        under a different contract.
        """
        return {
            "format": STATE_FORMAT,
            "state_version": STATE_VERSION,
            "fingerprint": self.contract.fingerprint,
            "contract": self.contract.describe(),
            "users": self._users,
            "attributes": {
                name: collector.snapshot(self._states[name])
                for name, collector in self.collectors.items()
            },
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> "LDPServer":
        """Replace this server's state with a :meth:`state_dict` snapshot.

        All-or-nothing: the current state is swapped out only after the
        whole snapshot restored cleanly.
        """
        restored, users = self._restore_states(state)
        self._states = restored
        self._users = users
        return self

    def _restore_states(
        self, state: Mapping[str, Any]
    ) -> Tuple[Dict[str, Any], int]:
        """Validate a :meth:`state_dict` snapshot and rebuild its states.

        Shared by :meth:`load_state_dict` (replace) and
        :meth:`merge_state_dict` (add); raises before anything of this
        server is touched.
        """
        if not isinstance(state, Mapping) or state.get("format") != STATE_FORMAT:
            raise WireFormatError(
                "not a %r document: %r" % (STATE_FORMAT, state)
            )
        if state.get("state_version") != STATE_VERSION:
            raise WireFormatError(
                "unsupported state version %r (this build speaks %d)"
                % (state.get("state_version"), STATE_VERSION)
            )
        fingerprint = state.get("fingerprint")
        try:
            digest = bytes.fromhex(fingerprint)
        except (TypeError, ValueError):
            raise WireFormatError(
                "malformed state fingerprint: %r" % (fingerprint,)
            ) from None
        self.contract.require_digest(digest, "saved server state")
        attributes = state.get("attributes")
        if not isinstance(attributes, Mapping) or set(attributes) != set(
            self.collectors
        ):
            raise WireFormatError(
                "state document covers attributes %s but the contract has %s"
                % (
                    sorted(attributes) if isinstance(attributes, Mapping) else None,
                    sorted(self.collectors),
                )
            )
        users = state.get("users")
        if not isinstance(users, int) or isinstance(users, bool) or users < 0:
            raise WireFormatError("malformed user count: %r" % (users,))
        restored = {
            name: collector.restore(attributes[name])
            for name, collector in self.collectors.items()
        }
        return restored, users

    def save_state(self, path: Union[str, pathlib.Path]) -> None:
        """Checkpoint the aggregation state to a JSON file.

        Delegates to :class:`~repro.storage.JsonFileStore`, whose write
        is atomic (temp file + rename in the same directory): a crash
        mid-checkpoint can never destroy the previous good checkpoint,
        and a failed write removes its scratch file instead of leaving a
        stale partial ``.tmp`` beside the target.
        """
        from ..storage import JsonFileStore

        JsonFileStore(path).save(self.state_dict())

    def load_state(self, path: Union[str, pathlib.Path]) -> "LDPServer":
        """Resume from a :meth:`save_state` checkpoint (exactly).

        A restored server continues the round with estimates
        bit-identical to one that never restarted. A damaged file raises
        :class:`~repro.exceptions.CheckpointCorruptError` (a
        :class:`WireFormatError`); a missing one raises
        :class:`~repro.exceptions.StorageError`.
        """
        from ..storage import JsonFileStore

        return self.load_state_dict(JsonFileStore(path).load_required())

    # ------------------------------------------------------------ estimate

    def estimate(self, postprocess: Optional[Postprocessor] = None) -> SessionEstimate:
        """Calibrated estimates from the current state (non-destructive).

        Parameters
        ----------
        postprocess:
            Optional re-calibration step — typically a
            :class:`~repro.hdr4me.Recalibrator`. Applied jointly over the
            numeric attributes (one high-dimensional mean vector) and per
            categorical attribute (its frequency vector), each with the
            deviation model supplied by the attribute's protocol adapter.

        Raises
        ------
        AggregationError
            If any attribute has received no reports yet.
        """
        if self._users == 0:
            raise AggregationError("no reports ingested yet")
        raws: Dict[str, np.ndarray] = {}
        for name, collector in self.collectors.items():
            raws[name] = collector.estimate(self._states[name])

        enhanced: Dict[str, Optional[np.ndarray]] = {n: None for n in raws}
        if postprocess is not None:
            enhanced.update(self._postprocess(postprocess, raws))

        epsilon = self.plan.epsilon_per_dimension
        attributes = []
        for attr in self.schema:
            collector = self.collectors[attr.name]
            state = self._states[attr.name]
            attributes.append(
                AttributeEstimate(
                    name=attr.name,
                    kind=attr.kind,
                    raw=raws[attr.name],
                    enhanced=enhanced[attr.name],
                    reports=collector.reports(state),
                    epsilon=epsilon,
                    entry_means=collector.entry_means(state),
                )
            )
        return SessionEstimate(
            attributes=attributes, users=self._users, plan=self.plan
        )

    # -------------------------------------------------------------- helpers

    def deviation_model(self, name: str) -> MultivariateDeviationModel:
        """The deviation model of one attribute's current estimate."""
        return self.collectors[name].deviation_model(self._states[name])

    def _apply(
        self,
        postprocess: Postprocessor,
        theta_hat: np.ndarray,
        model: MultivariateDeviationModel,
    ) -> np.ndarray:
        recalibrate = getattr(postprocess, "recalibrate", None)
        if recalibrate is not None:
            result = recalibrate(theta_hat, model)
            return np.asarray(result.theta_star, dtype=np.float64)
        return np.asarray(postprocess(theta_hat, model), dtype=np.float64)

    def _postprocess(
        self, postprocess: Postprocessor, raws: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Re-calibrate numeric attributes jointly, categorical per attribute."""
        out: Dict[str, np.ndarray] = {}
        numeric = [a for a in self.schema if a.kind == "numeric"]
        if numeric:
            theta_hat = np.array([raws[a.name][0] for a in numeric])
            joint = MultivariateDeviationModel(
                [
                    self.deviation_model(a.name).dimensions[0]
                    for a in numeric
                ]
            )
            theta_star = self._apply(postprocess, theta_hat, joint)
            for idx, attr in enumerate(numeric):
                out[attr.name] = np.array([theta_star[idx]])
        for attr in self.schema:
            if attr.kind != "categorical":
                continue
            model = self.deviation_model(attr.name)
            out[attr.name] = self._apply(postprocess, raws[attr.name], model)
        return out
