"""Typed record schemas for the unified collection API.

A :class:`Schema` declares what one user's record looks like: an ordered
list of named, typed attributes. Two attribute types cover the paper's two
estimation tasks:

* :class:`NumericAttribute` — a real value inside a declared interval
  (mean estimation, Sections III–V of the paper);
* :class:`CategoricalAttribute` — an integer label in ``[0, v)``
  (frequency estimation, Section V-C / the Wang et al. oracles).

The schema is the contract shared by :class:`~repro.session.LDPClient`
and :class:`~repro.session.LDPServer`: the client validates and encodes a
record against it before perturbing, the server uses it to shape its
aggregation state and to interpret estimates. Records travel as ``(n, d)``
float matrices in schema order; categorical columns hold integer labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

from ..exceptions import DimensionError, DomainError
from ..mechanisms.base import STANDARD_DOMAIN


@dataclass(frozen=True)
class NumericAttribute:
    """A real-valued attribute with a declared bounded domain.

    Attributes
    ----------
    name:
        Unique attribute name within the schema.
    domain:
        Closed interval of admissible original values; defaults to the
        library-standard ``[−1, 1]``.
    """

    name: str
    domain: Tuple[float, float] = STANDARD_DOMAIN

    #: Discriminator used by protocol adapters ("numeric"/"categorical").
    kind = "numeric"

    def __post_init__(self) -> None:
        if not self.name:
            raise DimensionError("attribute name must be non-empty")
        lo, hi = float(self.domain[0]), float(self.domain[1])
        if not (np.isfinite(lo) and np.isfinite(hi) and hi > lo):
            raise DomainError(
                "numeric domain must be a finite non-degenerate interval, "
                "got [%r, %r]" % (self.domain[0], self.domain[1])
            )
        object.__setattr__(self, "domain", (lo, hi))

    def validate_column(self, column: np.ndarray, atol: float = 1e-9) -> np.ndarray:
        """Validate one data column against the domain; return float64."""
        arr = np.asarray(column, dtype=np.float64)
        if arr.size and not np.all(np.isfinite(arr)):
            raise DomainError(
                "attribute %r: values must be finite (found NaN or inf)"
                % self.name
            )
        lo, hi = self.domain
        if arr.size and (arr.min() < lo - atol or arr.max() > hi + atol):
            raise DomainError(
                "attribute %r: values outside domain [%g, %g]: min=%g max=%g"
                % (self.name, lo, hi, float(arr.min()), float(arr.max()))
            )
        return np.clip(arr, lo, hi)


@dataclass(frozen=True)
class CategoricalAttribute:
    """An integer-label attribute over ``n_categories`` categories.

    Attributes
    ----------
    name:
        Unique attribute name within the schema.
    n_categories:
        Number of categories ``v`` (labels live in ``[0, v)``).
    """

    name: str
    n_categories: int

    kind = "categorical"

    def __post_init__(self) -> None:
        if not self.name:
            raise DimensionError("attribute name must be non-empty")
        if int(self.n_categories) < 2:
            raise DimensionError(
                "attribute %r: need at least two categories, got %d"
                % (self.name, self.n_categories)
            )
        object.__setattr__(self, "n_categories", int(self.n_categories))

    def validate_column(self, column: np.ndarray) -> np.ndarray:
        """Validate one label column; return int64 labels."""
        arr = np.asarray(column)
        if arr.size and not np.all(np.isfinite(np.asarray(arr, dtype=np.float64))):
            raise DomainError(
                "attribute %r: labels must be finite integers" % self.name
            )
        labels = np.asarray(arr, dtype=np.float64)
        rounded = np.rint(labels)
        if labels.size and np.any(np.abs(labels - rounded) > 1e-9):
            raise DomainError(
                "attribute %r: labels must be integers" % self.name
            )
        out = rounded.astype(np.int64)
        if out.size and (out.min() < 0 or out.max() >= self.n_categories):
            raise DomainError(
                "attribute %r: labels must lie in [0, %d)"
                % (self.name, self.n_categories)
            )
        return out


Attribute = Union[NumericAttribute, CategoricalAttribute]


@dataclass(frozen=True)
class Schema:
    """Ordered, named, typed description of one user's record.

    Attributes
    ----------
    attributes:
        The typed attributes in record order. Names must be unique.
    """

    attributes: Tuple[Attribute, ...] = field(default_factory=tuple)

    def __init__(self, attributes: Sequence[Attribute]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise DimensionError("a schema needs at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise DimensionError("duplicate attribute names: %s" % ", ".join(dupes))
        for attr in attrs:
            if getattr(attr, "kind", None) not in ("numeric", "categorical"):
                raise DimensionError(
                    "unsupported attribute type: %r" % (attr,)
                )
        object.__setattr__(self, "attributes", attrs)

    # ------------------------------------------------------------- structure

    @property
    def dimensions(self) -> int:
        """Number of attributes ``d`` (the protocol's dimensionality)."""
        return len(self.attributes)

    @property
    def names(self) -> List[str]:
        """Attribute names in record order."""
        return [a.name for a in self.attributes]

    @property
    def numeric_indices(self) -> List[int]:
        """Column indices of the numeric attributes."""
        return [j for j, a in enumerate(self.attributes) if a.kind == "numeric"]

    @property
    def categorical_indices(self) -> List[int]:
        """Column indices of the categorical attributes."""
        return [j for j, a in enumerate(self.attributes) if a.kind == "categorical"]

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __getitem__(self, key: Union[int, str]) -> Attribute:
        """Look an attribute up by column index or by name."""
        if isinstance(key, str):
            for attr in self.attributes:
                if attr.name == key:
                    return attr
            raise KeyError(
                "unknown attribute %r; schema has: %s"
                % (key, ", ".join(self.names))
            )
        return self.attributes[key]

    # ------------------------------------------------------------ validation

    def validate_matrix(self, records: np.ndarray) -> np.ndarray:
        """Validate an ``(n, d)`` record matrix column-by-column.

        Returns a float64 copy whose numeric columns are clipped to their
        domains and whose categorical columns hold exact integer labels.
        """
        matrix = np.asarray(records, dtype=np.float64)
        if matrix.ndim == 1 and self.dimensions == 1:
            matrix = matrix[:, None]
        if matrix.ndim != 2 or matrix.shape[1] != self.dimensions:
            raise DimensionError(
                "expected (n, %d) records for schema [%s], got %s"
                % (self.dimensions, ", ".join(self.names), np.shape(records))
            )
        out = np.empty_like(matrix)
        for j, attr in enumerate(self.attributes):
            out[:, j] = attr.validate_column(matrix[:, j])
        return out

    def validate_record(self, record: np.ndarray) -> np.ndarray:
        """Validate a single ``d``-dimensional record (1-D)."""
        arr = np.asarray(record, dtype=np.float64).ravel()
        if arr.size != self.dimensions:
            raise DimensionError(
                "record must have %d attributes, got shape %s"
                % (self.dimensions, np.shape(record))
            )
        return self.validate_matrix(arr[None, :])[0]
