"""User-side of the unified collection API.

:class:`LDPClient` perturbs whole typed records: each user samples exactly
``m`` of the schema's ``d`` attributes (the paper's Section III-B sampling
— never more, so the collective budget ``ε`` is spent exactly), perturbs
every sampled attribute with its bound protocol under the per-attribute
budget ``ε/m``, and packages the results as a :class:`ReportBatch` that
:class:`repro.session.LDPServer` can ingest incrementally.

The client is vectorized over users: :meth:`LDPClient.report_batch`
processes an ``(n, d)`` record matrix in one go, and
:meth:`LDPClient.report` is the single-record convenience on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Union

import numpy as np

from ..exceptions import DimensionError
from ..protocol.budget import BudgetPlan
from ..rng import RngLike, ensure_rng
from ..wire.codec import encode_batch
from ..wire.contract import CollectionContract
from .adapters import AttributeCollector, CollectionProtocol
from .schema import Schema

#: Spec for choosing perturbation protocols: a single name/protocol for
#: every attribute, or a per-attribute-name mapping.
ProtocolSpec = Union[None, str, CollectionProtocol, Mapping[str, Union[str, CollectionProtocol]]]

#: Protocol used when none is specified (serves numeric and categorical).
DEFAULT_PROTOCOL = "piecewise"


def sample_attribute_mask(
    users: int, dimensions: int, sampled: int, gen: np.random.Generator
) -> np.ndarray:
    """Boolean ``(users, d)`` mask with exactly ``m`` True per row.

    Uniform without-replacement sampling, vectorized via argpartition of
    i.i.d. scores — every size-``m`` subset is equally likely.
    """
    if sampled == dimensions:
        return np.ones((users, dimensions), dtype=bool)
    scores = gen.random((users, dimensions))
    chosen = np.argpartition(scores, sampled - 1, axis=1)[:, :sampled]
    mask = np.zeros((users, dimensions), dtype=bool)
    mask[np.arange(users)[:, None], chosen] = True
    return mask


def resolve_collectors(
    schema: Schema, plan: BudgetPlan, protocols: ProtocolSpec = None
) -> Dict[str, AttributeCollector]:
    """Bind one :class:`AttributeCollector` per schema attribute.

    ``protocols`` may be ``None`` (use :data:`DEFAULT_PROTOCOL`
    everywhere), a single registry name or protocol object applied to all
    attributes, or a mapping from attribute name to name/protocol with
    the default filling the gaps. Client and server must be constructed
    with the same spec — it is part of the collection contract, like the
    schema and the budget plan.
    """
    from ..mechanisms.registry import get_protocol

    if plan.dimensions != schema.dimensions:
        raise DimensionError(
            "budget plan covers %d dimensions, schema has %d"
            % (plan.dimensions, schema.dimensions)
        )

    def _as_protocol(spec: Union[str, CollectionProtocol]) -> CollectionProtocol:
        if isinstance(spec, str):
            return get_protocol(spec)
        return spec

    per_attribute: Dict[str, Union[str, CollectionProtocol]] = {}
    if protocols is None or isinstance(protocols, (str, CollectionProtocol)):
        shared = protocols if protocols is not None else DEFAULT_PROTOCOL
        per_attribute = {name: shared for name in schema.names}
    else:
        unknown = set(protocols) - set(schema.names)
        if unknown:
            raise DimensionError(
                "protocol spec names unknown attributes: %s"
                % ", ".join(sorted(unknown))
            )
        per_attribute = {
            name: protocols.get(name, DEFAULT_PROTOCOL) for name in schema.names
        }

    epsilon = plan.epsilon_per_dimension
    collectors: Dict[str, AttributeCollector] = {}
    for attr in schema:
        protocol = _as_protocol(per_attribute[attr.name])
        collector = protocol.bind(attr, epsilon)
        collector.protocol_name = protocol.name
        collectors[attr.name] = collector
    return collectors


@dataclass(frozen=True)
class ReportBatch:
    """Perturbed submissions of a batch of users, keyed by attribute.

    Attributes
    ----------
    users:
        Number of users in the batch.
    payloads:
        Protocol-specific report payloads per attribute name; an
        attribute is present only if at least one user sampled it.
    counts:
        Number of contributing users per attribute name (aligned with
        ``payloads``).
    protocols:
        Registry name of the protocol that produced each payload. The
        server refuses payloads whose protocol disagrees with its own —
        mismatched report families can be shape-compatible (e.g. OUE bit
        matrices vs histogram-encoded entries) and would otherwise
        aggregate into silent garbage.
    """

    users: int
    payloads: Mapping[str, Any]
    counts: Mapping[str, int]
    protocols: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if set(self.payloads) != set(self.counts):
            raise DimensionError("payloads and counts disagree on attributes")

    @property
    def total_reports(self) -> int:
        """Total attribute reports in the batch (``≤ users · m``)."""
        return int(sum(self.counts.values()))

    @staticmethod
    def concat(
        batches: Sequence["ReportBatch"],
        collectors: Mapping[str, AttributeCollector],
    ) -> "ReportBatch":
        """Concatenate batches into one (for one-shot ingestion).

        Payload order follows batch order, so ingesting the result is
        equivalent — bit for bit — to ingesting the batches in sequence.
        """
        if not batches:
            raise DimensionError("need at least one batch to concatenate")
        payloads: Dict[str, Any] = {}
        counts: Dict[str, int] = {}
        protocols: Dict[str, str] = {}
        for name, collector in collectors.items():
            parts = [b.payloads[name] for b in batches if name in b.payloads]
            if not parts:
                continue
            payloads[name] = collector.concat_payloads(parts)
            counts[name] = sum(b.counts[name] for b in batches if name in b.counts)
            names = {b.protocols[name] for b in batches if name in b.protocols}
            if len(names) > 1:
                raise DimensionError(
                    "attribute %r: batches mix protocols %s"
                    % (name, ", ".join(sorted(names)))
                )
            if names:
                protocols[name] = names.pop()
        return ReportBatch(
            users=sum(b.users for b in batches),
            payloads=payloads,
            counts=counts,
            protocols=protocols,
        )


class LDPClient:
    """Local perturbation agent for typed records.

    Parameters
    ----------
    schema:
        The record :class:`~repro.session.Schema` shared with the server.
    epsilon:
        Collective per-user privacy budget ``ε``.
    sampled_attributes:
        The ``m`` of the protocol — how many attributes each user
        reports; defaults to all of them.
    protocols:
        Protocol spec (see :func:`resolve_collectors`): one registry name
        for every attribute, or a per-attribute mapping. Mechanism names
        serve both attribute kinds; oracle names (``"grr"``/``"oue"``/
        ``"olh"``) serve categorical attributes only.
    """

    def __init__(
        self,
        schema: Schema,
        epsilon: float,
        sampled_attributes: Optional[int] = None,
        protocols: ProtocolSpec = None,
    ) -> None:
        m = (
            schema.dimensions
            if sampled_attributes is None
            else int(sampled_attributes)
        )
        self.schema = schema
        self.plan = BudgetPlan(
            epsilon=epsilon, dimensions=schema.dimensions, sampled_dimensions=m
        )
        self.collectors = resolve_collectors(schema, self.plan, protocols)
        self.contract = CollectionContract.for_session(
            schema, self.plan, self.collectors
        )

    def report_batch(self, records: np.ndarray, rng: RngLike = None) -> ReportBatch:
        """Sample, perturb and package an ``(n, d)`` batch of records."""
        gen = ensure_rng(rng)
        matrix = self.schema.validate_matrix(records)
        users = matrix.shape[0]
        mask = sample_attribute_mask(
            users, self.plan.dimensions, self.plan.sampled_dimensions, gen
        )
        payloads: Dict[str, Any] = {}
        counts: Dict[str, int] = {}
        protocols: Dict[str, str] = {}
        for j, attr in enumerate(self.schema):
            contributors = mask[:, j]
            count = int(contributors.sum())
            if count == 0:
                continue
            collector = self.collectors[attr.name]
            payloads[attr.name] = collector.privatize(
                matrix[contributors, j], gen
            )
            counts[attr.name] = count
            protocols[attr.name] = collector.protocol_name
        return ReportBatch(
            users=users, payloads=payloads, counts=counts, protocols=protocols
        )

    def report(self, record: np.ndarray, rng: RngLike = None) -> ReportBatch:
        """Sample, perturb and package one user's record."""
        arr = self.schema.validate_record(record)
        return self.report_batch(arr[None, :], rng)

    def encode(self, batch: ReportBatch) -> bytes:
        """Encode a batch for the wire under this client's contract."""
        return encode_batch(batch, self.contract)

    def report_encoded(self, records: np.ndarray, rng: RngLike = None) -> bytes:
        """Sample, perturb and wire-encode an ``(n, d)`` batch of records.

        The produced frame embeds the client's contract fingerprint; a
        server constructed under the same schema/budget/protocols accepts
        it via :meth:`~repro.session.LDPServer.ingest_encoded`.
        """
        return self.encode(self.report_batch(records, rng))
