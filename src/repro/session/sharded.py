"""Shard-parallel collection: fan a batch stream over worker servers.

:class:`ShardedServer` owns ``N`` independent :class:`~repro.session.
LDPServer` workers constructed under one collection contract and routes
incoming batches round-robin across them — the shape of a real ingestion
tier where frames arrive on parallel consumers. Because every aggregation
state is *exactly* additive (big-integer sums underneath the float
estimates, see :mod:`repro.session.streaming`), the merged estimate is a
pure function of the multiset of ingested reports:

* any shard count, any routing, any merge order yields estimates
  bit-identical to one-shot single-server ingestion;
* shards merge deterministically in shard order anyway, so the operation
  log of a run is reproducible;
* a checkpoint of the merged state restores into a fresh topology (even
  a different shard count) and continues the round without losing an ulp.

In-process the workers are plain objects; across machines each worker
ingests wire frames (:meth:`ShardedServer.ingest_encoded`) and ships its
state for merging — exactly what :meth:`LDPServer.merge`,
:meth:`LDPServer.save_state` and :meth:`LDPServer.load_state` provide.
"""

from __future__ import annotations

import operator
import pathlib
from typing import Dict, Iterable, Optional, Union

from ..exceptions import DimensionError
from ..wire.codec import decode_batch
from ..wire.contract import CollectionContract
from .client import ProtocolSpec, ReportBatch
from .schema import Schema
from .server import LDPServer, Postprocessor, SessionEstimate


class ShardedServer:
    """Round-robin fan-out over ``shards`` worker collectors.

    Parameters
    ----------
    schema, epsilon, sampled_attributes, protocols:
        The collection contract, exactly as for :class:`LDPServer`.
    shards:
        Number of worker servers to fan the stream over.
    """

    def __init__(
        self,
        schema: Schema,
        epsilon: float,
        sampled_attributes: Optional[int] = None,
        protocols: ProtocolSpec = None,
        shards: int = 2,
    ) -> None:
        try:
            count = operator.index(shards)
        except TypeError:
            raise DimensionError(
                "shard count must be an integer, got %r" % (shards,)
            ) from None
        if count < 1:
            raise DimensionError("need at least one shard, got %d" % count)
        self._constructor_args = (schema, epsilon, sampled_attributes, protocols)
        self.shards = tuple(
            LDPServer(schema, epsilon, sampled_attributes, protocols)
            for _ in range(count)
        )
        self._cursor = 0
        self.telemetry = None

    def attach_telemetry(self, metrics) -> "ShardedServer":
        """Instrument every shard against one shared telemetry registry.

        Shards register their instruments idempotently, so the fold
        counters aggregate across the whole topology. Returns ``self``.
        """
        self.telemetry = metrics
        for shard in self.shards:
            shard.attach_telemetry(metrics)
        return self

    # ------------------------------------------------------------- routing

    @property
    def n_shards(self) -> int:
        """Number of worker servers."""
        return len(self.shards)

    @property
    def contract(self) -> CollectionContract:
        """The collection contract shared by every shard."""
        return self.shards[0].contract

    @property
    def users(self) -> int:
        """Users ingested so far, across all shards."""
        return sum(shard.users for shard in self.shards)

    def ingest(
        self, reports: Union[ReportBatch, Iterable[ReportBatch]]
    ) -> "ShardedServer":
        """Route one batch — or an iterable of batches — over the shards.

        Atomic per call, like :meth:`LDPServer.ingest`: every batch is
        validated against its target shard before anything is
        accumulated anywhere, so a malformed batch mid-iterable leaves
        the whole topology untouched.
        """
        batches = (
            [reports] if isinstance(reports, ReportBatch) else list(reports)
        )
        cursor = self._cursor
        routed = []
        for batch in batches:
            shard = self.shards[cursor % self.n_shards]
            routed.append((shard,) + shard._validate_batch(batch))
            cursor += 1
        for shard, users, canonical in routed:
            shard._fold_validated(users, canonical)
        self._cursor = cursor
        return self

    def ingest_encoded(self, data: bytes) -> "ShardedServer":
        """Decode one wire frame (verifying the contract) and route it."""
        return self.ingest(decode_batch(data, contract=self.contract))

    def reset(self) -> None:
        """Discard all accumulated reports on every shard."""
        for shard in self.shards:
            shard.reset()
        self._cursor = 0

    # ------------------------------------------------------------ estimate

    def merged(self) -> LDPServer:
        """Fold all shard states into one fresh server (shard order).

        The shards themselves are left untouched, so ingestion can keep
        flowing after a mid-round merge.
        """
        target = LDPServer(*self._constructor_args)
        for shard in self.shards:
            target.merge(shard)
        return target

    def estimate(
        self, postprocess: Optional[Postprocessor] = None
    ) -> SessionEstimate:
        """Merged calibrated estimates across all shards."""
        return self.merged().estimate(postprocess=postprocess)

    def report_counts(self) -> Dict[str, int]:
        """Reports received so far per attribute, across all shards."""
        totals: Dict[str, int] = {}
        for shard in self.shards:
            for name, count in shard.report_counts().items():
                totals[name] = totals.get(name, 0) + count
        return totals

    # --------------------------------------------------------- checkpoints

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the merged aggregation state.

        Same document format as :meth:`LDPServer.state_dict`, so a
        sharded snapshot restores into a single server and vice versa —
        checkpoints are topology-independent.
        """
        return self.merged().state_dict()

    def load_state_dict(self, state) -> "ShardedServer":
        """Restore a :meth:`state_dict` snapshot (contract-verified).

        The restored state is loaded into shard 0; since aggregation is
        exactly additive this is indistinguishable — bit for bit — from
        having replayed the checkpointed reports through any routing.
        All-or-nothing: existing shard state is discarded only once the
        checkpoint has restored cleanly; a failed load leaves the
        topology untouched.
        """
        restored = LDPServer(*self._constructor_args)
        restored.load_state_dict(state)
        self._install_restored(restored)
        return self

    def merge_state_dict(self, state) -> "ShardedServer":
        """Fold a snapshot *into* the topology (additive, shard 0).

        Delegates to :meth:`LDPServer.merge_state_dict` on shard 0 —
        since aggregation is exactly additive, where the snapshot lands
        is invisible in the merged estimate.
        """
        self.shards[0].merge_state_dict(state)
        return self

    def _install_restored(self, restored: LDPServer) -> None:
        for shard in self.shards[1:]:
            shard.reset()
        if self.telemetry is not None:
            restored.attach_telemetry(self.telemetry)
        self.shards = (restored,) + self.shards[1:]
        self._cursor = 0

    def save_state(self, path: Union[str, pathlib.Path]) -> None:
        """Checkpoint the merged state to a JSON file (atomically).

        Delegates to :class:`~repro.storage.JsonFileStore` like
        :meth:`LDPServer.save_state` — temp file + rename, scratch file
        removed on failure.
        """
        from ..storage import JsonFileStore

        JsonFileStore(path).save(self.state_dict())

    def load_state(self, path: Union[str, pathlib.Path]) -> "ShardedServer":
        """Resume a round from a :meth:`save_state` checkpoint file."""
        restored = LDPServer(*self._constructor_args)
        restored.load_state(path)
        self._install_restored(restored)
        return self
