"""Protocol adapters: one surface over numeric mechanisms and oracles.

The repo grew two perturbation families with incompatible interfaces:
:class:`~repro.mechanisms.base.Mechanism` (numeric perturbation with
closed-form conditional moments) and
:class:`~repro.freq_oracles.base.FrequencyOracle` (categorical GRR/OUE/OLH
with closed-form estimation variances). This module puts both behind one
``privatize`` / ``aggregate`` / ``deviation_model`` surface so the session
client and server never dispatch on the family:

* :class:`CollectionProtocol` — an *unbound* protocol resolved from the
  unified registry (:func:`repro.mechanisms.registry.get_protocol`);
  :meth:`CollectionProtocol.bind` specializes it to one schema attribute
  and its per-attribute budget;
* :class:`AttributeCollector` — the bound object: the client side calls
  :meth:`~AttributeCollector.privatize`, the server side feeds an
  additive aggregation state via :meth:`~AttributeCollector.accumulate`
  and reads :meth:`~AttributeCollector.estimate` /
  :meth:`~AttributeCollector.deviation_model` from it.

Aggregation states are strictly additive (counts, streaming sums), which
is what makes :meth:`repro.session.LDPServer.ingest` incremental: the
estimate after ten small batches is bit-identical to the estimate after
one concatenated batch.

Budget semantics: a collector receives the whole per-attribute budget
``ε/m``. Numeric mechanisms spend it directly; histogram encoding spends
``ε/2m`` per one-hot entry (a category change flips two entries); the
oracles spend ``ε/m`` on the single label report. All three therefore
compose to the user's collective ``ε`` under the exactly-``m`` sampling
done by :class:`repro.session.LDPClient`.
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence

import numpy as np

from ..exceptions import AggregationError, DimensionError, DomainError, WireFormatError
from ..framework.deviation import DeviationModel, build_deviation_model
from ..framework.multivariate import MultivariateDeviationModel
from ..framework.population import ValueDistribution
from ..freq_oracles.base import FrequencyOracle
from ..freq_oracles.grr import GeneralizedRandomizedResponse
from ..freq_oracles.olh import OlhReports, OptimizedLocalHashing
from ..freq_oracles.oue import OptimizedUnaryEncoding
from ..hdr4me.frequency import adapt_to_unit_domain, one_hot_encode
from ..mechanisms.base import (
    AffineTransformedMechanism,
    Mechanism,
    affine_mean_map,
    validate_epsilon,
)
from ..rng import RngLike, ensure_rng
from .schema import Attribute, CategoricalAttribute, NumericAttribute
from .streaming import StreamingSum

def _require_snapshot_kind(snapshot: Any, kind: str) -> dict:
    """Validate a state snapshot's family tag; return the snapshot dict."""
    if not isinstance(snapshot, dict) or snapshot.get("kind") != kind:
        raise WireFormatError(
            "expected a %r state snapshot, got %r"
            % (kind, snapshot.get("kind") if isinstance(snapshot, dict) else snapshot)
        )
    return snapshot


class AttributeCollector(abc.ABC):
    """A protocol bound to one attribute and its per-attribute budget.

    Collectors own both halves of the attribute's collection: the
    client-side :meth:`privatize` and the server-side additive state
    (:meth:`new_state` / :meth:`accumulate`) with its readers
    (:meth:`estimate`, :meth:`deviation_model`).

    Validation and accumulation are split so ingestion can be atomic:
    :meth:`check_payload` validates and canonicalizes a report payload
    without touching any state, :meth:`fold` accumulates an
    already-canonical payload, and :meth:`accumulate` composes the two
    for direct callers. States are mergeable and serializable —
    :meth:`merge_states` folds one state into another exactly (the float
    accumulators are exact integers under the hood, see
    :mod:`repro.session.streaming`), and :meth:`snapshot` /
    :meth:`restore` round-trip a state through a JSON-able dictionary
    for checkpointing.
    """

    #: Registry name of the protocol that bound this collector (stamped by
    #: ``resolve_collectors``); lets the server reject report payloads
    #: produced under a different protocol.
    protocol_name: str = "unknown"

    def __init__(self, attribute: Attribute, epsilon: float) -> None:
        self.attribute = attribute
        self.epsilon = validate_epsilon(epsilon)

    # -------------------------------------------------------------- client

    @abc.abstractmethod
    def privatize(self, values: np.ndarray, rng: RngLike = None) -> Any:
        """Perturb the contributing users' values into a report payload."""

    # -------------------------------------------------------------- server

    @abc.abstractmethod
    def new_state(self) -> Any:
        """Fresh additive aggregation state for this attribute."""

    @abc.abstractmethod
    def check_payload(self, payload: Any) -> Any:
        """Validate one report payload without touching any state.

        Returns the canonical form :meth:`fold` accepts; raises
        :class:`DimensionError` / :class:`DomainError` on malformed
        payloads. Ingestion validates every payload of a batch through
        this *before* accumulating any of them, so a bad attribute can
        never leave earlier attributes' state partially updated.
        """

    @abc.abstractmethod
    def fold(self, state: Any, payload: Any) -> None:
        """Fold a canonical (already-validated) payload into the state."""

    def accumulate(self, state: Any, payload: Any) -> None:
        """Validate and fold one report payload into the state."""
        self.fold(state, self.check_payload(payload))

    def payload_rows(self, payload: Any) -> int:
        """Number of user reports a canonical payload carries."""
        return int(np.asarray(payload).shape[0])

    @abc.abstractmethod
    def merge_states(self, state: Any, other: Any) -> None:
        """Fold another aggregation state into ``state`` (exactly).

        Bit-identical to having accumulated the other state's payloads
        directly; ``other`` is left untouched.
        """

    @abc.abstractmethod
    def snapshot(self, state: Any) -> dict:
        """JSON-serializable snapshot of an aggregation state."""

    @abc.abstractmethod
    def restore(self, snapshot: dict) -> Any:
        """Rebuild an aggregation state from :meth:`snapshot` output.

        Raises :class:`~repro.exceptions.WireFormatError` when the
        snapshot belongs to a different state family or is malformed.
        """

    @abc.abstractmethod
    def reports(self, state: Any) -> int:
        """Number of user reports accumulated so far."""

    @abc.abstractmethod
    def estimate(self, state: Any) -> np.ndarray:
        """Calibrated estimate from the current state (non-destructive).

        Numeric attributes yield a length-1 vector (the mean); categorical
        attributes yield the length-``v`` frequency vector.
        """

    @abc.abstractmethod
    def deviation_model(self, state: Any) -> MultivariateDeviationModel:
        """Theorem-1-style deviation model of :meth:`estimate`'s output."""

    # ------------------------------------------------------------- payloads

    def concat_payloads(self, payloads: Sequence[Any]) -> Any:
        """Concatenate report payloads (default: stacked numpy arrays)."""
        return np.concatenate([np.asarray(p) for p in payloads], axis=0)

    def entry_means(self, state: Any) -> Optional[np.ndarray]:
        """Uncalibrated encoded-entry means, when the encoding has them."""
        return None

    def _require_reports(self, state: Any) -> int:
        count = self.reports(state)
        if count < 1:
            raise AggregationError(
                "attribute %r received no reports; increase n or m"
                % self.attribute.name
            )
        return count


class CollectionProtocol(abc.ABC):
    """Unbound perturbation protocol resolvable by name from the registry."""

    #: Registry-style short name.
    name: str = "abstract"

    @abc.abstractmethod
    def bind(self, attribute: Attribute, epsilon: float) -> AttributeCollector:
        """Specialize to one schema attribute under budget ``epsilon``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(name=%r)" % (type(self).__name__, self.name)


# --------------------------------------------------------------------------
# Numeric mechanisms (and their histogram-encoded categorical route)
# --------------------------------------------------------------------------


class SumStateMixin:
    """Merge/snapshot/restore shared by :class:`StreamingSum`-backed states.

    Subclasses set :attr:`state_kind` (the snapshot family tag) and
    override :meth:`_sum_width` when the state is wider than one column;
    the state object returned by ``new_state`` must carry its accumulator
    in a ``sums`` attribute.
    """

    state_kind: str = "sum"

    def _sum_width(self) -> int:
        return 1

    def merge_states(self, state: Any, other: Any) -> None:
        state.sums.merge(other.sums)

    def snapshot(self, state: Any) -> dict:
        return {"kind": self.state_kind, "sums": state.sums.state_dict()}

    def restore(self, snapshot: dict) -> Any:
        data = _require_snapshot_kind(snapshot, self.state_kind)
        sums = StreamingSum.from_state_dict(data.get("sums"))
        if sums.width != self._sum_width():
            raise WireFormatError(
                "attribute %r: %s state must have width %d, got %d"
                % (
                    self.attribute.name,
                    self.state_kind,
                    self._sum_width(),
                    sums.width,
                )
            )
        state = self.new_state()
        state.sums = sums
        return state


class _NumericState:
    """Additive state for one numeric attribute: streaming sum + count."""

    __slots__ = ("sums",)

    def __init__(self) -> None:
        self.sums = StreamingSum(width=1)


class NumericMechanismCollector(SumStateMixin, AttributeCollector):
    """Mean estimation for one numeric attribute via a :class:`Mechanism`.

    The mechanism is re-domained to the attribute's declared interval when
    they differ, so schemas may mix attribute ranges freely.
    """

    state_kind = "numeric-sum"

    def __init__(
        self, mechanism: Mechanism, attribute: NumericAttribute, epsilon: float
    ) -> None:
        super().__init__(attribute, epsilon)
        if tuple(mechanism.input_domain) != tuple(attribute.domain):
            mechanism = AffineTransformedMechanism(mechanism, attribute.domain)
        self.mechanism = mechanism

    def privatize(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        gen = ensure_rng(rng)
        column = self.attribute.validate_column(values)
        return self.mechanism.perturb(column, self.epsilon, gen)

    def new_state(self) -> _NumericState:
        return _NumericState()

    def check_payload(self, payload: Any) -> np.ndarray:
        arr = np.asarray(payload, dtype=np.float64)
        if arr.ndim != 1:
            raise DimensionError(
                "attribute %r: expected a (k,) numeric report vector, got "
                "shape %s" % (self.attribute.name, arr.shape)
            )
        if arr.size and not np.all(np.isfinite(arr)):
            raise DomainError(
                "attribute %r: perturbed reports must be finite"
                % self.attribute.name
            )
        return arr

    def fold(self, state: _NumericState, payload: np.ndarray) -> None:
        state.sums.add(payload[:, None], assume_finite=True)

    def reports(self, state: _NumericState) -> int:
        return state.sums.rows

    def estimate(self, state: _NumericState) -> np.ndarray:
        count = self._require_reports(state)
        mean = state.sums.value()[0] / count
        bias = self.mechanism.deterministic_bias(self.epsilon)
        if bias:
            mean = mean - bias
        return np.array([mean])

    def deviation_model(self, state: _NumericState) -> MultivariateDeviationModel:
        count = self._require_reports(state)
        population = None
        if self.mechanism.bounded:
            lo, hi = self.attribute.domain
            plugin = float(np.clip(self.estimate(state)[0], lo, hi))
            population = ValueDistribution.point_mass(plugin)
        model = build_deviation_model(
            self.mechanism, self.epsilon, count, population
        )
        return MultivariateDeviationModel([model])


class _HistogramState:
    """Additive state for histogram-encoded entries: ``(v,)`` sums + count."""

    __slots__ = ("sums",)

    def __init__(self, n_categories: int) -> None:
        self.sums = StreamingSum(width=n_categories)


class HistogramMechanismCollector(SumStateMixin, AttributeCollector):
    """Frequency estimation via histogram encoding (paper Section V-C).

    Labels are one-hot encoded and every entry is perturbed with
    ``ε/2`` of the attribute budget (a category change flips two
    entries), using the mechanism re-domained to the unit interval. The
    collector inverts the mechanism's affine conditional-mean map to
    calibrate entry means back into frequencies.
    """

    state_kind = "histogram-sum"

    def _sum_width(self) -> int:
        return self.attribute.n_categories

    def __init__(
        self, mechanism: Mechanism, attribute: CategoricalAttribute, epsilon: float
    ) -> None:
        super().__init__(attribute, epsilon)
        self.mechanism = adapt_to_unit_domain(mechanism)
        self.epsilon_per_entry = self.epsilon / 2.0

    def privatize(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        gen = ensure_rng(rng)
        labels = self.attribute.validate_column(values)
        encoded = one_hot_encode(labels, self.attribute.n_categories)
        return self.mechanism.perturb(encoded, self.epsilon_per_entry, gen)

    def new_state(self) -> _HistogramState:
        return _HistogramState(self.attribute.n_categories)

    def check_payload(self, payload: Any) -> np.ndarray:
        matrix = np.asarray(payload, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.attribute.n_categories:
            raise DimensionError(
                "attribute %r: expected (k, %d) histogram payload, got %s"
                % (self.attribute.name, self.attribute.n_categories, matrix.shape)
            )
        if matrix.size and not np.all(np.isfinite(matrix)):
            raise DomainError(
                "attribute %r: perturbed entries must be finite"
                % self.attribute.name
            )
        return matrix

    def fold(self, state: _HistogramState, payload: np.ndarray) -> None:
        state.sums.add(payload, assume_finite=True)

    def reports(self, state: _HistogramState) -> int:
        return state.sums.rows

    def entry_means(self, state: _HistogramState) -> np.ndarray:
        count = self._require_reports(state)
        return state.sums.value() / count

    def _affine(self) -> tuple:
        affine = affine_mean_map(self.mechanism, self.epsilon_per_entry)
        if affine is None:  # pragma: no cover - no shipped mechanism hits this
            return 1.0, 0.0
        return affine

    def estimate(self, state: _HistogramState) -> np.ndarray:
        slope, intercept = self._affine()
        return (self.entry_means(state) - intercept) / slope

    def deviation_model(self, state: _HistogramState) -> MultivariateDeviationModel:
        """Plug-in Bernoulli model per entry, rescaled by the calibration.

        The calibrated estimate divides by the affine slope, so the
        per-entry deviation sigma is the Lemma 3 sigma over ``|slope|``.
        """
        count = self._require_reports(state)
        slope, _ = self._affine()
        plugin = np.clip(self.estimate(state), 0.0, 1.0)
        models: List[DeviationModel] = []
        for frequency in plugin:
            population = ValueDistribution(
                np.array([0.0, 1.0]),
                np.array([1.0 - frequency, frequency]),
            )
            base = build_deviation_model(
                self.mechanism, self.epsilon_per_entry, count, population
            )
            models.append(
                DeviationModel(
                    delta=0.0,
                    sigma=base.sigma / abs(slope),
                    reports=count,
                    epsilon=self.epsilon_per_entry,
                    mechanism_name=base.mechanism_name,
                )
            )
        return MultivariateDeviationModel(models)


class MechanismProtocol(CollectionProtocol):
    """Adapter exposing any numeric :class:`Mechanism` as a protocol.

    Numeric attributes are perturbed directly; categorical attributes go
    through the histogram-encoding route, so one mechanism name can serve
    a mixed schema end to end.
    """

    def __init__(self, mechanism: Mechanism, name: Optional[str] = None) -> None:
        self.mechanism = mechanism
        self.name = name or mechanism.name

    def bind(self, attribute: Attribute, epsilon: float) -> AttributeCollector:
        if attribute.kind == "numeric":
            return NumericMechanismCollector(self.mechanism, attribute, epsilon)
        return HistogramMechanismCollector(self.mechanism, attribute, epsilon)


# --------------------------------------------------------------------------
# Frequency oracles
# --------------------------------------------------------------------------


class _OracleState:
    """Additive state shared by the oracle collectors: counts + users."""

    __slots__ = ("counts", "users")

    def __init__(self, n_categories: int) -> None:
        self.counts = np.zeros(n_categories, dtype=np.int64)
        self.users = 0


class OracleCollector(AttributeCollector):
    """Common plumbing for the three Wang et al. oracle collectors.

    Subclasses accumulate integer per-category statistics (label counts,
    bit-column sums or hash-support counts) — exact arithmetic, hence
    trivially batching-invariant — and reconstruct the oracle's unbiased
    estimator from them.
    """

    oracle_cls = FrequencyOracle  # overridden by subclasses

    def __init__(self, attribute: CategoricalAttribute, epsilon: float) -> None:
        if attribute.kind != "categorical":
            raise DimensionError(
                "frequency oracle %r only serves categorical attributes, "
                "got numeric attribute %r" % (self.oracle_cls.name, attribute.name)
            )
        super().__init__(attribute, epsilon)
        self.oracle = self.oracle_cls(self.epsilon, attribute.n_categories)

    def privatize(self, values: np.ndarray, rng: RngLike = None) -> Any:
        labels = self.attribute.validate_column(values)
        return self.oracle.privatize(labels, rng)

    def new_state(self) -> _OracleState:
        return _OracleState(self.attribute.n_categories)

    def reports(self, state: _OracleState) -> int:
        return state.users

    def merge_states(self, state: _OracleState, other: _OracleState) -> None:
        state.counts = state.counts + other.counts
        state.users += other.users

    def snapshot(self, state: _OracleState) -> dict:
        return {
            "kind": "oracle-counts",
            "counts": [int(count) for count in state.counts],
            "users": int(state.users),
        }

    def restore(self, snapshot: dict) -> _OracleState:
        data = _require_snapshot_kind(snapshot, "oracle-counts")
        try:
            counts = [int(count) for count in data["counts"]]
            users = int(data["users"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireFormatError("malformed oracle state: %s" % exc) from None
        if len(counts) != self.attribute.n_categories or users < 0:
            raise WireFormatError(
                "attribute %r: oracle state is inconsistent (%d counts for "
                "%d categories, users=%d)"
                % (
                    self.attribute.name,
                    len(counts),
                    self.attribute.n_categories,
                    users,
                )
            )
        state = _OracleState(self.attribute.n_categories)
        state.counts = np.asarray(counts, dtype=np.int64)
        state.users = users
        return state

    def deviation_model(self, state: _OracleState) -> MultivariateDeviationModel:
        self._require_reports(state)
        frequencies = np.clip(self.estimate(state), 0.0, 1.0)
        return self.oracle.deviation_model(state.users, frequencies=frequencies)


class GrrCollector(OracleCollector):
    """GRR aggregation: exact per-category counts of the noisy labels."""

    oracle_cls = GeneralizedRandomizedResponse

    def check_payload(self, payload: Any) -> np.ndarray:
        arr = np.asarray(payload)
        if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.integer):
            raise DimensionError(
                "attribute %r: expected a (k,) integer label vector, got "
                "%s of dtype %s" % (self.attribute.name, arr.shape, arr.dtype)
            )
        labels = arr.astype(np.int64)
        if labels.size and (
            labels.min() < 0 or labels.max() >= self.attribute.n_categories
        ):
            raise DomainError(
                "attribute %r: noisy labels must lie in [0, %d)"
                % (self.attribute.name, self.attribute.n_categories)
            )
        return labels

    def fold(self, state: _OracleState, payload: np.ndarray) -> None:
        state.counts += np.bincount(
            payload, minlength=self.attribute.n_categories
        )
        state.users += payload.size

    def estimate(self, state: _OracleState) -> np.ndarray:
        count = self._require_reports(state)
        observed = state.counts / count
        p, q = self.oracle.p_true, self.oracle.p_other
        return (observed - q) / (p - q)


class OueCollector(OracleCollector):
    """OUE aggregation: exact column sums of the perturbed bit matrix."""

    oracle_cls = OptimizedUnaryEncoding

    def check_payload(self, payload: Any) -> np.ndarray:
        matrix = np.asarray(payload, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.attribute.n_categories:
            raise DimensionError(
                "attribute %r: expected (k, %d) OUE payload, got %s"
                % (self.attribute.name, self.attribute.n_categories, matrix.shape)
            )
        if matrix.size and not np.all((matrix == 0.0) | (matrix == 1.0)):
            raise DomainError(
                "attribute %r: OUE payloads must be 0/1 bit matrices"
                % self.attribute.name
            )
        return matrix

    def fold(self, state: _OracleState, payload: np.ndarray) -> None:
        state.counts += np.rint(payload.sum(axis=0)).astype(np.int64)
        state.users += payload.shape[0]

    def estimate(self, state: _OracleState) -> np.ndarray:
        count = self._require_reports(state)
        observed = state.counts / count
        p, q = self.oracle.p_keep, self.oracle.p_flip
        return (observed - q) / (p - q)


class OlhCollector(OracleCollector):
    """OLH aggregation: exact support counts over the hash reports."""

    oracle_cls = OptimizedLocalHashing

    def check_payload(self, payload: Any) -> OlhReports:
        if not isinstance(payload, OlhReports):
            raise DimensionError(
                "attribute %r: expected OlhReports payload" % self.attribute.name
            )
        seeds = np.asarray(payload.seeds)
        buckets = np.asarray(payload.buckets)
        if not (
            np.issubdtype(seeds.dtype, np.integer)
            and np.issubdtype(buckets.dtype, np.integer)
        ):
            raise DimensionError(
                "attribute %r: OLH seeds/buckets must be integers, got "
                "%s/%s" % (self.attribute.name, seeds.dtype, buckets.dtype)
            )
        seeds = seeds.astype(np.int64)
        buckets = buckets.astype(np.int64)
        if (
            seeds.ndim != 2
            or seeds.shape[1] != 2
            or buckets.ndim != 1
            or seeds.shape[0] != buckets.size
        ):
            raise DimensionError(
                "attribute %r: OLH payload shapes disagree: seeds %s, "
                "buckets %s" % (self.attribute.name, seeds.shape, buckets.shape)
            )
        if buckets.size and (
            buckets.min() < 0 or buckets.max() >= self.oracle.n_buckets
        ):
            raise DomainError(
                "attribute %r: OLH buckets must lie in [0, %d)"
                % (self.attribute.name, self.oracle.n_buckets)
            )
        return OlhReports(seeds=seeds, buckets=buckets)

    def fold(self, state: _OracleState, payload: OlhReports) -> None:
        state.counts += self.oracle.support_counts(payload)
        state.users += payload.buckets.size

    def payload_rows(self, payload: OlhReports) -> int:
        return int(payload.buckets.size)

    def estimate(self, state: _OracleState) -> np.ndarray:
        count = self._require_reports(state)
        observed = state.counts / count
        p = self.oracle.p_true
        q = 1.0 / self.oracle.n_buckets
        return (observed - q) / (p - q)

    def concat_payloads(self, payloads: Sequence[OlhReports]) -> OlhReports:
        return OlhReports(
            seeds=np.concatenate([p.seeds for p in payloads], axis=0),
            buckets=np.concatenate([p.buckets for p in payloads], axis=0),
        )


class OracleProtocol(CollectionProtocol):
    """Adapter exposing one :class:`FrequencyOracle` family as a protocol."""

    def __init__(self, collector_cls: type, name: str) -> None:
        self.collector_cls = collector_cls
        self.name = name

    def bind(self, attribute: Attribute, epsilon: float) -> AttributeCollector:
        return self.collector_cls(attribute, epsilon)


#: The oracle protocols registered with the unified registry.
ORACLE_PROTOCOLS = {
    "grr": lambda: OracleProtocol(GrrCollector, "grr"),
    "oue": lambda: OracleProtocol(OueCollector, "oue"),
    "olh": lambda: OracleProtocol(OlhCollector, "olh"),
}


def _register_default_protocols() -> None:
    """Idempotently register the oracle protocols with the registry."""
    from ..mechanisms import registry

    for name, factory in ORACLE_PROTOCOLS.items():
        if name not in registry._PROTOCOLS:
            registry.register_protocol(name, factory)


_register_default_protocols()
