"""Elastic-net regularization: an extension beyond the paper's L1/L2.

The paper's L1 both sparsifies and shrinks; its L2 only shrinks. The
natural interpolation — the elastic net,
``R(θ) = α‖λ ∘ θ‖₁ + (1 − α) Σ λ_j θ_j²`` — keeps L1's ability to zero
noise-dominated dimensions while retaining L2's smooth shrinkage of the
survivors. Its proximal operator composes the two one-off solvers::

    prox(z) = S(z, αλ) / (2(1 − α)λ + 1)

so the "one-off, non-iterative" property of HDR4ME is preserved. With
``α = 1`` this degenerates to the paper's L1, with ``α = 0`` to its L2
(the tests pin both limits). The ``bench_ablation_elastic`` benchmark
sweeps α between the paper's two extremes.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CalibrationError
from .regularizers import Regularizer, ridge_shrink, soft_threshold


class ElasticNetRegularizer(Regularizer):
    """Convex combination of the HDR4ME L1 and L2 penalties.

    Parameters
    ----------
    alpha:
        Mixing weight in ``[0, 1]``: 1 = pure L1 (Eq. 34 behaviour),
        0 = pure L2 (Eq. 42 behaviour).
    """

    name = "elastic_net"

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise CalibrationError("alpha must lie in [0, 1], got %g" % alpha)
        self.alpha = float(alpha)

    def penalty(self, theta: np.ndarray, lambdas: np.ndarray) -> float:
        arr = np.asarray(theta, dtype=np.float64)
        lam = np.asarray(lambdas, dtype=np.float64)
        l1_part = float(np.sum(np.abs(lam * arr)))
        l2_part = float(np.sum(lam * arr * arr))
        return self.alpha * l1_part + (1.0 - self.alpha) * l2_part

    def prox(self, z: np.ndarray, lambdas: np.ndarray) -> np.ndarray:
        lam = np.asarray(lambdas, dtype=np.float64)
        thresholded = soft_threshold(z, self.alpha * lam)
        return ridge_shrink(thresholded, (1.0 - self.alpha) * lam)


def recalibrate_elastic_net(
    theta_hat: np.ndarray, lambdas: np.ndarray, alpha: float = 0.5
) -> np.ndarray:
    """One-off elastic-net re-calibration of an estimated mean.

    Equivalent to ``ElasticNetRegularizer(alpha).prox`` with unit step —
    the closed-form minimizer of ``½‖θ − θ̂‖² + R(λ ∘ θ)`` (verified
    against converged PGD in the tests).
    """
    theta = np.asarray(theta_hat, dtype=np.float64)
    lam = np.asarray(lambdas, dtype=np.float64)
    if lam.size == 1:
        lam = np.full(theta.shape, float(lam.ravel()[0]))
    if lam.shape != theta.shape:
        raise CalibrationError(
            "lambda shape %s does not match theta shape %s"
            % (lam.shape, theta.shape)
        )
    return ElasticNetRegularizer(alpha).prox(theta, lam)
