"""High-dimensional re-calibration for frequency estimation (Section V-C).

Any categorical value can be histogram-encoded into a one-hot vector whose
entries live in ``[0, 1]``; the frequency of category ``c`` is then the
mean of the ``c``-th entry over the population. Perturbing each entry with
budget ``ε/2m`` guarantees collective ε-LDP regardless of the mechanism
(changing one's category flips exactly two entries), so a ``d``-dimensional
frequency estimation becomes ``d`` high-dimensional *mean* estimations —
and both the analytical framework and HDR4ME apply unchanged.

This module provides the encoding, a mechanism-agnostic
:class:`FrequencyEstimator`, and the standard post-processing (clip to
``[0, 1]``, optionally renormalize the simplex).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import DimensionError, DomainError
from ..framework.deviation import build_deviation_model
from ..framework.multivariate import MultivariateDeviationModel
from ..framework.population import ValueDistribution
from ..mechanisms.base import (
    AffineTransformedMechanism,
    Mechanism,
    affine_mean_map,
    validate_epsilon,
)
from ..rng import RngLike, ensure_rng
from .recalibrator import RecalibrationResult, Recalibrator

#: Native domain of histogram-encoded entries.
UNIT_DOMAIN: Tuple[float, float] = (0.0, 1.0)


def one_hot_encode(categories: np.ndarray, n_categories: int) -> np.ndarray:
    """Histogram-encode integer categories into an ``(n, v)`` 0/1 matrix.

    Parameters
    ----------
    categories:
        Integer category labels in ``[0, n_categories)``.
    n_categories:
        Number of categories ``v``.
    """
    labels = np.asarray(categories)
    if labels.ndim != 1:
        raise DimensionError("categories must be one-dimensional")
    if n_categories < 2:
        raise DimensionError("need at least two categories, got %d" % n_categories)
    if labels.size and (labels.min() < 0 or labels.max() >= n_categories):
        raise DomainError(
            "category labels must lie in [0, %d), got range [%d, %d]"
            % (n_categories, labels.min(), labels.max())
        )
    encoded = np.zeros((labels.size, n_categories), dtype=np.float64)
    encoded[np.arange(labels.size), labels] = 1.0
    return encoded


def true_frequencies(categories: np.ndarray, n_categories: int) -> np.ndarray:
    """Exact category frequencies of a label column (for evaluation)."""
    labels = np.asarray(categories)
    counts = np.bincount(labels, minlength=n_categories)
    return counts / max(labels.size, 1)


def adapt_to_unit_domain(mechanism: Mechanism) -> Mechanism:
    """Return ``mechanism`` re-domained to ``[0, 1]`` entries if needed."""
    if tuple(mechanism.input_domain) == UNIT_DOMAIN:
        return mechanism
    return AffineTransformedMechanism(mechanism, UNIT_DOMAIN)


def postprocess_frequencies(
    frequencies: np.ndarray, normalize: bool = True
) -> np.ndarray:
    """Clip estimated frequencies to ``[0, 1]`` and optionally renormalize."""
    freq = np.clip(np.asarray(frequencies, dtype=np.float64), 0.0, 1.0)
    if normalize:
        total = freq.sum()
        if total > 0:
            freq = freq / total
    return freq


def norm_sub_frequencies(frequencies: np.ndarray) -> np.ndarray:
    """Project a noisy frequency vector onto the probability simplex.

    The "Norm-Sub" post-processing of the LDP literature: subtract a
    common offset ``t`` and clip at zero, with ``t`` chosen so the result
    sums to one — the Euclidean projection onto the simplex. Compared to
    clip-and-rescale it removes noise mass *uniformly*, so large
    frequencies are not shrunk multiplicatively.

    Returns the unique vector ``max(f − t, 0)`` with unit sum.
    """
    freq = np.asarray(frequencies, dtype=np.float64).ravel()
    if freq.size == 0:
        raise DimensionError("cannot project an empty frequency vector")
    # Standard simplex-projection: sort descending, find the pivot.
    ordered = np.sort(freq)[::-1]
    cumulative = np.cumsum(ordered) - 1.0
    ranks = np.arange(1, freq.size + 1)
    candidates = ordered - cumulative / ranks
    pivot = int(np.nonzero(candidates > 0)[0][-1])
    offset = cumulative[pivot] / (pivot + 1)
    return np.maximum(freq - offset, 0.0)


@dataclass(frozen=True)
class FrequencyEstimate:
    """Result of one categorical dimension's frequency estimation.

    Attributes
    ----------
    raw:
        Per-category frequency estimates after exact mean calibration
        (see :func:`repro.mechanisms.base.affine_mean_map`); may still
        fall outside ``[0, 1]`` due to perturbation noise.
    entry_means:
        The uncalibrated means of the perturbed one-hot entries — what a
        mechanism-oblivious collector would see (biased for the square
        wave, identical to ``raw`` for unbiased mechanisms).
    enhanced:
        HDR4ME-re-calibrated estimates, present when a recalibrator was
        configured; otherwise ``None``.
    epsilon_per_entry:
        The ``ε/2m`` budget each encoded entry was perturbed with.
    reports:
        Number of users contributing to this dimension.
    """

    raw: np.ndarray
    entry_means: np.ndarray
    enhanced: Optional[np.ndarray]
    epsilon_per_entry: float
    reports: int

    def best(self, normalize: bool = True) -> np.ndarray:
        """Post-processed enhanced estimate (or raw if not enhanced)."""
        source = self.enhanced if self.enhanced is not None else self.raw
        return postprocess_frequencies(source, normalize=normalize)


class FrequencyEstimator:
    """Mechanism-agnostic LDP frequency estimation with optional HDR4ME.

    Parameters
    ----------
    mechanism:
        Any :class:`Mechanism`; it is automatically re-domained to the
        unit interval of histogram-encoded entries.
    epsilon:
        Collective privacy budget ``ε``.
    sampled_dimensions:
        The ``m`` of the paper's protocol — how many categorical
        dimensions each user reports. Each entry receives ``ε/2m``.
    recalibrator:
        Optional :class:`Recalibrator`; when present, the estimate of each
        categorical dimension is re-calibrated with a plug-in Bernoulli
        population model per entry.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        epsilon: float,
        sampled_dimensions: int = 1,
        recalibrator: Optional[Recalibrator] = None,
    ) -> None:
        self.epsilon = validate_epsilon(epsilon)
        if sampled_dimensions < 1:
            raise DimensionError(
                "sampled_dimensions must be >= 1, got %d" % sampled_dimensions
            )
        self.mechanism = adapt_to_unit_domain(mechanism)
        self.sampled_dimensions = int(sampled_dimensions)
        self.recalibrator = recalibrator

    @property
    def epsilon_per_entry(self) -> float:
        """Per-entry budget ``ε / 2m`` (Section V-C)."""
        return self.epsilon / (2.0 * self.sampled_dimensions)

    def estimate(
        self,
        categories: np.ndarray,
        n_categories: int,
        rng: RngLike = None,
    ) -> FrequencyEstimate:
        """Estimate the category frequencies of one categorical dimension."""
        gen = ensure_rng(rng)
        encoded = one_hot_encode(categories, n_categories)
        reports = encoded.shape[0]
        if reports == 0:
            raise DimensionError("cannot estimate frequencies from no users")
        eps = self.epsilon_per_entry
        perturbed = self.mechanism.perturb(encoded, eps, gen)
        entry_means = perturbed.mean(axis=0)

        # Exact aggregate-mean calibration: every shipped mechanism has an
        # affine conditional mean, so the collector can invert it.
        affine = affine_mean_map(self.mechanism, eps)
        if affine is not None:
            slope, intercept = affine
            raw = (entry_means - intercept) / slope
        else:  # pragma: no cover - no shipped mechanism hits this
            slope = 1.0
            raw = entry_means

        enhanced = None
        if self.recalibrator is not None:
            enhanced = self._recalibrate(raw, reports, slope).theta_star
        return FrequencyEstimate(
            raw=raw,
            entry_means=entry_means,
            enhanced=enhanced,
            epsilon_per_entry=eps,
            reports=reports,
        )

    def _recalibrate(
        self, raw: np.ndarray, reports: int, slope: float
    ) -> RecalibrationResult:
        """Apply HDR4ME with a plug-in Bernoulli population per entry.

        The deviation of the *calibrated* estimate is unbiased with
        variance ``E_t[Var(t*|t)] / (r · slope²)``, so the per-entry
        Gaussian model is rebuilt accordingly.
        """
        from ..framework.deviation import DeviationModel

        eps = self.epsilon_per_entry
        models = []
        plugin = np.clip(raw, 0.0, 1.0)
        for frequency in plugin:
            population = ValueDistribution(
                np.array([0.0, 1.0]),
                np.array([1.0 - frequency, frequency]),
            )
            base = build_deviation_model(self.mechanism, eps, reports, population)
            models.append(
                DeviationModel(
                    delta=0.0,
                    sigma=base.sigma / abs(slope),
                    reports=reports,
                    epsilon=eps,
                    mechanism_name=base.mechanism_name,
                )
            )
        model = MultivariateDeviationModel(models)
        return self.recalibrator.recalibrate(raw, model)
