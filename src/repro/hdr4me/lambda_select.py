"""Regularization-weight (λ*) selection for HDR4ME (Lemmas 4 and 5).

The paper prescribes

* L1:  ``λ*_j = sup |θ̂_j − θ̄_j|``  (Lemma 4),
* L2:  ``λ*_j = sup (θ̂_j − θ̄_j) / (2 θ̄_j)``  (Lemma 5),

with "``θ̂_j − θ̄_j`` obtained from Lemma 2 or Lemma 3" — i.e. from the
analytical framework, not from the data. A literal supremum of a Gaussian
is infinite, so the practical reading (which the paper's experiments
implicitly use) is a high-confidence envelope of the deviation. This
module turns the framework's :class:`DeviationModel` into concrete λ*
vectors:

* :func:`l1_lambda` returns ``|δ_j| + z·σ_j`` per dimension, where ``z``
  is the two-sided Gaussian quantile of ``confidence`` (default ≈ 3σ).
* :func:`l2_lambda` divides the same envelope by ``2·max(|θ̄_j|, floor)``.
  The true mean ``θ̄_j`` is unknown at the collector, so a reference must
  be supplied: either an explicit prior (``reference_mean``) or the
  domain-clipped estimate itself (the plug-in default). The ``floor``
  prevents division blow-up for near-zero means — exactly the regime where
  the paper observes L2 weights "become so large that each entry of the
  enhanced mean is nearly zero", so large λ there is faithful behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..exceptions import CalibrationError
from ..framework.deviation import DeviationModel
from ..framework.multivariate import MultivariateDeviationModel

ModelLike = Union[MultivariateDeviationModel, Sequence[DeviationModel]]

#: Default two-sided confidence for the "sup" envelope (the 3σ rule).
DEFAULT_CONFIDENCE = 0.9973

#: Default floor on |θ̄_j| in the L2 weight denominator.
DEFAULT_FLOOR = 0.05


def _as_models(model: ModelLike) -> Sequence[DeviationModel]:
    if isinstance(model, MultivariateDeviationModel):
        return model.dimensions
    return list(model)


def deviation_envelopes(
    model: ModelLike, confidence: float = DEFAULT_CONFIDENCE
) -> np.ndarray:
    """Per-dimension high-confidence envelopes of ``|θ̂_j − θ̄_j|``."""
    return np.array([m.envelope(confidence) for m in _as_models(model)])


def l1_lambda(
    model: ModelLike, confidence: float = DEFAULT_CONFIDENCE
) -> np.ndarray:
    """Lemma 4 weights: the deviation envelope itself."""
    return deviation_envelopes(model, confidence)


def l2_lambda(
    model: ModelLike,
    theta_hat: Optional[np.ndarray] = None,
    reference_mean: Optional[np.ndarray] = None,
    confidence: float = DEFAULT_CONFIDENCE,
    floor: float = DEFAULT_FLOOR,
    domain: tuple = (-1.0, 1.0),
) -> np.ndarray:
    """Lemma 5 weights: envelope over twice the (proxied) true mean.

    Parameters
    ----------
    model:
        Framework deviation model(s), one per dimension.
    theta_hat:
        The estimated mean; used to build the plug-in reference when no
        explicit ``reference_mean`` is given.
    reference_mean:
        Optional prior for ``θ̄`` (e.g. from a public dataset).
    confidence:
        Envelope confidence (see :func:`deviation_envelopes`).
    floor:
        Lower bound on ``|θ̄_j|`` in the denominator.
    domain:
        Value domain used to clip the plug-in reference.
    """
    if floor <= 0:
        raise CalibrationError("floor must be positive, got %g" % floor)
    envelopes = deviation_envelopes(model, confidence)
    if reference_mean is not None:
        reference = np.abs(np.asarray(reference_mean, dtype=np.float64).ravel())
    elif theta_hat is not None:
        lo, hi = domain
        reference = np.abs(
            np.clip(np.asarray(theta_hat, dtype=np.float64).ravel(), lo, hi)
        )
    else:
        reference = np.zeros_like(envelopes)
    if reference.size != envelopes.size:
        raise CalibrationError(
            "reference has %d entries for %d dimensions"
            % (reference.size, envelopes.size)
        )
    return envelopes / (2.0 * np.maximum(reference, floor))


@dataclass(frozen=True)
class ImprovementGuarantee:
    """Theorem 3 / Theorem 4 probability statement for a model.

    Attributes
    ----------
    norm:
        ``"l1"`` or ``"l2"``.
    threshold:
        The per-dimension deviation magnitude that must be exceeded for the
        Lemma 4/5 improvement argument to apply (1 for L1, 2 for L2).
    paper_bound:
        The paper's ``1 − ∫_S f`` quantity (probability at least one
        dimension exceeds the threshold).
    all_dims_probability:
        Exact probability (under independence) that *every* dimension
        exceeds the threshold — the event in which the per-dimension
        improvement holds simultaneously everywhere.
    """

    norm: str
    threshold: float
    paper_bound: float
    all_dims_probability: float


def improvement_guarantee(
    model: MultivariateDeviationModel, norm: str
) -> ImprovementGuarantee:
    """Evaluate the Theorem 3/4 probability bound for ``model``."""
    key = norm.lower()
    if key == "l1":
        threshold = 1.0
    elif key == "l2":
        threshold = 2.0
    else:
        raise CalibrationError("norm must be 'l1' or 'l2', got %r" % norm)
    return ImprovementGuarantee(
        norm=key,
        threshold=threshold,
        paper_bound=model.any_outside_probability(threshold),
        all_dims_probability=model.all_outside_probability(threshold),
    )
