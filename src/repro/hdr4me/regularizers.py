"""Regularizers and their proximal operators (Section V-A).

HDR4ME augments the aggregation loss ``L(θ) = (1/2r) Σ ‖t*_i − θ‖²`` with a
regularization term ``R(λ* ∘ θ)``:

* **L1** (``R = ‖·‖₁``): the proximal operator is elementwise
  *soft-thresholding*, which both sparsifies (kills dimensions dominated by
  noise) and shrinks — paper Eq. 30/34;
* **L2** (``R(θ) = Σ λ_j θ_j²``, a weighted ridge): the proximal operator
  is pure *shrinkage* ``z / (2λ + 1)`` — paper Eq. 42. (Paper Eq. 36–37
  write the penalty as ``‖λ ∘ θ‖₂²`` but the derivative they take —
  yielding ``θ̂/(2λ*+1)`` — corresponds to the weighted ridge ``Σ λ_j
  θ_j²``; we implement what the solver actually uses and note the
  discrepancy here.)

Both operators are exposed as plain functions (used by the one-off solvers)
and as :class:`Regularizer` strategy objects (used by the generic proximal
gradient descent solver, which cross-validates the closed forms).
"""

from __future__ import annotations

import abc

import numpy as np

from ..exceptions import ParameterError


def soft_threshold(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Elementwise soft-thresholding operator (paper Eq. 30/34).

    ``S(z, λ) = sign(z) · max(|z| − λ, 0)``; ``thresholds`` broadcasts
    against ``values`` (scalar or per-dimension vector).
    """
    z = np.asarray(values, dtype=np.float64)
    lam = np.asarray(thresholds, dtype=np.float64)
    if np.any(lam < 0):
        raise ParameterError("thresholds must be non-negative")
    return np.sign(z) * np.maximum(np.abs(z) - lam, 0.0)


def ridge_shrink(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Elementwise ridge shrinkage ``z / (2λ + 1)`` (paper Eq. 42)."""
    z = np.asarray(values, dtype=np.float64)
    lam = np.asarray(weights, dtype=np.float64)
    if np.any(lam < 0):
        raise ParameterError("weights must be non-negative")
    return z / (2.0 * lam + 1.0)


class Regularizer(abc.ABC):
    """Penalty ``R(λ ∘ θ)`` with its proximal operator.

    The generic PGD solver only needs two ingredients: the penalty value
    (to monitor the objective) and the prox mapping
    ``argmin_θ ½‖θ − z‖² + R(λ ∘ θ)``.
    """

    #: Registry-style short name ("l1" / "l2").
    name: str = "abstract"

    @abc.abstractmethod
    def penalty(self, theta: np.ndarray, lambdas: np.ndarray) -> float:
        """Return ``R(λ ∘ θ)``."""

    @abc.abstractmethod
    def prox(self, z: np.ndarray, lambdas: np.ndarray) -> np.ndarray:
        """Return ``argmin_θ ½‖θ − z‖² + R(λ ∘ θ)``."""


class L1Regularizer(Regularizer):
    """Lasso-style penalty ``‖λ ∘ θ‖₁`` (Lemma 4 / Theorem 3)."""

    name = "l1"

    def penalty(self, theta: np.ndarray, lambdas: np.ndarray) -> float:
        return float(np.sum(np.abs(lambdas * np.asarray(theta, dtype=np.float64))))

    def prox(self, z: np.ndarray, lambdas: np.ndarray) -> np.ndarray:
        return soft_threshold(z, lambdas)


class L2Regularizer(Regularizer):
    """Weighted ridge penalty ``Σ λ_j θ_j²`` (Lemma 5 / Theorem 4)."""

    name = "l2"

    def penalty(self, theta: np.ndarray, lambdas: np.ndarray) -> float:
        arr = np.asarray(theta, dtype=np.float64)
        return float(np.sum(lambdas * arr * arr))

    def prox(self, z: np.ndarray, lambdas: np.ndarray) -> np.ndarray:
        return ridge_shrink(z, lambdas)


def get_regularizer(name: str) -> Regularizer:
    """Instantiate a regularizer by its short name (``"l1"`` or ``"l2"``)."""
    key = name.lower()
    if key == "l1":
        return L1Regularizer()
    if key == "l2":
        return L2Regularizer()
    raise KeyError("unknown regularizer %r; available: l1, l2" % name)
