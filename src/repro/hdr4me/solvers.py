"""Solvers for the HDR4ME objective (Section V-B).

The objective is ``θ* = argmin_θ L(θ) + R(λ* ∘ θ)`` with the quadratic
aggregation loss ``L(θ) = (1/2r) Σ_i ‖t*_i − θ‖²``, whose gradient is
``∇L(θ) = θ − θ̂`` (paper Eq. 25). Proximal gradient descent with unit
step therefore reaches its fixed point in a single iteration — the paper's
"one-off, non-iterative" solvers:

* L1:  ``θ*_j = S(θ̂_j, λ*_j)``    (soft-threshold, Eq. 34)
* L2:  ``θ*_j = θ̂_j / (2λ*_j + 1)``  (shrinkage, Eq. 42)

Both closed forms are provided, along with the generic iterative
:class:`ProximalGradientSolver` the paper derives them from; the tests
assert the two agree to machine precision, which is a direct check of the
paper's Lemma 4 / Lemma 5 algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..exceptions import CalibrationError
from .regularizers import Regularizer, ridge_shrink, soft_threshold

LambdaLike = Union[float, np.ndarray]


def _as_lambda_vector(lambdas: LambdaLike, ndim: int) -> np.ndarray:
    lam = np.asarray(lambdas, dtype=np.float64).ravel()
    if lam.size == 1:
        lam = np.full(ndim, float(lam[0]))
    if lam.size != ndim:
        raise CalibrationError(
            "lambda vector has %d entries for %d dimensions" % (lam.size, ndim)
        )
    if np.any(lam < 0) or not np.all(np.isfinite(lam)):
        raise CalibrationError("lambda weights must be finite and non-negative")
    return lam


def recalibrate_l1(theta_hat: np.ndarray, lambdas: LambdaLike) -> np.ndarray:
    """One-off L1 re-calibration of an estimated mean (paper Eq. 34)."""
    theta = np.asarray(theta_hat, dtype=np.float64)
    lam = _as_lambda_vector(lambdas, theta.size).reshape(theta.shape)
    return soft_threshold(theta, lam)


def recalibrate_l2(theta_hat: np.ndarray, lambdas: LambdaLike) -> np.ndarray:
    """One-off L2 re-calibration of an estimated mean (paper Eq. 42)."""
    theta = np.asarray(theta_hat, dtype=np.float64)
    lam = _as_lambda_vector(lambdas, theta.size).reshape(theta.shape)
    return ridge_shrink(theta, lam)


@dataclass
class PGDResult:
    """Outcome of a proximal-gradient run.

    Attributes
    ----------
    theta:
        The minimizer found.
    iterations:
        Number of iterations executed.
    converged:
        Whether the stopping tolerance was reached before ``max_iter``.
    objective:
        Final value of ``L(θ) + R(λ ∘ θ)`` (with ``L`` evaluated against
        ``θ̂``, i.e. up to the additive constant the paper drops).
    """

    theta: np.ndarray
    iterations: int
    converged: bool
    objective: float


class ProximalGradientSolver:
    """Generic PGD for ``min_θ ½‖θ − θ̂‖² + R(λ ∘ θ)``.

    The quadratic loss makes unit-step PGD contractive; the solver is kept
    general (tolerance, iteration cap, trajectory callback) so it can also
    host future non-quadratic losses, and so the tests can verify the
    closed-form solvers coincide with the converged iterate.
    """

    def __init__(
        self,
        regularizer: Regularizer,
        step_size: float = 1.0,
        max_iter: int = 100,
        tolerance: float = 1e-12,
    ) -> None:
        if step_size <= 0 or step_size > 1.0:
            raise CalibrationError(
                "step size must lie in (0, 1] for the quadratic loss, got %g"
                % step_size
            )
        if max_iter < 1:
            raise CalibrationError("max_iter must be >= 1, got %d" % max_iter)
        self.regularizer = regularizer
        self.step_size = float(step_size)
        self.max_iter = int(max_iter)
        self.tolerance = float(tolerance)

    def solve(
        self,
        theta_hat: np.ndarray,
        lambdas: LambdaLike,
        theta_init: Optional[np.ndarray] = None,
    ) -> PGDResult:
        """Run PGD from ``theta_init`` (default: the estimated mean)."""
        target = np.asarray(theta_hat, dtype=np.float64).ravel()
        lam = _as_lambda_vector(lambdas, target.size)
        theta = (
            target.copy()
            if theta_init is None
            else np.asarray(theta_init, dtype=np.float64).ravel().copy()
        )
        if theta.size != target.size:
            raise CalibrationError(
                "theta_init has %d entries for %d dimensions"
                % (theta.size, target.size)
            )

        converged = False
        iterations = 0
        # Effective prox threshold scales with the step size.
        scaled_lam = self.step_size * lam
        for iterations in range(1, self.max_iter + 1):
            gradient = theta - target
            candidate = self.regularizer.prox(
                theta - self.step_size * gradient, scaled_lam
            )
            shift = float(np.max(np.abs(candidate - theta))) if theta.size else 0.0
            theta = candidate
            if shift <= self.tolerance:
                converged = True
                break

        objective = 0.5 * float(np.sum((theta - target) ** 2))
        objective += self.regularizer.penalty(theta, lam)
        return PGDResult(
            theta=theta.reshape(np.shape(theta_hat)),
            iterations=iterations,
            converged=converged,
            objective=objective,
        )
