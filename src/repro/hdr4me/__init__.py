"""Section V: HDR4ME — High-Dimensional Re-calibration for Mean Estimation.

Public surface:

* :func:`recalibrate_l1` / :func:`recalibrate_l2` — the paper's one-off
  solvers (Eq. 34 / Eq. 42);
* :class:`ProximalGradientSolver` — the generic PGD the closed forms are
  derived from;
* :func:`l1_lambda` / :func:`l2_lambda` / :func:`improvement_guarantee` —
  framework-driven λ* selection and the Theorem 3/4 probability bounds;
* :class:`Recalibrator` / :class:`RecalibrationResult` — the façade tying
  the above together;
* :class:`FrequencyEstimator` — the Section V-C frequency extension.
"""

from .elastic_net import ElasticNetRegularizer, recalibrate_elastic_net
from .frequency import (
    FrequencyEstimate,
    FrequencyEstimator,
    adapt_to_unit_domain,
    norm_sub_frequencies,
    one_hot_encode,
    postprocess_frequencies,
    true_frequencies,
)
from .lambda_select import (
    DEFAULT_CONFIDENCE,
    DEFAULT_FLOOR,
    ImprovementGuarantee,
    deviation_envelopes,
    improvement_guarantee,
    l1_lambda,
    l2_lambda,
)
from .recalibrator import RecalibrationResult, Recalibrator
from .regularizers import (
    L1Regularizer,
    L2Regularizer,
    Regularizer,
    get_regularizer,
    ridge_shrink,
    soft_threshold,
)
from .solvers import (
    PGDResult,
    ProximalGradientSolver,
    recalibrate_l1,
    recalibrate_l2,
)

__all__ = [
    "DEFAULT_CONFIDENCE",
    "ElasticNetRegularizer",
    "recalibrate_elastic_net",
    "DEFAULT_FLOOR",
    "FrequencyEstimate",
    "FrequencyEstimator",
    "ImprovementGuarantee",
    "L1Regularizer",
    "L2Regularizer",
    "PGDResult",
    "ProximalGradientSolver",
    "RecalibrationResult",
    "Recalibrator",
    "Regularizer",
    "adapt_to_unit_domain",
    "deviation_envelopes",
    "get_regularizer",
    "improvement_guarantee",
    "l1_lambda",
    "l2_lambda",
    "norm_sub_frequencies",
    "one_hot_encode",
    "postprocess_frequencies",
    "recalibrate_l1",
    "recalibrate_l2",
    "ridge_shrink",
    "soft_threshold",
    "true_frequencies",
]
