"""The HDR4ME re-calibration façade (Section V-B).

:class:`Recalibrator` packages the whole protocol step the paper adds at
the collector: choose λ* from the analytical framework (Lemma 4 or 5),
apply the one-off solver (Eq. 34 or Eq. 42), and report the theoretical
improvement guarantee (Theorem 3 or 4). It is deliberately independent of
the perturbation mechanism — it consumes only the estimated mean and the
framework's deviation model, which is the paper's central design point
("without making any change to [the LDP mechanisms]").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import CalibrationError
from ..framework.multivariate import MultivariateDeviationModel
from .lambda_select import (
    DEFAULT_CONFIDENCE,
    DEFAULT_FLOOR,
    ImprovementGuarantee,
    improvement_guarantee,
    l1_lambda,
    l2_lambda,
)
from .regularizers import get_regularizer
from .solvers import ProximalGradientSolver, recalibrate_l1, recalibrate_l2


@dataclass(frozen=True)
class RecalibrationResult:
    """Everything produced by one HDR4ME application.

    Attributes
    ----------
    theta_star:
        The enhanced mean ``θ*``.
    theta_hat:
        The input estimated mean ``θ̂`` (kept for convenience).
    lambdas:
        The λ* vector actually used.
    norm:
        ``"l1"`` or ``"l2"``.
    guarantee:
        The Theorem 3/4 probability statement for the supplied model.
    suppressed_dimensions:
        Count of dimensions set exactly to zero (L1 sparsification).
    """

    theta_star: np.ndarray
    theta_hat: np.ndarray
    lambdas: np.ndarray
    norm: str
    guarantee: ImprovementGuarantee
    suppressed_dimensions: int


class Recalibrator:
    """One-off HDR4ME re-calibration with framework-driven λ*.

    Parameters
    ----------
    norm:
        ``"l1"`` (soft-threshold; reduces dimensions and scale) or
        ``"l2"`` (shrinkage; reduces scale only).
    confidence:
        Confidence of the deviation envelope standing in for the paper's
        ``sup|θ̂ − θ̄|`` (default ≈ 3σ).
    floor:
        L2 only — floor on the |θ̄| proxy in the weight denominator.
    use_pgd:
        Solve with the generic proximal-gradient solver instead of the
        closed form. Results are identical (the tests assert it); the
        option exists to exercise the derivation and to support future
        non-quadratic losses.
    """

    def __init__(
        self,
        norm: str = "l1",
        confidence: float = DEFAULT_CONFIDENCE,
        floor: float = DEFAULT_FLOOR,
        use_pgd: bool = False,
    ) -> None:
        key = norm.lower()
        if key not in ("l1", "l2"):
            raise CalibrationError("norm must be 'l1' or 'l2', got %r" % norm)
        if not 0.0 < confidence < 1.0:
            raise CalibrationError(
                "confidence must lie in (0, 1), got %g" % confidence
            )
        self.norm = key
        self.confidence = float(confidence)
        self.floor = float(floor)
        self.use_pgd = bool(use_pgd)

    def select_lambdas(
        self,
        theta_hat: np.ndarray,
        model: MultivariateDeviationModel,
        reference_mean: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return the λ* vector for ``theta_hat`` under this configuration."""
        if self.norm == "l1":
            return l1_lambda(model, self.confidence)
        return l2_lambda(
            model,
            theta_hat=theta_hat,
            reference_mean=reference_mean,
            confidence=self.confidence,
            floor=self.floor,
        )

    def recalibrate(
        self,
        theta_hat: np.ndarray,
        model: MultivariateDeviationModel,
        reference_mean: Optional[np.ndarray] = None,
    ) -> RecalibrationResult:
        """Apply HDR4ME to an estimated mean.

        Parameters
        ----------
        theta_hat:
            The aggregated (and, where applicable, calibrated) mean from
            any LDP mechanism.
        model:
            The Theorem 1 deviation model for the mechanism/budget/reports
            configuration that produced ``theta_hat``.
        reference_mean:
            Optional prior on the true mean (L2 weight denominator).
        """
        theta = np.asarray(theta_hat, dtype=np.float64).ravel()
        if theta.size != model.ndim:
            raise CalibrationError(
                "theta_hat has %d entries, model has %d dimensions"
                % (theta.size, model.ndim)
            )
        lambdas = self.select_lambdas(theta, model, reference_mean)
        if self.use_pgd:
            solver = ProximalGradientSolver(get_regularizer(self.norm))
            theta_star = solver.solve(theta, lambdas).theta
        elif self.norm == "l1":
            theta_star = recalibrate_l1(theta, lambdas)
        else:
            theta_star = recalibrate_l2(theta, lambdas)
        return RecalibrationResult(
            theta_star=theta_star,
            theta_hat=theta,
            lambdas=lambdas,
            norm=self.norm,
            guarantee=improvement_guarantee(model, self.norm),
            suppressed_dimensions=int(np.sum(theta_star == 0.0)),
        )
