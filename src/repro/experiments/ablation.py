"""Ablations of HDR4ME's design choices (Section V discussion).

Three studies the paper's analysis calls for but does not tabulate:

* **Envelope confidence** — the paper's λ* is "sup |θ̂ − θ̄|"; we realize
  the sup as a Gaussian envelope ``|δ| + z·σ``. Sweeping the confidence
  shows how sensitive the enhancement is to that reading.
* **Harmful regime** — "If the number of dimensions is not high or the
  collective privacy budget is rather large … our re-calibration can be
  harmful." The ablation evaluates HDR4ME across a (d, ε) grid and
  reports where the enhanced/baseline MSE ratio crosses 1.
* **PGD vs closed form** — the one-off solvers (Eq. 34/42) must coincide
  with converged proximal gradient descent; the ablation reports the max
  divergence and iteration counts (1 expected for the quadratic loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.metrics import mse, true_mean
from ..datasets.synthetic import gaussian_dataset
from ..hdr4me.recalibrator import Recalibrator
from ..hdr4me.regularizers import get_regularizer
from ..hdr4me.solvers import (
    ProximalGradientSolver,
    recalibrate_l1,
    recalibrate_l2,
)
from ..mechanisms.registry import get_mechanism
from ..protocol.pipeline import MeanEstimationPipeline, build_populations
from ..rng import RngLike, ensure_rng
from .base import SeriesRow, format_series


@dataclass(frozen=True)
class ConfidenceAblationResult:
    """MSE of L1/L2 across envelope confidences (baseline alongside)."""

    mechanism: str
    epsilon: float
    baseline_mse: float
    rows: List[SeriesRow]

    def format(self) -> str:
        title = "Envelope-confidence ablation (%s, eps=%g, baseline MSE %.4g)" % (
            self.mechanism,
            self.epsilon,
            self.baseline_mse,
        )
        return format_series(title, "confidence", ("l1", "l2"), self.rows)


def run_confidence_ablation(
    mechanism: str = "piecewise",
    epsilon: float = 0.4,
    users: int = 20_000,
    dimensions: int = 100,
    confidences: Sequence[float] = (0.9, 0.99, 0.9973, 0.9999),
    rng: RngLike = None,
) -> ConfidenceAblationResult:
    """Sweep the envelope confidence backing the λ* "sup"."""
    gen = ensure_rng(rng)
    mech = get_mechanism(mechanism)
    data = gaussian_dataset(users, dimensions, rng=gen)
    truth = true_mean(data)
    pipeline = MeanEstimationPipeline(mech, epsilon, dimensions=dimensions)
    result = pipeline.run(data, gen)
    populations = build_populations(data) if mech.bounded else None
    model = pipeline.deviation_model(users=result.users, populations=populations)
    baseline = mse(result.theta_hat, truth)

    rows = []
    for confidence in confidences:
        values = {}
        for norm in ("l1", "l2"):
            recal = Recalibrator(norm=norm, confidence=confidence)
            enhanced = recal.recalibrate(result.theta_hat, model)
            values[norm] = mse(enhanced.theta_star, truth)
        rows.append(SeriesRow(x=float(confidence), values=values))
    return ConfidenceAblationResult(
        mechanism=mechanism,
        epsilon=epsilon,
        baseline_mse=baseline,
        rows=rows,
    )


@dataclass(frozen=True)
class HarmfulRegimeResult:
    """Enhanced/baseline MSE ratios over a (dimensions, ε) grid.

    Ratios < 1 mean HDR4ME helps; > 1 means it hurts — the paper predicts
    hurt at low d / large ε where the Lemma 4/5 thresholds are not met.
    """

    mechanism: str
    norm: str
    dimension_grid: Tuple[int, ...]
    epsilon_grid: Tuple[float, ...]
    ratios: np.ndarray  # shape (len(dimension_grid), len(epsilon_grid))

    def format(self) -> str:
        lines = [
            "# Harmful-regime ablation: %s / %s — MSE(enhanced)/MSE(baseline)"
            % (self.mechanism, self.norm),
            "d\\eps\t" + "\t".join("%g" % e for e in self.epsilon_grid),
        ]
        for d, row in zip(self.dimension_grid, self.ratios):
            lines.append("%d\t" % d + "\t".join("%.3f" % v for v in row))
        return "\n".join(lines)


def run_harmful_regime(
    mechanism: str = "laplace",
    norm: str = "l1",
    dimension_grid: Sequence[int] = (5, 50, 500),
    epsilon_grid: Sequence[float] = (0.2, 1.0, 5.0, 20.0),
    users: int = 20_000,
    rng: RngLike = None,
) -> HarmfulRegimeResult:
    """Map where HDR4ME helps vs hurts across (d, ε).

    The dataset gives *every* grid point substantial true signal
    (half the dimensions at mean 0.9): with no signal, shrinkage would
    trivially help everywhere and the harmful corner would never show.
    """
    gen = ensure_rng(rng)
    mech = get_mechanism(mechanism)
    recal = Recalibrator(norm=norm)
    dims = tuple(int(d) for d in dimension_grid)
    epsilons = tuple(float(e) for e in epsilon_grid)
    ratios = np.empty((len(dims), len(epsilons)))
    for i, d in enumerate(dims):
        data = gaussian_dataset(users, d, high_fraction=0.5, rng=gen)
        truth = true_mean(data)
        populations = build_populations(data) if mech.bounded else None
        for j, epsilon in enumerate(epsilons):
            pipeline = MeanEstimationPipeline(mech, epsilon, dimensions=d)
            result = pipeline.run(data, gen)
            model = pipeline.deviation_model(
                users=result.users, populations=populations
            )
            enhanced = recal.recalibrate(result.theta_hat, model)
            baseline = mse(result.theta_hat, truth)
            ratios[i, j] = mse(enhanced.theta_star, truth) / baseline
    return HarmfulRegimeResult(
        mechanism=mechanism,
        norm=norm,
        dimension_grid=dims,
        epsilon_grid=epsilons,
        ratios=ratios,
    )


@dataclass(frozen=True)
class SolverEquivalenceResult:
    """Closed form vs PGD: max divergence and iterations, per norm."""

    max_divergence_l1: float
    max_divergence_l2: float
    iterations_l1: int
    iterations_l2: int

    def format(self) -> str:
        return (
            "# One-off solver vs proximal gradient descent\n"
            "l1: max|closed - pgd| = %.3g in %d iteration(s)\n"
            "l2: max|closed - pgd| = %.3g in %d iteration(s)"
            % (
                self.max_divergence_l1,
                self.iterations_l1,
                self.max_divergence_l2,
                self.iterations_l2,
            )
        )


def run_solver_equivalence(
    dimensions: int = 500,
    scale: float = 10.0,
    rng: RngLike = None,
) -> SolverEquivalenceResult:
    """Check Eq. 34/42 against converged PGD on random inputs."""
    gen = ensure_rng(rng)
    theta_hat = gen.normal(scale=scale, size=dimensions)
    lambdas = np.abs(gen.normal(scale=scale, size=dimensions))

    closed_l1 = recalibrate_l1(theta_hat, lambdas)
    pgd_l1 = ProximalGradientSolver(get_regularizer("l1")).solve(theta_hat, lambdas)
    closed_l2 = recalibrate_l2(theta_hat, lambdas)
    pgd_l2 = ProximalGradientSolver(get_regularizer("l2")).solve(theta_hat, lambdas)

    return SolverEquivalenceResult(
        max_divergence_l1=float(np.max(np.abs(closed_l1 - pgd_l1.theta))),
        max_divergence_l2=float(np.max(np.abs(closed_l2 - pgd_l2.theta))),
        iterations_l1=pgd_l1.iterations,
        iterations_l2=pgd_l2.iterations,
    )
