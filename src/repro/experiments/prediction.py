"""Theory-vs-experiment MSE prediction (the framework's headline promise).

Section III-B notes that ``MSE = ‖θ̂ − θ̄‖² / d``, "which means that the
theoretical analysis … can predict how MSE varies without conducting any
experiment". This driver makes that promise measurable: for each
(dataset, mechanism) pair it computes the Theorem 1 prediction
``Σ_j (δ_j² + σ_j²) / d`` and the average MSE of actual collection
rounds, and reports their ratio. A ratio near 1 across the whole grid is
the strongest single validation of the framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.metrics import mse, true_mean
from ..datasets.loader import load_dataset
from ..mechanisms.registry import get_mechanism
from ..protocol.pipeline import MeanEstimationPipeline, build_populations
from ..rng import RngLike, ensure_rng, spawn_children

#: Default grid: one dataset per distribution family, all headline
#: mechanisms plus the extra unbounded ones the paper names.
DEFAULT_MECHANISMS = ("laplace", "staircase", "scdf", "duchi", "piecewise",
                      "hybrid", "square_wave")


@dataclass(frozen=True)
class PredictionRow:
    """Predicted vs measured MSE for one (dataset, mechanism) pair."""

    dataset: str
    mechanism: str
    predicted: float
    measured: float

    @property
    def ratio(self) -> float:
        """measured / predicted — the framework is validated near 1."""
        return self.measured / self.predicted


@dataclass(frozen=True)
class PredictionResult:
    """Grid of :class:`PredictionRow`."""

    epsilon: float
    users: int
    dimensions: int
    repeats: int
    rows: List[PredictionRow]

    def format(self) -> str:
        lines = [
            "# Framework MSE prediction vs experiment "
            "(eps=%g, n=%d, d=%d, %d repeats)"
            % (self.epsilon, self.users, self.dimensions, self.repeats),
            "dataset\tmechanism\tpredicted\tmeasured\tratio",
        ]
        for row in self.rows:
            lines.append(
                "%s\t%s\t%.4g\t%.4g\t%.3f"
                % (row.dataset, row.mechanism, row.predicted, row.measured,
                   row.ratio)
            )
        return "\n".join(lines)

    def worst_ratio_error(self) -> float:
        """Largest |ratio − 1| over the grid."""
        return max(abs(row.ratio - 1.0) for row in self.rows)


def run_mse_prediction(
    datasets: Sequence[str] = ("gaussian", "uniform"),
    mechanisms: Sequence[str] = DEFAULT_MECHANISMS,
    epsilon: float = 1.0,
    users: int = 20_000,
    dimensions: int = 50,
    repeats: int = 5,
    population_bins: int = 64,
    rng: RngLike = None,
) -> PredictionResult:
    """Evaluate predicted vs measured MSE over a (dataset, mechanism) grid.

    Parameters
    ----------
    datasets / mechanisms:
        Grid axes (registry names).
    epsilon:
        Collective budget (m = d, so ε/d per dimension).
    users / dimensions / repeats:
        Scale of the measurement.
    population_bins:
        Column discretization for the bounded-mechanism models.
    rng:
        Seed or generator.
    """
    gen = ensure_rng(rng)
    rows: List[PredictionRow] = []
    for dataset in datasets:
        data = load_dataset(dataset, users, dimensions, rng=gen)
        truth = true_mean(data)
        populations = build_populations(data, population_bins)
        for name in mechanisms:
            mech = get_mechanism(name)
            pipeline = MeanEstimationPipeline(mech, epsilon, dimensions=dimensions)
            model = pipeline.deviation_model(
                users=users,
                populations=populations if mech.bounded else None,
            )
            measured = 0.0
            for child in spawn_children(gen, repeats):
                measured += mse(pipeline.run(data, child).theta_hat, truth)
            rows.append(
                PredictionRow(
                    dataset=dataset,
                    mechanism=name,
                    predicted=model.predicted_mse(),
                    measured=measured / repeats,
                )
            )
    return PredictionResult(
        epsilon=epsilon,
        users=users,
        dimensions=dimensions,
        repeats=repeats,
        rows=rows,
    )
