"""Figures 2 and 3: CLT prediction vs experimental deviation pdf.

Fig. 2 validates the framework on the Uniform dataset (n = 200,000,
d = 5,000, m = 50, ε = 1) for Laplace, Piecewise and Square wave: the
empirical pdf of the first dimension's deviation over 1,000 collection
rounds is overlaid on the Lemma 2/3 Gaussian. Fig. 3 repeats the exercise
on the Section IV-C discretized case study for Piecewise and Square wave.

The drivers exploit per-dimension independence and simulate only the
histogrammed dimension (see
:func:`repro.experiments.base.simulate_dimension_deviations`), which makes
paper-scale repetition counts tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.density import GaussianFit, gaussian_fit, pdf_overlay
from ..framework.deviation import DeviationModel, build_deviation_model
from ..framework.population import ValueDistribution
from ..mechanisms.base import Mechanism
from ..mechanisms.registry import get_mechanism
from ..rng import RngLike, ensure_rng
from .base import simulate_dimension_deviations

#: Paper parameters for Fig. 2.
FIG2_USERS = 200_000
FIG2_DIMENSIONS = 5_000
FIG2_SAMPLED = 50
FIG2_EPSILON = 1.0
FIG2_REPEATS = 1_000
FIG2_MECHANISMS = ("laplace", "piecewise", "square_wave")


@dataclass(frozen=True)
class CltValidationResult:
    """CLT-vs-experiment comparison for one mechanism/one dimension.

    Attributes
    ----------
    mechanism:
        Mechanism name.
    deviations:
        The empirical deviations (one per collection round).
    model:
        The framework's Gaussian (Lemma 2 or 3).
    fit:
        Moment and Kolmogorov–Smirnov diagnostics of model vs sample.
    """

    mechanism: str
    deviations: np.ndarray
    model: DeviationModel
    fit: GaussianFit

    def format(self, bins: int = 15) -> str:
        """Render the Fig. 2/3 overlay as printable rows."""
        density, predicted = pdf_overlay(self.deviations, self.model, bins=bins)
        lines = [
            "# %s: CLT N(%.4g, %.4g^2) vs %d experimental rounds"
            % (self.mechanism, self.model.delta, self.model.sigma,
               self.deviations.size),
            "# sample mean=%.4g std=%.4g | KS=%.3f p=%.3f"
            % (self.fit.sample_mean, self.fit.sample_std,
               self.fit.ks_statistic, self.fit.ks_pvalue),
            "deviation\tempirical_pdf\tclt_pdf",
        ]
        for center, emp, clt in zip(density.centers, density.density, predicted):
            lines.append("%.5g\t%.5g\t%.5g" % (center, emp, clt))
        return "\n".join(lines)


def validate_mechanism(
    mechanism: Mechanism,
    column: np.ndarray,
    epsilon_per_dim: float,
    report_probability: float,
    repeats: int,
    population: Optional[ValueDistribution] = None,
    population_bins: Optional[int] = 64,
    rng: RngLike = None,
) -> CltValidationResult:
    """Run the CLT validation for one mechanism on one data column."""
    gen = ensure_rng(rng)
    values = np.asarray(column, dtype=np.float64).ravel()
    if population is None and mechanism.bounded:
        population = ValueDistribution.from_data(values, bins=population_bins)
    expected_reports = max(1, int(round(values.size * report_probability)))
    model = build_deviation_model(
        mechanism, epsilon_per_dim, expected_reports, population
    )
    deviations = simulate_dimension_deviations(
        mechanism, values, epsilon_per_dim, report_probability, repeats, gen
    )
    return CltValidationResult(
        mechanism=mechanism.name,
        deviations=deviations,
        model=model,
        fit=gaussian_fit(deviations, model),
    )


def run_fig2(
    users: int = FIG2_USERS,
    dimensions: int = FIG2_DIMENSIONS,
    sampled_dimensions: int = FIG2_SAMPLED,
    epsilon: float = FIG2_EPSILON,
    repeats: int = FIG2_REPEATS,
    mechanisms: Sequence[str] = FIG2_MECHANISMS,
    rng: RngLike = None,
) -> List[CltValidationResult]:
    """Regenerate Fig. 2 (a–c): Uniform dataset, one result per mechanism."""
    gen = ensure_rng(rng)
    column = gen.uniform(-1.0, 1.0, size=users)
    epsilon_per_dim = epsilon / sampled_dimensions
    report_probability = sampled_dimensions / dimensions
    results = []
    for name in mechanisms:
        mechanism = get_mechanism(name)
        lo, hi = mechanism.input_domain
        # Express the same data in the mechanism's native domain.
        native = lo + (column + 1.0) * (hi - lo) / 2.0 if (lo, hi) != (-1.0, 1.0) else column
        results.append(
            validate_mechanism(
                mechanism,
                native,
                epsilon_per_dim,
                report_probability,
                repeats,
                rng=gen,
            )
        )
    return results


def run_fig3(
    reports: int = 10_000,
    epsilon_per_dim: float = 0.001,
    repeats: int = 1_000,
    rng: RngLike = None,
) -> List[CltValidationResult]:
    """Regenerate Fig. 3 (a–b): the discretized case-study validation.

    Piecewise sees the case-study values in ``[−1, 1]`` directly; Square
    wave sees them in its native unit domain — exactly the Section IV-C
    setting whose analytical pdfs the paper derives (Eq. 16 and Eq. 20).
    """
    gen = ensure_rng(rng)
    grid = ValueDistribution.case_study()
    column = grid.sample(reports, gen)
    # The deviation model uses the *realized* column distribution (exact
    # values, empirical ≈10% probabilities): the case study presumes the
    # collector knows the value probabilities of the data being collected.
    population = ValueDistribution.from_data(column, bins=None)
    results = []
    for name in ("piecewise", "square_wave_unit"):
        mechanism = get_mechanism(name)
        results.append(
            validate_mechanism(
                mechanism,
                column,
                epsilon_per_dim,
                report_probability=1.0,
                repeats=repeats,
                population=population,
                rng=gen,
            )
        )
    return results
