"""Serialization of experiment series (CSV / JSON round trips).

The benchmark harness archives human-readable text; downstream analysis
(plotting, regression dashboards) wants machine-readable files. These
helpers persist any driver result built on
:class:`~repro.experiments.base.SeriesRow` and load it back losslessly.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import List, Sequence, Tuple, Union

from ..exceptions import ReproError
from .base import SeriesRow

PathLike = Union[str, pathlib.Path]


class SerializationError(ReproError):
    """Raised on malformed series files."""


def write_series_csv(
    path: PathLike,
    x_label: str,
    labels: Sequence[str],
    rows: Sequence[SeriesRow],
) -> None:
    """Write rows as a CSV with an ``x`` column plus one per label."""
    target = pathlib.Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + list(labels))
        for row in rows:
            writer.writerow([row.x] + [row.values[label] for label in labels])


def read_series_csv(path: PathLike) -> Tuple[str, List[str], List[SeriesRow]]:
    """Load a series CSV back into ``(x_label, labels, rows)``."""
    target = pathlib.Path(path)
    with target.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SerializationError("empty series file: %s" % target) from None
        if len(header) < 2:
            raise SerializationError(
                "series header needs an x column plus values: %r" % header
            )
        x_label, labels = header[0], header[1:]
        rows: List[SeriesRow] = []
        for record in reader:
            if len(record) != len(header):
                raise SerializationError(
                    "row width %d != header width %d" % (len(record), len(header))
                )
            rows.append(
                SeriesRow(
                    x=float(record[0]),
                    values={
                        label: float(cell)
                        for label, cell in zip(labels, record[1:])
                    },
                )
            )
    return x_label, labels, rows


def write_series_json(
    path: PathLike,
    x_label: str,
    labels: Sequence[str],
    rows: Sequence[SeriesRow],
    metadata: dict = None,
) -> None:
    """Write rows (plus optional free-form metadata) as JSON."""
    payload = {
        "x_label": x_label,
        "labels": list(labels),
        "metadata": metadata or {},
        "rows": [
            {"x": row.x, "values": {k: row.values[k] for k in labels}}
            for row in rows
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def read_series_json(path: PathLike) -> Tuple[str, List[str], List[SeriesRow], dict]:
    """Load a series JSON back into ``(x_label, labels, rows, metadata)``."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError("invalid series JSON: %s" % exc) from exc
    try:
        rows = [
            SeriesRow(x=float(item["x"]), values=dict(item["values"]))
            for item in payload["rows"]
        ]
        return (
            payload["x_label"],
            list(payload["labels"]),
            rows,
            dict(payload.get("metadata", {})),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError("malformed series payload: %s" % exc) from exc
