"""Shared plumbing for the per-figure experiment drivers.

Every driver in this package regenerates one table or figure of the
paper's Section VI. They all follow the same pattern: run at explicitly
configurable scale (paper-scale by default, scaled-down in the benchmark
harness), return a small result dataclass, and know how to format
themselves as the rows/series the paper reports. This module holds the
pieces they share: the fast single-dimension simulator used by the CLT
validations, and row-formatting helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..exceptions import DimensionError
from ..mechanisms.base import Mechanism
from ..rng import RngLike, ensure_rng


def simulate_dimension_deviations(
    mechanism: Mechanism,
    column: np.ndarray,
    epsilon_per_dim: float,
    report_probability: float,
    repeats: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Repeatedly simulate one dimension's aggregation deviation.

    This is the engine behind the Fig. 2 / Fig. 3 validation: instead of
    simulating all ``d`` dimensions (the paper's d = 5,000), it exploits
    the protocol's per-dimension independence and simulates only the
    dimension whose deviation is being histogrammed. Each repeat draws the
    subset of users reporting the dimension (each w.p. ``m/d``), perturbs
    their values with ``ε/m``, aggregates, and records
    ``θ̂_j − θ̄_j`` (with deterministic bias calibrated away exactly as
    the collector would).

    Parameters
    ----------
    mechanism:
        Mechanism under test.
    column:
        Original values of the dimension for all ``n`` users.
    epsilon_per_dim:
        The ``ε/m`` budget.
    report_probability:
        The ``m/d`` probability a given user reports this dimension
        (``1.0`` means everyone reports it).
    repeats:
        Number of independent collection rounds.
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        ``repeats`` deviations of the estimated mean from the true mean.
    """
    if not 0.0 < report_probability <= 1.0:
        raise DimensionError(
            "report_probability must lie in (0, 1], got %g" % report_probability
        )
    if repeats < 1:
        raise DimensionError("repeats must be >= 1, got %d" % repeats)
    gen = ensure_rng(rng)
    values = np.asarray(column, dtype=np.float64).ravel()
    if values.size == 0:
        raise DimensionError("column must be non-empty")
    truth = float(values.mean())
    bias = mechanism.deterministic_bias(epsilon_per_dim) or 0.0

    deviations = np.empty(repeats)
    for k in range(repeats):
        if report_probability < 1.0:
            reporting = values[gen.random(values.size) < report_probability]
            if reporting.size == 0:
                reporting = values[
                    gen.integers(0, values.size, size=1)
                ]  # pathological tiny-probability fallback
        else:
            reporting = values
        perturbed = mechanism.perturb(reporting, epsilon_per_dim, gen)
        deviations[k] = perturbed.mean() - bias - truth
    return deviations


@dataclass(frozen=True)
class SeriesRow:
    """One x-position of a paper figure: a parameter and labelled values."""

    x: float
    values: dict

    def formatted(self, labels: Sequence[str], fmt: str = "%.4g") -> str:
        cells = [fmt % self.x] + [fmt % self.values[label] for label in labels]
        return "\t".join(cells)


def format_series(
    title: str,
    x_label: str,
    labels: Sequence[str],
    rows: Iterable[SeriesRow],
    fmt: str = "%.4g",
) -> str:
    """Render rows as the tab-separated series a paper figure plots."""
    lines: List[str] = ["# %s" % title, "\t".join([x_label] + list(labels))]
    lines.extend(row.formatted(labels, fmt) for row in rows)
    return "\n".join(lines)
