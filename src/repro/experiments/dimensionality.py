"""Figure 5: MSE vs dimensionality on the COV-19(-like) dataset.

With ε = 0.8 fixed, the dimensionality varies over
{50, 100, 200, 400, 800, 1600}; dimensionalities above the base dataset's
750 columns are reached by resampling columns with replacement, exactly as
the paper does. Laplace and Piecewise are compared between the baseline
aggregation, HDR4ME-L1 and HDR4ME-L2.

Expected shape (paper Fig. 5): both regularizations beat the baseline at
every d; L2 keeps improving as d grows (the weights grow with the noise)
until the enhanced mean saturates near zero and its MSE flattens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.metrics import mse, true_mean
from ..datasets.covid import cov19_like, resample_dimensions
from ..hdr4me.recalibrator import Recalibrator
from ..mechanisms.registry import get_mechanism
from ..protocol.pipeline import MeanEstimationPipeline, build_populations
from ..rng import RngLike, ensure_rng, spawn_children
from .base import SeriesRow, format_series
from .mse_sweep import SERIES_LABELS

#: Paper parameters for Fig. 5.
FIG5_EPSILON = 0.8
FIG5_DIMENSIONS: Tuple[int, ...] = (50, 100, 200, 400, 800, 1600)
FIG5_MECHANISMS: Tuple[str, ...] = ("laplace", "piecewise")


@dataclass(frozen=True)
class DimensionalitySweepResult:
    """One Fig. 5 panel: MSE series over the dimensionality grid."""

    mechanism: str
    epsilon: float
    users: int
    repeats: int
    rows: List[SeriesRow]

    def format(self) -> str:
        title = "Fig.5 %s on COV-19-like (eps=%g, n=%d, %d repeats)" % (
            self.mechanism,
            self.epsilon,
            self.users,
            self.repeats,
        )
        return format_series(title, "dimensions", SERIES_LABELS, self.rows)


def run_dimensionality_sweep(
    mechanism: str = "laplace",
    dimension_grid: Sequence[int] = FIG5_DIMENSIONS,
    epsilon: float = FIG5_EPSILON,
    users: Optional[int] = None,
    base_dimensions: int = 750,
    repeats: int = 3,
    population_bins: int = 32,
    rng: RngLike = None,
) -> DimensionalitySweepResult:
    """Regenerate one Fig. 5 panel.

    Parameters
    ----------
    mechanism:
        ``"laplace"`` or ``"piecewise"`` in the paper; any registered
        mechanism works.
    dimension_grid:
        Dimensionalities to evaluate (columns resampled from the base).
    epsilon:
        Fixed collective budget (paper: 0.8).
    users:
        User count; paper default 150,000.
    base_dimensions:
        Columns of the base COV-19-like dataset (paper: 750).
    repeats:
        Collection rounds averaged per dimensionality.
    """
    gen = ensure_rng(rng)
    mech = get_mechanism(mechanism)
    base = cov19_like(users or 150_000, base_dimensions, rng=gen)
    recalibrators = {
        "l1": Recalibrator(norm="l1"),
        "l2": Recalibrator(norm="l2"),
    }

    rows: List[SeriesRow] = []
    for d in dimension_grid:
        data = resample_dimensions(base, int(d), rng=gen)
        truth = true_mean(data)
        populations = (
            build_populations(data, population_bins) if mech.bounded else None
        )
        pipeline = MeanEstimationPipeline(mech, epsilon, dimensions=int(d))
        sums = {label: 0.0 for label in SERIES_LABELS}
        for child in spawn_children(gen, repeats):
            result = pipeline.run(data, child)
            model = pipeline.deviation_model(
                users=result.users, populations=populations
            )
            sums["baseline"] += mse(result.theta_hat, truth)
            for label, recal in recalibrators.items():
                enhanced = recal.recalibrate(result.theta_hat, model)
                sums[label] += mse(enhanced.theta_star, truth)
        rows.append(
            SeriesRow(
                x=float(d),
                values={label: sums[label] / repeats for label in SERIES_LABELS},
            )
        )
    return DimensionalitySweepResult(
        mechanism=mechanism,
        epsilon=epsilon,
        users=base.shape[0],
        repeats=repeats,
        rows=rows,
    )
