"""Theorem 2: Berry–Esseen approximation error of the framework.

Two parts:

* the paper's worked example — Laplace, r = 1,000 — which the paper
  evaluates to ≈ 1.57% using ``ρ = 3λ³``; the correct Laplace third
  absolute moment is ``6λ³``, giving ≈ 2.69% (both are reported);
* the convergence sweep: the bound over a grid of report counts, decaying
  at the claimed ``O(1/√r)``, optionally compared against the *actual*
  empirical Kolmogorov–Smirnov distance between simulated deviations and
  the framework Gaussian (the empirical distance must sit below the
  bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..framework.berry_esseen import (
    BERRY_ESSEEN_CONSTANT,
    BERRY_ESSEEN_SECONDARY,
    BerryEsseenBound,
    berry_esseen_bound,
)
from ..framework.deviation import build_deviation_model
from ..framework.population import ValueDistribution
from ..mechanisms.base import Mechanism
from ..mechanisms.laplace import LaplaceMechanism
from ..rng import RngLike, ensure_rng
from .base import SeriesRow, format_series, simulate_dimension_deviations

#: The paper's worked-example configuration.
EXAMPLE_REPORTS = 1_000


@dataclass(frozen=True)
class WorkedExample:
    """The Theorem 2 Laplace example, under both third-moment readings."""

    correct_bound: float
    paper_bound: float
    reports: int

    def format(self) -> str:
        return (
            "# Theorem 2 worked example (Laplace, r=%d)\n"
            "correct rho=6*lambda^3 -> bound %.4f\n"
            "paper   rho=3*lambda^3 -> bound %.4f (paper reports ~0.0157)"
            % (self.reports, self.correct_bound, self.paper_bound)
        )


def worked_example(reports: int = EXAMPLE_REPORTS) -> WorkedExample:
    """Evaluate the paper's worked example exactly.

    The bound does not depend on ε for Laplace (λ cancels), so any budget
    gives the same figure.
    """
    correct = berry_esseen_bound(LaplaceMechanism(), 1.0, reports).bound
    # Under the paper's rho = 3λ³ with s = √2·λ the λ's cancel too:
    s3 = 2.0 * math.sqrt(2.0)  # (√2)³
    paper = (
        BERRY_ESSEEN_CONSTANT
        * (3.0 + BERRY_ESSEEN_SECONDARY * s3)
        / (s3 * math.sqrt(reports))
    )
    return WorkedExample(
        correct_bound=float(correct), paper_bound=float(paper), reports=reports
    )


@dataclass(frozen=True)
class ConvergenceResult:
    """Bound (and optional empirical distance) across report counts."""

    mechanism: str
    rows: List[SeriesRow]
    labels: Tuple[str, ...]

    def format(self) -> str:
        title = "Theorem 2 convergence for %s" % self.mechanism
        return format_series(title, "reports", self.labels, self.rows)


def empirical_cdf_distance(
    deviations: np.ndarray, delta: float, sigma: float
) -> float:
    """Exact sup-distance between an empirical cdf and N(delta, sigma²)."""
    from scipy import stats

    statistic, _ = stats.kstest(np.asarray(deviations), "norm", args=(delta, sigma))
    return float(statistic)


def run_convergence(
    mechanism: Optional[Mechanism] = None,
    epsilon: float = 1.0,
    report_counts: Sequence[int] = (100, 300, 1_000, 3_000, 10_000),
    population: Optional[ValueDistribution] = None,
    empirical_repeats: int = 0,
    rng: RngLike = None,
) -> ConvergenceResult:
    """Sweep the Theorem 2 bound over report counts.

    Parameters
    ----------
    mechanism:
        Defaults to Laplace (the paper's example).
    epsilon:
        Per-dimension budget.
    report_counts:
        Grid of ``r`` values.
    population:
        Value distribution for bounded mechanisms (and for the empirical
        check's data column).
    empirical_repeats:
        When positive, also simulate that many collection rounds per ``r``
        and report the measured KS distance next to the bound.
    rng:
        Seed or generator (used only for the empirical check).
    """
    mech = mechanism or LaplaceMechanism()
    gen = ensure_rng(rng)
    if population is None:
        lo, hi = mech.input_domain
        population = ValueDistribution.uniform_grid(lo, hi, 10)

    labels: Tuple[str, ...] = ("bound",)
    if empirical_repeats > 0:
        labels = ("bound", "empirical_ks")

    rows: List[SeriesRow] = []
    base: Optional[BerryEsseenBound] = None
    for r in report_counts:
        if base is None:
            base = berry_esseen_bound(mech, epsilon, int(r), population, rng=gen)
            bound = base.bound
        else:
            bound = base.at_reports(int(r)).bound
        values = {"bound": bound}
        if empirical_repeats > 0:
            column = population.sample(int(r), gen)
            deviations = simulate_dimension_deviations(
                mech, column, epsilon, 1.0, empirical_repeats, gen
            )
            model = build_deviation_model(mech, epsilon, int(r), population)
            values["empirical_ks"] = empirical_cdf_distance(
                deviations, model.delta, model.sigma
            )
        rows.append(SeriesRow(x=float(r), values=values))
    return ConvergenceResult(mechanism=mech.name, rows=rows, labels=labels)
