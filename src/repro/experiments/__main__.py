"""Module entry point for ``python -m repro.experiments``."""

import sys

from .cli import main

sys.exit(main())
