"""Mixed-schema collection through the session API (engineering driver).

The paper evaluates mean estimation and frequency estimation separately;
real deployments collect both at once. This driver exercises the unified
client/server surface the way a telemetry backend would: a typed schema
mixing numeric and categorical attributes, reports arriving in streaming
batches, frequency oracles and numeric mechanisms resolved through the
same registry, and HDR4ME applied as a composable post-processing step.

For each ε it reports the MSE of the numeric mean vector (raw and
L1-re-calibrated) and of the categorical frequency vector (histogram
route vs the OUE oracle), averaged over repeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..hdr4me.frequency import postprocess_frequencies, true_frequencies
from ..hdr4me.recalibrator import Recalibrator
from ..rng import RngLike, ensure_rng, spawn_children
from ..session import CategoricalAttribute, LDPClient, LDPServer, NumericAttribute, Schema
from .base import SeriesRow, format_series
from .frequency_experiment import zipf_categories

COLLECTION_SERIES_LABELS = (
    "mean_raw",
    "mean_l1",
    "freq_histogram",
    "freq_oue",
)


@dataclass(frozen=True)
class CollectionExperimentResult:
    """Session-collection MSE series over the ε grid."""

    users: int
    numeric_dims: int
    n_categories: int
    batches: int
    repeats: int
    rows: List[SeriesRow]

    def format(self) -> str:
        title = (
            "Mixed-schema session collection "
            "(n=%d, numeric d=%d, v=%d, %d streamed batches, %d repeats)"
            % (
                self.users,
                self.numeric_dims,
                self.n_categories,
                self.batches,
                self.repeats,
            )
        )
        return format_series(title, "epsilon", COLLECTION_SERIES_LABELS, self.rows)


def _mixed_records(
    users: int, numeric_dims: int, n_categories: int, gen: np.random.Generator
) -> np.ndarray:
    """Sparse-signal numeric columns plus one Zipf categorical column."""
    numeric = np.clip(gen.normal(0.0, 0.25, size=(users, numeric_dims)), -1.0, 1.0)
    signal = max(1, numeric_dims // 5)
    numeric[:, :signal] = np.clip(
        gen.normal(0.6, 0.25, size=(users, signal)), -1.0, 1.0
    )
    labels = zipf_categories(users, n_categories, exponent=1.3, rng=gen)
    return np.column_stack([numeric, labels])


def run_session_collection(
    epsilons: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    users: int = 50_000,
    numeric_dims: int = 8,
    n_categories: int = 16,
    batches: int = 10,
    repeats: int = 3,
    rng: RngLike = None,
) -> CollectionExperimentResult:
    """Collect a mixed numeric+categorical schema end to end.

    Every user reports all attributes (``m = d``); the collective budget
    splits evenly across them. The categorical attribute is collected
    twice — once through the histogram-encoding route of the numeric
    mechanism and once through the OUE oracle — to compare the two
    backends under identical conditions.
    """
    gen = ensure_rng(rng)
    records = _mixed_records(users, numeric_dims, n_categories, gen)
    truth_mean = records[:, :numeric_dims].mean(axis=0)
    truth_freq = true_frequencies(
        records[:, numeric_dims].astype(np.int64), n_categories
    )
    schema = Schema(
        [NumericAttribute("x%d" % j) for j in range(numeric_dims)]
        + [CategoricalAttribute("category", n_categories=n_categories)]
    )
    protocol_specs = {
        "freq_histogram": "piecewise",
        "freq_oue": {"category": "oue"},
    }

    rows: List[SeriesRow] = []
    for epsilon in epsilons:
        sums = {label: 0.0 for label in COLLECTION_SERIES_LABELS}
        for child in spawn_children(gen, repeats):
            for freq_label, spec in protocol_specs.items():
                client = LDPClient(schema, epsilon, protocols=spec)
                server = LDPServer(schema, epsilon, protocols=spec)
                for chunk in np.array_split(records, batches):
                    server.ingest(client.report_batch(chunk, child))
                raw = server.estimate()
                freq = postprocess_frequencies(
                    raw.frequencies("category"), normalize=True
                )
                sums[freq_label] += float(np.mean((freq - truth_freq) ** 2))
                if freq_label == "freq_histogram":
                    enhanced = server.estimate(postprocess=Recalibrator(norm="l1"))
                    sums["mean_raw"] += float(
                        np.mean((raw.numeric_means() - truth_mean) ** 2)
                    )
                    sums["mean_l1"] += float(
                        np.mean((enhanced.numeric_means() - truth_mean) ** 2)
                    )
        rows.append(
            SeriesRow(
                x=float(epsilon),
                values={k: v / repeats for k, v in sums.items()},
            )
        )
    return CollectionExperimentResult(
        users=users,
        numeric_dims=numeric_dims,
        n_categories=n_categories,
        batches=batches,
        repeats=repeats,
        rows=rows,
    )
