"""Mixed-schema collection through the session API (engineering driver).

The paper evaluates mean estimation and frequency estimation separately;
real deployments collect both at once. This driver exercises the unified
client/server surface the way a telemetry backend would: a typed schema
mixing numeric and categorical attributes, reports arriving in streaming
batches, frequency oracles and numeric mechanisms resolved through the
same registry, and HDR4ME applied as a composable post-processing step.

With ``shards > 1`` the driver additionally exercises the distributed
path end to end: every batch is wire-encoded under the client's contract,
decoded and contract-verified by a :class:`~repro.session.ShardedServer`,
and estimates are read from the deterministic shard merge. A
``checkpoint`` path makes the run save, restore and resume the server
state mid-stream — thanks to exact aggregation both variations are
bit-identical to the plain in-memory run, so the MSE series doubles as a
self-check of the distributed plumbing.

For each ε it reports the MSE of the numeric mean vector (raw and
L1-re-calibrated) and of the categorical frequency vector (histogram
route vs the OUE oracle), averaged over repeats.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..hdr4me.frequency import postprocess_frequencies, true_frequencies
from ..hdr4me.recalibrator import Recalibrator
from ..rng import RngLike, ensure_rng, spawn_children
from ..storage import open_store
from ..session import (
    CategoricalAttribute,
    LDPClient,
    LDPServer,
    NumericAttribute,
    Schema,
    ShardedServer,
)
from .base import SeriesRow, format_series
from .frequency_experiment import zipf_categories

COLLECTION_SERIES_LABELS = (
    "mean_raw",
    "mean_l1",
    "freq_histogram",
    "freq_oue",
)


@dataclass(frozen=True)
class CollectionExperimentResult:
    """Session-collection MSE series over the ε grid."""

    users: int
    numeric_dims: int
    n_categories: int
    batches: int
    repeats: int
    rows: List[SeriesRow]
    shards: int = 1
    checkpointed: bool = False

    def format(self) -> str:
        transport = (
            "in-memory"
            if self.shards == 1
            else "wire-encoded over %d shards" % self.shards
        )
        if self.checkpointed:
            transport += ", checkpoint/resume mid-stream"
        title = (
            "Mixed-schema session collection "
            "(n=%d, numeric d=%d, v=%d, %d streamed batches, %d repeats, %s)"
            % (
                self.users,
                self.numeric_dims,
                self.n_categories,
                self.batches,
                self.repeats,
                transport,
            )
        )
        return format_series(title, "epsilon", COLLECTION_SERIES_LABELS, self.rows)


def mixed_schema(numeric_dims: int, n_categories: int) -> Schema:
    """The mixed numeric+categorical schema shared by the engineering
    drivers (this experiment, the socket round, the throughput bench) —
    one definition so their contracts cannot silently drift apart."""
    return Schema(
        [NumericAttribute("x%d" % j) for j in range(numeric_dims)]
        + [CategoricalAttribute("category", n_categories=n_categories)]
    )


def _mixed_records(
    users: int, numeric_dims: int, n_categories: int, gen: np.random.Generator
) -> np.ndarray:
    """Sparse-signal numeric columns plus one Zipf categorical column."""
    numeric = np.clip(gen.normal(0.0, 0.25, size=(users, numeric_dims)), -1.0, 1.0)
    signal = max(1, numeric_dims // 5)
    numeric[:, :signal] = np.clip(
        gen.normal(0.6, 0.25, size=(users, signal)), -1.0, 1.0
    )
    labels = zipf_categories(users, n_categories, exponent=1.3, rng=gen)
    return np.column_stack([numeric, labels])


def _collect_stream(
    schema: Schema,
    epsilon: float,
    spec,
    records: np.ndarray,
    batches: int,
    child: np.random.Generator,
    shards: int,
    checkpoint: Optional[Union[str, pathlib.Path]],
) -> Union[LDPServer, ShardedServer]:
    """Stream one collection round, optionally sharded and checkpointed.

    With ``shards > 1`` every batch travels wire-encoded (contract
    fingerprint verified on ingest). With a ``checkpoint`` URI (any
    :func:`~repro.storage.open_store` scheme; a bare path means the
    atomic JSON file backend) the server state is saved halfway through
    the stream, restored into a *fresh* server, and the stream resumed —
    exercising save/restore/merge in-process without changing the
    estimates by a single bit.
    """
    client = LDPClient(schema, epsilon, protocols=spec)
    server: Union[LDPServer, ShardedServer]
    if shards > 1:
        server = ShardedServer(schema, epsilon, protocols=spec, shards=shards)
    else:
        server = LDPServer(schema, epsilon, protocols=spec)
    chunks = np.array_split(records, batches)
    resume_after = len(chunks) // 2 if checkpoint is not None else None
    for index, chunk in enumerate(chunks):
        if shards > 1:
            server.ingest_encoded(client.report_encoded(chunk, child))
        else:
            server.ingest(client.report_batch(chunk, child))
        if resume_after is not None and index == resume_after:
            with open_store(str(checkpoint)) as store:
                store.save(server.state_dict())
                if shards > 1:
                    server = ShardedServer(
                        schema, epsilon, protocols=spec, shards=shards
                    )
                else:
                    server = LDPServer(schema, epsilon, protocols=spec)
                server.load_state_dict(store.load())
    return server


def run_session_collection(
    epsilons: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    users: int = 50_000,
    numeric_dims: int = 8,
    n_categories: int = 16,
    batches: int = 10,
    repeats: int = 3,
    shards: int = 1,
    checkpoint: Optional[Union[str, pathlib.Path]] = None,
    rng: RngLike = None,
) -> CollectionExperimentResult:
    """Collect a mixed numeric+categorical schema end to end.

    Every user reports all attributes (``m = d``); the collective budget
    splits evenly across them. The categorical attribute is collected
    twice — once through the histogram-encoding route of the numeric
    mechanism and once through the OUE oracle — to compare the two
    backends under identical conditions. ``shards``/``checkpoint``
    switch the round onto the distributed path (see
    :func:`_collect_stream`).
    """
    gen = ensure_rng(rng)
    records = _mixed_records(users, numeric_dims, n_categories, gen)
    truth_mean = records[:, :numeric_dims].mean(axis=0)
    truth_freq = true_frequencies(
        records[:, numeric_dims].astype(np.int64), n_categories
    )
    schema = mixed_schema(numeric_dims, n_categories)
    protocol_specs = {
        "freq_histogram": "piecewise",
        "freq_oue": {"category": "oue"},
    }

    rows: List[SeriesRow] = []
    for epsilon in epsilons:
        sums = {label: 0.0 for label in COLLECTION_SERIES_LABELS}
        for child in spawn_children(gen, repeats):
            for freq_label, spec in protocol_specs.items():
                server = _collect_stream(
                    schema, epsilon, spec, records, batches, child,
                    shards, checkpoint,
                )
                raw = server.estimate()
                freq = postprocess_frequencies(
                    raw.frequencies("category"), normalize=True
                )
                sums[freq_label] += float(np.mean((freq - truth_freq) ** 2))
                if freq_label == "freq_histogram":
                    enhanced = server.estimate(postprocess=Recalibrator(norm="l1"))
                    sums["mean_raw"] += float(
                        np.mean((raw.numeric_means() - truth_mean) ** 2)
                    )
                    sums["mean_l1"] += float(
                        np.mean((enhanced.numeric_means() - truth_mean) ** 2)
                    )
        rows.append(
            SeriesRow(
                x=float(epsilon),
                values={k: v / repeats for k, v in sums.items()},
            )
        )
    return CollectionExperimentResult(
        users=users,
        numeric_dims=numeric_dims,
        n_categories=n_categories,
        batches=batches,
        repeats=repeats,
        rows=rows,
        shards=shards,
        checkpointed=checkpoint is not None,
    )
