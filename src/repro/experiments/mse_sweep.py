"""Figure 4 (a)–(l): MSE vs privacy budget, per dataset and mechanism.

For each of the four Section VI datasets and each of the three headline
mechanisms, sweep the collective budget ε and report the MSE of the
baseline aggregation against HDR4ME with L1 and with L2. The paper uses
the "limit" configuration m = d (every user reports every dimension, so
the per-dimension budget is ε/d) and ε ∈ {0.1, 0.2, 0.4, 0.8, 1.6, 3.2}
for Laplace/Piecewise but ε ∈ {0.1, 10, 100, 500, 1000, 5000} for Square
wave, whose utility barely moves at small ε.

Expected shapes (paper Fig. 4): L1 and L2 both cut MSE sharply for
Laplace and Piecewise at high d / small ε; Square wave's deviations are
already below the Lemma 4/5 thresholds, so re-calibration does not help it
and L2 can hurt; L2's curve flattens at extreme dimensionality where the
weights drive every entry to ≈ 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.metrics import mse, true_mean
from ..datasets.loader import load_dataset
from ..hdr4me.recalibrator import Recalibrator
from ..mechanisms.registry import get_mechanism
from ..protocol.pipeline import MeanEstimationPipeline, build_populations
from ..rng import RngLike, ensure_rng, spawn_children
from .base import SeriesRow, format_series

#: Paper budget grids.
PAPER_EPSILONS: Tuple[float, ...] = (0.1, 0.2, 0.4, 0.8, 1.6, 3.2)
SQUARE_WAVE_EPSILONS: Tuple[float, ...] = (0.1, 10.0, 100.0, 500.0, 1000.0, 5000.0)

#: The (dataset, mechanism) grid making up Fig. 4's twelve panels.
FIG4_PANELS: Tuple[Tuple[str, str], ...] = tuple(
    (dataset, mechanism)
    for dataset in ("gaussian", "poisson", "uniform", "cov19")
    for mechanism in ("laplace", "piecewise", "square_wave")
)

SERIES_LABELS = ("baseline", "l1", "l2")


def default_epsilons(mechanism_name: str) -> Tuple[float, ...]:
    """The paper's ε grid for a mechanism (Square wave gets its own)."""
    if mechanism_name.startswith("square_wave"):
        return SQUARE_WAVE_EPSILONS
    return PAPER_EPSILONS


@dataclass(frozen=True)
class MseSweepResult:
    """One Fig. 4 panel: MSE series over the ε grid.

    Attributes
    ----------
    dataset / mechanism:
        Panel coordinates.
    users / dimensions:
        Scale the panel was run at.
    repeats:
        Collection rounds averaged per ε.
    rows:
        One :class:`SeriesRow` per ε with baseline/l1/l2 MSEs.
    """

    dataset: str
    mechanism: str
    users: int
    dimensions: int
    repeats: int
    rows: List[SeriesRow]

    def format(self) -> str:
        title = "Fig.4 %s on %s (n=%d, d=%d, %d repeats)" % (
            self.mechanism,
            self.dataset,
            self.users,
            self.dimensions,
            self.repeats,
        )
        return format_series(title, "epsilon", SERIES_LABELS, self.rows)

    def series(self, label: str) -> np.ndarray:
        """One MSE series (``"baseline"``, ``"l1"`` or ``"l2"``)."""
        return np.array([row.values[label] for row in self.rows])


def run_mse_sweep(
    dataset: str = "gaussian",
    mechanism: str = "laplace",
    epsilons: Optional[Sequence[float]] = None,
    users: Optional[int] = None,
    dimensions: Optional[int] = None,
    repeats: int = 3,
    population_bins: int = 32,
    rng: RngLike = None,
) -> MseSweepResult:
    """Regenerate one Fig. 4 panel.

    Parameters
    ----------
    dataset / mechanism:
        Panel coordinates (see :data:`FIG4_PANELS`).
    epsilons:
        Budget grid; defaults to the paper's grid for the mechanism.
    users / dimensions:
        Scale overrides (paper scale by default — hours of compute; the
        benchmark harness passes scaled-down values).
    repeats:
        Independent collection rounds averaged per ε (paper: 100).
    population_bins:
        Discretization of the data columns for the Lemma 3 models.
    rng:
        Seed or generator.
    """
    gen = ensure_rng(rng)
    mech = get_mechanism(mechanism)
    data = load_dataset(dataset, users, dimensions, rng=gen)
    n, d = data.shape
    truth = true_mean(data)
    grid = tuple(epsilons) if epsilons is not None else default_epsilons(mechanism)
    populations = build_populations(data, population_bins) if mech.bounded else None
    recalibrators = {
        "l1": Recalibrator(norm="l1"),
        "l2": Recalibrator(norm="l2"),
    }

    rows: List[SeriesRow] = []
    for epsilon in grid:
        pipeline = MeanEstimationPipeline(mech, epsilon, dimensions=d)
        sums = {label: 0.0 for label in SERIES_LABELS}
        for child in spawn_children(gen, repeats):
            result = pipeline.run(data, child)
            model = pipeline.deviation_model(
                users=result.users, populations=populations
            )
            sums["baseline"] += mse(result.theta_hat, truth)
            for label, recal in recalibrators.items():
                enhanced = recal.recalibrate(result.theta_hat, model)
                sums[label] += mse(enhanced.theta_star, truth)
        rows.append(
            SeriesRow(
                x=float(epsilon),
                values={label: sums[label] / repeats for label in SERIES_LABELS},
            )
        )
    return MseSweepResult(
        dataset=dataset,
        mechanism=mechanism,
        users=n,
        dimensions=d,
        repeats=repeats,
        rows=rows,
    )
