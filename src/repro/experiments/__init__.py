"""Reproduction harness: one driver per table/figure of the paper.

=================  =======================================================
Paper artefact      Driver
=================  =======================================================
Table II            :func:`run_case_study`
Fig. 2 (a–c)        :func:`run_fig2`
Fig. 3 (a–b)        :func:`run_fig3`
Fig. 4 (a–l)        :func:`run_mse_sweep` (one call per panel)
Fig. 5 (a–b)        :func:`run_dimensionality_sweep`
Theorem 2 example   :func:`worked_example` / :func:`run_convergence`
V-C extension       :func:`run_frequency_experiment`
Session API         :func:`run_session_collection` (mixed schema, streaming)
Ablations           :func:`run_confidence_ablation`,
                    :func:`run_harmful_regime`,
                    :func:`run_solver_equivalence`
=================  =======================================================

Each driver defaults to paper scale but takes explicit scale overrides;
the benchmark harness under ``benchmarks/`` runs scaled-down versions and
prints the same rows/series the paper reports. A CLI is available as
``python -m repro.experiments``.
"""

from .ablation import (
    ConfidenceAblationResult,
    HarmfulRegimeResult,
    SolverEquivalenceResult,
    run_confidence_ablation,
    run_harmful_regime,
    run_solver_equivalence,
)
from .base import SeriesRow, format_series, simulate_dimension_deviations
from .case_study import (
    CASE_STUDY_EPSILON_PER_DIM,
    CASE_STUDY_REPORTS,
    CASE_STUDY_SUPREMA,
    PAPER_TABLE2,
    CaseStudyResult,
    run_case_study,
)
from .collection import (
    COLLECTION_SERIES_LABELS,
    CollectionExperimentResult,
    run_session_collection,
)
from .clt_validation import (
    CltValidationResult,
    run_fig2,
    run_fig3,
    validate_mechanism,
)
from .convergence import (
    ConvergenceResult,
    WorkedExample,
    empirical_cdf_distance,
    run_convergence,
    worked_example,
)
from .dimensionality import (
    FIG5_DIMENSIONS,
    FIG5_EPSILON,
    FIG5_MECHANISMS,
    DimensionalitySweepResult,
    run_dimensionality_sweep,
)
from .io import (
    SerializationError,
    read_series_csv,
    read_series_json,
    write_series_csv,
    write_series_json,
)
from .prediction import (
    PredictionResult,
    PredictionRow,
    run_mse_prediction,
)
from .frequency_experiment import (
    FrequencyExperimentResult,
    run_frequency_experiment,
    zipf_categories,
)
from .mse_sweep import (
    FIG4_PANELS,
    PAPER_EPSILONS,
    SQUARE_WAVE_EPSILONS,
    MseSweepResult,
    default_epsilons,
    run_mse_sweep,
)

__all__ = [
    "CASE_STUDY_EPSILON_PER_DIM",
    "CASE_STUDY_REPORTS",
    "CASE_STUDY_SUPREMA",
    "COLLECTION_SERIES_LABELS",
    "CaseStudyResult",
    "CltValidationResult",
    "CollectionExperimentResult",
    "ConfidenceAblationResult",
    "ConvergenceResult",
    "DimensionalitySweepResult",
    "FIG4_PANELS",
    "FIG5_DIMENSIONS",
    "FIG5_EPSILON",
    "FIG5_MECHANISMS",
    "FrequencyExperimentResult",
    "HarmfulRegimeResult",
    "MseSweepResult",
    "PAPER_EPSILONS",
    "PredictionResult",
    "PredictionRow",
    "SerializationError",
    "PAPER_TABLE2",
    "SQUARE_WAVE_EPSILONS",
    "SeriesRow",
    "SolverEquivalenceResult",
    "WorkedExample",
    "default_epsilons",
    "empirical_cdf_distance",
    "format_series",
    "run_case_study",
    "run_confidence_ablation",
    "run_convergence",
    "run_dimensionality_sweep",
    "run_fig2",
    "run_fig3",
    "run_frequency_experiment",
    "run_harmful_regime",
    "run_mse_prediction",
    "run_mse_sweep",
    "run_session_collection",
    "run_solver_equivalence",
    "simulate_dimension_deviations",
    "read_series_csv",
    "read_series_json",
    "validate_mechanism",
    "write_series_csv",
    "write_series_json",
    "zipf_categories",
]
