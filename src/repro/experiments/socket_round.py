"""Socket modes of the ``collection`` CLI: a real round over TCP.

Three entry points, one fixed round shape (the mixed schema of
:mod:`repro.experiments.collection` at ε=1 with the OUE oracle on the
categorical attribute), all deterministic in their seeds:

* :func:`run_collection_gateway` — serve an asyncio collection gateway
  (``collection --serve HOST:PORT``): accept handshaken connections,
  fan frames over sharded consumers, and once ``expect_users`` users
  have been accepted, drain-and-merge and print the estimate.
* :func:`run_collection_sender` — act as one reporting client
  (``collection --connect HOST:PORT``): generate the seeded records,
  perturb, wire-encode, ship every frame plus a trailing zero-user
  heartbeat, and report what was sent.
* :func:`run_oneshot_reference` — ingest the *same* frames in-process
  (``collection --oneshot SEEDS``) and print the estimate in the same
  format.
* :func:`run_federation_root` / :func:`run_federation_edge` — the
  hierarchical topology (``collection --root HOST:PORT`` and
  ``collection --edge UPSTREAM``): edges serve clients locally and ship
  merged state snapshots upstream (:mod:`repro.federation`); the root
  prints the federated estimate, again in the same format.

Estimates are printed with ``float.hex`` values, so ``diff`` between a
socket round's output and the one-shot reference asserts bit-identical
aggregation end to end — the CI smoke job does exactly that with two
concurrent clients and two shards, and the crash-recovery smoke job
repeats it across a SIGKILLed gateway resumed from ``--checkpoint``
(senders replay, the gateway deduplicates, the diff still comes out
empty).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import pathlib
import ssl as ssl_module
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ParameterError
from ..federation import EdgeAggregator, serve_root
from ..session import (
    LDPClient,
    LDPServer,
    ReportBatch,
    Schema,
    SessionEstimate,
    ShardedServer,
)
from ..storage import open_store
from ..telemetry import MetricsRegistry
from ..transport import replay_frames, serve_collection
from ..transport.framing import SENDER_ID_SIZE
from ..wire.codec import encode_batch
from ..wire.contract import CollectionContract
from .collection import _mixed_records, mixed_schema

#: The fixed contract terms of a CLI socket round. Server and clients
#: derive the same contract from these, so independently started
#: processes handshake successfully.
ROUND_EPSILON = 1.0
ROUND_NUMERIC_DIMS = 8
ROUND_CATEGORIES = 16
ROUND_PROTOCOLS = {"category": "oue"}


def round_schema() -> Schema:
    """The mixed schema every socket-round participant agrees on."""
    return mixed_schema(ROUND_NUMERIC_DIMS, ROUND_CATEGORIES)


def round_contract() -> CollectionContract:
    """The collection contract of a CLI socket round."""
    return LDPClient(
        round_schema(), ROUND_EPSILON, protocols=ROUND_PROTOCOLS
    ).contract


def round_frames(seed: int, users: int, batches: int) -> List[bytes]:
    """One client's wire frames, a pure function of ``(seed, users, batches)``."""
    gen = np.random.default_rng(seed)
    records = _mixed_records(users, ROUND_NUMERIC_DIMS, ROUND_CATEGORIES, gen)
    client = LDPClient(round_schema(), ROUND_EPSILON, protocols=ROUND_PROTOCOLS)
    return [
        client.report_encoded(chunk, gen)
        for chunk in np.array_split(records, batches)
    ]


def round_sender_id(seed: int) -> bytes:
    """The deterministic sender id of the ``--seed N`` client.

    A re-run of the same seed is the *same* logical stream, so a client
    restarted after a crash (its own or the gateway's) resumes at the
    gateway's watermark instead of double-contributing its reports.
    """
    return hashlib.sha256(b"repro-sender:%d" % seed).digest()[:SENDER_ID_SIZE]


def round_edge_id(number: int) -> bytes:
    """The deterministic edge id of the ``--edge-id N`` edge aggregator.

    Same resume logic one tier up: an edge restarted under the same
    number is the *same* push stream at the root, so its first push
    after a crash continues at the root's epoch watermark instead of
    registering a ghost edge.
    """
    return hashlib.sha256(b"repro-edge:%d" % number).digest()[:SENDER_ID_SIZE]


def server_ssl_context(
    cert: Union[str, pathlib.Path], key: Union[str, pathlib.Path]
) -> ssl_module.SSLContext:
    """A server-side TLS context from a certificate + key pair (PEM)."""
    context = ssl_module.SSLContext(ssl_module.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(str(cert), str(key))
    return context


def client_ssl_context(ca: Union[str, pathlib.Path]) -> ssl_module.SSLContext:
    """A client-side TLS context trusting exactly the given CA bundle.

    Certificate *and* hostname verification stay on — the smoke certs
    carry ``IP:127.0.0.1`` / ``DNS:localhost`` subject-alt-names, so a
    loopback round passes real verification instead of disabling it.
    """
    return ssl_module.create_default_context(
        purpose=ssl_module.Purpose.SERVER_AUTH, cafile=str(ca)
    )


def format_round_estimate(estimate: SessionEstimate) -> str:
    """Render an estimate with ``float.hex`` values (diff == bit-equality)."""
    lines = ["users %d" % estimate.users]
    for attr in estimate.attributes:
        lines.append(
            "%s %s %s"
            % (
                attr.name,
                attr.kind,
                " ".join(float(v).hex() for v in attr.raw),
            )
        )
    return "\n".join(lines)


def write_metrics_snapshot(
    path: Union[str, pathlib.Path],
    mode: str,
    counters: Dict[str, Any],
    registry: MetricsRegistry,
) -> None:
    """Write one ``--metrics`` snapshot document as JSON.

    The document shape is shared by all three socket modes: ``mode``
    names which side wrote it, ``counters`` are that side's plain
    authoritative integers, and ``metrics`` is the full registry
    snapshot (histograms, time-weighted gauges, labelled families).
    """
    document = {"mode": mode, "counters": counters, "metrics": registry.snapshot()}
    pathlib.Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


def parse_endpoint(text: str) -> Tuple[str, int]:
    """Split ``HOST:PORT`` (port may be 0 to bind an ephemeral port).

    IPv6 hosts may be bracketed (``[::1]:9000`` → host ``::1``, port
    9000 — the URL convention) or bare (``::1:8080`` → host ``::1``,
    port 8080 — everything up to the last colon). Anything without a
    numeric port after its host — ``:::``, ``[::1]``, ``host:`` — is a
    :class:`ValueError`.
    """
    if text.startswith("["):
        host, bracket, rest = text[1:].partition("]")
        if (
            not host
            or not bracket
            or not rest.startswith(":")
            or not rest[1:].isdigit()
        ):
            raise ParameterError(
                "expected [HOST]:PORT with a numeric port, got %r" % text
            )
        return host, int(rest[1:])
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ParameterError("expected HOST:PORT, got %r" % text)
    return host, int(port)


def run_collection_gateway(
    endpoint: str,
    shards: int = 2,
    expect_users: int = 4000,
    queue_depth: int = 8,
    port_file: Optional[Union[str, pathlib.Path]] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    metrics_path: Optional[Union[str, pathlib.Path]] = None,
    tls_cert: Optional[str] = None,
    tls_key: Optional[str] = None,
) -> str:
    """Serve one socket round and return the formatted merged estimate.

    The gateway accepts connections until ``expect_users`` users have
    been accepted across all of them, then drains the shard queues,
    merges, and renders the estimate. ``port_file`` (written once the
    socket is bound, holding the bare port number) lets scripts start
    the server on port 0 and discover where it landed.

    ``checkpoint`` (a storage URI: ``file://``, ``sqlite://``,
    ``segments://``, or a bare JSON-file path) makes the round durable:
    the gateway checkpoints every ``checkpoint_every`` accepted frames
    (default 1 — every ack is durable) and resumes from the newest
    intact checkpoint on start, so a killed-and-restarted gateway
    finishes the round with estimates bit-identical to an uninterrupted
    one.

    ``metrics_path`` writes the gateway's telemetry snapshot (the same
    document the live ``STATS`` socket request serves) as JSON on exit —
    including the error exits, so a failed round still leaves its
    counters behind for diagnosis. ``tls_cert`` + ``tls_key`` (PEM
    paths) serve the round over TLS.
    """
    host, port = parse_endpoint(endpoint)
    if checkpoint is not None and checkpoint_every is None:
        checkpoint_every = 1
    server_ssl = (
        server_ssl_context(tls_cert, tls_key) if tls_cert is not None else None
    )

    async def _serve() -> str:
        server = ShardedServer(
            round_schema(),
            ROUND_EPSILON,
            protocols=ROUND_PROTOCOLS,
            shards=shards,
        )
        store = open_store(checkpoint) if checkpoint is not None else None
        registry = MetricsRegistry()
        gateway = None
        try:
            gateway = await serve_collection(
                server,
                host,
                port,
                queue_depth=queue_depth,
                store=store,
                checkpoint_every_frames=checkpoint_every,
                metrics=registry,
                ssl=server_ssl,
            )
            try:
                if port_file is not None:
                    pathlib.Path(port_file).write_text("%d\n" % gateway.port)
                await gateway.wait_for_users(expect_users)
            finally:
                # Bounded grace: in-flight clients may finish their
                # stream (trailing heartbeats included), but one silent
                # peer cannot hang the round after expect_users arrived.
                await gateway.stop(grace=10.0)
            return format_round_estimate(gateway.estimate())
        finally:
            if store is not None:
                store.close()
            if metrics_path is not None and gateway is not None:
                snapshot = gateway.stats_snapshot()
                write_metrics_snapshot(
                    metrics_path, "serve", snapshot["counters"], registry
                )

    return asyncio.run(_serve())


def run_collection_sender(
    endpoint: str,
    seed: int = 0,
    users: int = 4000,
    batches: int = 6,
    retry: int = 1,
    metrics_path: Optional[Union[str, pathlib.Path]] = None,
    tls_ca: Optional[str] = None,
) -> str:
    """Run one reporting client against a gateway; return a summary line.

    The client's stream — its frames *and* its sender id — is a pure
    function of ``(seed, users, batches)``, and every frame carries a
    sequence number, so re-running the same seed against a resumed
    gateway skips the already-durable prefix instead of double-counting
    it. ``retry`` is the total number of connection attempts (half a
    second apart): ``retry=30`` rides out a gateway restart of up to
    ~15 seconds mid-round. ``tls_ca`` (a PEM CA bundle) connects over
    TLS to a ``--tls-cert`` gateway or edge.
    """
    host, port = parse_endpoint(endpoint)
    client_ssl = client_ssl_context(tls_ca) if tls_ca is not None else None
    frames = round_frames(seed, users, batches)
    # The trailing zero-user heartbeat is the round's last sequenced
    # frame; on a resumed stream it is replayed (or skipped) like any
    # other.
    heartbeat = encode_batch(
        ReportBatch(users=0, payloads={}, counts={}, protocols={}),
        round_contract(),
    )
    stream = frames + [heartbeat]
    registry = MetricsRegistry() if metrics_path is not None else None

    sender = asyncio.run(
        replay_frames(
            host,
            port,
            round_contract(),
            stream,
            round_sender_id(seed),
            attempts=retry,
            retry_delay=0.5,
            metrics=registry,
            ssl=client_ssl,
        )
    )
    if registry is not None:
        write_metrics_snapshot(
            metrics_path,
            "connect",
            {
                "frames_sent": sender.frames_sent,
                "frames_skipped": sender.frames_skipped,
                "bytes_sent": sender.bytes_sent,
                "resume_seq": sender.resume_seq,
            },
            registry,
        )
    # Skips cover a prefix of the stream (the gateway's watermark), so
    # the payload split is exact; the heartbeat is the final frame.
    payload_skipped = min(sender.frames_skipped, len(frames))
    heartbeat_sent = sender.frames_skipped < len(stream)
    payload_bytes = sender.bytes_sent - (
        len(heartbeat) if heartbeat_sent else 0
    )
    summary = "sent %d frames (%d payload bytes) from seed %d" % (
        len(frames) - payload_skipped,
        payload_bytes,
        seed,
    )
    if payload_skipped:
        summary += "; skipped %d already-durable frames" % payload_skipped
    return summary


def run_oneshot_reference(
    seeds: Sequence[int],
    users: int = 4000,
    batches: int = 6,
    metrics_path: Optional[Union[str, pathlib.Path]] = None,
) -> str:
    """In-process ingestion of the same frames, same output format.

    ``diff`` against a gateway's output asserts that the socket path —
    concurrent clients, sharded consumers, backpressure stalls and all —
    changed the estimate by exactly nothing. With ``metrics_path`` the
    server is instrumented (decode timing, fold counters) and the
    snapshot written on exit — telemetry never changes the estimate, so
    the diff stays empty either way.
    """
    server = LDPServer(round_schema(), ROUND_EPSILON, protocols=ROUND_PROTOCOLS)
    registry = MetricsRegistry() if metrics_path is not None else None
    if registry is not None:
        server.attach_telemetry(registry)
    for seed in seeds:
        for frame in round_frames(seed, users, batches):
            server.ingest_encoded(frame)
    if registry is not None:
        write_metrics_snapshot(
            metrics_path,
            "oneshot",
            {"users_folded": server.users},
            registry,
        )
    return format_round_estimate(server.estimate())


def run_federation_root(
    endpoint: str,
    expect_users: int = 4000,
    port_file: Optional[Union[str, pathlib.Path]] = None,
    checkpoint: Optional[str] = None,
    metrics_path: Optional[Union[str, pathlib.Path]] = None,
    tls_cert: Optional[str] = None,
    tls_key: Optional[str] = None,
) -> str:
    """Serve the root of a federated round; return the merged estimate.

    The root accepts ``STATE`` pushes from edge aggregators until the
    folded snapshots cover ``expect_users`` users, then stops and
    renders the federated estimate — in the same ``float.hex`` format as
    ``--serve`` and ``--oneshot``, so ``diff`` against the one-shot
    reference asserts that the whole two-tier topology changed the
    estimate by exactly nothing.

    ``checkpoint`` (a storage URI) makes the root durable: every fold is
    persisted *before* its ack, and a killed-and-restarted root resumes
    the round from its newest intact edge table. ``tls_cert`` +
    ``tls_key`` serve the push hop over TLS.
    """
    host, port = parse_endpoint(endpoint)
    server_ssl = (
        server_ssl_context(tls_cert, tls_key) if tls_cert is not None else None
    )

    async def _serve() -> str:
        store = open_store(checkpoint) if checkpoint is not None else None
        registry = MetricsRegistry()
        root = None
        try:
            root = await serve_root(
                round_schema(),
                ROUND_EPSILON,
                protocols=ROUND_PROTOCOLS,
                host=host,
                port=port,
                store=store,
                metrics=registry,
                ssl=server_ssl,
            )
            try:
                if port_file is not None:
                    pathlib.Path(port_file).write_text("%d\n" % root.port)
                await root.wait_for_users(expect_users)
            finally:
                # Folded pushes are already durable; the grace only lets
                # an in-flight push finish its ack.
                await root.stop(grace=10.0)
            return format_round_estimate(root.estimate())
        finally:
            if store is not None:
                store.close()
            if metrics_path is not None and root is not None:
                snapshot = root.stats_snapshot()
                write_metrics_snapshot(
                    metrics_path, "root", snapshot["counters"], registry
                )

    return asyncio.run(_serve())


def run_federation_edge(
    upstream: str,
    listen: str = "127.0.0.1:0",
    shards: int = 2,
    expect_users: int = 4000,
    queue_depth: int = 8,
    push_every: int = 2,
    edge_number: int = 0,
    port_file: Optional[Union[str, pathlib.Path]] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    metrics_path: Optional[Union[str, pathlib.Path]] = None,
    retry: int = 1,
    tls_cert: Optional[str] = None,
    tls_key: Optional[str] = None,
    tls_ca: Optional[str] = None,
) -> str:
    """Run one edge aggregator of a federated round; return a summary.

    The edge serves clients on ``listen`` (``--listen``, port 0 binds an
    ephemeral port discovered through ``port_file``), folds their frames
    locally, and pushes its cumulative state upstream every
    ``push_every`` accepted frames plus once — always — at shutdown,
    after ``expect_users`` local users have been accepted. ``retry``
    bounds the transport attempts of each push (half a second apart), so
    an edge rides out a root restart mid-round.

    ``edge_number`` pins the edge's identity (:func:`round_edge_id`):
    re-running the same number resumes the same push stream at the root.
    With ``checkpoint`` the local gateway is durable too — the
    SIGKILL-and-resume story of ``--serve``, one tier down. ``tls_cert``
    + ``tls_key`` serve the *client* hop over TLS; ``tls_ca`` makes the
    *upstream* hop TLS (the two are independent).
    """
    upstream_host, upstream_port = parse_endpoint(upstream)
    listen_host, listen_port = parse_endpoint(listen)
    if checkpoint is not None and checkpoint_every is None:
        checkpoint_every = 1
    server_ssl = (
        server_ssl_context(tls_cert, tls_key) if tls_cert is not None else None
    )
    upstream_ssl = client_ssl_context(tls_ca) if tls_ca is not None else None

    async def _serve() -> str:
        store = open_store(checkpoint) if checkpoint is not None else None
        registry = MetricsRegistry()
        edge = None
        try:
            edge = EdgeAggregator(
                round_schema(),
                ROUND_EPSILON,
                protocols=ROUND_PROTOCOLS,
                shards=shards,
                queue_depth=queue_depth,
                store=store,
                checkpoint_every_frames=checkpoint_every,
                edge_id=round_edge_id(edge_number),
                push_every_frames=push_every,
                push_attempts=retry,
                push_retry_delay=0.5,
                metrics=registry,
            )
            await edge.start(
                upstream_host,
                upstream_port,
                host=listen_host,
                port=listen_port,
                ssl=server_ssl,
                upstream_ssl=upstream_ssl,
            )
            if port_file is not None:
                pathlib.Path(port_file).write_text("%d\n" % edge.port)
            await edge.gateway.wait_for_users(expect_users)
            await edge.stop(grace=10.0)
            return (
                "edge %d pushed %d snapshots (last epoch %d) covering "
                "%d users"
                % (
                    edge_number,
                    edge.pushes_completed,
                    edge.last_epoch,
                    edge.users,
                )
            )
        finally:
            if store is not None:
                store.close()
            if metrics_path is not None and edge is not None:
                snapshot = edge.stats_snapshot()
                counters = dict(snapshot["counters"])
                counters.update(snapshot["federation"])
                write_metrics_snapshot(
                    metrics_path, "edge", counters, registry
                )

    return asyncio.run(_serve())
