"""Section V-C: the frequency-estimation extension of HDR4ME.

The paper generalizes its re-calibration to frequency estimation via
histogram encoding but tabulates no dedicated experiment; this driver
provides one. A categorical population with a Zipf-like frequency profile
is collected through the session API (one
:class:`~repro.session.LDPClient` / :class:`~repro.session.LDPServer`
pair per run), and the MSE of the estimated frequency vector (against the
exact frequencies) is compared with and without HDR4ME re-calibration
over a budget grid. Because re-calibration is a composable
post-processing step of :meth:`~repro.session.LDPServer.estimate`, all
three variants read the *same* perturbed reports — the comparison
isolates the re-calibration exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..hdr4me.frequency import postprocess_frequencies, true_frequencies
from ..hdr4me.recalibrator import Recalibrator
from ..rng import RngLike, ensure_rng, spawn_children
from ..session import CategoricalAttribute, LDPClient, LDPServer, Schema
from .base import SeriesRow, format_series

FREQ_SERIES_LABELS = ("baseline", "l1", "l2")


def zipf_categories(
    users: int,
    n_categories: int,
    exponent: float = 1.2,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw category labels with a Zipf(``exponent``) frequency profile."""
    gen = ensure_rng(rng)
    ranks = np.arange(1, n_categories + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return gen.choice(n_categories, size=users, p=weights)


@dataclass(frozen=True)
class FrequencyExperimentResult:
    """Frequency-estimation MSE series over the ε grid."""

    mechanism: str
    users: int
    n_categories: int
    repeats: int
    rows: List[SeriesRow]

    def format(self) -> str:
        title = "Frequency estimation, %s (n=%d, v=%d, %d repeats)" % (
            self.mechanism,
            self.users,
            self.n_categories,
            self.repeats,
        )
        return format_series(title, "epsilon", FREQ_SERIES_LABELS, self.rows)


def run_frequency_experiment(
    mechanism: str = "piecewise",
    epsilons: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    users: int = 50_000,
    n_categories: int = 32,
    repeats: int = 3,
    exponent: float = 1.2,
    rng: RngLike = None,
) -> FrequencyExperimentResult:
    """Compare raw vs HDR4ME-re-calibrated frequency estimation.

    ``mechanism`` may be any unified-registry name — a numeric mechanism
    (histogram-encoding route) or a frequency oracle (``"grr"``/``"oue"``/
    ``"olh"``). All estimates are post-processed identically (clip to
    [0, 1] and renormalize) so the comparison isolates the re-calibration
    itself.
    """
    gen = ensure_rng(rng)
    labels = zipf_categories(users, n_categories, exponent, gen)
    truth = true_frequencies(labels, n_categories)
    schema = Schema([CategoricalAttribute("value", n_categories=n_categories)])

    rows: List[SeriesRow] = []
    for epsilon in epsilons:
        sums = {label: 0.0 for label in FREQ_SERIES_LABELS}
        for child in spawn_children(gen, repeats):
            client = LDPClient(schema, epsilon, protocols=mechanism)
            server = LDPServer(schema, epsilon, protocols=mechanism)
            server.ingest(client.report_batch(labels[:, None], child))
            # One set of reports, three readings: the baseline and both
            # re-calibrations see identical perturbation.
            for label in FREQ_SERIES_LABELS:
                recal = None if label == "baseline" else Recalibrator(norm=label)
                estimate = server.estimate(postprocess=recal)
                final = postprocess_frequencies(
                    estimate["value"].value, normalize=True
                )
                sums[label] += float(np.mean((final - truth) ** 2))
        rows.append(
            SeriesRow(
                x=float(epsilon),
                values={k: v / repeats for k, v in sums.items()},
            )
        )
    return FrequencyExperimentResult(
        mechanism=mechanism,
        users=users,
        n_categories=n_categories,
        repeats=repeats,
        rows=rows,
    )
