"""Section V-C: the frequency-estimation extension of HDR4ME.

The paper generalizes its re-calibration to frequency estimation via
histogram encoding but tabulates no dedicated experiment; this driver
provides one. A categorical population with a Zipf-like frequency profile
is collected under each mechanism with per-entry budget ε/2m, and the MSE
of the estimated frequency vector (against the exact frequencies) is
compared with and without HDR4ME re-calibration over a budget grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..hdr4me.frequency import (
    FrequencyEstimator,
    postprocess_frequencies,
    true_frequencies,
)
from ..hdr4me.recalibrator import Recalibrator
from ..mechanisms.registry import get_mechanism
from ..rng import RngLike, ensure_rng, spawn_children
from .base import SeriesRow, format_series

FREQ_SERIES_LABELS = ("baseline", "l1", "l2")


def zipf_categories(
    users: int,
    n_categories: int,
    exponent: float = 1.2,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw category labels with a Zipf(``exponent``) frequency profile."""
    gen = ensure_rng(rng)
    ranks = np.arange(1, n_categories + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return gen.choice(n_categories, size=users, p=weights)


@dataclass(frozen=True)
class FrequencyExperimentResult:
    """Frequency-estimation MSE series over the ε grid."""

    mechanism: str
    users: int
    n_categories: int
    repeats: int
    rows: List[SeriesRow]

    def format(self) -> str:
        title = "Frequency estimation, %s (n=%d, v=%d, %d repeats)" % (
            self.mechanism,
            self.users,
            self.n_categories,
            self.repeats,
        )
        return format_series(title, "epsilon", FREQ_SERIES_LABELS, self.rows)


def run_frequency_experiment(
    mechanism: str = "piecewise",
    epsilons: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    users: int = 50_000,
    n_categories: int = 32,
    repeats: int = 3,
    exponent: float = 1.2,
    rng: RngLike = None,
) -> FrequencyExperimentResult:
    """Compare raw vs HDR4ME-re-calibrated frequency estimation.

    All estimates are post-processed identically (clip to [0, 1] and
    renormalize) so the comparison isolates the re-calibration itself.
    """
    gen = ensure_rng(rng)
    mech_name = mechanism
    labels = zipf_categories(users, n_categories, exponent, gen)
    truth = true_frequencies(labels, n_categories)

    rows: List[SeriesRow] = []
    for epsilon in epsilons:
        sums = {label: 0.0 for label in FREQ_SERIES_LABELS}
        for child in spawn_children(gen, repeats):
            seed = int(child.integers(0, 2**62))
            for label in FREQ_SERIES_LABELS:
                recal: Optional[Recalibrator] = None
                if label != "baseline":
                    recal = Recalibrator(norm=label)
                estimator = FrequencyEstimator(
                    get_mechanism(mech_name),
                    epsilon,
                    sampled_dimensions=1,
                    recalibrator=recal,
                )
                # Same seed per variant: identical perturbation, so the
                # comparison isolates the re-calibration step.
                estimate = estimator.estimate(labels, n_categories, rng=seed)
                final = estimate.best(normalize=True)
                sums[label] += float(np.mean((final - truth) ** 2))
        rows.append(
            SeriesRow(
                x=float(epsilon),
                values={k: v / repeats for k, v in sums.items()},
            )
        )
    return FrequencyExperimentResult(
        mechanism=mech_name,
        users=users,
        n_categories=n_categories,
        repeats=repeats,
        rows=rows,
    )
