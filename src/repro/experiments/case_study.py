"""Table II: the Section IV-C analytical case study.

Benchmark the Piecewise and Square-wave mechanisms *without experiments*:
v = 10 original values {0.1, …, 1.0} with probability 10% each,
r = 10,000 reports per dimension, per-dimension budget ε/m = 0.001, and a
grid of tolerated suprema ξ ∈ {0.001, 0.01, 0.05, 0.1}. The framework's
supremum probabilities are the paper's Table II cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..framework.benchmark import BenchmarkTable, benchmark_mechanisms
from ..framework.deviation import DeviationModel, build_deviation_model
from ..framework.population import ValueDistribution
from ..mechanisms.piecewise import PiecewiseMechanism
from ..mechanisms.square_wave import SquareWaveMechanism

#: Paper parameters for the case study.
CASE_STUDY_EPSILON_PER_DIM = 0.001
CASE_STUDY_REPORTS = 10_000
CASE_STUDY_SUPREMA: Tuple[float, ...] = (0.001, 0.01, 0.05, 0.1)

#: Table II as printed in the paper (for EXPERIMENTS.md comparison).
PAPER_TABLE2: Dict[str, Tuple[float, ...]] = {
    "piecewise": (3.46e-5, 3.46e-4, 0.002, 0.004),
    "square_wave_unit": (2.12e-16, 2.62e-11, 0.644, 1.000),
}


@dataclass(frozen=True)
class CaseStudyResult:
    """Everything the Section IV-C case study derives.

    Attributes
    ----------
    table:
        The Table II probabilities computed by the framework.
    piecewise_model / square_model:
        The per-dimension Gaussian deviation models; the paper reports
        (δ = 0, σ² = 533.210) and (δ = −0.049, σ² = 3.365e−5).
    """

    table: BenchmarkTable
    piecewise_model: DeviationModel
    square_model: DeviationModel

    def format(self) -> str:
        lines = [
            "# Table II — probabilities for the supremum to hold (one dim)",
            "# piecewise model: delta=%.4f sigma^2=%.4g (paper: 0, 533.210)"
            % (self.piecewise_model.delta, self.piecewise_model.sigma**2),
            "# square    model: delta=%.4f sigma^2=%.4g (paper: -0.049, 3.365e-5)"
            % (self.square_model.delta, self.square_model.sigma**2),
            self.table.format(),
        ]
        return "\n".join(lines)


def run_case_study(
    epsilon_per_dim: float = CASE_STUDY_EPSILON_PER_DIM,
    reports: int = CASE_STUDY_REPORTS,
    suprema: Sequence[float] = CASE_STUDY_SUPREMA,
) -> CaseStudyResult:
    """Regenerate Table II analytically (no data, no perturbation runs)."""
    population = ValueDistribution.case_study()
    piecewise = PiecewiseMechanism()
    square = SquareWaveMechanism()
    table = benchmark_mechanisms(
        [piecewise, square],
        epsilon_per_dim,
        reports,
        suprema,
        default_population=population,
    )
    return CaseStudyResult(
        table=table,
        piecewise_model=build_deviation_model(
            piecewise, epsilon_per_dim, reports, population
        ),
        square_model=build_deviation_model(
            square, epsilon_per_dim, reports, population
        ),
    )
