"""Command-line entry point: ``python -m repro.experiments <artefact>``.

Each subcommand regenerates one paper artefact and prints its rows/series
to stdout. ``--quick`` runs a scaled-down configuration (the same ones the
benchmark harness uses); without it the paper-scale defaults apply, which
can take a long time.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .ablation import (
    run_confidence_ablation,
    run_harmful_regime,
    run_solver_equivalence,
)
from .case_study import run_case_study
from .clt_validation import run_fig2, run_fig3
from .collection import run_session_collection
from .convergence import run_convergence, worked_example
from .dimensionality import FIG5_MECHANISMS, run_dimensionality_sweep
from .frequency_experiment import run_frequency_experiment
from .mse_sweep import FIG4_PANELS, run_mse_sweep

#: Scaled-down shapes used by --quick (and the benchmark harness).
QUICK_USERS = 20_000
QUICK_REPEATS = 2
QUICK_CLT_REPEATS = 300


def _build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--seed", type=int, default=None, help="random seed (default 0)"
    )
    common.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down run (laptop-seconds instead of paper-scale)",
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="artefact", required=True)

    sub.add_parser("table2", help="Table II analytical benchmark", parents=[common])
    sub.add_parser("fig2", help="CLT vs experiment on Uniform", parents=[common])
    sub.add_parser("fig3", help="CLT vs experiment, case study", parents=[common])

    fig4 = sub.add_parser("fig4", help="MSE vs epsilon panels", parents=[common])
    fig4.add_argument(
        "--dataset",
        default="gaussian",
        choices=sorted({d for d, _ in FIG4_PANELS}),
    )
    fig4.add_argument(
        "--mechanism",
        default="laplace",
        choices=sorted({m for _, m in FIG4_PANELS}),
    )

    fig5 = sub.add_parser("fig5", help="MSE vs dimensionality on COV-19-like", parents=[common])
    fig5.add_argument("--mechanism", default="laplace", choices=FIG5_MECHANISMS)

    sub.add_parser("theorem2", help="Berry-Esseen worked example + sweep", parents=[common])
    sub.add_parser("prediction", help="framework MSE prediction vs experiment", parents=[common])
    sub.add_parser("ablation", help="HDR4ME design ablations", parents=[common])
    freq = sub.add_parser("frequency", help="Section V-C frequency extension", parents=[common])
    freq.add_argument("--mechanism", default="piecewise")
    collection = sub.add_parser(
        "collection",
        help="mixed-schema streaming collection through the session API",
        parents=[common],
    )
    collection.add_argument(
        "--shards",
        type=int,
        default=None,
        help="fan the batch stream over N worker servers, wire-encoding "
        "every batch (default 1: plain in-memory ingestion)",
    )
    collection.add_argument(
        "--checkpoint",
        metavar="URI",
        default=None,
        help="checkpoint store URI: file://PATH, sqlite://PATH, "
        "segments://DIR, or a bare path (JSON file). In-process: save "
        "the server state mid-stream, restore into a fresh server and "
        "resume (bit-identical estimates either way). With --serve: "
        "make the round durable — checkpoint per --checkpoint-every "
        "and resume from the newest intact checkpoint on start",
    )
    collection.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="serve mode: checkpoint every N accepted frames, before "
        "the Nth frame's ack goes out (requires --checkpoint; "
        "default 1: every acknowledged frame is durable)",
    )
    collection.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help="connect mode: up to N connection attempts half a second "
        "apart (default 1) — rides out a gateway restart mid-round; "
        "the resumed stream skips already-durable frames",
    )
    socket_mode = collection.add_mutually_exclusive_group()
    socket_mode.add_argument(
        "--serve",
        metavar="HOST:PORT",
        default=None,
        help="serve an asyncio collection gateway (sharded per --shards); "
        "drain and print the merged estimate once --expect-users users "
        "arrived (port 0 binds an ephemeral port, see --port-file)",
    )
    socket_mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="act as one reporting client: handshake, ship the --seed "
        "round's frames plus a zero-user heartbeat, and exit",
    )
    socket_mode.add_argument(
        "--oneshot",
        metavar="SEEDS",
        default=None,
        help="comma-separated client seeds: ingest the same frames "
        "in-process and print the estimate in --serve's format "
        "(diff asserts bit-identical aggregation)",
    )
    socket_mode.add_argument(
        "--root",
        metavar="HOST:PORT",
        default=None,
        help="serve the root of a federated round: accept merged state "
        "pushes from --edge aggregators and print the federated "
        "estimate (in --serve's format) once --expect-users users are "
        "covered",
    )
    socket_mode.add_argument(
        "--edge",
        metavar="UPSTREAM",
        default=None,
        help="run one edge aggregator: serve clients on --listen (a "
        "full gateway, sharded per --shards), and push the merged "
        "state upstream to the --root at UPSTREAM (HOST:PORT) every "
        "--push-every accepted frames plus once at shutdown",
    )
    collection.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="edge mode: the local endpoint clients connect to "
        "(default 127.0.0.1:0 — an ephemeral port, see --port-file)",
    )
    collection.add_argument(
        "--push-every",
        type=int,
        default=None,
        metavar="N",
        help="edge mode: push the cumulative state upstream every N "
        "accepted frames (default 2); the shutdown push always happens",
    )
    collection.add_argument(
        "--edge-id",
        type=int,
        default=None,
        metavar="N",
        help="edge mode: deterministic edge identity — re-running the "
        "same N resumes the same push stream at the root (default 0)",
    )
    collection.add_argument(
        "--tls-cert",
        metavar="PEM",
        default=None,
        help="serve/root/edge modes: serve the listening socket over "
        "TLS with this certificate chain (requires --tls-key)",
    )
    collection.add_argument(
        "--tls-key",
        metavar="PEM",
        default=None,
        help="serve/root/edge modes: the private key of --tls-cert",
    )
    collection.add_argument(
        "--tls-ca",
        metavar="PEM",
        default=None,
        help="connect/edge modes: trust this CA bundle and speak TLS "
        "on the outbound hop (to a --tls-cert gateway or root)",
    )
    collection.add_argument(
        "--users",
        type=int,
        default=None,
        help="records per socket client (socket modes only; default 4000)",
    )
    collection.add_argument(
        "--batches",
        type=int,
        default=None,
        help="frames per socket client (socket modes only; default 6)",
    )
    collection.add_argument(
        "--expect-users",
        type=int,
        default=None,
        metavar="N",
        help="serve mode: finish the round after N accepted users "
        "(default: --users, i.e. one client)",
    )
    collection.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="serve mode: bound of each shard consumer's queue (the "
        "backpressure knob; default 8)",
    )
    collection.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="serve mode: write the bound port to PATH once listening",
    )
    collection.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="socket modes: write the telemetry snapshot (counters, "
        "histograms, time-weighted queue gauges) to PATH as JSON on "
        "exit — the serve-mode document matches what the live STATS "
        "socket request returns",
    )
    collection.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON events (one object per line, on "
        "stderr): handshakes, frame accept/reject, folds, checkpoint "
        "cuts, sender retries, recovery replays",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run one artefact and print its result; returns a process code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    seed = args.seed if args.seed is not None else 0
    quick = args.quick

    if args.artefact == "table2":
        print(run_case_study().format())
    elif args.artefact == "fig2":
        kwargs = {}
        if quick:
            kwargs = dict(users=QUICK_USERS, repeats=QUICK_CLT_REPEATS)
        for result in run_fig2(rng=seed, **kwargs):
            print(result.format())
            print()
    elif args.artefact == "fig3":
        kwargs = dict(repeats=QUICK_CLT_REPEATS) if quick else {}
        for result in run_fig3(rng=seed, **kwargs):
            print(result.format())
            print()
    elif args.artefact == "fig4":
        kwargs = {}
        if quick:
            kwargs = dict(users=QUICK_USERS, repeats=QUICK_REPEATS)
        result = run_mse_sweep(
            dataset=args.dataset, mechanism=args.mechanism, rng=seed, **kwargs
        )
        print(result.format())
    elif args.artefact == "fig5":
        kwargs = {}
        if quick:
            kwargs = dict(
                users=QUICK_USERS,
                repeats=QUICK_REPEATS,
                dimension_grid=(50, 100, 200, 400),
            )
        result = run_dimensionality_sweep(
            mechanism=args.mechanism, rng=seed, **kwargs
        )
        print(result.format())
    elif args.artefact == "theorem2":
        print(worked_example().format())
        print()
        repeats = QUICK_CLT_REPEATS if quick else 0
        print(run_convergence(empirical_repeats=repeats, rng=seed).format())
    elif args.artefact == "prediction":
        from .prediction import run_mse_prediction

        kwargs = {}
        if quick:
            kwargs = dict(users=8_000, dimensions=30, repeats=3)
        print(run_mse_prediction(rng=seed, **kwargs).format())
    elif args.artefact == "ablation":
        users = QUICK_USERS if quick else 50_000
        print(run_confidence_ablation(users=users, rng=seed).format())
        print()
        print(run_harmful_regime(users=users, rng=seed).format())
        print()
        print(run_solver_equivalence(rng=seed).format())
    elif args.artefact == "frequency":
        kwargs = {}
        if quick:
            kwargs = dict(users=QUICK_USERS, repeats=QUICK_REPEATS)
        result = run_frequency_experiment(
            mechanism=args.mechanism, rng=seed, **kwargs
        )
        print(result.format())
    elif args.artefact == "collection":
        from .socket_round import (
            run_collection_gateway,
            run_collection_sender,
            run_federation_edge,
            run_federation_root,
            run_oneshot_reference,
        )

        if args.log_json:
            from ..telemetry import enable_json_logs

            enable_json_logs()

        # The socket modes and the in-process experiment take disjoint
        # flags; a flag the selected mode would ignore is a misuse the
        # user must hear about, not a silent no-op.
        socket_mode = (
            args.serve or args.connect or args.oneshot or args.root or args.edge
        )
        serving = args.serve or args.root or args.edge
        if socket_mode:
            if args.checkpoint is not None and not serving:
                parser.error(
                    "--checkpoint applies to --serve/--root/--edge (the "
                    "serving side owns the round's durable state) and "
                    "the in-process collection experiment, not "
                    "--connect/--oneshot"
                )
            if quick:
                parser.error(
                    "--quick only applies to the in-process collection "
                    "experiment, not the socket modes"
                )
            if args.shards is not None and not (args.serve or args.edge):
                parser.error(
                    "--shards only applies to --serve/--edge (the "
                    "gateway owns the shards) and the in-process "
                    "experiment"
                )
            if args.seed is not None and not args.connect:
                parser.error(
                    "--seed only applies to --connect (clients own their "
                    "rounds' seeds; --oneshot takes them as its argument)"
                )
            if args.batches is not None and serving:
                parser.error(
                    "--batches only applies to --connect/--oneshot (the "
                    "serving side takes frames as they come)"
                )
            if args.retry is not None and not (args.connect or args.edge):
                parser.error(
                    "--retry only applies to --connect and --edge (the "
                    "side that dials out owns the reconnect loop)"
                )
            if not serving:
                for name, value in [
                    ("--expect-users", args.expect_users),
                    ("--port-file", args.port_file),
                ]:
                    if value is not None:
                        parser.error(
                            "%s only applies to --serve/--root/--edge"
                            % name
                        )
            if not (args.serve or args.edge):
                for name, value in [
                    ("--queue-depth", args.queue_depth),
                    ("--checkpoint-every", args.checkpoint_every),
                ]:
                    if value is not None:
                        parser.error(
                            "%s only applies to --serve/--edge" % name
                        )
            if not args.edge:
                for name, value in [
                    ("--listen", args.listen),
                    ("--push-every", args.push_every),
                    ("--edge-id", args.edge_id),
                ]:
                    if value is not None:
                        parser.error("%s only applies to --edge" % name)
            if args.checkpoint_every is not None and args.checkpoint is None:
                parser.error("--checkpoint-every requires --checkpoint")
            if (args.tls_cert is None) != (args.tls_key is None):
                parser.error(
                    "--tls-cert and --tls-key go together (a TLS "
                    "listener needs both halves of its identity)"
                )
            if args.tls_cert is not None and not serving:
                parser.error(
                    "--tls-cert/--tls-key only apply to "
                    "--serve/--root/--edge (the listening side presents "
                    "the certificate)"
                )
            if args.tls_ca is not None and not (args.connect or args.edge):
                parser.error(
                    "--tls-ca only applies to --connect and --edge (the "
                    "side that dials out verifies the peer)"
                )
        else:
            ignored = [
                name
                for name, value in [
                    ("--users", args.users),
                    ("--batches", args.batches),
                    ("--expect-users", args.expect_users),
                    ("--queue-depth", args.queue_depth),
                    ("--port-file", args.port_file),
                    ("--checkpoint-every", args.checkpoint_every),
                    ("--retry", args.retry),
                    ("--metrics", args.metrics),
                    ("--listen", args.listen),
                    ("--push-every", args.push_every),
                    ("--edge-id", args.edge_id),
                    ("--tls-cert", args.tls_cert),
                    ("--tls-key", args.tls_key),
                    ("--tls-ca", args.tls_ca),
                ]
                if value is not None
            ]
            if ignored:
                parser.error(
                    "%s only appl%s to the socket modes "
                    "(--serve/--connect/--oneshot/--root/--edge)"
                    % (
                        ", ".join(ignored),
                        "ies" if len(ignored) == 1 else "y",
                    )
                )
        users = args.users if args.users is not None else 4000
        batches = args.batches if args.batches is not None else 6
        shards = args.shards if args.shards is not None else 1
        expect_users = (
            args.expect_users if args.expect_users is not None else users
        )
        queue_depth = args.queue_depth if args.queue_depth is not None else 8
        if args.serve:
            print(
                run_collection_gateway(
                    args.serve,
                    shards=shards,
                    expect_users=expect_users,
                    queue_depth=queue_depth,
                    port_file=args.port_file,
                    checkpoint=args.checkpoint,
                    checkpoint_every=args.checkpoint_every,
                    metrics_path=args.metrics,
                    tls_cert=args.tls_cert,
                    tls_key=args.tls_key,
                )
            )
        elif args.root:
            print(
                run_federation_root(
                    args.root,
                    expect_users=expect_users,
                    port_file=args.port_file,
                    checkpoint=args.checkpoint,
                    metrics_path=args.metrics,
                    tls_cert=args.tls_cert,
                    tls_key=args.tls_key,
                )
            )
        elif args.edge:
            print(
                run_federation_edge(
                    args.edge,
                    listen=(
                        args.listen
                        if args.listen is not None
                        else "127.0.0.1:0"
                    ),
                    shards=shards,
                    expect_users=expect_users,
                    queue_depth=queue_depth,
                    push_every=(
                        args.push_every if args.push_every is not None else 2
                    ),
                    edge_number=(
                        args.edge_id if args.edge_id is not None else 0
                    ),
                    port_file=args.port_file,
                    checkpoint=args.checkpoint,
                    checkpoint_every=args.checkpoint_every,
                    metrics_path=args.metrics,
                    retry=args.retry if args.retry is not None else 1,
                    tls_cert=args.tls_cert,
                    tls_key=args.tls_key,
                    tls_ca=args.tls_ca,
                )
            )
        elif args.connect:
            print(
                run_collection_sender(
                    args.connect,
                    seed=seed,
                    users=users,
                    batches=batches,
                    retry=args.retry if args.retry is not None else 1,
                    metrics_path=args.metrics,
                    tls_ca=args.tls_ca,
                )
            )
        elif args.oneshot:
            seeds = [int(part) for part in args.oneshot.split(",") if part]
            print(
                run_oneshot_reference(
                    seeds,
                    users=users,
                    batches=batches,
                    metrics_path=args.metrics,
                )
            )
        else:
            kwargs = {}
            if quick:
                kwargs = dict(users=QUICK_USERS, repeats=QUICK_REPEATS)
            result = run_session_collection(
                shards=shards,
                checkpoint=args.checkpoint,
                rng=seed,
                **kwargs,
            )
            print(result.format())
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
