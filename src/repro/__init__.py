"""repro — reproduction of "Utility Analysis and Enhancement of LDP
Mechanisms in High-Dimensional Space" (Duan, Ye, Hu; ICDE 2022).

The library has four layers:

1. **Substrates** — :mod:`repro.mechanisms` (six LDP mechanisms),
   :mod:`repro.freq_oracles` (the Wang et al. GRR/OUE/OLH oracles),
   :mod:`repro.protocol` (budget accounting and the legacy pipelines),
   :mod:`repro.datasets` (Section VI data generators) and
   :mod:`repro.analysis` (utility metrics and density diagnostics).
2. **The paper's contributions** — :mod:`repro.framework` (the Section IV
   analytical utility framework: Lemmas 2–3, Theorems 1–2, Table II
   benchmarking) and :mod:`repro.hdr4me` (the Section V HDR4ME
   re-calibration protocol with L1/L2 regularization and the frequency
   extension).
3. **The session API** — :mod:`repro.session`, the canonical client/server
   collection surface: typed :class:`Schema` records (numeric and
   categorical attributes mixed freely), an :class:`LDPClient` that
   perturbs whole records under one budget plan, an :class:`LDPServer`
   with incremental streaming ``ingest``/``estimate``, and a unified
   registry (:func:`get_protocol`) that resolves numeric mechanisms and
   frequency oracles interchangeably.
4. **Reproduction harness** — :mod:`repro.experiments` (one driver per
   table/figure plus a CLI).

Quickstart::

    import numpy as np
    from repro import (
        CategoricalAttribute, LDPClient, LDPServer, NumericAttribute,
        Recalibrator, Schema,
    )

    schema = Schema([
        NumericAttribute("screen_time"),            # values in [-1, 1]
        CategoricalAttribute("top_app", n_categories=16),
    ])
    client = LDPClient(schema, epsilon=1.0, protocols="piecewise")
    server = LDPServer(schema, epsilon=1.0, protocols="piecewise")

    rng = np.random.default_rng(0)
    records = np.column_stack([
        rng.uniform(-1, 1, 50_000),
        rng.integers(0, 16, 50_000),
    ])
    for batch in np.array_split(records, 10):       # reports stream in
        server.ingest(client.report_batch(batch, rng))

    estimate = server.estimate(postprocess=Recalibrator(norm="l1"))
    print(estimate["screen_time"].scalar)           # private mean
    print(estimate.frequencies("top_app"))          # private frequencies

The pre-session entry points (:class:`MeanEstimationPipeline`,
:class:`FrequencyEstimationPipeline`, :class:`FrequencyEstimator`) remain
as thin facades over the session layer.
"""

from .analysis import (
    UtilityReport,
    compare_estimates,
    gaussian_fit,
    l2_deviation,
    max_abs_deviation,
    mse,
    true_mean,
)
from .exceptions import (
    AggregationError,
    CalibrationError,
    CheckpointCorruptError,
    ContractMismatchError,
    DimensionError,
    DistributionError,
    DomainError,
    ParameterError,
    PrivacyBudgetError,
    ReproError,
    StateDeltaError,
    StorageError,
    TelemetryError,
    TransportError,
    WireFormatError,
)
from .framework import (
    BerryEsseenBound,
    DeviationModel,
    MultivariateDeviationModel,
    ValueDistribution,
    benchmark_mechanisms,
    berry_esseen_bound,
    build_deviation_model,
    build_multivariate_model,
    convergence_curve,
)
from .freq_oracles import (
    FrequencyOracle,
    GeneralizedRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
    available_oracles,
    get_oracle,
)
from .hdr4me import (
    FrequencyEstimator,
    ProximalGradientSolver,
    RecalibrationResult,
    Recalibrator,
    recalibrate_l1,
    recalibrate_l2,
)
from .mechanisms import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    Mechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
    StaircaseMechanism,
    available_mechanisms,
    available_protocols,
    get_mechanism,
    get_protocol,
    register_mechanism,
    register_protocol,
)
from .protocol import (
    Aggregator,
    BudgetPlan,
    Client,
    FrequencyEstimationPipeline,
    MeanEstimationPipeline,
)
from .session import (
    AttributeEstimate,
    CategoricalAttribute,
    CollectionProtocol,
    LDPClient,
    LDPServer,
    NumericAttribute,
    ReportBatch,
    Schema,
    SessionEstimate,
    ShardedServer,
)
from .storage import (
    AutoCheckpointer,
    CheckpointStore,
    JsonFileStore,
    SegmentLogStore,
    SqliteStore,
    open_store,
)
from .telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeWeightedGauge,
    enable_json_logs,
)
from .transport import (
    AsyncReportSender,
    CollectionGateway,
    request_stats,
    serve_collection,
)
from .wire import (
    CollectionContract,
    decode_batch,
    encode_batch,
    read_fingerprint,
)
from .datasets import (
    available_datasets,
    cov19_like,
    gaussian_dataset,
    load_dataset,
    normalize,
    poisson_dataset,
    uniform_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "AggregationError",
    "Aggregator",
    "AsyncReportSender",
    "AttributeEstimate",
    "AutoCheckpointer",
    "BerryEsseenBound",
    "BudgetPlan",
    "CalibrationError",
    "CategoricalAttribute",
    "CheckpointCorruptError",
    "CheckpointStore",
    "Client",
    "CollectionContract",
    "CollectionGateway",
    "CollectionProtocol",
    "ContractMismatchError",
    "Counter",
    "DeviationModel",
    "DimensionError",
    "DistributionError",
    "DomainError",
    "DuchiMechanism",
    "FrequencyEstimationPipeline",
    "FrequencyEstimator",
    "FrequencyOracle",
    "Gauge",
    "GeneralizedRandomizedResponse",
    "Histogram",
    "HybridMechanism",
    "JsonFileStore",
    "LDPClient",
    "LDPServer",
    "LaplaceMechanism",
    "MeanEstimationPipeline",
    "Mechanism",
    "MetricsRegistry",
    "MultivariateDeviationModel",
    "NumericAttribute",
    "OptimizedLocalHashing",
    "OptimizedUnaryEncoding",
    "PiecewiseMechanism",
    "ParameterError",
    "PrivacyBudgetError",
    "ProximalGradientSolver",
    "RecalibrationResult",
    "Recalibrator",
    "ReportBatch",
    "ReproError",
    "Schema",
    "SegmentLogStore",
    "SessionEstimate",
    "ShardedServer",
    "SqliteStore",
    "SquareWaveMechanism",
    "StaircaseMechanism",
    "StateDeltaError",
    "StorageError",
    "TelemetryError",
    "TimeWeightedGauge",
    "TransportError",
    "UtilityReport",
    "ValueDistribution",
    "WireFormatError",
    "available_datasets",
    "available_mechanisms",
    "available_oracles",
    "available_protocols",
    "benchmark_mechanisms",
    "berry_esseen_bound",
    "build_deviation_model",
    "build_multivariate_model",
    "compare_estimates",
    "convergence_curve",
    "cov19_like",
    "decode_batch",
    "enable_json_logs",
    "encode_batch",
    "gaussian_dataset",
    "gaussian_fit",
    "get_mechanism",
    "get_oracle",
    "get_protocol",
    "l2_deviation",
    "load_dataset",
    "max_abs_deviation",
    "mse",
    "normalize",
    "open_store",
    "poisson_dataset",
    "read_fingerprint",
    "recalibrate_l1",
    "recalibrate_l2",
    "register_mechanism",
    "register_protocol",
    "request_stats",
    "serve_collection",
    "true_mean",
    "uniform_dataset",
    "__version__",
]
