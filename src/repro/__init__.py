"""repro — reproduction of "Utility Analysis and Enhancement of LDP
Mechanisms in High-Dimensional Space" (Duan, Ye, Hu; ICDE 2022).

The library has three layers:

1. **Substrates** — :mod:`repro.mechanisms` (six LDP mechanisms),
   :mod:`repro.protocol` (the sampling/aggregation protocol),
   :mod:`repro.datasets` (Section VI data generators) and
   :mod:`repro.analysis` (utility metrics and density diagnostics).
2. **The paper's contributions** — :mod:`repro.framework` (the Section IV
   analytical utility framework: Lemmas 2–3, Theorems 1–2, Table II
   benchmarking) and :mod:`repro.hdr4me` (the Section V HDR4ME
   re-calibration protocol with L1/L2 regularization and the frequency
   extension).
3. **Reproduction harness** — :mod:`repro.experiments` (one driver per
   table/figure plus a CLI).

Quickstart::

    import numpy as np
    from repro import (
        MeanEstimationPipeline, Recalibrator, get_mechanism,
        gaussian_dataset, true_mean, mse,
    )

    data = gaussian_dataset(users=20_000, dimensions=100, rng=0)
    pipeline = MeanEstimationPipeline(get_mechanism("piecewise"),
                                      epsilon=0.5, dimensions=100)
    result = pipeline.run(data, rng=1)
    model = pipeline.deviation_model(users=result.users, data=data)
    enhanced = Recalibrator(norm="l1").recalibrate(result.theta_hat, model)
    print(mse(result.theta_hat, true_mean(data)),
          mse(enhanced.theta_star, true_mean(data)))
"""

from .analysis import (
    UtilityReport,
    compare_estimates,
    gaussian_fit,
    l2_deviation,
    max_abs_deviation,
    mse,
    true_mean,
)
from .exceptions import (
    AggregationError,
    CalibrationError,
    DimensionError,
    DistributionError,
    DomainError,
    PrivacyBudgetError,
    ReproError,
)
from .framework import (
    BerryEsseenBound,
    DeviationModel,
    MultivariateDeviationModel,
    ValueDistribution,
    benchmark_mechanisms,
    berry_esseen_bound,
    build_deviation_model,
    build_multivariate_model,
    convergence_curve,
)
from .hdr4me import (
    FrequencyEstimator,
    ProximalGradientSolver,
    RecalibrationResult,
    Recalibrator,
    recalibrate_l1,
    recalibrate_l2,
)
from .mechanisms import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    Mechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
    StaircaseMechanism,
    available_mechanisms,
    get_mechanism,
    register_mechanism,
)
from .protocol import (
    Aggregator,
    BudgetPlan,
    Client,
    FrequencyEstimationPipeline,
    MeanEstimationPipeline,
)
from .datasets import (
    available_datasets,
    cov19_like,
    gaussian_dataset,
    load_dataset,
    normalize,
    poisson_dataset,
    uniform_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "AggregationError",
    "Aggregator",
    "BerryEsseenBound",
    "BudgetPlan",
    "CalibrationError",
    "Client",
    "DeviationModel",
    "DimensionError",
    "DistributionError",
    "DomainError",
    "DuchiMechanism",
    "FrequencyEstimationPipeline",
    "FrequencyEstimator",
    "HybridMechanism",
    "LaplaceMechanism",
    "MeanEstimationPipeline",
    "Mechanism",
    "MultivariateDeviationModel",
    "PiecewiseMechanism",
    "PrivacyBudgetError",
    "ProximalGradientSolver",
    "RecalibrationResult",
    "Recalibrator",
    "ReproError",
    "SquareWaveMechanism",
    "StaircaseMechanism",
    "UtilityReport",
    "ValueDistribution",
    "available_datasets",
    "available_mechanisms",
    "benchmark_mechanisms",
    "berry_esseen_bound",
    "build_deviation_model",
    "build_multivariate_model",
    "compare_estimates",
    "convergence_curve",
    "cov19_like",
    "gaussian_dataset",
    "gaussian_fit",
    "get_mechanism",
    "l2_deviation",
    "load_dataset",
    "max_abs_deviation",
    "mse",
    "normalize",
    "poisson_dataset",
    "recalibrate_l1",
    "recalibrate_l2",
    "register_mechanism",
    "true_mean",
    "uniform_dataset",
    "__version__",
]
