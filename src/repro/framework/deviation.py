"""Per-dimension Gaussian deviation models (Lemmas 2 and 3).

The heart of the paper's analytical framework: for one dimension with ``r``
reports, the deviation between the aggregated estimate and the true mean is
asymptotically Gaussian,

* ``Bound(M) = 0`` (Lemma 2):  ``θ̂ − θ̄ ~ N(E[N], Var[N] / r)`` — the
  population plays no role because additive noise has value-independent
  moments;
* ``Bound(M) = 1`` (Lemma 3):  ``θ̂ − θ̄ ~ N(E_t[δ(t)], E_t[Var(t*|t)] / r)``
  — the moments are averaged over the population value distribution.

:func:`build_deviation_model` dispatches on the mechanism's ``bounded``
flag and returns a :class:`DeviationModel`, which knows its pdf/cdf, the
probability of staying inside a supremum ``ξ`` (the Table II quantity), and
high-confidence envelopes ``|δ| + z·σ`` used by HDR4ME's λ* selection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats

from ..exceptions import DistributionError, ParameterError
from ..mechanisms.base import Mechanism, validate_epsilon
from .population import ValueDistribution


@dataclass(frozen=True)
class DeviationModel:
    """Gaussian model ``θ̂_j − θ̄_j ~ N(delta, sigma²)`` for one dimension.

    Attributes
    ----------
    delta:
        Mean of the deviation (the aggregate bias ``E_t[δ(t)]``; zero for
        unbiased mechanisms).
    sigma:
        Standard deviation of the deviation (``√(E_t[Var(t*|t)] / r)``).
    reports:
        Number of reports ``r`` the model was built for.
    epsilon:
        Per-dimension privacy budget used.
    mechanism_name:
        Registry name of the mechanism, for display purposes.
    """

    delta: float
    sigma: float
    reports: int
    epsilon: float
    mechanism_name: str = "unknown"

    def __post_init__(self) -> None:
        if self.sigma <= 0.0 or not math.isfinite(self.sigma):
            raise DistributionError("sigma must be positive, got %g" % self.sigma)

    # -------------------------------------------------------------- density

    def pdf(self, deviation: np.ndarray) -> np.ndarray:
        """Gaussian density of the deviation (Lemma 2 / Lemma 3 form)."""
        x = np.asarray(deviation, dtype=np.float64)
        z = (x - self.delta) / self.sigma
        return np.exp(-0.5 * z * z) / (math.sqrt(2.0 * math.pi) * self.sigma)

    def cdf(self, deviation: np.ndarray) -> np.ndarray:
        """Gaussian cdf of the deviation."""
        x = np.asarray(deviation, dtype=np.float64)
        return stats.norm.cdf(x, loc=self.delta, scale=self.sigma)

    def interval_probability(self, low: float, high: float) -> float:
        """``P(low ≤ θ̂ − θ̄ ≤ high)``."""
        if high < low:
            raise ParameterError("empty interval: [%g, %g]" % (low, high))
        return float(self.cdf(np.float64(high)) - self.cdf(np.float64(low)))

    def supremum_probability(self, xi: float) -> float:
        """``P(|θ̂ − θ̄| ≤ ξ)`` — the per-dimension Table II quantity."""
        if xi < 0:
            raise ParameterError("supremum must be non-negative, got %g" % xi)
        return self.interval_probability(-xi, xi)

    def exceedance_probability(self, threshold: float) -> float:
        """``P(|θ̂ − θ̄| > threshold)`` (Lemma 4/5 threshold events)."""
        return 1.0 - self.supremum_probability(threshold)

    def envelope(self, confidence: float = 0.9973) -> float:
        """High-confidence bound on ``|θ̂ − θ̄|`` used as the "sup".

        Returns ``|δ| + z·σ`` where ``z`` is the two-sided Gaussian
        quantile for ``confidence`` (default ≈ 3σ). This is the practical
        reading of the paper's ``sup|θ̂_j − θ̄_j|``, which is infinite for
        a literal Gaussian.
        """
        if not 0.0 < confidence < 1.0:
            raise ParameterError("confidence must lie in (0, 1), got %g" % confidence)
        z = stats.norm.ppf(0.5 + confidence / 2.0)
        return abs(self.delta) + z * self.sigma

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw deviations from the Gaussian model (for simulation studies)."""
        return rng.normal(self.delta, self.sigma, size=size)


def build_deviation_model(
    mechanism: Mechanism,
    epsilon: float,
    reports: int,
    population: Optional[ValueDistribution] = None,
) -> DeviationModel:
    """Build the Lemma 2 / Lemma 3 deviation model for one dimension.

    Parameters
    ----------
    mechanism:
        The LDP mechanism in use.
    epsilon:
        *Per-dimension* privacy budget (``ε/m`` in the paper).
    reports:
        Expected number of reports ``r = n·m/d`` in this dimension.
    population:
        Distribution of original values; required when the mechanism is
        bounded (Lemma 3), ignored for unbounded mechanisms (Lemma 2).

    Returns
    -------
    DeviationModel
        The asymptotic Gaussian ``N(E[δ], E[Var]/r)``.
    """
    eps = validate_epsilon(epsilon)
    if reports < 1:
        raise ParameterError("reports must be >= 1, got %d" % reports)

    if mechanism.bounded:
        if population is None:
            raise DistributionError(
                "mechanism %r is bounded: Lemma 3 needs the population value "
                "distribution" % mechanism.name
            )
        delta = population.expect(lambda v: mechanism.conditional_bias(v, eps))
        variance = population.expect(
            lambda v: mechanism.conditional_variance(v, eps)
        )
    else:
        # Lemma 2: moments are value-independent; probe at mid-domain.
        lo, hi = mechanism.input_domain
        probe = np.array([0.5 * (lo + hi)])
        delta = float(mechanism.conditional_bias(probe, eps)[0])
        variance = float(mechanism.conditional_variance(probe, eps)[0])

    return DeviationModel(
        delta=float(delta),
        sigma=math.sqrt(variance / reports),
        reports=int(reports),
        epsilon=eps,
        mechanism_name=mechanism.name,
    )
