"""Benchmarking LDP mechanisms analytically (Section IV-B/IV-C, Table II).

Given a tolerated supremum ``ξ``, the best mechanism is the one whose
deviation stays inside ``[−ξ, ξ]`` with the highest probability — a
quantity the framework computes in closed form, *without running any
experiment*. :func:`benchmark_mechanisms` evaluates a set of mechanisms
over a grid of suprema and returns a small result table;
:func:`repro.experiments.case_study` uses it to regenerate Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import DimensionError
from ..mechanisms.base import Mechanism
from .deviation import DeviationModel, build_deviation_model
from .population import ValueDistribution


@dataclass(frozen=True)
class BenchmarkRow:
    """Probabilities for one mechanism across the supremum grid."""

    mechanism: str
    model: DeviationModel
    suprema: np.ndarray
    probabilities: np.ndarray

    def best_at(self, xi: float) -> float:
        """Probability of holding supremum ``xi`` (interpolating the grid)."""
        return float(np.interp(xi, self.suprema, self.probabilities))


@dataclass(frozen=True)
class BenchmarkTable:
    """Collection of :class:`BenchmarkRow`, one per mechanism."""

    suprema: np.ndarray
    rows: List[BenchmarkRow] = field(default_factory=list)

    def winner_at(self, xi: float) -> str:
        """Name of the mechanism with the highest probability at ``xi``."""
        best = max(self.rows, key=lambda row: row.best_at(xi))
        return best.mechanism

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view (mechanism → probabilities), handy for printing."""
        return {row.mechanism: [float(p) for p in row.probabilities] for row in self.rows}

    def format(self, float_fmt: str = "%.3g") -> str:
        """Render the table in the paper's Table II layout."""
        header = ["xi"] + [float_fmt % xi for xi in self.suprema]
        lines = ["\t".join(header)]
        for row in self.rows:
            cells = [row.mechanism] + [float_fmt % p for p in row.probabilities]
            lines.append("\t".join(cells))
        return "\n".join(lines)


def benchmark_mechanisms(
    mechanisms: Sequence[Mechanism],
    epsilon_per_dim: float,
    reports: int,
    suprema: Sequence[float],
    populations: Optional[Dict[str, ValueDistribution]] = None,
    default_population: Optional[ValueDistribution] = None,
) -> BenchmarkTable:
    """Benchmark ``mechanisms`` analytically on one dimension.

    Parameters
    ----------
    mechanisms:
        Mechanisms to compare.
    epsilon_per_dim:
        Budget per reported dimension (``ε/m``).
    reports:
        Reports per dimension (``r = n·m/d``).
    suprema:
        Grid of tolerated deviations ``ξ``.
    populations:
        Optional per-mechanism override of the value distribution, keyed by
        mechanism name. Mechanisms with different native input domains
        (e.g. the unit-interval square wave) need distributions expressed
        in their own domain.
    default_population:
        Distribution used when a mechanism has no override.
    """
    xi = np.asarray(list(suprema), dtype=np.float64)
    if xi.size == 0:
        raise DimensionError("need at least one supremum")
    rows: List[BenchmarkRow] = []
    for mechanism in mechanisms:
        pop = (populations or {}).get(mechanism.name, default_population)
        model = build_deviation_model(mechanism, epsilon_per_dim, reports, pop)
        probabilities = np.array(
            [model.supremum_probability(float(bound)) for bound in xi]
        )
        rows.append(
            BenchmarkRow(
                mechanism=mechanism.name,
                model=model,
                suprema=xi,
                probabilities=probabilities,
            )
        )
    return BenchmarkTable(suprema=xi, rows=rows)
