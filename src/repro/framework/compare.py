"""Pairwise mechanism comparison: where does the winner flip?

The Section IV-C case study's punchline is that the "better" mechanism
depends on the tolerated supremum ξ: Piecewise wins at small ξ
(unbiased), Square wave at large ξ (concentrated). This module
operationalizes that insight: given two per-dimension deviation models,
:func:`crossover_supremum` locates the ξ at which their supremum
probabilities cross, so a collector can decide directly from her
tolerance without scanning a grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import DistributionError
from .deviation import DeviationModel


@dataclass(frozen=True)
class CrossoverResult:
    """Outcome of a pairwise supremum-probability comparison.

    Attributes
    ----------
    crossover:
        The ξ where the two supremum probabilities are equal, or ``None``
        when one model dominates over the whole searched range.
    small_xi_winner / large_xi_winner:
        Mechanism names winning below / above the crossover (equal when
        there is no crossover).
    """

    crossover: Optional[float]
    small_xi_winner: str
    large_xi_winner: str


def crossover_supremum(
    model_a: DeviationModel,
    model_b: DeviationModel,
    xi_low: float = 1e-6,
    xi_high: Optional[float] = None,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> CrossoverResult:
    """Find the supremum ξ where two deviation models swap ranks.

    The difference ``P_a(|dev| ≤ ξ) − P_b(|dev| ≤ ξ)`` is continuous in
    ξ; the function brackets a sign change between ``xi_low`` and
    ``xi_high`` (default: ten standard deviations of the wider model,
    where both probabilities are ≈ 1) and bisects. If the sign never
    changes, one model dominates the range and ``crossover`` is ``None``.
    """
    if xi_low <= 0:
        raise DistributionError("xi_low must be positive, got %g" % xi_low)
    if xi_high is None:
        xi_high = 10.0 * max(
            abs(model_a.delta) + model_a.sigma,
            abs(model_b.delta) + model_b.sigma,
        )
    if xi_high <= xi_low:
        raise DistributionError(
            "xi_high (%g) must exceed xi_low (%g)" % (xi_high, xi_low)
        )

    def difference(xi: float) -> float:
        return model_a.supremum_probability(xi) - model_b.supremum_probability(xi)

    def winner(diff: float) -> str:
        if diff > tolerance:
            return model_a.mechanism_name
        if diff < -tolerance:
            return model_b.mechanism_name
        return "tie"

    def sign(diff: float) -> int:
        return 0 if abs(diff) <= tolerance else (1 if diff > 0 else -1)

    # Both probabilities saturate to 1 at large xi, so the endpoint signs
    # alone can hide an interior flip; scan a log-spaced grid first.
    grid = np.geomspace(xi_low, xi_high, num=256)
    diffs = [difference(float(xi)) for xi in grid]
    signs = [sign(d) for d in diffs]
    nonzero = [s for s in signs if s != 0]

    if not nonzero:
        return CrossoverResult(crossover=None, small_xi_winner="tie",
                               large_xi_winner="tie")

    flip_index = None
    previous_sign, previous_idx = None, None
    for idx, s in enumerate(signs):
        if s == 0:
            continue
        if previous_sign is not None and s != previous_sign:
            flip_index = (previous_idx, idx)
            break
        previous_sign, previous_idx = s, idx

    if flip_index is None:
        dominant_name = winner(diffs[signs.index(nonzero[0])])
        return CrossoverResult(
            crossover=None,
            small_xi_winner=dominant_name,
            large_xi_winner=dominant_name,
        )

    low = float(grid[flip_index[0]])
    high = float(grid[flip_index[1]])
    diff_low = diffs[flip_index[0]]
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        diff_mid = difference(mid)
        if abs(diff_mid) < tolerance or (high - low) < tolerance:
            break
        if diff_mid * diff_low > 0:
            low, diff_low = mid, diff_mid
        else:
            high = mid
    crossover = 0.5 * (low + high)
    return CrossoverResult(
        crossover=float(crossover),
        small_xi_winner=winner(diffs[flip_index[0]]),
        large_xi_winner=winner(diffs[flip_index[1]]),
    )
