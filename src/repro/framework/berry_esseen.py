"""Theorem 2: Berry–Esseen bound on the CLT approximation error.

The analytical framework is asymptotic; Theorem 2 quantifies how far the
true cdf of the deviation can be from the Gaussian approximation at a
finite number of reports ``r``. With the Korolev–Shevtsova constant the
bound is

    sup_x |F̄(x) − F̂(x)| ≤ 0.33554 · (ρ + 0.415 s³) / (s³ √r)

where ``s² = E[Var(t* − t)]`` is the per-report variance and
``ρ = E[|t* − t − δ|³]`` the per-report third absolute central moment
(both averaged over the population for bounded mechanisms). See DESIGN.md
§5 for how this reading reconciles the paper's ``r_j σ_j`` notation — the
paper's own worked Laplace example (≈1.57% at r = 1000) only evaluates
under it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import DistributionError, ParameterError
from ..mechanisms.base import Mechanism, validate_epsilon
from ..rng import RngLike
from .population import ValueDistribution

#: Korolev–Shevtsova absolute constant used by the paper.
BERRY_ESSEEN_CONSTANT = 0.33554

#: Companion constant multiplying the s³ term.
BERRY_ESSEEN_SECONDARY = 0.415


@dataclass(frozen=True)
class BerryEsseenBound:
    """Result of a Theorem 2 evaluation.

    Attributes
    ----------
    bound:
        The uniform cdf-distance bound.
    reports:
        Number of reports ``r`` the bound was evaluated at.
    per_report_std:
        ``s``, the standard deviation of one report's centred perturbation.
    third_moment:
        ``ρ``, the third absolute central moment of one report.
    """

    bound: float
    reports: int
    per_report_std: float
    third_moment: float

    def at_reports(self, reports: int) -> "BerryEsseenBound":
        """Re-evaluate the same moments at a different ``r`` (O(1/√r))."""
        if reports < 1:
            raise ParameterError("reports must be >= 1, got %d" % reports)
        scaled = self.bound * math.sqrt(self.reports / reports)
        return BerryEsseenBound(
            bound=scaled,
            reports=int(reports),
            per_report_std=self.per_report_std,
            third_moment=self.third_moment,
        )


def berry_esseen_bound(
    mechanism: Mechanism,
    epsilon: float,
    reports: int,
    population: Optional[ValueDistribution] = None,
    rng: RngLike = None,
    moment_samples: int = 200_000,
) -> BerryEsseenBound:
    """Evaluate the Theorem 2 bound for one dimension.

    Parameters
    ----------
    mechanism:
        LDP mechanism under analysis.
    epsilon:
        Per-dimension budget.
    reports:
        Number of reports ``r`` received in the dimension.
    population:
        Value distribution; required for bounded mechanisms whose moments
        are value-dependent, optional otherwise.
    rng, moment_samples:
        Passed to :meth:`Mechanism.abs_third_central_moment` for mechanisms
        without a closed-form third moment.
    """
    eps = validate_epsilon(epsilon)
    if reports < 1:
        raise ParameterError("reports must be >= 1, got %d" % reports)

    if mechanism.bounded and population is None:
        raise DistributionError(
            "mechanism %r is bounded; a population distribution is required"
            % mechanism.name
        )
    if population is None:
        lo, hi = mechanism.input_domain
        population = ValueDistribution.point_mass(0.5 * (lo + hi))

    variance = population.expect(
        lambda v: mechanism.conditional_variance(v, eps)
    )
    rho = population.expect(
        lambda v: mechanism.abs_third_central_moment(
            v, eps, rng=rng, samples=moment_samples
        )
    )
    s = math.sqrt(variance)
    bound = (
        BERRY_ESSEEN_CONSTANT
        * (rho + BERRY_ESSEEN_SECONDARY * s**3)
        / (s**3 * math.sqrt(reports))
    )
    return BerryEsseenBound(
        bound=float(bound),
        reports=int(reports),
        per_report_std=float(s),
        third_moment=float(rho),
    )


def convergence_curve(
    mechanism: Mechanism,
    epsilon: float,
    report_counts: Sequence[int],
    population: Optional[ValueDistribution] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Evaluate the Theorem 2 bound along a sweep of report counts.

    Returns an array of bounds aligned with ``report_counts``; the paper's
    claim is that these decay like ``1/√r``.
    """
    counts = [int(r) for r in report_counts]
    if not counts:
        return np.empty(0)
    base = berry_esseen_bound(mechanism, epsilon, counts[0], population, rng=rng)
    return np.array([base.at_reports(r).bound for r in counts])
