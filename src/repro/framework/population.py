"""Discrete population value distributions used by Lemma 3.

For *bounded* mechanisms the deviation model depends on the distribution of
the original data: Lemma 3 averages the conditional moments over the
distinct original values ``{v_z}`` with probabilities ``{p_z}``. This
module provides :class:`ValueDistribution`, the small immutable container
the framework uses for that purpose, together with constructors for the
common cases (empirical data columns, the paper's case-study grid, point
masses). Continuous data are handled the way the paper prescribes: "as
regards original data following continuous distribution, we discretize
them with sampling" — :meth:`ValueDistribution.from_data` bins a column
into a configurable number of representative values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DistributionError

#: Default number of bins when discretizing a continuous column.
DEFAULT_BINS = 64


@dataclass(frozen=True)
class ValueDistribution:
    """Discrete distribution of original values in one dimension.

    Attributes
    ----------
    values:
        Sorted array of distinct original values ``v_z``.
    probabilities:
        Matching probabilities ``p_z`` summing to one.
    """

    values: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64).ravel()
        probs = np.asarray(self.probabilities, dtype=np.float64).ravel()
        if values.size == 0:
            raise DistributionError("a value distribution needs at least one value")
        if values.shape != probs.shape:
            raise DistributionError(
                "values and probabilities must match: %d vs %d"
                % (values.size, probs.size)
            )
        if np.any(probs < 0.0):
            raise DistributionError("probabilities must be non-negative")
        total = float(probs.sum())
        if not np.isclose(total, 1.0, atol=1e-8):
            raise DistributionError("probabilities must sum to 1, got %g" % total)
        order = np.argsort(values)
        object.__setattr__(self, "values", values[order])
        object.__setattr__(self, "probabilities", probs[order] / total)

    # ---------------------------------------------------------- constructors

    @classmethod
    def from_data(
        cls, column: Sequence[float], bins: Optional[int] = DEFAULT_BINS
    ) -> "ValueDistribution":
        """Build the empirical distribution of a data column.

        Parameters
        ----------
        column:
            One dimension of the original dataset.
        bins:
            ``None`` keeps every distinct value (suitable for genuinely
            discrete columns); an integer bins the column into that many
            equal-width cells, each represented by its midpoint mass.
        """
        arr = np.asarray(column, dtype=np.float64).ravel()
        if arr.size == 0:
            raise DistributionError("cannot build a distribution from no data")
        if bins is None:
            values, counts = np.unique(arr, return_counts=True)
            return cls(values, counts / arr.size)
        counts, edges = np.histogram(arr, bins=int(bins))
        mids = 0.5 * (edges[:-1] + edges[1:])
        keep = counts > 0
        return cls(mids[keep], counts[keep] / arr.size)

    @classmethod
    def uniform_grid(
        cls, low: float, high: float, count: int
    ) -> "ValueDistribution":
        """Equally likely values on an inclusive grid (paper IV-C style)."""
        if count < 1:
            raise DistributionError("count must be >= 1, got %d" % count)
        values = np.linspace(low, high, count)
        return cls(values, np.full(count, 1.0 / count))

    @classmethod
    def point_mass(cls, value: float) -> "ValueDistribution":
        """Distribution concentrated on one value."""
        return cls(np.array([float(value)]), np.array([1.0]))

    @classmethod
    def case_study(cls) -> "ValueDistribution":
        """The paper's Section IV-C grid: {0.1, …, 1.0}, 10% each."""
        return cls.uniform_grid(0.1, 1.0, 10)

    # -------------------------------------------------------------- queries

    @property
    def support(self) -> Tuple[float, float]:
        """Smallest and largest value with positive probability."""
        return float(self.values[0]), float(self.values[-1])

    def mean(self) -> float:
        """Population mean ``Σ p_z v_z``."""
        return float(np.dot(self.probabilities, self.values))

    def variance(self) -> float:
        """Population variance."""
        mu = self.mean()
        return float(np.dot(self.probabilities, (self.values - mu) ** 2))

    def expect(self, fn: Callable[[np.ndarray], np.ndarray]) -> float:
        """Return ``E[fn(V)] = Σ p_z fn(v_z)`` for a vectorized ``fn``."""
        return float(np.dot(self.probabilities, fn(self.values)))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. values from the distribution."""
        return rng.choice(self.values, size=size, p=self.probabilities)

    def rescale(self, slope: float, offset: float) -> "ValueDistribution":
        """Return the distribution of ``slope · V + offset``."""
        if slope == 0:
            raise DistributionError("slope must be non-zero")
        return ValueDistribution(slope * self.values + offset, self.probabilities)

    def __len__(self) -> int:
        return int(self.values.size)
