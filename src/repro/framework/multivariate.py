"""The multivariate deviation model of Theorem 1.

Because each dimension is perturbed independently, the joint pdf of the
``d``-dimensional deviation ``θ̂ − θ̄`` factorizes into the per-dimension
Gaussians of Lemmas 2/3 (paper Eq. 12). :class:`MultivariateDeviationModel`
wraps a list of :class:`~repro.framework.deviation.DeviationModel` and
exposes the quantities the paper derives from the joint pdf:

* the pdf / log-pdf itself;
* the probability of the deviation staying inside a supremum box ``S``
  (used to benchmark mechanisms, Section IV-B end);
* the probability bounds that parameterize Theorems 3 and 4 (how likely
  every dimension's deviation exceeds the L1/L2 improvement thresholds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..exceptions import DimensionError, ParameterError
from ..mechanisms.base import Mechanism
from .deviation import DeviationModel, build_deviation_model
from .population import ValueDistribution

Suprema = Union[float, Sequence[float], np.ndarray]


@dataclass(frozen=True)
class MultivariateDeviationModel:
    """Product-form Gaussian model of the ``d``-dimensional deviation."""

    dimensions: List[DeviationModel]

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise DimensionError("need at least one dimension")

    # ------------------------------------------------------------ properties

    @property
    def ndim(self) -> int:
        """Number of modelled dimensions ``d``."""
        return len(self.dimensions)

    @property
    def deltas(self) -> np.ndarray:
        """Vector of per-dimension deviation means ``δ_j``."""
        return np.array([m.delta for m in self.dimensions])

    @property
    def sigmas(self) -> np.ndarray:
        """Vector of per-dimension deviation standard deviations ``σ_j``."""
        return np.array([m.sigma for m in self.dimensions])

    # --------------------------------------------------------------- density

    def logpdf(self, deviation: np.ndarray) -> float:
        """Log of the Theorem 1 joint pdf at a deviation vector."""
        dev = self._check_vector(deviation)
        z = (dev - self.deltas) / self.sigmas
        return float(
            -0.5 * np.sum(z * z)
            - np.sum(np.log(self.sigmas))
            - 0.5 * self.ndim * math.log(2.0 * math.pi)
        )

    def pdf(self, deviation: np.ndarray) -> float:
        """Theorem 1 joint pdf (Eq. 12) at a deviation vector."""
        return math.exp(self.logpdf(deviation))

    # ---------------------------------------------------------- probabilities

    def box_probability(self, suprema: Suprema) -> float:
        """``P(∀j: |θ̂_j − θ̄_j| ≤ ξ_j)`` — the integral of Eq. 12 over S.

        ``suprema`` may be a scalar (the same ξ in every dimension) or a
        length-``d`` vector. Independence turns the box integral into a
        product of one-dimensional Gaussian probabilities, so the result
        is exact rather than a numeric cubature.
        """
        xi = self._broadcast_suprema(suprema)
        log_total = 0.0
        for model, bound in zip(self.dimensions, xi):
            p = model.supremum_probability(float(bound))
            if p <= 0.0:
                return 0.0
            log_total += math.log(p)
        return math.exp(log_total)

    def any_outside_probability(self, suprema: Suprema) -> float:
        """``P(∃j: |θ̂_j − θ̄_j| > ξ_j) = 1 − box_probability``.

        This is the paper's ``1 − ∫_S f`` lower bound that parameterizes
        Theorems 3 and 4.
        """
        return 1.0 - self.box_probability(suprema)

    def all_outside_probability(self, suprema: Suprema) -> float:
        """``P(∀j: |θ̂_j − θ̄_j| > ξ_j)`` under independence.

        The exact probability of *every* dimension exceeding its threshold
        (the event under which Lemmas 4/5 guarantee improvement in every
        dimension simultaneously); tighter than the paper's ``1 − ∫_S f``
        statement, which we also expose as
        :meth:`any_outside_probability`.
        """
        xi = self._broadcast_suprema(suprema)
        log_total = 0.0
        for model, bound in zip(self.dimensions, xi):
            p = model.exceedance_probability(float(bound))
            if p <= 0.0:
                return 0.0
            log_total += math.log(p)
        return math.exp(log_total)

    def expected_squared_l2(self) -> float:
        """``E‖θ̂ − θ̄‖₂² = Σ_j (δ_j² + σ_j²)`` — predicts ``d·MSE``."""
        return float(np.sum(self.deltas**2 + self.sigmas**2))

    def predicted_mse(self) -> float:
        """Framework prediction of the experimental MSE (Eq. 3)."""
        return self.expected_squared_l2() / self.ndim

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` deviation vectors, shape ``(size, d)``."""
        return rng.normal(
            self.deltas[None, :], self.sigmas[None, :], size=(size, self.ndim)
        )

    # -------------------------------------------------------------- helpers

    def _check_vector(self, deviation: np.ndarray) -> np.ndarray:
        dev = np.asarray(deviation, dtype=np.float64).ravel()
        if dev.size != self.ndim:
            raise DimensionError(
                "deviation vector has %d entries, model has %d dimensions"
                % (dev.size, self.ndim)
            )
        return dev

    def _broadcast_suprema(self, suprema: Suprema) -> np.ndarray:
        xi = np.asarray(suprema, dtype=np.float64).ravel()
        if xi.size == 1:
            xi = np.full(self.ndim, float(xi[0]))
        if xi.size != self.ndim:
            raise DimensionError(
                "suprema vector has %d entries, model has %d dimensions"
                % (xi.size, self.ndim)
            )
        if np.any(xi < 0):
            raise ParameterError("suprema must be non-negative")
        return xi


def build_multivariate_model(
    mechanism: Mechanism,
    epsilon_per_dim: float,
    reports: int,
    populations: Union[ValueDistribution, Sequence[ValueDistribution], None],
    ndim: Optional[int] = None,
) -> MultivariateDeviationModel:
    """Assemble the Theorem 1 model from per-dimension ingredients.

    Parameters
    ----------
    mechanism:
        The LDP mechanism under analysis.
    epsilon_per_dim:
        Budget allocated to each reported dimension (``ε/m``).
    reports:
        Expected reports per dimension (``n·m/d``).
    populations:
        One :class:`ValueDistribution` shared by every dimension, a
        sequence with one distribution per dimension, or ``None`` for
        unbounded mechanisms.
    ndim:
        Number of dimensions; required when ``populations`` is shared or
        ``None``, inferred from the sequence length otherwise.
    """
    if isinstance(populations, ValueDistribution) or populations is None:
        if ndim is None:
            raise DimensionError("ndim is required with a shared population")
        per_dim = [populations] * int(ndim)
    else:
        per_dim = list(populations)
        if ndim is not None and ndim != len(per_dim):
            raise DimensionError(
                "ndim=%d disagrees with %d populations" % (ndim, len(per_dim))
            )
    models = [
        build_deviation_model(mechanism, epsilon_per_dim, reports, pop)
        for pop in per_dim
    ]
    return MultivariateDeviationModel(models)
