"""Section IV: the analytical framework for high-dimensional LDP utility.

Public surface:

* :class:`ValueDistribution` — discrete population model (Lemma 3 input);
* :func:`build_deviation_model` / :class:`DeviationModel` — Lemmas 2 and 3;
* :func:`build_multivariate_model` / :class:`MultivariateDeviationModel`
  — Theorem 1 joint pdf and supremum-box probabilities;
* :func:`benchmark_mechanisms` — experiment-free mechanism comparison
  (Table II);
* :func:`berry_esseen_bound` / :func:`convergence_curve` — Theorem 2.
"""

from .compare import CrossoverResult, crossover_supremum
from .benchmark import BenchmarkRow, BenchmarkTable, benchmark_mechanisms
from .berry_esseen import (
    BERRY_ESSEEN_CONSTANT,
    BERRY_ESSEEN_SECONDARY,
    BerryEsseenBound,
    berry_esseen_bound,
    convergence_curve,
)
from .deviation import DeviationModel, build_deviation_model
from .multivariate import MultivariateDeviationModel, build_multivariate_model
from .population import DEFAULT_BINS, ValueDistribution

__all__ = [
    "BERRY_ESSEEN_CONSTANT",
    "BERRY_ESSEEN_SECONDARY",
    "BenchmarkRow",
    "BenchmarkTable",
    "BerryEsseenBound",
    "CrossoverResult",
    "DEFAULT_BINS",
    "DeviationModel",
    "MultivariateDeviationModel",
    "ValueDistribution",
    "benchmark_mechanisms",
    "berry_esseen_bound",
    "build_deviation_model",
    "build_multivariate_model",
    "convergence_curve",
    "crossover_supremum",
]
