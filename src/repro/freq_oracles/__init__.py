"""Categorical frequency oracles (Wang et al. 2017), HDR4ME-composable.

Three oracles — :class:`GeneralizedRandomizedResponse` (small domains),
:class:`OptimizedUnaryEncoding` and :class:`OptimizedLocalHashing`
(large domains) — behind one :class:`FrequencyOracle` interface whose
closed-form estimation variances feed directly into the paper's deviation
models, making the oracles re-calibratable with
:class:`repro.hdr4me.Recalibrator` exactly like the numeric mechanisms.
"""

from typing import List

from .base import FrequencyOracle
from .grr import GeneralizedRandomizedResponse
from .olh import OlhReports, OptimizedLocalHashing
from .oue import OptimizedUnaryEncoding

_ORACLES = {
    "grr": GeneralizedRandomizedResponse,
    "oue": OptimizedUnaryEncoding,
    "olh": OptimizedLocalHashing,
}


def get_oracle(name: str, epsilon: float, n_categories: int) -> FrequencyOracle:
    """Instantiate a frequency oracle by short name."""
    key = name.lower()
    try:
        cls = _ORACLES[key]
    except KeyError:
        raise KeyError(
            "unknown oracle %r; available: %s" % (name, ", ".join(sorted(_ORACLES)))
        ) from None
    return cls(epsilon, n_categories)


def available_oracles() -> List[str]:
    """Sorted names accepted by :func:`get_oracle`."""
    return sorted(_ORACLES)


__all__ = [
    "FrequencyOracle",
    "GeneralizedRandomizedResponse",
    "OlhReports",
    "OptimizedLocalHashing",
    "OptimizedUnaryEncoding",
    "available_oracles",
    "get_oracle",
]
