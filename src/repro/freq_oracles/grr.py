"""Generalized randomized response (GRR, a.k.a. direct encoding).

Each user reports her true category with probability
``p = e^ε / (e^ε + v − 1)`` and any specific other category with
probability ``q = 1 / (e^ε + v − 1)``. The per-category count is then a
Binomial whose success probability is ``P = f·p + (1 − f)·q``, giving the
unbiased estimator ``f̂ = (c/n − q) / (p − q)`` with variance
``P(1 − P) / (n (p − q)²)``.

GRR is optimal for small category counts and degrades linearly in ``v``
— the regime comparison with OUE/OLH is exercised in the
``bench_freq_oracles`` benchmark.
"""

from __future__ import annotations

import math

import numpy as np

from ..rng import RngLike
from .base import FrequencyOracle


class GeneralizedRandomizedResponse(FrequencyOracle):
    """ε-LDP direct encoding over ``v`` categories."""

    name = "grr"

    @property
    def p_true(self) -> float:
        """Probability of reporting the true category."""
        e_eps = math.exp(self.epsilon)
        return e_eps / (e_eps + self.n_categories - 1.0)

    @property
    def p_other(self) -> float:
        """Probability of reporting one specific wrong category."""
        e_eps = math.exp(self.epsilon)
        return 1.0 / (e_eps + self.n_categories - 1.0)

    def privatize(self, labels: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Return perturbed integer labels (same shape as ``labels``)."""
        arr = self._check_labels(labels)
        gen = self._rng(rng)
        keep = gen.random(arr.size) < self.p_true
        # A uniform *other* category: draw from v-1 and skip the truth.
        offset = gen.integers(1, self.n_categories, size=arr.size)
        lie = (arr + offset) % self.n_categories
        return np.where(keep, arr, lie)

    def estimate(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased frequency estimates from perturbed labels."""
        arr = self._check_labels(reports)
        counts = np.bincount(arr, minlength=self.n_categories)
        observed = counts / arr.size
        return (observed - self.p_other) / (self.p_true - self.p_other)

    def estimation_variance(self, frequency: float, users: int) -> float:
        """``Var[f̂] = P(1 − P) / (n (p − q)²)`` with plug-in ``f``."""
        f = min(max(frequency, 0.0), 1.0)
        p, q = self.p_true, self.p_other
        hit = f * p + (1.0 - f) * q
        return hit * (1.0 - hit) / (users * (p - q) ** 2)
