"""Optimized unary encoding (OUE).

The user one-hot-encodes her category and perturbs each bit
independently: the 1-bit survives with ``p = 1/2``, each 0-bit flips to 1
with ``q = 1 / (e^ε + 1)`` — the split Wang et al. show minimizes
estimation variance among unary encodings. The per-category estimator is
``f̂ = (c/n − q) / (p − q)`` with variance
``P(1 − P) / (n (p − q)²)``, ``P = f·p + (1 − f)·q``, which approaches
the well-known ``4 e^ε / (n (e^ε − 1)²)`` at small ``f``.
"""

from __future__ import annotations

import math

import numpy as np

from ..rng import RngLike
from .base import FrequencyOracle


class OptimizedUnaryEncoding(FrequencyOracle):
    """ε-LDP optimized unary encoding over ``v`` categories."""

    name = "oue"

    #: Survival probability of the true-category bit.
    p_keep = 0.5

    @property
    def p_flip(self) -> float:
        """Probability a zero bit reports as one."""
        return 1.0 / (math.exp(self.epsilon) + 1.0)

    def privatize(self, labels: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Return an ``(n, v)`` 0/1 report matrix."""
        arr = self._check_labels(labels)
        gen = self._rng(rng)
        noise = gen.random((arr.size, self.n_categories))
        reports = (noise < self.p_flip).astype(np.float64)
        rows = np.arange(arr.size)
        reports[rows, arr] = (gen.random(arr.size) < self.p_keep).astype(
            np.float64
        )
        return reports

    def estimate(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased frequency estimates from the bit matrix."""
        matrix = np.asarray(reports, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_categories:
            from ..exceptions import DimensionError

            raise DimensionError(
                "expected (n, %d) report matrix, got %s"
                % (self.n_categories, matrix.shape)
            )
        observed = matrix.mean(axis=0)
        return (observed - self.p_flip) / (self.p_keep - self.p_flip)

    def estimation_variance(self, frequency: float, users: int) -> float:
        """``Var[f̂] = P(1 − P) / (n (p − q)²)`` with plug-in ``f``."""
        f = min(max(frequency, 0.0), 1.0)
        p, q = self.p_keep, self.p_flip
        hit = f * p + (1.0 - f) * q
        return hit * (1.0 - hit) / (users * (p - q) ** 2)
