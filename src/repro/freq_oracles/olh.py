"""Optimized local hashing (OLH).

Each user draws a random hash seed, hashes her category into
``g = ⌈e^ε⌉ + 1`` buckets, and runs GRR over the *buckets* with
``p = e^ε / (e^ε + g − 1)``. The collector counts, for each candidate
category ``j``, how many users' reported bucket equals ``H(seed, j)``;
the unbiased estimator is ``f̂ = (c/n − 1/g) / (p − 1/g)``.

OLH matches OUE's variance ``4 e^ε / (n (e^ε − 1)²)`` while keeping the
report a single integer — the standard choice for very large domains.
Hashing uses a 2-universal multiply-shift family over a Mersenne prime,
vectorized over users × categories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import DimensionError
from ..rng import RngLike
from .base import FrequencyOracle

#: Seed range for the per-user hash keys.
_PRIME = (1 << 61) - 1

_MIX1 = np.uint64(0x9E3779B97F4A7C15)
_MIX2 = np.uint64(0xBF58476D1CE4E5B9)
_MIX3 = np.uint64(0x94D049BB133111EB)


def _hash_buckets(seeds: np.ndarray, items: np.ndarray, buckets: int) -> np.ndarray:
    """Keyed hash ``H(seed, item) -> [0, buckets)``, vectorized.

    A splitmix64-style finalizer keyed by the per-user ``(a, b)`` seed
    pair. Full avalanche matters here: a plain linear map ``(a·x + b)
    mod g`` degenerates when ``g`` shares factors with the item spacing
    (e.g. ``g`` a power of two collides every even pair with probability
    1/2), which inflates OLH's support counts and biases the estimator —
    the exact failure mode the mixing rounds below prevent.
    """
    a = seeds[..., 0].astype(np.uint64)
    b = seeds[..., 1].astype(np.uint64)
    with np.errstate(over="ignore"):
        z = a * _MIX1 + b + items.astype(np.uint64) * _MIX2
        z ^= z >> np.uint64(30)
        z *= _MIX2
        z ^= z >> np.uint64(27)
        z *= _MIX3
        z ^= z >> np.uint64(31)
    return (z % np.uint64(buckets)).astype(np.int64)


@dataclass(frozen=True)
class OlhReports:
    """Reports of an OLH round: per-user hash seeds and GRR'd buckets."""

    seeds: np.ndarray
    buckets: np.ndarray


class OptimizedLocalHashing(FrequencyOracle):
    """ε-LDP optimized local hashing over ``v`` categories."""

    name = "olh"

    def __init__(self, epsilon: float, n_categories: int) -> None:
        super().__init__(epsilon, n_categories)
        self.n_buckets = int(math.floor(math.exp(self.epsilon))) + 1

    @property
    def p_true(self) -> float:
        """GRR keep-probability over the hash buckets."""
        e_eps = math.exp(self.epsilon)
        return e_eps / (e_eps + self.n_buckets - 1.0)

    def privatize(self, labels: np.ndarray, rng: RngLike = None) -> OlhReports:
        """Return per-user ``(seed, bucket)`` reports."""
        arr = self._check_labels(labels)
        gen = self._rng(rng)
        seeds = np.column_stack(
            [
                gen.integers(1, 1 << 30, size=arr.size),
                gen.integers(0, _PRIME, size=arr.size),
            ]
        )
        true_buckets = _hash_buckets(seeds, arr, self.n_buckets)
        keep = gen.random(arr.size) < self.p_true
        offset = gen.integers(1, self.n_buckets, size=arr.size)
        lie = (true_buckets + offset) % self.n_buckets
        return OlhReports(seeds=seeds, buckets=np.where(keep, true_buckets, lie))

    def support_counts(self, reports: OlhReports, chunk: int = 4096) -> np.ndarray:
        """Per-category support counts ``Σ_i 1[H(seed_i, j) = bucket_i]``.

        The additive aggregation statistic of OLH: exact integers, so
        partial counts from report batches sum to the one-shot counts.
        """
        if not isinstance(reports, OlhReports):
            raise DimensionError("expected OlhReports")
        users = reports.buckets.size
        supports = np.zeros(self.n_categories, dtype=np.int64)
        categories = np.arange(self.n_categories, dtype=np.int64)
        for start in range(0, users, chunk):
            seeds = reports.seeds[start : start + chunk]
            observed = reports.buckets[start : start + chunk, None]
            # Broadcast seeds (k, 1, 2) against categories (1, v): the
            # hash evaluates elementwise over the (k, v) grid with the
            # identical uint64 arithmetic the flat repeat/tile layout
            # used, but without materializing k*v copies of the seed
            # and category vectors first.
            hashed = _hash_buckets(
                seeds[:, None, :], categories[None, :], self.n_buckets
            )
            supports += (hashed == observed).sum(axis=0)
        return supports

    def estimate(self, reports: OlhReports, chunk: int = 4096) -> np.ndarray:
        """Unbiased frequency estimates by support counting."""
        observed_rate = self.support_counts(reports, chunk) / reports.buckets.size
        q = 1.0 / self.n_buckets
        return (observed_rate - q) / (self.p_true - q)

    def estimation_variance(self, frequency: float, users: int) -> float:
        """``Var[f̂] = P(1 − P) / (n (p − 1/g)²)`` with plug-in ``f``."""
        f = min(max(frequency, 0.0), 1.0)
        p, q = self.p_true, 1.0 / self.n_buckets
        hit = f * p + (1.0 - f) * q
        return hit * (1.0 - hit) / (users * (p - q) ** 2)
