"""Frequency-oracle interface (Wang et al., USENIX Security 2017).

The paper's Section V-C reduces frequency estimation to mean estimation
via histogram encoding, citing Wang et al.'s protocol family. This
subpackage implements the three canonical *frequency oracles* from that
family — generalized randomized response (GRR), optimized unary encoding
(OUE) and optimized local hashing (OLH) — so the re-calibration protocol
can be compared against, and composed with, purpose-built categorical
mechanisms rather than only the generic numeric route.

A :class:`FrequencyOracle` exposes:

* :meth:`privatize` — user-side: perturb integer category labels into
  whatever report type the oracle uses;
* :meth:`estimate` — collector-side: unbiased frequency estimates from
  the reports;
* :meth:`estimation_variance` — the closed-form variance of one
  category's estimate, which is exactly what the paper's framework needs
  to build the Lemma-2-style Gaussian deviation model (the estimators
  are unbiased sums of i.i.d. per-user contributions);
* :meth:`deviation_model` — that Gaussian, ready for HDR4ME.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..exceptions import DimensionError, DomainError
from ..framework.deviation import DeviationModel
from ..framework.multivariate import MultivariateDeviationModel
from ..hdr4me.recalibrator import RecalibrationResult, Recalibrator
from ..mechanisms.base import validate_epsilon
from ..rng import RngLike, ensure_rng


class FrequencyOracle(abc.ABC):
    """Abstract ε-LDP frequency oracle over ``v`` categories."""

    #: Registry-style short name ("grr" / "oue" / "olh").
    name: str = "abstract"

    def __init__(self, epsilon: float, n_categories: int) -> None:
        self.epsilon = validate_epsilon(epsilon)
        if n_categories < 2:
            raise DimensionError(
                "need at least two categories, got %d" % n_categories
            )
        self.n_categories = int(n_categories)

    # ------------------------------------------------------------------ API

    @abc.abstractmethod
    def privatize(self, labels: np.ndarray, rng: RngLike = None):
        """Perturb integer labels into the oracle's report representation."""

    @abc.abstractmethod
    def estimate(self, reports) -> np.ndarray:
        """Unbiased per-category frequency estimates from reports."""

    @abc.abstractmethod
    def estimation_variance(self, frequency: float, users: int) -> float:
        """Variance of one category's estimate at true frequency ``f``."""

    # ------------------------------------------------------------- framework

    def deviation_model(
        self, users: int, frequencies: Optional[np.ndarray] = None
    ) -> MultivariateDeviationModel:
        """Per-category Gaussian deviation model of the estimator.

        Frequency-oracle estimators are unbiased averages of i.i.d.
        per-user contributions, so the CLT argument of the paper's
        Lemma 2 applies verbatim with ``δ = 0`` and the closed-form
        estimation variance.
        """
        if users < 1:
            raise DimensionError("users must be >= 1, got %d" % users)
        if frequencies is None:
            frequencies = np.full(self.n_categories, 1.0 / self.n_categories)
        freq = np.clip(np.asarray(frequencies, dtype=np.float64), 0.0, 1.0)
        if freq.size != self.n_categories:
            raise DimensionError(
                "frequencies has %d entries for %d categories"
                % (freq.size, self.n_categories)
            )
        models = [
            DeviationModel(
                delta=0.0,
                sigma=float(np.sqrt(self.estimation_variance(f, users))),
                reports=int(users),
                epsilon=self.epsilon,
                mechanism_name=self.name,
            )
            for f in freq
        ]
        return MultivariateDeviationModel(models)

    def estimate_recalibrated(
        self,
        reports,
        users: int,
        recalibrator: Recalibrator,
    ) -> RecalibrationResult:
        """Estimate then apply HDR4ME with a plug-in deviation model."""
        raw = self.estimate(reports)
        model = self.deviation_model(users, frequencies=raw)
        return recalibrator.recalibrate(raw, model)

    # --------------------------------------------------------------- helpers

    def _check_labels(self, labels: np.ndarray) -> np.ndarray:
        arr = np.asarray(labels)
        if arr.ndim != 1:
            raise DimensionError("labels must be one-dimensional")
        if arr.size == 0:
            raise DimensionError("labels must be non-empty")
        if arr.min() < 0 or arr.max() >= self.n_categories:
            raise DomainError(
                "labels must lie in [0, %d)" % self.n_categories
            )
        return arr.astype(np.int64)

    def _rng(self, rng: RngLike) -> np.random.Generator:
        return ensure_rng(rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(epsilon=%g, v=%d)" % (
            type(self).__name__,
            self.epsilon,
            self.n_categories,
        )
