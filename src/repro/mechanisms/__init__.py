"""LDP perturbation mechanisms: the substrate under the paper's framework.

Six mechanisms are shipped, covering both classes the paper's framework
distinguishes:

* unbounded (``Bound(M) = 0``): :class:`LaplaceMechanism`,
  :class:`StaircaseMechanism`;
* bounded (``Bound(M) = 1``): :class:`DuchiMechanism`,
  :class:`PiecewiseMechanism`, :class:`HybridMechanism`,
  :class:`SquareWaveMechanism` (native ``[0, 1]``; use
  :func:`repro.mechanisms.square_wave.standardized` or the registry's
  ``"square_wave"`` for ``[−1, 1]`` data).
"""

from .base import (
    AdditiveNoiseMechanism,
    AffineTransformedMechanism,
    Mechanism,
    STANDARD_DOMAIN,
    affine_mean_map,
    monte_carlo_moments,
    validate_epsilon,
    validate_values,
)
from .duchi import DuchiMechanism
from .hybrid import HybridMechanism
from .laplace import LaplaceMechanism
from .piecewise import PiecewiseMechanism
from .scdf import SCDFMechanism
from .registry import (
    available_mechanisms,
    available_protocols,
    get_mechanism,
    get_protocol,
    register_mechanism,
    register_protocol,
)
from .square_wave import SquareWaveMechanism, standardized as standardized_square_wave
from .staircase import StaircaseMechanism, optimal_gamma

__all__ = [
    "AdditiveNoiseMechanism",
    "affine_mean_map",
    "AffineTransformedMechanism",
    "DuchiMechanism",
    "HybridMechanism",
    "LaplaceMechanism",
    "Mechanism",
    "PiecewiseMechanism",
    "SCDFMechanism",
    "STANDARD_DOMAIN",
    "SquareWaveMechanism",
    "StaircaseMechanism",
    "available_mechanisms",
    "available_protocols",
    "get_mechanism",
    "get_protocol",
    "monte_carlo_moments",
    "optimal_gamma",
    "register_mechanism",
    "register_protocol",
    "standardized_square_wave",
    "validate_epsilon",
    "validate_values",
]
