"""Name-based registry of the LDP mechanisms shipped with the library.

Experiment configurations, the CLI, and the benchmark harness all refer to
mechanisms by short string names; this module is the single place those
names are resolved. Third-party mechanisms can be registered at runtime
with :func:`register_mechanism` and immediately participate in every
framework computation and experiment driver.

The module also hosts the **unified protocol registry** consumed by the
session API (:mod:`repro.session`): :func:`get_protocol` resolves *both*
numeric mechanism names (``"laplace"``, ``"piecewise"``, …) and the
categorical frequency-oracle names (``"grr"``, ``"oue"``, ``"olh"``)
through one lookup, returning a
:class:`~repro.session.adapters.CollectionProtocol` with the common
``privatize``/``aggregate``/``deviation_model`` surface. Mechanism names
are adapted lazily, so every mechanism registered with
:func:`register_mechanism` — including third-party ones — is immediately
resolvable as a protocol too.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import ParameterError
from .base import Mechanism
from .duchi import DuchiMechanism
from .hybrid import HybridMechanism
from .laplace import LaplaceMechanism
from .piecewise import PiecewiseMechanism
from .scdf import SCDFMechanism
from .square_wave import SquareWaveMechanism, standardized
from .staircase import StaircaseMechanism

MechanismFactory = Callable[[], Mechanism]

_REGISTRY: Dict[str, MechanismFactory] = {}

#: Names resolved by the unified protocol registry before mechanisms.
#: Reserved so a mechanism registration cannot be silently shadowed by
#: :func:`get_protocol` (which checks protocols first).
_RESERVED_PROTOCOL_NAMES = frozenset(("grr", "oue", "olh"))


def register_mechanism(name: str, factory: MechanismFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Parameters
    ----------
    name:
        Registry key (lower-case by convention).
    factory:
        Zero-argument callable returning a fresh :class:`Mechanism`.
    overwrite:
        Allow replacing an existing registration; off by default to catch
        accidental collisions.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ParameterError("mechanism %r is already registered" % name)
    if key in _PROTOCOLS or key in _RESERVED_PROTOCOL_NAMES:
        raise ParameterError(
            "name %r is taken by the unified protocol registry; a mechanism "
            "under it would be unreachable through get_protocol" % name
        )
    _REGISTRY[key] = factory


def get_mechanism(name: str) -> Mechanism:
    """Instantiate the mechanism registered under ``name``.

    Raises
    ------
    KeyError
        With the list of known names when ``name`` is unknown.
    """
    key = name.lower()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise KeyError(
            "unknown mechanism %r; available: %s"
            % (name, ", ".join(sorted(_REGISTRY)))
        ) from None
    return factory()


def available_mechanisms() -> List[str]:
    """Return the sorted list of registered mechanism names."""
    return sorted(_REGISTRY)


# --------------------------------------------------------------------------
# Unified protocol registry (mechanisms *and* frequency oracles)
# --------------------------------------------------------------------------

#: Factories for non-mechanism protocols (the frequency oracles, plus any
#: third-party registration). Mechanism names resolve through ``_REGISTRY``
#: and are wrapped on the fly, so they are never duplicated here.
_PROTOCOLS: Dict[str, Callable[[], object]] = {}


def register_protocol(
    name: str, factory: Callable[[], object], overwrite: bool = False
) -> None:
    """Register a :class:`CollectionProtocol` factory under ``name``.

    Parameters
    ----------
    name:
        Registry key (lower-case by convention). Must not shadow a
        registered mechanism name unless ``overwrite`` is set.
    factory:
        Zero-argument callable returning a fresh unbound protocol (an
        object with a ``bind(attribute, epsilon)`` method).
    overwrite:
        Allow replacing an existing registration.
    """
    key = name.lower()
    if not overwrite and (key in _PROTOCOLS or key in _REGISTRY):
        raise ParameterError("protocol %r is already registered" % name)
    _PROTOCOLS[key] = factory


def _bootstrap_protocols() -> None:
    """Import the session adapters so the oracle protocols self-register.

    Deferred to first use: :mod:`repro.session` imports this module, so a
    module-level import here would be circular.
    """
    from ..session import adapters  # noqa: F401  (import side effect)


def get_protocol(name: str):
    """Resolve ``name`` into a fresh unbound collection protocol.

    Accepts every mechanism name known to :func:`get_mechanism` (returning
    a :class:`~repro.session.adapters.MechanismProtocol` that serves
    numeric attributes directly and categorical attributes via histogram
    encoding) as well as the frequency-oracle names ``"grr"``, ``"oue"``
    and ``"olh"``.

    Raises
    ------
    KeyError
        With the list of known names when ``name`` is unknown.
    """
    _bootstrap_protocols()
    key = name.lower()
    if key in _PROTOCOLS:
        return _PROTOCOLS[key]()
    if key in _REGISTRY:
        from ..session.adapters import MechanismProtocol

        return MechanismProtocol(_REGISTRY[key](), name=key)
    raise KeyError(
        "unknown protocol %r; available: %s"
        % (name, ", ".join(available_protocols()))
    )


def available_protocols() -> List[str]:
    """Sorted names resolvable by :func:`get_protocol`."""
    _bootstrap_protocols()
    return sorted(set(_REGISTRY) | set(_PROTOCOLS))


def resolve_protocol_name(name: str) -> str:
    """Canonical (lower-case) registry name of a resolvable protocol.

    Protocol names travel on the wire and inside contract fingerprints
    (:mod:`repro.wire`), so decoders validate them against this registry
    before any payload is interpreted.

    Raises
    ------
    KeyError
        With the list of known names when ``name`` is unknown.
    """
    _bootstrap_protocols()
    key = str(name).lower()
    if key in _PROTOCOLS or key in _REGISTRY:
        return key
    raise KeyError(
        "unknown protocol %r; available: %s"
        % (name, ", ".join(available_protocols()))
    )


register_mechanism("laplace", LaplaceMechanism)
register_mechanism("staircase", StaircaseMechanism)
register_mechanism("scdf", SCDFMechanism)
register_mechanism("duchi", DuchiMechanism)
register_mechanism("piecewise", PiecewiseMechanism)
register_mechanism("hybrid", HybridMechanism)
# The registry exposes the [−1, 1]-standardized square wave; the native
# unit-interval variant is available as "square_wave_unit".
register_mechanism("square_wave", standardized)
register_mechanism("square_wave_unit", SquareWaveMechanism)
