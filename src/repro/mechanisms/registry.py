"""Name-based registry of the LDP mechanisms shipped with the library.

Experiment configurations, the CLI, and the benchmark harness all refer to
mechanisms by short string names; this module is the single place those
names are resolved. Third-party mechanisms can be registered at runtime
with :func:`register_mechanism` and immediately participate in every
framework computation and experiment driver.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Mechanism
from .duchi import DuchiMechanism
from .hybrid import HybridMechanism
from .laplace import LaplaceMechanism
from .piecewise import PiecewiseMechanism
from .scdf import SCDFMechanism
from .square_wave import SquareWaveMechanism, standardized
from .staircase import StaircaseMechanism

MechanismFactory = Callable[[], Mechanism]

_REGISTRY: Dict[str, MechanismFactory] = {}


def register_mechanism(name: str, factory: MechanismFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Parameters
    ----------
    name:
        Registry key (lower-case by convention).
    factory:
        Zero-argument callable returning a fresh :class:`Mechanism`.
    overwrite:
        Allow replacing an existing registration; off by default to catch
        accidental collisions.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError("mechanism %r is already registered" % name)
    _REGISTRY[key] = factory


def get_mechanism(name: str) -> Mechanism:
    """Instantiate the mechanism registered under ``name``.

    Raises
    ------
    KeyError
        With the list of known names when ``name`` is unknown.
    """
    key = name.lower()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise KeyError(
            "unknown mechanism %r; available: %s"
            % (name, ", ".join(sorted(_REGISTRY)))
        ) from None
    return factory()


def available_mechanisms() -> List[str]:
    """Return the sorted list of registered mechanism names."""
    return sorted(_REGISTRY)


register_mechanism("laplace", LaplaceMechanism)
register_mechanism("staircase", StaircaseMechanism)
register_mechanism("scdf", SCDFMechanism)
register_mechanism("duchi", DuchiMechanism)
register_mechanism("piecewise", PiecewiseMechanism)
register_mechanism("hybrid", HybridMechanism)
# The registry exposes the [−1, 1]-standardized square wave; the native
# unit-interval variant is available as "square_wave_unit".
register_mechanism("square_wave", standardized)
register_mechanism("square_wave_unit", SquareWaveMechanism)
