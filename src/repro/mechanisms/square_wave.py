"""Square-wave mechanism (Li et al., SIGMOD 2020) — bounded, biased.

Natively defined for ``t ∈ [0, 1]``: the perturbed value ``t* ∈ [−b, 1+b]``
is "near" ``t`` with high probability (paper Eq. 5)::

    b = (ε e^ε − e^ε + 1) / (2 e^ε (e^ε − 1 − ε))
    Pr(t*) = e^ε / (2b e^ε + 1)   if |t − t*| < b
    Pr(t*) = 1  / (2b e^ε + 1)    otherwise

Unlike Piecewise, averaging the raw outputs is *biased*; the paper derives
the conditional bias (Eq. 17) and variance (Eq. 18) and keeps the bias in
the deviation model (the −0.049 mean in the IV-C case study). For data in
the library-standard ``[−1, 1]`` wrap this class in
:class:`repro.mechanisms.base.AffineTransformedMechanism` (the registry's
``"square_wave"`` entry does this automatically via ``standardized()``).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..rng import RngLike, ensure_rng
from .base import (
    AffineTransformedMechanism,
    Mechanism,
    STANDARD_DOMAIN,
    validate_epsilon,
    validate_values,
)


class SquareWaveMechanism(Mechanism):
    """ε-LDP square-wave perturbation for values in ``[0, 1]``."""

    name = "square_wave_unit"
    bounded = True
    input_domain = (0.0, 1.0)

    @staticmethod
    def _b_exp(epsilon: float) -> float:
        """Return ``b(ε) · e^ε``, computed without overflow.

        Rewriting ``b = (ε e^ε − e^ε + 1) / (2 e^ε (e^ε − 1 − ε))`` as
        ``b e^ε = (ε − 1 + e^{−ε}) / (2 (1 − (1 + ε) e^{−ε}))`` keeps
        every intermediate finite for arbitrarily large ε (the limit is
        ``(ε − 1)/2``), which matters because the paper sweeps Square
        wave budgets up to 5000 and ``exp(ε)`` overflows past ε ≈ 709.
        """
        eps = validate_epsilon(epsilon)
        decay = math.exp(-eps)
        return (eps - 1.0 + decay) / (2.0 * (1.0 - (1.0 + eps) * decay))

    @classmethod
    def half_width(cls, epsilon: float) -> float:
        """Return the near-band half width ``b(ε)`` (→ 1/2 as ε → 0)."""
        eps = validate_epsilon(epsilon)
        # b = (b e^ε) · e^{−ε}; underflows gracefully to 0 for huge ε.
        return cls._b_exp(eps) * math.exp(-eps)

    def perturb(
        self, values: np.ndarray, epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = validate_values(values, self.input_domain)
        gen = ensure_rng(rng)
        b = self.half_width(eps)
        b_exp = self._b_exp(eps)
        prob_center = 2.0 * b_exp / (2.0 * b_exp + 1.0)

        in_center = gen.random(arr.shape) < prob_center
        center_draw = arr - b + gen.random(arr.shape) * 2.0 * b
        # Tail: uniform over [−b, t−b) ∪ (t+b, 1+b], total length exactly 1.
        tail_position = gen.random(arr.shape)
        tail_draw = np.where(
            tail_position < arr,
            -b + tail_position,
            b + tail_position,
        )
        return np.where(in_center, center_draw, tail_draw)

    def conditional_bias(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        """Paper Eq. 17: data-dependent bias of the raw output.

        Evaluated via ``b e^ε`` so large budgets don't overflow:
        ``2b(e^ε − 1) = 2(b e^ε − b)``.
        """
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        b = self.half_width(eps)
        b_exp = self._b_exp(eps)
        denom = 2.0 * b_exp + 1.0
        return (
            2.0 * (b_exp - b) * arr / denom
            + (1.0 + 2.0 * b) / (2.0 * denom)
            - arr
        )

    def conditional_variance(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        """Paper Eq. 18: conditional variance of the raw output."""
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        b = self.half_width(eps)
        denom = 2.0 * self._b_exp(eps) + 1.0
        delta = self.conditional_bias(arr, eps)
        return (
            b**2 / 3.0
            + (2.0 * b + 1.0) * (b + 1.0 - 3.0 * arr**2) / (3.0 * denom)
            - delta**2
            - 2.0 * delta * arr
        )

    def pdf(self, outputs: np.ndarray, values: np.ndarray, epsilon: float) -> np.ndarray:
        """Density ``Pr(t* | t)`` evaluated elementwise (paper Eq. 5).

        The in-band density ``e^ε / (2b e^ε + 1)`` is computed from
        ``b e^ε``; it overflows only when the density itself is genuinely
        unrepresentable (a near-point-mass at huge ε).
        """
        eps = validate_epsilon(epsilon)
        out = np.asarray(outputs, dtype=np.float64)
        arr = np.asarray(values, dtype=np.float64)
        b = self.half_width(eps)
        b_exp = self._b_exp(eps)
        denom = 2.0 * b_exp + 1.0
        in_band = b_exp / denom / b if b > 0 else math.inf
        density = np.where(np.abs(out - arr) < b, in_band, 1.0 / denom)
        inside = (out >= -b) & (out <= 1.0 + b)
        return np.where(inside, density, 0.0)

    def output_support(self, epsilon: float) -> Tuple[float, float]:
        b = self.half_width(epsilon)
        return (-b, 1.0 + b)


def standardized(domain: Tuple[float, float] = STANDARD_DOMAIN) -> Mechanism:
    """Return a square-wave mechanism accepting values in ``domain``.

    The native unit-interval mechanism is wrapped in an affine change of
    variables so it composes with the rest of the library, which assumes
    the standard ``[−1, 1]`` domain.
    """
    wrapped = AffineTransformedMechanism(SquareWaveMechanism(), domain)
    wrapped.name = "square_wave"
    return wrapped
