"""Staircase mechanism (Geng et al. 2015), an optimized unbounded mechanism.

The staircase distribution replaces the Laplace density's exponential decay
with a geometric mixture of uniform "steps" of width ``Δ`` (the
sensitivity). With the variance-optimal step-split parameter
``γ* = 1 / (1 + e^{ε/2})`` the mechanism strictly dominates Laplace in
noise variance for every ε while still satisfying pure ε-DP/LDP. The paper
cites it as the second member of the "unbounded" class alongside Laplace
and SCDF.

Density (for noise ``x``, writing ``b = e^{−ε}``)::

    f(x) = a(γ) · b^k   for |x| ∈ [(k − 1 + γ)Δ, (k + γ)Δ),  k ≥ 1
    f(x) = a(γ)         for |x| ∈ [0, γΔ)
    a(γ) = (1 − b) / (2Δ (γ + (1 − γ) b))

Sampling follows Geng et al.'s constructive algorithm: a sign, a geometric
step index, a Bernoulli choice between the two sub-intervals of a step, and
a uniform offset.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..exceptions import ParameterError
from ..rng import RngLike, ensure_rng
from .base import AdditiveNoiseMechanism, validate_epsilon


def optimal_gamma(epsilon: float) -> float:
    """Variance-optimal step split ``γ* = 1 / (1 + e^{ε/2})``."""
    eps = validate_epsilon(epsilon)
    return 1.0 / (1.0 + math.exp(eps / 2.0))


class StaircaseMechanism(AdditiveNoiseMechanism):
    """ε-LDP staircase-noise perturbation for values in ``[−1, 1]``.

    Parameters
    ----------
    sensitivity:
        Width ``Δ`` of each step; 2 for the standard domain.
    gamma:
        Step split in ``(0, 1)``; ``None`` (default) selects the
        variance-optimal ``γ*(ε)`` at perturbation time.
    """

    name = "staircase"
    bounded = False

    def __init__(self, sensitivity: float = 2.0, gamma: Optional[float] = None) -> None:
        if sensitivity <= 0:
            raise ParameterError("sensitivity must be positive, got %g" % sensitivity)
        if gamma is not None and not 0.0 < gamma < 1.0:
            raise ParameterError("gamma must lie in (0, 1), got %g" % gamma)
        self.sensitivity = float(sensitivity)
        self.gamma = gamma

    def _gamma(self, epsilon: float) -> float:
        return self.gamma if self.gamma is not None else optimal_gamma(epsilon)

    def sample_noise(
        self, size: Tuple[int, ...], epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        gen = ensure_rng(rng)
        gamma = self._gamma(eps)
        delta = self.sensitivity
        b = math.exp(-eps)

        sign = gen.choice((-1.0, 1.0), size=size)
        # Geometric number of whole steps skipped: P(G = k) = (1 − b) b^k.
        geometric = gen.geometric(p=1.0 - b, size=size) - 1
        uniform = gen.random(size=size)
        # Within a step, land in the left (width γΔ) or right ((1−γ)Δ)
        # sub-interval with odds γ : (1−γ)b.
        left = gen.random(size=size) < gamma / (gamma + (1.0 - gamma) * b)
        offset = np.where(
            left,
            gamma * uniform,
            gamma + (1.0 - gamma) * uniform,
        )
        return sign * (geometric + offset) * delta

    def noise_variance(self, epsilon: float) -> float:
        """Closed-form ``E[X²]`` of staircase noise (zero mean by symmetry).

        Derived by summing the per-step second moments of the geometric
        mixture; cross-validated against Monte-Carlo moments in the tests.
        """
        eps = validate_epsilon(epsilon)
        gamma = self._gamma(eps)
        delta = self.sensitivity
        b = math.exp(-eps)
        s0 = b / (1.0 - b)
        s1 = b / (1.0 - b) ** 2
        s2 = b * (1.0 + b) / (1.0 - b) ** 3
        amplitude = (1.0 - b) / (2.0 * delta * (gamma + (1.0 - gamma) * b))
        bracket = (
            gamma**3
            + 3.0 * s2
            + (6.0 * gamma - 3.0) * s1
            + (3.0 * gamma**2 - 3.0 * gamma + 1.0) * s0
        )
        return (2.0 * amplitude * delta**3 / 3.0) * bracket

    def abs_third_central_moment(
        self,
        values: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        samples: int = 200_000,
    ) -> np.ndarray:
        """Closed-form ``E|X|³`` via the same per-step geometric sums."""
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        gamma = self._gamma(eps)
        delta = self.sensitivity
        b = math.exp(-eps)
        s0 = b / (1.0 - b)
        s1 = b / (1.0 - b) ** 2
        s2 = b * (1.0 + b) / (1.0 - b) ** 3
        s3 = b * (1.0 + 4.0 * b + b * b) / (1.0 - b) ** 4
        amplitude = (1.0 - b) / (2.0 * delta * (gamma + (1.0 - gamma) * b))
        # Σ b^k [(k+γ)⁴ − (k−1+γ)⁴] expanded in powers of k.
        g = gamma
        bracket = (
            g**4
            + 4.0 * s3
            + (12.0 * g - 6.0) * s2
            + (12.0 * g**2 - 12.0 * g + 4.0) * s1
            + (4.0 * g**3 - 6.0 * g**2 + 4.0 * g - 1.0) * s0
        )
        rho = (2.0 * amplitude * delta**4 / 4.0) * bracket
        return np.full(arr.shape, rho)

    def pdf(self, noise: np.ndarray, epsilon: float) -> np.ndarray:
        """Density of the staircase noise at ``noise``."""
        eps = validate_epsilon(epsilon)
        gamma = self._gamma(eps)
        delta = self.sensitivity
        b = math.exp(-eps)
        amplitude = (1.0 - b) / (2.0 * delta * (gamma + (1.0 - gamma) * b))
        x = np.abs(np.asarray(noise, dtype=np.float64)) / delta
        # Number of completed steps at |x|: 0 on [0, γ), k on [k−1+γ, k+γ).
        steps = np.ceil(x - gamma).clip(min=0.0)
        return amplitude * b**steps
