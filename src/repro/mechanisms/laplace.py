"""Laplace mechanism (Dwork et al. 2006), the canonical unbounded mechanism.

For a value ``t ∈ [−1, 1]`` and per-dimension budget ``ε`` the mechanism
releases ``t* = t + Lap(2/ε)``: the sensitivity of a single dimension is the
domain width 2, so a Laplace scale of ``λ = 2/ε`` guarantees ε-LDP. The
noise has zero mean and variance ``2λ²`` so aggregation is unbiased and
Lemma 2 of the paper gives the deviation model directly.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..exceptions import ParameterError
from ..rng import RngLike, ensure_rng
from .base import AdditiveNoiseMechanism, validate_epsilon


class LaplaceMechanism(AdditiveNoiseMechanism):
    """ε-LDP Laplace perturbation for values in ``[−1, 1]``.

    Attributes
    ----------
    sensitivity:
        The ℓ1 sensitivity of one dimension; 2 for the standard domain.
    """

    name = "laplace"
    bounded = False

    def __init__(self, sensitivity: float = 2.0) -> None:
        if sensitivity <= 0:
            raise ParameterError("sensitivity must be positive, got %g" % sensitivity)
        self.sensitivity = float(sensitivity)

    def scale(self, epsilon: float) -> float:
        """Return the Laplace scale ``λ = sensitivity / ε``."""
        eps = validate_epsilon(epsilon)
        return self.sensitivity / eps

    def sample_noise(
        self, size: Tuple[int, ...], epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        gen = ensure_rng(rng)
        return gen.laplace(loc=0.0, scale=self.scale(epsilon), size=size)

    def noise_variance(self, epsilon: float) -> float:
        """``Var[Lap(λ)] = 2λ²``."""
        lam = self.scale(epsilon)
        return 2.0 * lam * lam

    def abs_third_central_moment(
        self,
        values: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        samples: int = 200_000,
    ) -> np.ndarray:
        """Closed form ``ρ = E|Lap(λ)|³ = 6λ³``.

        Note: the paper's worked example below Theorem 2 evaluates this
        moment as ``3λ³``; the correct third absolute moment of a Laplace
        variate is ``Γ(4)·λ³ = 6λ³``. We use the correct value and report
        both figures in EXPERIMENTS.md.
        """
        arr = np.asarray(values, dtype=np.float64)
        lam = self.scale(epsilon)
        return np.full(arr.shape, 6.0 * lam**3)

    def pdf(self, noise: np.ndarray, epsilon: float) -> np.ndarray:
        """Density of the additive noise at ``noise``."""
        lam = self.scale(epsilon)
        x = np.asarray(noise, dtype=np.float64)
        return np.exp(-np.abs(x) / lam) / (2.0 * lam)

    def output_support(self, epsilon: float) -> Tuple[float, float]:
        return (-math.inf, math.inf)
