"""Duchi et al.'s binary mechanism, the earliest bounded LDP mechanism.

For ``t ∈ [−1, 1]`` the output is one of the two extreme points ``±C`` with

    C = (e^ε + 1) / (e^ε − 1)
    Pr[t* = +C] = 1/2 + t (e^ε − 1) / (2 (e^ε + 1))

which yields an unbiased estimator (``E[t*] = t``) with conditional
variance ``C² − t²``. The paper cites it as the prototypical *bounded*
mechanism whose binary output Piecewise and Hybrid later improve upon.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..rng import RngLike, ensure_rng
from .base import Mechanism, validate_epsilon, validate_values


class DuchiMechanism(Mechanism):
    """ε-LDP binary perturbation for values in ``[−1, 1]``."""

    name = "duchi"
    bounded = True

    @staticmethod
    def magnitude(epsilon: float) -> float:
        """Return the output magnitude ``C = (e^ε + 1)/(e^ε − 1)``.

        Computed as ``1/tanh(ε/2)`` — identical algebraically and finite
        for arbitrarily large budgets.
        """
        eps = validate_epsilon(epsilon)
        return 1.0 / math.tanh(eps / 2.0)

    @staticmethod
    def _half_slope(epsilon: float) -> float:
        """Return ``(e^ε − 1)/(2(e^ε + 1)) = tanh(ε/2)/2`` (overflow-safe)."""
        return math.tanh(epsilon / 2.0) / 2.0

    def perturb(
        self, values: np.ndarray, epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = validate_values(values, self.input_domain)
        gen = ensure_rng(rng)
        big_c = self.magnitude(eps)
        prob_positive = 0.5 + arr * self._half_slope(eps)
        positive = gen.random(arr.shape) < prob_positive
        return np.where(positive, big_c, -big_c)

    def conditional_bias(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        return np.zeros(arr.shape)

    def conditional_variance(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        return self.magnitude(eps) ** 2 - arr**2

    def abs_third_central_moment(
        self,
        values: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        samples: int = 200_000,
    ) -> np.ndarray:
        """Exact two-point sum ``Σ p |±C − t|³`` (no sampling needed)."""
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        big_c = self.magnitude(eps)
        prob_positive = 0.5 + arr * self._half_slope(eps)
        return (
            prob_positive * np.abs(big_c - arr) ** 3
            + (1.0 - prob_positive) * np.abs(-big_c - arr) ** 3
        )

    def output_support(self, epsilon: float) -> Tuple[float, float]:
        big_c = self.magnitude(epsilon)
        return (-big_c, big_c)
