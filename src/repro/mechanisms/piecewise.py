"""Piecewise mechanism (Wang et al., ICDE 2019) — bounded, continuous output.

For a value ``t ∈ [−1, 1]`` and per-dimension budget ``ε`` the perturbed
value ``t*`` is drawn from a two-level piecewise-constant density on
``[−Q, Q]`` (paper Eq. 4)::

    Q    = (e^{ε/2} + 1) / (e^{ε/2} − 1)
    l(t) = (Q + 1)/2 · t − (Q − 1)/2
    r(t) = l(t) + Q − 1
    Pr(t*) = (e^ε − e^{ε/2}) / (2 e^{ε/2} + 2)   on [l(t), r(t)]
    Pr(t*) = (1 − e^{−ε/2}) / (2 e^{ε/2} + 2)    elsewhere in [−Q, Q]

The estimator is unbiased with conditional variance (paper Eq. 14, with the
known ``t`` → ``t²`` typo corrected; see DESIGN.md §5)::

    Var[t*|t] = t² / (e^{ε/2} − 1) + (e^{ε/2} + 3) / (3 (e^{ε/2} − 1)²)
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..rng import RngLike, ensure_rng
from .base import Mechanism, validate_epsilon, validate_values


class PiecewiseMechanism(Mechanism):
    """ε-LDP Piecewise perturbation for values in ``[−1, 1]``."""

    name = "piecewise"
    bounded = True

    @staticmethod
    def boundary(epsilon: float) -> float:
        """Return the output boundary ``Q = (e^{ε/2} + 1)/(e^{ε/2} − 1)``.

        Computed as ``1/tanh(ε/4)``, which is algebraically identical and
        stays finite for arbitrarily large budgets (``exp(ε/2)`` would
        overflow past ε ≈ 1418).
        """
        eps = validate_epsilon(epsilon)
        return 1.0 / math.tanh(eps / 4.0)

    @classmethod
    def center_interval(
        cls, values: np.ndarray, epsilon: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(l(t), r(t))``, the high-probability interval per value."""
        big_q = cls.boundary(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        left = (big_q + 1.0) / 2.0 * arr - (big_q - 1.0) / 2.0
        return left, left + big_q - 1.0

    def perturb(
        self, values: np.ndarray, epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = validate_values(values, self.input_domain)
        gen = ensure_rng(rng)
        big_q = self.boundary(eps)
        left, right = self.center_interval(arr, eps)
        # Total mass of the centre interval integrates to
        # e^{ε/2}/(e^{ε/2}+1) = 1/(1 + e^{−ε/2}) (overflow-safe form).
        prob_center = 1.0 / (1.0 + math.exp(-eps / 2.0))

        in_center = gen.random(arr.shape) < prob_center
        center_draw = left + gen.random(arr.shape) * (big_q - 1.0)
        # Tail: uniform over [−Q, l) ∪ (r, Q], total length Q + 1.
        tail_position = gen.random(arr.shape) * (big_q + 1.0)
        left_tail_len = left + big_q
        tail_draw = np.where(
            tail_position < left_tail_len,
            -big_q + tail_position,
            right + (tail_position - left_tail_len),
        )
        return np.where(in_center, center_draw, tail_draw)

    def conditional_bias(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        return np.zeros(arr.shape)

    def conditional_variance(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        # Overflow-safe evaluation via d = e^{−ε/2}:
        #   t²/(e^{ε/2} − 1)            = t² d / (1 − d)
        #   (e^{ε/2} + 3)/(3(e^{ε/2}−1)²) = d (1 + 3d) / (3 (1 − d)²)
        decay = math.exp(-eps / 2.0)
        one_minus = 1.0 - decay
        return (
            arr**2 * decay / one_minus
            + decay * (1.0 + 3.0 * decay) / (3.0 * one_minus**2)
        )

    def pdf(self, outputs: np.ndarray, values: np.ndarray, epsilon: float) -> np.ndarray:
        """Density ``Pr(t* | t)`` evaluated elementwise (paper Eq. 4)."""
        eps = validate_epsilon(epsilon)
        out = np.asarray(outputs, dtype=np.float64)
        big_q = self.boundary(eps)
        left, right = self.center_interval(values, eps)
        high = (math.exp(eps) - math.exp(eps / 2.0)) / (2.0 * math.exp(eps / 2.0) + 2.0)
        low = (1.0 - math.exp(-eps / 2.0)) / (2.0 * math.exp(eps / 2.0) + 2.0)
        density = np.where((out >= left) & (out <= right), high, low)
        return np.where(np.abs(out) <= big_q, density, 0.0)

    def output_support(self, epsilon: float) -> Tuple[float, float]:
        big_q = self.boundary(epsilon)
        return (-big_q, big_q)
