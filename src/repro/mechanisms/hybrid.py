"""Hybrid mechanism (Wang et al., ICDE 2019) — Piecewise/Duchi mixture.

The Hybrid mechanism tosses a coin: with probability ``α`` it runs the
Piecewise mechanism, otherwise the Duchi binary mechanism, both with the
full per-dimension budget ``ε``. Wang et al. show the worst-case variance
is minimized by

    α = 1 − e^{−ε/2}    if ε > ε* ≈ 0.61
    α = 0               otherwise (pure Duchi)

Both components are unbiased, so the mixture is unbiased and its
conditional variance is the mixture of conditional second moments::

    Var[t*|t] = α Var_PM[t*|t] + (1 − α) Var_Duchi[t*|t]

(the cross term vanishes because both conditional means equal ``t``).
The output support is the wider of the two components' supports, so the
mechanism is bounded.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..rng import RngLike, ensure_rng
from .base import Mechanism, validate_epsilon, validate_values
from .duchi import DuchiMechanism
from .piecewise import PiecewiseMechanism

#: Budget threshold below which the mixture degenerates to pure Duchi.
EPSILON_STAR = 0.61


class HybridMechanism(Mechanism):
    """ε-LDP Hybrid (Piecewise ⊕ Duchi) perturbation for ``[−1, 1]``."""

    name = "hybrid"
    bounded = True

    def __init__(self) -> None:
        self._piecewise = PiecewiseMechanism()
        self._duchi = DuchiMechanism()

    @staticmethod
    def mixing_probability(epsilon: float) -> float:
        """Return ``α``, the probability of using the Piecewise branch."""
        eps = validate_epsilon(epsilon)
        if eps <= EPSILON_STAR:
            return 0.0
        return 1.0 - math.exp(-eps / 2.0)

    def perturb(
        self, values: np.ndarray, epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = validate_values(values, self.input_domain)
        gen = ensure_rng(rng)
        alpha = self.mixing_probability(eps)
        if alpha == 0.0:
            return self._duchi.perturb(arr, eps, gen)
        use_piecewise = gen.random(arr.shape) < alpha
        piecewise_draw = self._piecewise.perturb(arr, eps, gen)
        duchi_draw = self._duchi.perturb(arr, eps, gen)
        return np.where(use_piecewise, piecewise_draw, duchi_draw)

    def conditional_bias(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        return np.zeros(arr.shape)

    def conditional_variance(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        alpha = self.mixing_probability(eps)
        return alpha * self._piecewise.conditional_variance(
            arr, eps
        ) + (1.0 - alpha) * self._duchi.conditional_variance(arr, eps)

    def abs_third_central_moment(
        self,
        values: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        samples: int = 200_000,
    ) -> np.ndarray:
        """Mixture of the component moments (both centred at ``t``)."""
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        alpha = self.mixing_probability(eps)
        duchi_rho = self._duchi.abs_third_central_moment(arr, eps)
        if alpha == 0.0:
            return duchi_rho
        piecewise_rho = self._piecewise.abs_third_central_moment(
            arr, eps, rng=rng, samples=samples
        )
        return alpha * piecewise_rho + (1.0 - alpha) * duchi_rho

    def output_support(self, epsilon: float) -> Tuple[float, float]:
        eps = validate_epsilon(epsilon)
        if self.mixing_probability(eps) == 0.0:
            return self._duchi.output_support(eps)
        low = min(
            self._piecewise.output_support(eps)[0], self._duchi.output_support(eps)[0]
        )
        high = max(
            self._piecewise.output_support(eps)[1], self._duchi.output_support(eps)[1]
        )
        return (low, high)
