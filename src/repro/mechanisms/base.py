"""Common interface for one-dimensional LDP perturbation mechanisms.

The paper's analytical framework (Section IV-B) generalizes an LDP mechanism
``M`` by four ingredients, all of which are captured by the
:class:`Mechanism` abstract base class:

* ``Bound(M)`` — whether the perturbed output lives in a finite interval
  (:attr:`Mechanism.bounded`), which decides whether Lemma 2 or Lemma 3
  applies;
* the perturbation itself (:meth:`Mechanism.perturb`), vectorized over a
  numpy array of original values, using the *per-dimension* privacy budget;
* the conditional bias ``δ(t) = E[t* | t] − t``
  (:meth:`Mechanism.conditional_bias`);
* the conditional variance ``Var[t* | t]``
  (:meth:`Mechanism.conditional_variance`).

The conditional moments are exactly the quantities the framework needs to
build the Gaussian deviation models of Lemmas 2 and 3, so every concrete
mechanism implements them in closed form (validated against Monte-Carlo
moments in the test suite).

Mechanisms whose input domain is not the library-standard ``[−1, 1]`` (the
Square-wave mechanism is defined on ``[0, 1]``) can be adapted with
:class:`AffineTransformedMechanism`, which maps values and moments through
an affine change of variables.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Tuple

import numpy as np

from ..exceptions import DomainError, PrivacyBudgetError
from ..rng import RngLike, ensure_rng

#: Input domain used by every mechanism unless documented otherwise.
STANDARD_DOMAIN: Tuple[float, float] = (-1.0, 1.0)


def validate_epsilon(epsilon: float) -> float:
    """Validate a per-dimension privacy budget and return it as ``float``.

    Raises
    ------
    PrivacyBudgetError
        If ``epsilon`` is not a finite positive number.
    """
    eps = float(epsilon)
    if not math.isfinite(eps) or eps <= 0.0:
        raise PrivacyBudgetError(
            "privacy budget must be a finite positive number, got %r" % (epsilon,)
        )
    return eps


def validate_values(
    values: np.ndarray, domain: Tuple[float, float], atol: float = 1e-9
) -> np.ndarray:
    """Check that ``values`` lie inside ``domain`` and return them as float64.

    A small absolute tolerance absorbs floating-point round-off from
    normalization; genuine violations raise :class:`DomainError`.
    """
    arr = np.asarray(values, dtype=np.float64)
    lo, hi = domain
    if arr.size and not np.all(np.isfinite(arr)):
        raise DomainError("values must be finite (found NaN or inf)")
    if arr.size and (arr.min() < lo - atol or arr.max() > hi + atol):
        raise DomainError(
            "values outside domain [%g, %g]: min=%g max=%g"
            % (lo, hi, float(arr.min()), float(arr.max()))
        )
    return np.clip(arr, lo, hi)


class Mechanism(abc.ABC):
    """Abstract one-dimensional ε-LDP perturbation mechanism.

    Concrete subclasses provide vectorized sampling plus closed-form
    conditional moments. All methods take the *per-dimension* budget — the
    collection protocol (:mod:`repro.protocol`) is responsible for dividing
    a collective budget ``ε`` by the number of reported dimensions ``m``.
    """

    #: Short registry name, e.g. ``"laplace"``.
    name: str = "abstract"

    #: The paper's ``Bound(M)`` flag: True if outputs live in a finite interval.
    bounded: bool = False

    #: Interval of admissible original values.
    input_domain: Tuple[float, float] = STANDARD_DOMAIN

    # ------------------------------------------------------------------ API

    @abc.abstractmethod
    def perturb(
        self, values: np.ndarray, epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        """Perturb ``values`` under ``epsilon``-LDP and return the noisy copy.

        Parameters
        ----------
        values:
            Array (any shape) of original values inside :attr:`input_domain`.
        epsilon:
            Per-dimension privacy budget.
        rng:
            Seed or generator; see :func:`repro.rng.ensure_rng`.
        """

    @abc.abstractmethod
    def conditional_bias(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        """Return ``δ(t) = E[t* | t] − t`` for each original value ``t``."""

    @abc.abstractmethod
    def conditional_variance(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        """Return ``Var[t* | t]`` for each original value ``t``."""

    @abc.abstractmethod
    def output_support(self, epsilon: float) -> Tuple[float, float]:
        """Return the support of the perturbed output.

        Bounded mechanisms return the finite ``[−B, B]``-style interval from
        the paper's framework; unbounded mechanisms return
        ``(−inf, inf)``.
        """

    # ------------------------------------------------------- derived methods

    def deterministic_bias(self, epsilon: float) -> Optional[float]:
        """Bias ``δ`` when it does not depend on the original value.

        Returns the constant bias for mechanisms where ``δ(t)`` is the same
        for every ``t`` (Lemma 1 shows this always holds for unbounded
        mechanisms), or ``None`` when the bias is data-dependent and the
        collector therefore cannot calibrate it away pointwise.
        """
        lo, hi = self.input_domain
        probes = np.array([lo, 0.5 * (lo + hi), hi])
        biases = self.conditional_bias(probes, epsilon)
        if np.allclose(biases, biases[0], atol=1e-12):
            return float(biases[0])
        return None

    def conditional_second_moment(
        self, values: np.ndarray, epsilon: float
    ) -> np.ndarray:
        """Return ``E[t*² | t]`` derived from the bias and variance."""
        arr = np.asarray(values, dtype=np.float64)
        mean = arr + self.conditional_bias(arr, epsilon)
        return self.conditional_variance(arr, epsilon) + mean**2

    def abs_third_central_moment(
        self,
        values: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        samples: int = 200_000,
    ) -> np.ndarray:
        """Return ``ρ(t) = E[|t* − t − δ(t)|³]`` for each value ``t``.

        This is the third absolute moment required by the Berry–Esseen
        bound of Theorem 2. The default implementation is Monte-Carlo;
        mechanisms with closed forms (e.g. Laplace) override it.
        """
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
        gen = ensure_rng(rng)
        delta = self.conditional_bias(arr, epsilon)
        out = np.empty(arr.shape, dtype=np.float64)
        for idx in np.ndindex(arr.shape):
            draws = self.perturb(np.full(samples, arr[idx]), epsilon, gen)
            out[idx] = float(np.mean(np.abs(draws - arr[idx] - delta[idx]) ** 3))
        return out

    # ----------------------------------------------------------------- misc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(name=%r, bounded=%r)" % (
            type(self).__name__,
            self.name,
            self.bounded,
        )


class AdditiveNoiseMechanism(Mechanism):
    """Base class for unbounded mechanisms of the form ``t* = t + N``.

    Lemma 1 of the paper: for these mechanisms both the bias and the
    variance are independent of the original value, so subclasses only
    supply the noise distribution via :meth:`noise_scale`-style hooks.
    """

    bounded = False

    @abc.abstractmethod
    def sample_noise(
        self, size: Tuple[int, ...], epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        """Draw noise variates ``N`` with the mechanism's distribution."""

    @abc.abstractmethod
    def noise_variance(self, epsilon: float) -> float:
        """Return ``Var[N]``."""

    def noise_mean(self, epsilon: float) -> float:
        """Return ``E[N]``; zero for every mechanism shipped here."""
        return 0.0

    def perturb(
        self, values: np.ndarray, epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = validate_values(values, self.input_domain)
        return arr + self.sample_noise(arr.shape, eps, rng)

    def conditional_bias(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        return np.full(arr.shape, self.noise_mean(eps))

    def conditional_variance(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        eps = validate_epsilon(epsilon)
        arr = np.asarray(values, dtype=np.float64)
        return np.full(arr.shape, self.noise_variance(eps))

    def output_support(self, epsilon: float) -> Tuple[float, float]:
        return (-math.inf, math.inf)


class AffineTransformedMechanism(Mechanism):
    """Adapt a mechanism to a different input domain via an affine map.

    Example: the Square-wave mechanism is natively defined on ``[0, 1]``;
    wrapping it in ``AffineTransformedMechanism(SquareWaveMechanism())``
    yields a mechanism accepting the library-standard ``[−1, 1]`` inputs.
    Values are mapped into the inner domain before perturbation and the
    outputs (and all moments) are mapped back, so downstream aggregation is
    oblivious to the change of variables:

    * bias transforms as ``δ'(t) = a · δ(u)``,
    * variance as ``Var' = a² · Var``,
    * third absolute central moment as ``ρ' = |a|³ · ρ``,

    where ``u = (t − shift) / a`` is the inner-domain value and ``a`` the
    slope of the inverse map.
    """

    def __init__(
        self,
        inner: Mechanism,
        outer_domain: Tuple[float, float] = STANDARD_DOMAIN,
    ) -> None:
        inner_lo, inner_hi = inner.input_domain
        outer_lo, outer_hi = outer_domain
        if not (inner_hi > inner_lo and outer_hi > outer_lo):
            raise DomainError("domains must be non-degenerate intervals")
        self.inner = inner
        self.input_domain = (float(outer_lo), float(outer_hi))
        self.name = "%s@[%g,%g]" % (inner.name, outer_lo, outer_hi)
        self.bounded = inner.bounded
        # t = a * u + c maps inner -> outer.
        self._slope = (outer_hi - outer_lo) / (inner_hi - inner_lo)
        self._offset = outer_lo - self._slope * inner_lo

    def _to_inner(self, values: np.ndarray) -> np.ndarray:
        return (np.asarray(values, dtype=np.float64) - self._offset) / self._slope

    def _to_outer(self, values: np.ndarray) -> np.ndarray:
        return self._slope * np.asarray(values, dtype=np.float64) + self._offset

    def perturb(
        self, values: np.ndarray, epsilon: float, rng: RngLike = None
    ) -> np.ndarray:
        arr = validate_values(values, self.input_domain)
        return self._to_outer(self.inner.perturb(self._to_inner(arr), epsilon, rng))

    def conditional_bias(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        inner_vals = self._to_inner(values)
        return self._slope * self.inner.conditional_bias(inner_vals, epsilon)

    def conditional_variance(self, values: np.ndarray, epsilon: float) -> np.ndarray:
        inner_vals = self._to_inner(values)
        return self._slope**2 * self.inner.conditional_variance(inner_vals, epsilon)

    def abs_third_central_moment(
        self,
        values: np.ndarray,
        epsilon: float,
        rng: RngLike = None,
        samples: int = 200_000,
    ) -> np.ndarray:
        inner_vals = self._to_inner(values)
        rho = self.inner.abs_third_central_moment(inner_vals, epsilon, rng, samples)
        return abs(self._slope) ** 3 * rho

    def output_support(self, epsilon: float) -> Tuple[float, float]:
        lo, hi = self.inner.output_support(epsilon)
        mapped = sorted((float(self._to_outer(np.float64(lo))),
                         float(self._to_outer(np.float64(hi)))))
        return (mapped[0], mapped[1])


def affine_mean_map(
    mechanism: Mechanism, epsilon: float
) -> Optional[Tuple[float, float]]:
    """Fit ``E[t* | t] = slope · t + intercept`` if the map is affine.

    Every mechanism in this library has a conditional mean affine in the
    original value (unbiased mechanisms trivially so, with slope 1 and
    intercept 0; the square wave contracts toward mid-domain). When the map
    is affine the collector can calibrate an *aggregate* mean exactly via
    ``(mean − intercept) / slope`` — which the frequency-estimation
    pipeline uses. Returns ``None`` when the probed means are not affine
    or the slope degenerates.
    """
    eps = validate_epsilon(epsilon)
    lo, hi = mechanism.input_domain
    probes = np.array([lo, 0.5 * (lo + hi), hi])
    means = probes + mechanism.conditional_bias(probes, eps)
    slope = (means[2] - means[0]) / (hi - lo)
    intercept = means[0] - slope * lo
    predicted_mid = slope * probes[1] + intercept
    if abs(predicted_mid - means[1]) > 1e-9 * max(1.0, abs(means[1])):
        return None
    if abs(slope) < 1e-12:
        return None
    return float(slope), float(intercept)


def monte_carlo_moments(
    mechanism: Mechanism,
    value: float,
    epsilon: float,
    samples: int = 200_000,
    rng: RngLike = None,
) -> Tuple[float, float]:
    """Estimate ``(δ(t), Var[t*|t])`` empirically for cross-validation.

    Used by the test suite to confirm every closed-form moment; exposed
    publicly because it is also handy when adding a new mechanism.
    """
    gen = ensure_rng(rng)
    draws = mechanism.perturb(np.full(samples, float(value)), epsilon, gen)
    return float(np.mean(draws) - value), float(np.var(draws))
