"""SCDF — Soria-Comas & Domingo-Ferrer's optimal data-independent noise.

The paper lists SCDF [9] alongside Laplace and Staircase as the third
member of its "unbounded" mechanism class. Soria-Comas & Domingo-Ferrer
(2013) derive the optimal data-independent noise distribution for a given
sensitivity Δ; Geng et al. (2015) later showed that distribution is the
*staircase* density with step split ``γ = 1/2`` (their own mechanism then
optimizes γ per ε). We therefore implement SCDF as the fixed-``γ = 1/2``
staircase — sampling, closed-form moments and density all inherited and
already Monte-Carlo-validated — keeping the historical name addressable
from the registry so experiments can sweep all three unbounded
mechanisms the paper mentions.
"""

from __future__ import annotations

from .staircase import StaircaseMechanism


class SCDFMechanism(StaircaseMechanism):
    """ε-LDP SCDF perturbation: staircase noise with ``γ = 1/2``.

    Parameters
    ----------
    sensitivity:
        Step width Δ; 2 for the standard ``[−1, 1]`` domain.
    """

    name = "scdf"

    def __init__(self, sensitivity: float = 2.0) -> None:
        super().__init__(sensitivity=sensitivity, gamma=0.5)
