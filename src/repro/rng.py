"""Random-number plumbing shared by the whole library.

Every stochastic component in :mod:`repro` accepts an optional ``rng``
argument which may be ``None`` (use a fresh nondeterministic generator), an
integer seed, or an existing :class:`numpy.random.Generator`. This module
provides the single normalization helper so behaviour is uniform everywhere,
plus a utility for deriving independent child generators for parallel or
repeated experiment runs.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

from .exceptions import ParameterError

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted ``rng`` spec.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def spawn_children(rng: RngLike, count: int) -> Iterator[np.random.Generator]:
    """Yield ``count`` statistically independent child generators.

    Used by experiment drivers that repeat a simulation many times: each
    repetition gets its own stream so repetitions are independent yet the
    whole sweep stays reproducible from one seed.
    """
    if count < 0:
        raise ParameterError("count must be non-negative, got %d" % count)
    parent = ensure_rng(rng)
    for _ in range(count):
        yield np.random.default_rng(parent.integers(0, 2**63 - 1))


def derive_seed(rng: RngLike, salt: Optional[int] = None) -> int:
    """Derive a fresh integer seed from ``rng`` (optionally salted).

    Useful when a deterministic sub-seed must be stored in a result record
    so a single experiment repetition can be replayed later.
    """
    parent = ensure_rng(rng)
    seed = int(parent.integers(0, 2**63 - 1))
    if salt is not None:
        seed ^= (salt * 0x9E3779B97F4A7C15) & (2**63 - 1)
    return seed
