"""Asyncio TCP report sender: the user-side end of the socket transport.

:class:`AsyncReportSender` opens a connection to a collection gateway,
performs the contract handshake (both sides compare fingerprints before
any payload bytes flow), and then ships wire frames produced by
:func:`~repro.wire.encode_batch` — one length-prefixed frame per report
batch, each acknowledged by the gateway after it has been decoded,
validated and handed to a shard consumer.

The per-frame acknowledgement is the client half of the backpressure
loop: a gateway whose shard queues are full simply does not ack, so
:meth:`AsyncReportSender.send` naturally slows a producer down to the
aggregation tier's pace. Error statuses come back as the library's own
exception types — :class:`~repro.exceptions.ContractMismatchError`,
:class:`~repro.exceptions.WireFormatError`, or
:class:`~repro.exceptions.TransportError` for transport-level failures.
"""

from __future__ import annotations

import asyncio
from typing import Union

from ..exceptions import ContractMismatchError, TransportError
from ..session.client import ReportBatch
from ..wire.codec import encode_batch
from ..wire.contract import CollectionContract
from .framing import (
    HELLO,
    TRANSPORT_MAGIC,
    TRANSPORT_VERSION,
    raise_for_status,
    read_status,
    write_frame,
)

#: ``connect`` accepts a bare contract or anything carrying one (an
#: :class:`~repro.session.LDPClient`, an :class:`~repro.session.LDPServer`).
ContractLike = Union[CollectionContract, object]


def _as_contract(contract: ContractLike) -> CollectionContract:
    if isinstance(contract, CollectionContract):
        return contract
    carried = getattr(contract, "contract", None)
    if isinstance(carried, CollectionContract):
        return carried
    raise TransportError(
        "connect needs a CollectionContract (or an object carrying one "
        "as .contract), got %s" % type(contract).__name__
    )


class AsyncReportSender:
    """One open, handshaken connection to a collection gateway.

    Construct through :meth:`connect`; use as an async context manager
    so half-open connections cannot leak::

        async with await AsyncReportSender.connect(host, port, client) as s:
            await s.send(batch)
    """

    def __init__(
        self,
        contract: CollectionContract,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.contract = contract
        self._reader = reader
        self._writer = writer
        self._closed = False
        self.frames_sent = 0
        self.bytes_sent = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, contract: ContractLike
    ) -> "AsyncReportSender":
        """Open a connection and perform the contract handshake.

        Raises :class:`~repro.exceptions.ContractMismatchError` when the
        gateway collects under a different contract — before any payload
        bytes flow — and :class:`~repro.exceptions.TransportError` when
        the peer is not a collection gateway at all.
        """
        agreed = _as_contract(contract)
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                HELLO.pack(TRANSPORT_MAGIC, TRANSPORT_VERSION, agreed.digest)
            )
            await writer.drain()
            try:
                magic, version, digest = HELLO.unpack(
                    await reader.readexactly(HELLO.size)
                )
            except (asyncio.IncompleteReadError, ConnectionError) as exc:
                raise TransportError(
                    "gateway closed the connection during the handshake: %s"
                    % exc
                ) from None
            if magic != TRANSPORT_MAGIC:
                raise TransportError(
                    "peer is not a collection gateway: bad hello magic %r"
                    % (magic,)
                )
            status, message = await read_status(reader)
            raise_for_status(status, message)
            if version != TRANSPORT_VERSION:
                raise TransportError(
                    "gateway speaks transport version %d, this client %d"
                    % (version, TRANSPORT_VERSION)
                )
            if digest != agreed.digest:
                # The gateway accepted us but presents a different
                # fingerprint: refuse symmetrically.
                raise ContractMismatchError(
                    "gateway presents contract %s but this sender operates "
                    "under %s" % (bytes(digest).hex(), agreed.fingerprint)
                )
        except BaseException:
            writer.close()
            raise
        return cls(agreed, reader, writer)

    # --------------------------------------------------------------- sending

    async def send_encoded(self, frame: bytes) -> None:
        """Ship one pre-encoded wire frame and wait for its ack.

        The ack only arrives once the gateway has validated the frame
        and found queue room for it — this await *is* the backpressure.
        """
        if self._closed:
            raise TransportError("sender is closed")
        write_frame(self._writer, frame)
        try:
            await self._writer.drain()
        except ConnectionError as exc:
            raise TransportError("connection lost mid-send: %s" % exc) from None
        status, message = await read_status(self._reader)
        try:
            raise_for_status(status, message)
        except BaseException:
            await self.close()  # the gateway closes after an error status
            raise
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    async def send(self, batch: ReportBatch) -> None:
        """Encode one batch under this sender's contract and ship it."""
        await self.send_encoded(encode_batch(batch, self.contract))

    async def heartbeat(self) -> None:
        """Ship a zero-user frame: a liveness no-op for idle gateways.

        An empty :class:`~repro.session.ReportBatch` is a first-class
        frame — it round-trips the full validate/route/ack path, changes
        no aggregation state, and proves the connection (and the
        gateway's consumers) are still moving.
        """
        await self.send(
            ReportBatch(users=0, payloads={}, counts={}, protocols={})
        )

    # --------------------------------------------------------------- closing

    async def close(self) -> None:
        """End the stream (EOF) and release the connection."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._writer.can_write_eof():
                self._writer.write_eof()
        except (ConnectionError, OSError, RuntimeError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncReportSender":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


__all__ = ["AsyncReportSender"]
