"""Asyncio TCP report sender: the user-side end of the socket transport.

:class:`AsyncReportSender` opens a connection to a collection gateway,
performs the contract handshake (both sides compare fingerprints before
any payload bytes flow), and then ships wire frames produced by
:func:`~repro.wire.encode_batch` — one sequenced, length-prefixed frame
per report batch, each acknowledged by the gateway after it has been
decoded, validated and handed to a shard consumer.

The per-frame acknowledgement is the client half of the backpressure
loop: a gateway whose shard queues are full simply does not ack, so
:meth:`AsyncReportSender.send` naturally slows a producer down to the
aggregation tier's pace. Error statuses come back as the library's own
exception types — :class:`~repro.exceptions.ContractMismatchError`,
:class:`~repro.exceptions.WireFormatError`, or
:class:`~repro.exceptions.TransportError` for transport-level failures.

Resume: every sender carries a 16-byte *sender id* naming its logical
report stream, and numbers its frames 1, 2, 3, … During the handshake a
checkpointing gateway answers with the stream's *resume watermark* — the
highest sequence number it already folded durably. Frames at or below
the watermark are skipped locally (counted in
:attr:`AsyncReportSender.frames_skipped`) instead of re-sent, so a
sender that replays its whole round after a crash — its own or the
gateway's — contributes every report exactly once.
:func:`replay_frames` wraps the loop: connect, skip, send, and retry on
transport failures until the round is through.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import ContractMismatchError, TransportError
from ..session.client import ReportBatch
from ..telemetry import MetricsRegistry, emit, event_logger
from ..wire.codec import encode_batch
from ..wire.contract import DIGEST_SIZE, CollectionContract
from .framing import (
    HELLO,
    HELLO_REPLY,
    SENDER_ID_SIZE,
    STATS_MAGIC,
    STATUS_OK,
    TRANSPORT_MAGIC,
    TRANSPORT_VERSION,
    raise_for_status,
    read_status,
    write_frame,
)

_LOG = event_logger("sender")

#: ``connect`` accepts a bare contract or anything carrying one (an
#: :class:`~repro.session.LDPClient`, an :class:`~repro.session.LDPServer`).
ContractLike = Union[CollectionContract, object]


def _as_contract(contract: ContractLike) -> CollectionContract:
    if isinstance(contract, CollectionContract):
        return contract
    carried = getattr(contract, "contract", None)
    if isinstance(carried, CollectionContract):
        return carried
    raise TransportError(
        "connect needs a CollectionContract (or an object carrying one "
        "as .contract), got %s" % type(contract).__name__
    )


def _as_sender_id(sender_id: Optional[bytes]) -> bytes:
    if sender_id is None:
        return os.urandom(SENDER_ID_SIZE)
    if not isinstance(sender_id, (bytes, bytearray)) or len(
        sender_id
    ) != SENDER_ID_SIZE:
        raise TransportError(
            "a sender id is %d raw bytes, got %r" % (SENDER_ID_SIZE, sender_id)
        )
    return bytes(sender_id)


class AsyncReportSender:
    """One open, handshaken connection to a collection gateway.

    Construct through :meth:`connect`; use as an async context manager
    so half-open connections cannot leak::

        async with await AsyncReportSender.connect(host, port, client) as s:
            await s.send(batch)

    A fresh random sender id is drawn per :meth:`connect` unless one is
    given — pass the same id across reconnects to make the gateway
    treat them as one resumable stream.
    """

    def __init__(
        self,
        contract: CollectionContract,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        sender_id: bytes,
        resume_seq: int,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.contract = contract
        self.sender_id = sender_id
        #: Highest sequence number the gateway already holds durably for
        #: this stream; sends at or below it are skipped, not shipped.
        self.resume_seq = resume_seq
        self._reader = reader
        self._writer = writer
        self._closed = False
        self._next_seq = 1
        self.frames_sent = 0
        self.frames_skipped = 0
        self.bytes_sent = 0
        self.telemetry = metrics
        if metrics is not None:
            self._m_frames_sent = metrics.counter(
                "sender_frames_sent_total",
                "Frames shipped and acknowledged by the gateway",
            )
            self._m_frames_skipped = metrics.counter(
                "sender_frames_skipped_total",
                "Frames skipped locally because the gateway already "
                "holds them durably (resume watermark)",
            )
            self._m_bytes_sent = metrics.counter(
                "sender_bytes_sent_total",
                "Payload bytes of acknowledged frames",
            )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        contract: ContractLike,
        sender_id: Optional[bytes] = None,
        metrics: Optional[MetricsRegistry] = None,
        ssl=None,
    ) -> "AsyncReportSender":
        """Open a connection and perform the contract handshake.

        Raises :class:`~repro.exceptions.ContractMismatchError` when the
        gateway collects under a different contract — before any payload
        bytes flow — and :class:`~repro.exceptions.TransportError` when
        the peer is not a collection gateway at all. ``ssl`` is an
        optional client-side :class:`ssl.SSLContext` for a TLS-serving
        gateway; the framing above the encrypted stream is unchanged.
        """
        agreed = _as_contract(contract)
        stream_id = _as_sender_id(sender_id)
        reader, writer = await asyncio.open_connection(host, port, ssl=ssl)
        try:
            writer.write(
                HELLO.pack(
                    TRANSPORT_MAGIC, TRANSPORT_VERSION, agreed.digest, stream_id
                )
            )
            await writer.drain()
            try:
                magic, version, digest, resume_seq = HELLO_REPLY.unpack(
                    await reader.readexactly(HELLO_REPLY.size)
                )
            except (asyncio.IncompleteReadError, ConnectionError) as exc:
                raise TransportError(
                    "gateway closed the connection during the handshake: %s"
                    % exc
                ) from None
            if magic != TRANSPORT_MAGIC:
                raise TransportError(
                    "peer is not a collection gateway: bad hello magic %r"
                    % (magic,)
                )
            status, message = await read_status(reader)
            raise_for_status(status, message)
            if version != TRANSPORT_VERSION:
                raise TransportError(
                    "gateway speaks transport version %d, this client %d"
                    % (version, TRANSPORT_VERSION)
                )
            if digest != agreed.digest:
                # The gateway accepted us but presents a different
                # fingerprint: refuse symmetrically.
                raise ContractMismatchError(
                    "gateway presents contract %s but this sender operates "
                    "under %s" % (bytes(digest).hex(), agreed.fingerprint)
                )
        # repro: allow[broad-except] -- cleanup-and-reraise: the failed
        # handshake's socket must close on every path (including
        # CancelledError) before the original error propagates.
        except BaseException:
            writer.close()
            raise
        if metrics is not None:
            metrics.counter(
                "sender_connects_total",
                "Successful handshaken connections to a gateway",
            ).inc()
        emit(
            _LOG,
            "sender_connected",
            sender_id=stream_id.hex(),
            host=host,
            port=port,
            resume_seq=resume_seq,
        )
        return cls(agreed, reader, writer, stream_id, resume_seq, metrics)

    # --------------------------------------------------------------- sending

    async def send_encoded(self, frame: bytes) -> None:
        """Ship one pre-encoded wire frame and wait for its ack.

        The frame takes the stream's next sequence number. If that
        number is at or below the gateway's resume watermark the frame
        is already durable server-side — it is skipped locally (counted
        in :attr:`frames_skipped`) and no bytes go out. Otherwise the
        ack only arrives once the gateway has validated the frame and
        found queue room for it — this await *is* the backpressure.
        """
        if self._closed:
            raise TransportError("sender is closed")
        seq = self._next_seq
        self._next_seq += 1
        if seq <= self.resume_seq:
            self.frames_skipped += 1
            if self.telemetry is not None:
                self._m_frames_skipped.inc()
            return
        write_frame(self._writer, seq, frame)
        try:
            await self._writer.drain()
        except ConnectionError as exc:
            raise TransportError("connection lost mid-send: %s" % exc) from None
        status, message = await read_status(self._reader)
        try:
            raise_for_status(status, message)
        # repro: allow[broad-except] -- cleanup-and-reraise: the gateway
        # closes the stream after an error status, so this side must tear
        # down too (even on CancelledError) before the error propagates.
        except BaseException:
            await self.close()  # the gateway closes after an error status
            raise
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        if self.telemetry is not None:
            self._m_frames_sent.inc()
            self._m_bytes_sent.inc(len(frame))

    async def send(self, batch: ReportBatch) -> None:
        """Encode one batch under this sender's contract and ship it."""
        await self.send_encoded(encode_batch(batch, self.contract))

    async def heartbeat(self) -> None:
        """Ship a zero-user frame: a liveness no-op for idle gateways.

        An empty :class:`~repro.session.ReportBatch` is a first-class
        frame — it round-trips the full validate/route/ack path, changes
        no aggregation state, and proves the connection (and the
        gateway's consumers) are still moving.
        """
        await self.send(
            ReportBatch(users=0, payloads={}, counts={}, protocols={})
        )

    # --------------------------------------------------------------- closing

    async def close(self) -> None:
        """End the stream (EOF) and release the connection."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._writer.can_write_eof():
                self._writer.write_eof()
        except (ConnectionError, OSError, RuntimeError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncReportSender":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


async def replay_frames(
    host: str,
    port: int,
    contract: ContractLike,
    frames: Sequence[bytes],
    sender_id: bytes,
    attempts: int = 1,
    retry_delay: float = 0.5,
    metrics: Optional[MetricsRegistry] = None,
    ssl=None,
) -> "AsyncReportSender":
    """Deliver a whole round of encoded frames exactly once, with retries.

    Connects under ``sender_id``, skips every frame the gateway already
    holds durably (its resume watermark), ships the rest, and half-closes.
    On a *transport* failure — connection refused or dropped, gateway
    restarting — it waits ``retry_delay`` seconds and reconnects, up to
    ``attempts`` total; each reconnect re-learns the watermark, so no
    frame is ever contributed twice. Typed rejections
    (:class:`~repro.exceptions.ContractMismatchError`,
    :class:`~repro.exceptions.WireFormatError`) are never retried — a
    frame the gateway refused once will be refused again.

    Returns the final (closed) sender, whose counters describe the last
    successful pass. When every attempt fails, the raised
    :class:`~repro.exceptions.TransportError` enumerates each attempt
    number with its error — all *distinct* failures across the round,
    not just the last — so a round that bounced off two different
    problems (say, connection refused, then a restart mid-stream) shows
    both. Each failed attempt also emits a ``sender_retry`` event and,
    with ``metrics``, counts into ``sender_retries_total``.
    """
    if int(attempts) < 1:
        raise TransportError("attempts must be >= 1, got %r" % (attempts,))
    frames = list(frames)
    failures: List[Tuple[int, BaseException]] = []
    retries = (
        None
        if metrics is None
        else metrics.counter(
            "sender_retries_total",
            "Delivery attempts that failed with a transport error",
        )
    )
    total = int(attempts)
    for attempt in range(1, total + 1):
        if attempt > 1:
            await asyncio.sleep(retry_delay)
        try:
            sender = await AsyncReportSender.connect(
                host,
                port,
                contract,
                sender_id=sender_id,
                metrics=metrics,
                ssl=ssl,
            )
            async with sender:
                for frame in frames:
                    await sender.send_encoded(frame)
            return sender
        except (TransportError, ConnectionError, OSError) as exc:
            failures.append((attempt, exc))
            if retries is not None:
                retries.inc()
            emit(
                _LOG,
                "sender_retry",
                level=logging.WARNING,
                attempt=attempt,
                attempts=total,
                error=str(exc),
            )
    # Every attempt failed. Report each distinct error with the attempts
    # that produced it, in first-seen order, so intermediate failures
    # are never swallowed by the final one.
    distinct: Dict[str, List[int]] = {}
    for attempt, exc in failures:
        distinct.setdefault(str(exc), []).append(attempt)
    detail = "; ".join(
        "attempt%s %s: %s"
        % (
            "s" if len(attempt_numbers) > 1 else "",
            ",".join(str(n) for n in attempt_numbers),
            message,
        )
        for message, attempt_numbers in distinct.items()
    )
    raise TransportError(
        "round not delivered after %d attempt(s): %s" % (total, detail)
    ) from failures[-1][1]


async def request_stats(
    host: str,
    port: int,
    timeout: Optional[float] = 10.0,
    ssl=None,
) -> Dict[str, Any]:
    """Fetch a gateway's live telemetry snapshot over its socket.

    Sends a ``STATS`` control request — a hello-sized message opened by
    :data:`~repro.transport.framing.STATS_MAGIC` with the digest and
    sender-id fields zeroed — and returns the decoded snapshot dict
    (the gateway's :meth:`~repro.transport.CollectionGateway.
    stats_snapshot`: ``counters`` + ``metrics``). Needs no contract, so
    any admin client can poll a round mid-flight.

    ``timeout`` bounds the whole exchange (connect through reply) in
    seconds; a gateway that accepts the connection but never answers —
    hung event loop, half-dead process — raises
    :class:`~repro.exceptions.TransportError` after ``timeout`` seconds
    instead of blocking the admin client forever. Pass ``None`` to wait
    without bound.
    """
    try:
        return await asyncio.wait_for(
            _request_stats(host, port, ssl=ssl), timeout
        )
    except asyncio.TimeoutError:
        raise TransportError(
            "gateway at %s:%d did not answer the stats request within "
            "%.1f seconds" % (host, port, timeout)
        ) from None


async def _request_stats(host: str, port: int, ssl=None) -> Dict[str, Any]:
    reader, writer = await asyncio.open_connection(host, port, ssl=ssl)
    try:
        writer.write(
            HELLO.pack(
                STATS_MAGIC,
                TRANSPORT_VERSION,
                b"\0" * DIGEST_SIZE,
                b"\0" * SENDER_ID_SIZE,
            )
        )
        await writer.drain()
        try:
            magic, _, _, _ = HELLO_REPLY.unpack(
                await reader.readexactly(HELLO_REPLY.size)
            )
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise TransportError(
                "gateway closed the connection during the stats request: %s"
                % exc
            ) from None
        if magic != TRANSPORT_MAGIC:
            raise TransportError(
                "peer is not a collection gateway: bad hello magic %r"
                % (magic,)
            )
        status, message = await read_status(reader)
        raise_for_status(status, message)
        if status != STATUS_OK:  # pragma: no cover - raise_for_status raised
            raise TransportError("stats request refused (status %d)" % status)
        try:
            snapshot = json.loads(message)
        except ValueError as exc:
            raise TransportError(
                "gateway stats reply is not valid JSON: %s" % exc
            ) from None
        if not isinstance(snapshot, dict):
            raise TransportError(
                "gateway stats reply is %s, expected an object"
                % type(snapshot).__name__
            )
        return snapshot
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


__all__ = ["AsyncReportSender", "replay_frames", "request_stats"]
