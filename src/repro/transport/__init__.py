"""Socket transport of the distributed collection API.

The wire layer (:mod:`repro.wire`) makes a report batch a byte string;
this subpackage moves those bytes between real processes over TCP, with
the same strictness guarantees:

* :func:`serve_collection` / :class:`CollectionGateway` — an asyncio
  ingestion front: contract handshake on connect (fingerprints compared
  *before* any payload bytes flow), accepted frames validated and fanned
  over a pool of concurrent shard consumers feeding a
  :class:`~repro.session.ShardedServer` through bounded queues (explicit
  backpressure), graceful drain-and-merge on shutdown — and, with a
  :class:`~repro.storage.CheckpointStore`, periodic round checkpoints
  carrying per-sender acknowledgement watermarks, so a SIGKILLed gateway
  restarts from durable state and resumes the round exactly;
* :class:`AsyncReportSender` / :func:`replay_frames` — the user side:
  handshake, per-frame acknowledged sequenced sends (the ack wait *is*
  the backpressure), zero-user heartbeat frames for idle connections,
  and crash-safe round replay that skips frames the gateway already
  holds durably;
* :mod:`repro.transport.framing` — the shared message definitions
  (handshake structs, sequenced length-prefixed frames, typed status
  codes).

Because aggregation is exact (:mod:`repro.session.streaming`), a socket
round's estimate is bit-identical to one-shot in-process ingestion of
the same report multiset — concurrency, routing, backpressure stalls,
and even a mid-round crash-and-resume cannot move it by one ulp.
"""

from .framing import (
    DEFAULT_MAX_FRAME_BYTES,
    SENDER_ID_SIZE,
    STATE_MAGIC,
    STATS_MAGIC,
    STATUS_CONTRACT_MISMATCH,
    STATUS_OK,
    STATUS_TRANSPORT_ERROR,
    STATUS_WIRE_ERROR,
    TRANSPORT_MAGIC,
    TRANSPORT_VERSION,
)
from .gateway import CollectionGateway, serve_collection
from .sender import AsyncReportSender, replay_frames, request_stats

__all__ = [
    "AsyncReportSender",
    "CollectionGateway",
    "DEFAULT_MAX_FRAME_BYTES",
    "SENDER_ID_SIZE",
    "STATE_MAGIC",
    "STATS_MAGIC",
    "STATUS_CONTRACT_MISMATCH",
    "STATUS_OK",
    "STATUS_TRANSPORT_ERROR",
    "STATUS_WIRE_ERROR",
    "TRANSPORT_MAGIC",
    "TRANSPORT_VERSION",
    "replay_frames",
    "request_stats",
    "serve_collection",
]
