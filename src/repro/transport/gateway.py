"""Asyncio TCP collection gateway: sockets in, sharded aggregation out.

:class:`CollectionGateway` is the ingestion front of a collection round.
It listens on a TCP port, handshakes every connection against its
:class:`~repro.wire.CollectionContract` (fingerprint compared before any
payload bytes flow), and fans accepted frames over a pool of concurrent
shard consumers feeding a :class:`~repro.session.ShardedServer`.

Backpressure is explicit and bounded: each shard consumer pulls from its
own bounded :class:`asyncio.Queue`. A connection reader that lands on a
full queue blocks in ``put()`` — it stops reading its socket, the
kernel's TCP window closes, and the *sender's* ``drain()``/ack wait
blocks. A slow shard therefore slows its producers down instead of
ballooning gateway memory; nothing is dropped and nothing is buffered
beyond ``shards x queue_depth`` validated batches.

Durability is opt-in: hand the gateway a
:class:`~repro.storage.CheckpointStore` and it periodically persists a
*round checkpoint* — the exact aggregation snapshot plus, per sender id,
the highest contiguously acknowledged frame sequence number. A restarted
gateway recovers the newest intact checkpoint, tells each reconnecting
sender its watermark (so the sender skips durable frames), and
acknowledges-without-folding any duplicate that arrives anyway. Because
aggregation is exact, a round interrupted by SIGKILL and resumed from
checkpoint finishes with estimates bit-identical to one that never
crashed — zero double-counted frames. Frame-count triggers are honoured
*before* the triggering frame's ack goes out, so a sender that saw all
its acks knows its whole stream is durable.

Shutdown is drain-and-merge: :meth:`CollectionGateway.stop` stops
accepting, lets in-flight connections finish, joins every shard queue
(all accepted frames folded), writes a final checkpoint when a store is
configured, then cancels the consumers. Because aggregation is exact
(:mod:`repro.session.streaming`), the estimate read afterwards is
bit-identical to one-shot in-process ingestion of the same report
multiset — the acceptance invariant of the socket path.

Frames are validated *before* they are acknowledged: decode
(CRC, structure), contract fingerprint, and full server-side payload
validation all happen on the connection coroutine, so an ack means "this
batch will be in the estimate once drained". A frame that fails
validation is answered with a typed error status and the connection is
closed; the aggregation state is never touched by a bad frame.
"""

from __future__ import annotations

import asyncio
import json
import logging
import operator
from typing import Any, Dict, List, Optional, Set

from ..session.sharded import ShardedServer
from ..session.server import LDPServer, Postprocessor, SessionEstimate
from ..exceptions import (
    ContractMismatchError,
    DimensionError,
    DomainError,
    StorageError,
    TransportError,
    WireFormatError,
)
from ..storage import (
    CheckpointStore,
    parse_round_checkpoint,
    round_checkpoint_document,
)
from ..storage.base import encode_document
from ..telemetry import MetricsRegistry, emit, event_logger
from ..wire.codec import iter_attribute_blocks
from ..wire.contract import CollectionContract
from .framing import (
    DEFAULT_MAX_FRAME_BYTES,
    HELLO,
    HELLO_REPLY,
    STATS_MAGIC,
    STATUS_CONTRACT_MISMATCH,
    STATUS_OK,
    STATUS_TRANSPORT_ERROR,
    STATUS_WIRE_ERROR,
    TRANSPORT_MAGIC,
    TRANSPORT_VERSION,
    pack_status,
    read_frame,
)


class CollectionGateway:
    """Socket ingestion front over a :class:`~repro.session.ShardedServer`.

    Parameters
    ----------
    server:
        The sharded collector the gateway feeds. One consumer coroutine
        is spawned per shard; each shard is only ever touched by its own
        consumer, so folding needs no locks.
    queue_depth:
        Bound of every per-shard queue — the backpressure knob. Small
        values couple producers tightly to consumer progress; large
        values smooth bursts at the cost of buffered memory.
    max_frame_bytes:
        Reject frames longer than this before allocating them.
    store:
        Optional :class:`~repro.storage.CheckpointStore` for round
        checkpoints. :meth:`start` recovers the newest intact checkpoint
        from it (state, watermarks and counters resume), :meth:`stop`
        writes a final one, and the ``checkpoint_every_*`` triggers
        write periodic ones in between. The caller owns the store's
        lifetime (the gateway never closes it).
    checkpoint_every_frames:
        Checkpoint after this many accepted frames — *before* the
        triggering frame's ack is sent, so an acknowledged frame on a
        frame-triggered gateway is a durable frame.
    checkpoint_every_seconds:
        Checkpoint at least this often (in gateway-loop time) while
        frames are arriving.
    metrics:
        Optional :class:`~repro.telemetry.MetricsRegistry` to instrument
        against (one is created when omitted, so :meth:`stats_snapshot`
        and the ``STATS`` socket request always work). The gateway also
        attaches the registry to its checkpoint store and session
        shards when they are not already instrumented, so one snapshot
        covers the whole ingest path.
    """

    def __init__(
        self,
        server: ShardedServer,
        queue_depth: int = 8,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        store: Optional[CheckpointStore] = None,
        checkpoint_every_frames: Optional[int] = None,
        checkpoint_every_seconds: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        try:
            depth = operator.index(queue_depth)
            frame_limit = operator.index(max_frame_bytes)
        except TypeError:
            raise DimensionError(
                "queue_depth and max_frame_bytes must be integers, got "
                "%r and %r" % (queue_depth, max_frame_bytes)
            ) from None
        if depth < 1:
            raise DimensionError(
                "queue depth must be >= 1, got %d" % depth
            )
        if frame_limit < 1:
            raise DimensionError(
                "max_frame_bytes must be >= 1 (every frame, even a "
                "zero-user heartbeat, has a header), got %d" % frame_limit
            )
        if store is None and (
            checkpoint_every_frames is not None
            or checkpoint_every_seconds is not None
        ):
            raise StorageError(
                "checkpoint triggers need a checkpoint store"
            )
        if checkpoint_every_frames is not None and int(
            checkpoint_every_frames
        ) < 1:
            raise StorageError(
                "checkpoint_every_frames must be >= 1, got %r"
                % (checkpoint_every_frames,)
            )
        if checkpoint_every_seconds is not None and float(
            checkpoint_every_seconds
        ) <= 0:
            raise StorageError(
                "checkpoint_every_seconds must be > 0, got %r"
                % (checkpoint_every_seconds,)
            )
        self.server = server
        self.queue_depth = depth
        self.max_frame_bytes = frame_limit
        self.store = store
        self.checkpoint_every_frames = (
            None
            if checkpoint_every_frames is None
            else int(checkpoint_every_frames)
        )
        self.checkpoint_every_seconds = (
            None
            if checkpoint_every_seconds is None
            else float(checkpoint_every_seconds)
        )
        self._queues: List[asyncio.Queue] = []
        self._frame_listeners: List[Any] = []
        self._consumers: List[asyncio.Task] = []
        self._connections: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._tcp: Optional[asyncio.AbstractServer] = None
        self._progress: Optional[asyncio.Event] = None
        self._stopping = False
        self._fold_error: Optional[Exception] = None
        self._cursor = 0
        # Resume bookkeeping: highest contiguously acknowledged frame
        # sequence number per sender id, and the senders connected right
        # now (a sender id names ONE stream — concurrent connections
        # under the same id would make its watermark meaningless).
        self._acked: Dict[bytes, int] = {}
        self._active_senders: Set[bytes] = set()
        # Intake barrier: checkpoint() holds this across drain+snapshot
        # so no frame can be queued (or its watermark advanced) while
        # the snapshot is being cut — acked == folded at save time.
        self._intake_lock = asyncio.Lock()
        self._timer: Optional[asyncio.Task] = None
        self._frames_since_checkpoint = 0
        # Counters: "accepted" means validated + acked + queued; the
        # batch is folded into a shard by drain time at the latest.
        self.frames_accepted = 0
        self.frames_rejected = 0
        self.frames_deduped = 0
        self.handshakes_rejected = 0
        self.users_accepted = 0
        self.bytes_received = 0
        self.heartbeats = 0
        self.checkpoints_written = 0
        # Telemetry: the plain counters above stay authoritative (and
        # cheap); the registry mirrors them with labels/latencies for
        # snapshots and the STATS request. One registry can be shared
        # across the stack — instruments are registered idempotently.
        self.telemetry = metrics if metrics is not None else MetricsRegistry()
        self._clock = self.telemetry.clock
        self._log = event_logger("gateway")
        registry = self.telemetry
        self._m_frames_accepted = registry.counter(
            "gateway_frames_accepted_total",
            "Frames validated, acknowledged and queued for folding",
        )
        self._m_frames_rejected = registry.counter(
            "gateway_frames_rejected_total",
            "Frames refused after the handshake, by reason",
            labels=("reason",),
        )
        self._m_frames_deduped = registry.counter(
            "gateway_frames_deduped_total",
            "Replayed frames acknowledged without folding (resume dedup)",
        )
        self._m_handshakes_rejected = registry.counter(
            "gateway_handshakes_rejected_total",
            "Connections refused during the handshake, by reason",
            labels=("reason",),
        )
        self._m_users_accepted = registry.counter(
            "gateway_users_accepted_total",
            "Users carried by accepted frames",
        )
        self._m_bytes_received = registry.counter(
            "gateway_bytes_received_total",
            "Payload bytes of accepted frames",
        )
        self._m_heartbeats = registry.counter(
            "gateway_heartbeats_total",
            "Zero-user liveness frames accepted",
        )
        self._m_queue_depth = registry.time_weighted_gauge(
            "gateway_queue_depth",
            "Per-shard queue depth; time_weighted_mean is the exact "
            "average depth over the round",
            labels=("shard",),
        )
        self._m_ack_latency = registry.histogram(
            "gateway_ack_latency_seconds",
            "Frame read to OK ack (validation, routing, backpressure, "
            "and any triggered checkpoint)",
        )
        self._m_fold_seconds = registry.histogram(
            "gateway_fold_seconds",
            "Time folding one validated batch into its shard",
        )
        self._m_stall_seconds = registry.counter(
            "gateway_backpressure_stall_seconds_total",
            "Seconds connection readers spent blocked on full shard queues",
        )
        self._m_stalls = registry.counter(
            "gateway_backpressure_stalls_total",
            "Frame intakes that found their target shard queue full",
        )
        self._m_checkpoint_seconds = registry.histogram(
            "gateway_checkpoint_seconds",
            "Drain + snapshot + store.save per round checkpoint",
        )
        self._m_checkpoints = registry.counter(
            "gateway_checkpoints_written_total",
            "Round checkpoints persisted",
        )
        self._m_checkpoint_bytes = registry.counter(
            "gateway_checkpoint_bytes_total",
            "Encoded bytes of persisted round checkpoints",
        )
        self._m_stats_requests = registry.counter(
            "gateway_stats_requests_total",
            "STATS control requests served",
        )
        if store is not None and getattr(store, "telemetry", None) is None:
            store.attach_telemetry(registry)
        if getattr(server, "telemetry", None) is None:
            server.attach_telemetry(registry)

    # ------------------------------------------------------------ lifecycle

    @property
    def contract(self) -> CollectionContract:
        """The collection contract every connection must match."""
        return self.server.contract

    def add_frame_listener(self, listener) -> None:
        """Register a zero-argument callable invoked per accepted frame.

        Called synchronously right after a frame's intake (counters
        updated, watermark advanced), still under the intake barrier —
        so a listener that counts frames sees exactly the accepted
        sequence. Listeners must be cheap and must not raise; the
        federation edge uses one to wake its push loop.
        """
        self._frame_listeners.append(listener)

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ssl=None,
    ) -> "CollectionGateway":
        """Bind the listening socket and spawn the shard consumers.

        With a checkpoint store configured, the newest intact round
        checkpoint is recovered *first*: the aggregation state, the
        per-sender watermarks and the frame counters all resume, and the
        restored round continues as if the process had never died. A
        checkpoint written under a different contract raises
        :class:`~repro.exceptions.ContractMismatchError` naming both
        fingerprints; a damaged store raises
        :class:`~repro.exceptions.CheckpointCorruptError`.

        ``ssl`` is an optional server-side :class:`ssl.SSLContext`; with
        it the gateway only speaks TLS (a plaintext client cannot
        handshake) — the framing above the encrypted stream is
        unchanged.
        """
        if self._tcp is not None:
            raise TransportError("gateway is already serving")
        if self.store is not None:
            document = self.store.recover()
            if document is not None:
                state, progress, frames = parse_round_checkpoint(
                    document, self.contract
                )
                self.server.load_state_dict(state)
                self._acked = dict(progress)
                self.frames_accepted = frames
                self.users_accepted = self.server.users
                self._frames_since_checkpoint = 0
                self._m_frames_accepted.inc(frames)
                self._m_users_accepted.inc(self.users_accepted)
                emit(
                    self._log,
                    "recovery_replayed",
                    frames=frames,
                    users=self.users_accepted,
                    senders=len(self._acked),
                )
        self._stopping = False
        self._progress = asyncio.Event()
        self._queues = [
            asyncio.Queue(maxsize=self.queue_depth)
            for _ in self.server.shards
        ]
        # Bind before spawning the consumers: a failed bind (port in use)
        # must not leave consumer tasks blocked on their queues forever.
        # No await separates the bind from the spawns, so a connection
        # accepted by the new socket cannot be handled before its
        # consumers exist.
        self._tcp = await asyncio.start_server(
            self._handle, host, port, ssl=ssl
        )
        self._consumers = [
            asyncio.ensure_future(self._consume(index))
            for index in range(len(self._queues))
        ]
        if self.checkpoint_every_seconds is not None:
            self._timer = asyncio.ensure_future(self._checkpoint_timer())
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (useful after binding port 0)."""
        if self._tcp is None or not self._tcp.sockets:
            raise TransportError("gateway is not serving")
        ports = {sock.getsockname()[1] for sock in self._tcp.sockets}
        if len(ports) > 1:
            # port=0 on a multi-address hostname (e.g. dual-stack
            # "localhost") gives each address family its own ephemeral
            # port; advertising just one would misdirect half the
            # clients.
            raise TransportError(
                "gateway is bound to multiple ports %s: binding port 0 "
                "on a multi-address host gives each address family its "
                "own ephemeral port — bind one explicit address (e.g. "
                "127.0.0.1) instead" % sorted(ports)
            )
        return ports.pop()

    async def drain(self) -> None:
        """Wait until every accepted frame has been folded into a shard."""
        await asyncio.gather(*(queue.join() for queue in self._queues))

    async def stop(
        self,
        abort_connections: bool = False,
        grace: Optional[float] = None,
    ) -> None:
        """Graceful drain-and-merge shutdown.

        Stops accepting, waits for in-flight connections to finish,
        drains every shard queue, writes a final checkpoint when a store
        is configured (and something changed since the last one), then
        cancels the consumers. ``abort_connections`` closes connections
        immediately instead of waiting; ``grace`` waits up to that many
        seconds and then closes whatever is still open — so one silent
        peer cannot hang the shutdown forever. Either way every
        acknowledged frame is folded. A frame in flight when its
        connection was aborted may be folded *without* its ack reaching
        the sender — harmless under resume: the gateway's watermark
        covers it, so a retry is deduplicated instead of double-counted.
        """
        # Settle the connections BEFORE awaiting wait_closed(): on
        # Python >= 3.12 Server.wait_closed() waits for every connection
        # handler to finish (gh-79033), so awaiting it while a handler
        # is still blocked reading an idle peer would deadlock — exactly
        # the hang abort_connections/grace exist to prevent.
        self._stopping = True
        tcp, self._tcp = self._tcp, None
        if tcp is not None:
            tcp.close()  # stop accepting; existing connections live on
        if self._timer is not None:
            self._timer.cancel()
            await asyncio.gather(self._timer, return_exceptions=True)
            self._timer = None
        pending = list(self._connections)
        if abort_connections:
            for writer in list(self._writers):
                writer.close()
        if pending:
            if abort_connections or grace is None:
                await asyncio.gather(*pending, return_exceptions=True)
            else:
                _, overdue = await asyncio.wait(pending, timeout=grace)
                if overdue:
                    for writer in list(self._writers):
                        writer.close()
                    await asyncio.gather(*overdue, return_exceptions=True)
        if tcp is not None:
            await tcp.wait_closed()
        await self.drain()
        if (
            self.store is not None
            and self._fold_error is None
            and (self._frames_since_checkpoint or not self.checkpoints_written)
        ):
            await self.checkpoint()
        for consumer in self._consumers:
            consumer.cancel()
        await asyncio.gather(*self._consumers, return_exceptions=True)
        self._consumers = []

    async def __aenter__(self) -> "CollectionGateway":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop(abort_connections=True)

    async def wait_for_users(self, count: int) -> None:
        """Block until at least ``count`` users have been accepted.

        Raises :class:`TransportError` if the gateway is poisoned by a
        fold or checkpoint failure while waiting: a poisoned gateway
        refuses every further frame, so the user count can never reach
        ``count`` and waiting on would hang forever. :meth:`_poison`
        sets the progress event precisely so this waiter wakes up to
        notice.
        """
        if self._progress is None:
            raise TransportError("gateway is not serving")
        while self.users_accepted < int(count):
            self._check_folds()
            self._progress.clear()
            if self.users_accepted >= int(count):
                break
            await self._progress.wait()

    def _poison(self, exc: Exception) -> None:
        """Record a fatal aggregation error and wake anyone waiting.

        First error wins (later failures are usually its consequences).
        The progress event is set so a :meth:`wait_for_users` caller
        re-checks the fold state instead of sleeping forever on a round
        that can no longer finish.
        """
        if self._fold_error is None:
            self._fold_error = exc
        if self._progress is not None:
            self._progress.set()

    # ----------------------------------------------------------- checkpoints

    async def checkpoint(self) -> None:
        """Persist a round checkpoint now (state + sender watermarks).

        Holds the intake barrier while draining the shard queues and
        cutting the snapshot, so the saved state covers *exactly* the
        acknowledged frames — every watermark in the checkpoint is a
        frame folded into the saved state, nothing more, nothing less.
        """
        if self.store is None:
            raise StorageError("this gateway has no checkpoint store")
        async with self._intake_lock:
            started = self._clock()
            frames = self._frames_since_checkpoint
            await self.drain()
            self._check_folds()
            document = round_checkpoint_document(
                self.server.state_dict(), self._acked, self.frames_accepted
            )
            self.store.save(document)
            self.checkpoints_written += 1
            self._frames_since_checkpoint = 0
            seconds = self._clock() - started
            nbytes = len(encode_document(document))
            self._m_checkpoints.inc()
            self._m_checkpoint_bytes.inc(nbytes)
            self._m_checkpoint_seconds.observe(seconds)
            emit(
                self._log,
                "checkpoint_cut",
                frames=frames,
                users=self.server.users,
                bytes=nbytes,
                seconds=round(seconds, 6),
            )

    async def _checkpoint_timer(self) -> None:
        """Time-triggered checkpoints (only when frames arrived since)."""
        period = self.checkpoint_every_seconds
        while True:
            await asyncio.sleep(period)
            if not self._frames_since_checkpoint:
                continue
            try:
                await self.checkpoint()
            # repro: allow[broad-except] -- poison rationale: a timer
            # checkpoint failure of any type must stop acks (durability
            # can no longer be promised), so the gateway is poisoned.
            except Exception as exc:
                emit(
                    self._log,
                    "checkpoint_failed",
                    level=logging.ERROR,
                    trigger="timer",
                    error=str(exc),
                )
                self._poison(exc)
                return

    def _frame_checkpoint_due(self) -> bool:
        return (
            self.checkpoint_every_frames is not None
            and self._frames_since_checkpoint >= self.checkpoint_every_frames
        )

    # ------------------------------------------------------------- consumers

    async def _consume(self, index: int) -> None:
        """Fold validated batches from queue ``index`` into shard ``index``.

        A fold that raises (e.g. allocation failure under memory
        pressure) poisons the whole gateway, not just this shard: the
        error is recorded, later frames are refused instead of acked,
        and :meth:`estimate`/:meth:`merged` re-raise it rather than
        serve a silently partial aggregate. The consumer itself keeps
        draining (``task_done`` for every item) so a drain can never
        hang on a dead shard.
        """
        shard = self.server.shards[index]
        queue = self._queues[index]
        depth = self._m_queue_depth.labels(shard=index)
        while True:
            users, canonical = await queue.get()
            try:
                if self._fold_error is None:
                    started = self._clock()
                    shard._fold_validated(users, canonical)
                    seconds = self._clock() - started
                    self._m_fold_seconds.observe(seconds)
                    emit(
                        self._log,
                        "fold",
                        level=logging.DEBUG,
                        shard=index,
                        users=users,
                        seconds=round(seconds, 6),
                    )
            # repro: allow[broad-except] -- poison rationale: a fold that
            # raises anything leaves the shard partially updated; the whole
            # gateway is poisoned so estimate()/merged() re-raise instead
            # of serving a silently partial aggregate.
            except Exception as exc:
                emit(
                    self._log,
                    "fold_failed",
                    level=logging.ERROR,
                    shard=index,
                    error=str(exc),
                )
                self._poison(exc)
            finally:
                queue.task_done()
                depth.set(queue.qsize())

    # ----------------------------------------------------------- connections

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopping:
            # Accepted in the same tick stop() began: this handler is in
            # neither _connections nor _writers, so the shutdown's
            # settle pass cannot reach it. Refusing here (before any
            # handshake or ack) keeps the invariant that every ack is
            # folded, and lets Server.wait_closed() (which on
            # Python >= 3.12 waits for all handlers) return promptly.
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        sender_id: Optional[bytes] = None
        try:
            sender_id = await self._handshake(reader, writer)
            if sender_id is not None:
                await self._pump(reader, writer, sender_id)
        except (ConnectionError, TransportError):
            pass  # peer vanished: accepted frames stay accepted
        finally:
            if sender_id is not None:
                self._active_senders.discard(sender_id)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._connections.discard(task)

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        message: str = "",
        hello: bool = False,
        resume: int = 0,
    ) -> None:
        if hello:
            writer.write(
                HELLO_REPLY.pack(
                    TRANSPORT_MAGIC,
                    TRANSPORT_VERSION,
                    self.contract.digest,
                    resume,
                )
            )
        writer.write(pack_status(status, message))
        await writer.drain()

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[bytes]:
        """Verify the contract fingerprint before any payload bytes flow.

        Returns the connection's sender id (registered as active) on
        success, ``None`` on a refused handshake. The success reply
        carries the stream's resume watermark, so a reconnecting sender
        knows exactly which frames are already durable.
        """
        try:
            magic, version, digest, sender_id = HELLO.unpack(
                await reader.readexactly(HELLO.size)
            )
        except asyncio.IncompleteReadError:
            return None  # probe/scan connection: nothing to answer
        if magic == STATS_MAGIC:
            # Live introspection: a hello-sized control message asking
            # for the telemetry snapshot instead of a report stream.
            # Served before any contract check so an admin client needs
            # no contract; not counted as a handshake rejection.
            payload = json.dumps(self.stats_snapshot(), sort_keys=True)
            self._m_stats_requests.inc()
            emit(self._log, "stats_served", bytes=len(payload))
            await self._reply(writer, STATUS_OK, payload, hello=True)
            return None
        if magic != TRANSPORT_MAGIC:
            self._reject_handshake("bad_magic")
            await self._reply(
                writer,
                STATUS_TRANSPORT_ERROR,
                "not a collection-transport hello: bad magic %r "
                "(expected %r)" % (magic, TRANSPORT_MAGIC),
                hello=True,
            )
            return None
        if version != TRANSPORT_VERSION:
            self._reject_handshake("version")
            await self._reply(
                writer,
                STATUS_TRANSPORT_ERROR,
                "unsupported transport version %d (this gateway speaks %d)"
                % (version, TRANSPORT_VERSION),
                hello=True,
            )
            return None
        if digest != self.contract.digest:
            self._reject_handshake("contract_mismatch")
            await self._reply(
                writer,
                STATUS_CONTRACT_MISMATCH,
                "sender operates under contract %s but this gateway "
                "collects under %s (schema, budget, and per-attribute "
                "protocols must agree)"
                % (bytes(digest).hex(), self.contract.fingerprint),
                hello=True,
            )
            return None
        if sender_id in self._active_senders:
            self._reject_handshake("duplicate_sender")
            await self._reply(
                writer,
                STATUS_TRANSPORT_ERROR,
                "sender id %s is already connected: a sender id names one "
                "resumable stream, so concurrent connections under it "
                "would corrupt its watermark" % sender_id.hex(),
                hello=True,
            )
            return None
        self._active_senders.add(sender_id)
        resume = self._acked.get(sender_id, 0)
        emit(
            self._log,
            "handshake_accepted",
            sender_id=sender_id.hex(),
            resume_seq=resume,
        )
        await self._reply(writer, STATUS_OK, hello=True, resume=resume)
        return sender_id

    def _reject_handshake(self, reason: str) -> None:
        self.handshakes_rejected += 1
        self._m_handshakes_rejected.labels(reason=reason).inc()
        emit(
            self._log,
            "handshake_rejected",
            level=logging.WARNING,
            reason=reason,
        )

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        sender_id: bytes,
    ) -> None:
        """Validate, route and ack frames until EOF or the first bad one.

        Duplicates (sequence number at or below the stream's watermark —
        a sender replaying past a crash) are acknowledged without
        folding; a gap above the watermark is a protocol violation and
        closes the connection.
        """
        while True:
            try:
                framed = await read_frame(reader, self.max_frame_bytes)
            except WireFormatError as exc:
                self._reject_frame("wire", sender_id, exc)
                await self._reply(writer, STATUS_WIRE_ERROR, str(exc))
                return
            if framed is None:
                return  # clean end of stream
            received_at = self._clock()
            seq, frame = framed
            if self._fold_error is not None:
                # A dead shard must not keep collecting acks it cannot
                # honour.
                self._reject_frame("poisoned", sender_id, self._fold_error)
                await self._reply(
                    writer,
                    STATUS_TRANSPORT_ERROR,
                    "gateway aggregation failed: %s" % self._fold_error,
                )
                return
            watermark = self._acked.get(sender_id, 0)
            if seq <= watermark:
                # Already folded (the sender replayed past our ack):
                # re-acknowledge without touching aggregation state.
                self.frames_deduped += 1
                self._m_frames_deduped.inc()
                emit(
                    self._log,
                    "frame_deduped",
                    level=logging.DEBUG,
                    sender_id=sender_id.hex(),
                    seq=seq,
                )
                await self._reply(writer, STATUS_OK)
                continue
            if seq != watermark + 1:
                exc = WireFormatError(
                    "frame %d skips ahead of watermark %d for sender %s: "
                    "sequence numbers must be contiguous"
                    % (seq, watermark, sender_id.hex())
                )
                self._reject_frame("sequence_gap", sender_id, exc)
                await self._reply(writer, STATUS_WIRE_ERROR, str(exc))
                return
            try:
                # Streaming decode: each attribute block is parsed and
                # validated as it comes off the frame (payloads stay
                # read-only zero-copy views into it) — no intermediate
                # ReportBatch. Validation is contract-level and
                # identical across shards; consumers fold without
                # re-validating, and nothing folds until every block of
                # the frame has passed.
                users, blocks = iter_attribute_blocks(
                    frame, contract=self.contract
                )
                canonical = self.server.shards[0]._validate_blocks(
                    users, blocks
                )
                users = int(users)
            except ContractMismatchError as exc:
                self._reject_frame("contract_mismatch", sender_id, exc)
                await self._reply(writer, STATUS_CONTRACT_MISMATCH, str(exc))
                return
            except (WireFormatError, DimensionError, DomainError) as exc:
                self._reject_frame("invalid", sender_id, exc)
                await self._reply(writer, STATUS_WIRE_ERROR, str(exc))
                return
            # Bounded queue: blocking here is the backpressure — the
            # socket is not read (and the sender not acked) until the
            # target shard has room. The intake barrier makes
            # queue+watermark atomic with respect to checkpoint().
            async with self._intake_lock:
                shard_index = self._cursor % len(self._queues)
                queue = self._queues[shard_index]
                self._cursor += 1
                stalled = queue.full()
                if stalled:
                    self._m_stalls.inc()
                    stall_started = self._clock()
                await queue.put((users, canonical))
                if stalled:
                    self._m_stall_seconds.inc(self._clock() - stall_started)
                self._m_queue_depth.labels(shard=shard_index).set(
                    queue.qsize()
                )
                self._acked[sender_id] = seq
                self.frames_accepted += 1
                self._frames_since_checkpoint += 1
                self.users_accepted += users
                self.bytes_received += len(frame)
                self._m_frames_accepted.inc()
                self._m_users_accepted.inc(users)
                self._m_bytes_received.inc(len(frame))
                if users == 0:
                    self.heartbeats += 1
                    self._m_heartbeats.inc()
                for listener in self._frame_listeners:
                    listener()
            emit(
                self._log,
                "frame_accepted",
                level=logging.DEBUG,
                sender_id=sender_id.hex(),
                seq=seq,
                users=users,
                shard=shard_index,
            )
            if self._frame_checkpoint_due():
                # Durable BEFORE the ack: once the sender hears OK, the
                # frames that triggered this checkpoint survive SIGKILL.
                try:
                    await self.checkpoint()
                # repro: allow[broad-except] -- poison rationale: the
                # frame-triggered checkpoint is durable-BEFORE-ack; any
                # failure must refuse the frame and poison the gateway so
                # no sender hears OK for un-durable frames.
                except Exception as exc:
                    emit(
                        self._log,
                        "checkpoint_failed",
                        level=logging.ERROR,
                        trigger="frames",
                        error=str(exc),
                    )
                    self._poison(exc)
                    self._reject_frame("checkpoint_failed", sender_id, exc)
                    await self._reply(
                        writer,
                        STATUS_TRANSPORT_ERROR,
                        "gateway checkpoint failed: %s" % exc,
                    )
                    return
            if self._progress is not None:
                self._progress.set()
            self._m_ack_latency.observe(self._clock() - received_at)
            await self._reply(writer, STATUS_OK)

    def _reject_frame(
        self, reason: str, sender_id: bytes, error: Exception
    ) -> None:
        self.frames_rejected += 1
        self._m_frames_rejected.labels(reason=reason).inc()
        emit(
            self._log,
            "frame_rejected",
            level=logging.WARNING,
            reason=reason,
            sender_id=sender_id.hex(),
            detail=str(error),
        )

    # ------------------------------------------------------------- telemetry

    def stats_snapshot(self) -> Dict[str, Any]:
        """The gateway's counters and full metric registry as a plain dict.

        This is exactly what the ``STATS`` socket request serves (see
        :func:`~repro.transport.request_stats`) and what the CLI's
        ``--metrics PATH`` writes on exit. ``counters`` are the plain
        authoritative integers; ``metrics`` is the registry snapshot
        (histograms, time-weighted gauges, labelled families) and
        ``rejections_total`` sums frame and handshake rejections so a
        clean round is a single zero check.
        """
        counters = {
            "frames_accepted": self.frames_accepted,
            "frames_rejected": self.frames_rejected,
            "frames_deduped": self.frames_deduped,
            "handshakes_rejected": self.handshakes_rejected,
            "rejections_total": self.frames_rejected + self.handshakes_rejected,
            "users_accepted": self.users_accepted,
            "users_folded": self.server.users,
            "bytes_received": self.bytes_received,
            "heartbeats": self.heartbeats,
            "checkpoints_written": self.checkpoints_written,
        }
        return {
            "counters": counters,
            "metrics": self.telemetry.snapshot(),
        }

    # -------------------------------------------------------------- results

    @property
    def users(self) -> int:
        """Users folded into the shards so far (drained frames only)."""
        return self.server.users

    def _check_folds(self) -> None:
        if self._fold_error is not None:
            raise TransportError(
                "a shard consumer failed mid-round; the aggregate is "
                "incomplete and cannot be served: %s" % self._fold_error
            ) from self._fold_error

    def merged(self) -> LDPServer:
        """Fold all shard states into one fresh server (after a drain)."""
        self._check_folds()
        return self.server.merged()

    def estimate(
        self, postprocess: Optional[Postprocessor] = None
    ) -> SessionEstimate:
        """Merged estimates over everything folded so far.

        Call after :meth:`stop` (or :meth:`drain`) to cover every
        acknowledged frame; mid-round calls see a consistent prefix.
        Raises :class:`TransportError` if a shard consumer died
        mid-round — a partial aggregate is never served.
        """
        self._check_folds()
        return self.server.estimate(postprocess=postprocess)


async def serve_collection(
    server: ShardedServer,
    host: str = "127.0.0.1",
    port: int = 0,
    queue_depth: int = 8,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    store: Optional[CheckpointStore] = None,
    checkpoint_every_frames: Optional[int] = None,
    checkpoint_every_seconds: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
    ssl=None,
) -> CollectionGateway:
    """Start a :class:`CollectionGateway` over ``server`` on ``host:port``.

    Returns the serving gateway; ``port=0`` binds an ephemeral port
    (read it back from :attr:`CollectionGateway.port`). With ``store``
    the gateway resumes the newest intact round checkpoint before
    binding and checkpoints per the ``checkpoint_every_*`` triggers. The
    caller owns the round's lifecycle: typically
    ``await gateway.wait_for_users(n)`` (or any other completion
    signal), then ``await gateway.stop()`` and read
    :meth:`~CollectionGateway.estimate`.
    """
    gateway = CollectionGateway(
        server,
        queue_depth=queue_depth,
        max_frame_bytes=max_frame_bytes,
        store=store,
        checkpoint_every_frames=checkpoint_every_frames,
        checkpoint_every_seconds=checkpoint_every_seconds,
        metrics=metrics,
    )
    return await gateway.start(host, port, ssl=ssl)
