"""Stream framing and handshake messages of the socket transport.

Everything that travels over a collection socket is defined here, so the
gateway and the sender agree byte for byte.

Handshake (before any payload bytes flow)::

    client hello   magic b"LDPT" | u16 transport version
                   | 16B contract digest | 16B sender id
    gateway reply  magic b"LDPT" | u16 transport version
                   | 16B contract digest | u64 resume watermark
                   | status message

The gateway compares the client's digest with its own contract *first*
and answers ``STATUS_CONTRACT_MISMATCH`` (then closes) on disagreement —
a misconfigured sender is turned away before it ships a single report.
The sender symmetrically refuses a gateway whose digest differs.

The *sender id* names the logical report stream (stable across
reconnects of the same sender); the gateway's *resume watermark* is the
highest frame sequence number it has durably folded for that sender —
``0`` for a stream it has never seen. A reconnecting sender skips every
frame at or below the watermark instead of re-sending it, and the
gateway acknowledges-without-folding any duplicate that arrives anyway,
so a retried round can never double-count a report.

Data phase (client → gateway)::

    u64 sequence number | u32 length | length bytes of one encode_batch frame

Sequence numbers start at 1 and increase by exactly 1 per frame of a
sender's stream — a gap is a protocol violation (the gateway cannot know
what it missed), answered with ``STATUS_WIRE_ERROR``. Each frame is
answered by a status message (gateway → client)::

    u8 status | u32 message length | utf-8 message

``STATUS_OK`` acknowledges that the frame was decoded, validated against
the contract, and handed to a shard consumer — and, on a checkpointing
gateway, that every checkpoint the frame triggered is durable. Error
statuses carry the server-side diagnostic and map back onto the
library's typed exceptions via :func:`raise_for_status`; after reporting
one the gateway closes the connection (a stream that produced malformed
bytes cannot be trusted to stay in frame). A client ends its stream by
half-closing the connection (EOF instead of a frame header).

Federation ``STATE`` pushes (:mod:`repro.federation`) reuse the same
framing with the roles renamed: the hello opens with ``STATE_MAGIC`` and
carries the *edge id* in the sender-id field, the reply's watermark is
the highest *epoch* the root has folded durably, and each data-phase
frame is ``u64 epoch | u32 length | one encoded state-push payload`` —
acknowledged by the same status messages.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional, Tuple

from ..exceptions import ContractMismatchError, TransportError, WireFormatError
from ..wire.contract import DIGEST_SIZE

#: Magic opening both handshake messages (distinct from the wire codec's
#: ``LDPW`` so a frame accidentally sent first is caught immediately).
TRANSPORT_MAGIC = b"LDPT"

#: Magic opening a ``STATS`` control request: a hello-sized message with
#: this magic (digest and sender-id fields zeroed) asks the gateway for
#: its live telemetry snapshot instead of opening a report stream. The
#: gateway answers with a normal hello reply whose status message is the
#: JSON snapshot, then closes.
STATS_MAGIC = b"LDPS"

#: Magic opening a federation ``STATE`` push stream: a hello-sized
#: message whose sender-id field carries the *edge id* announces an edge
#: aggregator shipping merged ``state_dict`` snapshots upstream instead
#: of individual report frames. The root answers with a normal hello
#: reply whose resume watermark is the highest *epoch* it has durably
#: folded for that edge — the same dedup contract report streams get,
#: lifted one tier up (see :mod:`repro.federation`).
STATE_MAGIC = b"LDPU"

#: Version of the socket transport (handshake + framing), independent of
#: the wire codec version embedded in every payload frame. Version 2
#: added sender ids, frame sequence numbers and the resume watermark;
#: version 3 added the federation ``STATE`` push stream (edge
#: aggregators shipping epoch-numbered merged snapshots upstream).
TRANSPORT_VERSION = 3

#: Bytes naming one logical report stream across reconnects.
SENDER_ID_SIZE = 16

#: Frames longer than this are rejected before allocation — a corrupted
#: or hostile length prefix must not balloon gateway memory.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Status messages longer than this are a protocol violation — a broken
#: peer's length field must not balloon sender memory either.
MAX_STATUS_BYTES = 1024 * 1024

STATUS_OK = 0
STATUS_WIRE_ERROR = 1
STATUS_CONTRACT_MISMATCH = 2
STATUS_TRANSPORT_ERROR = 3

HELLO = struct.Struct("<4sH%ds%ds" % (DIGEST_SIZE, SENDER_ID_SIZE))
HELLO_REPLY = struct.Struct("<4sH%dsQ" % DIGEST_SIZE)
_FRAME_HEAD = struct.Struct("<QI")
_STATUS_HEAD = struct.Struct("<BI")


def pack_status(status: int, message: str = "") -> bytes:
    """Serialize one status message (ack or typed rejection)."""
    body = message.encode("utf-8")
    return _STATUS_HEAD.pack(status, len(body)) + body


async def read_status(reader: asyncio.StreamReader) -> Tuple[int, str]:
    """Read one status message; :class:`TransportError` on a dropped peer."""
    try:
        status, length = _STATUS_HEAD.unpack(
            await reader.readexactly(_STATUS_HEAD.size)
        )
        if length > MAX_STATUS_BYTES:
            raise TransportError(
                "peer announced a %d-byte status message (limit %d): not "
                "speaking this protocol" % (length, MAX_STATUS_BYTES)
            )
        body = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise TransportError(
            "connection closed while waiting for a gateway response: %s" % exc
        ) from None
    return status, body.decode("utf-8", errors="replace")


def raise_for_status(status: int, message: str) -> None:
    """Map a non-OK status back onto the library's typed exceptions."""
    if status == STATUS_OK:
        return
    if status == STATUS_WIRE_ERROR:
        raise WireFormatError(message)
    if status == STATUS_CONTRACT_MISMATCH:
        raise ContractMismatchError(message)
    raise TransportError(
        message or "gateway reported transport failure (status %d)" % status
    )


def write_frame(writer: asyncio.StreamWriter, seq: int, payload: bytes) -> None:
    """Queue one sequenced frame on the stream (await ``drain()``)."""
    writer.write(_FRAME_HEAD.pack(seq, len(payload)))
    writer.write(payload)


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int
) -> Optional[Tuple[int, bytes]]:
    """Read one sequenced frame as ``(seq, payload)``.

    Returns ``None`` on a clean end of stream (EOF instead of a frame
    header — how senders finish a round). Raises
    :class:`WireFormatError` for an over-limit length prefix or a zero
    sequence number, and :class:`TransportError` for a connection
    dropped mid-frame.
    """
    try:
        head = await reader.readexactly(_FRAME_HEAD.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TransportError(
            "connection closed mid-header (%d of %d bytes)"
            % (len(exc.partial), _FRAME_HEAD.size)
        ) from None
    except ConnectionError as exc:
        raise TransportError("connection lost: %s" % exc) from None
    seq, length = _FRAME_HEAD.unpack(head)
    if seq == 0:
        raise WireFormatError(
            "frame sequence numbers start at 1; 0 is reserved for "
            "a stream with nothing acknowledged"
        )
    if length > max_frame_bytes:
        raise WireFormatError(
            "frame of %d bytes exceeds the transport limit of %d"
            % (length, max_frame_bytes)
        )
    try:
        return seq, await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise TransportError(
            "connection closed mid-frame: %s" % exc
        ) from None
