"""Name-based dataset loader used by experiments and the CLI.

Mirrors :mod:`repro.mechanisms.registry`: every experiment configuration
refers to its dataset by the paper's name ("gaussian", "poisson",
"uniform", "cov19"), optionally overriding the user/dimension counts for
scaled-down runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..rng import RngLike
from .covid import COV19_DIMS, COV19_USERS, cov19_like
from .synthetic import (
    GAUSSIAN_DIMS,
    GAUSSIAN_USERS,
    POISSON_DIMS,
    POISSON_USERS,
    UNIFORM_DIMS,
    UNIFORM_USERS,
    discretized_uniform_dataset,
    gaussian_dataset,
    poisson_dataset,
    uniform_dataset,
)

DatasetFactory = Callable[[int, int, RngLike], np.ndarray]

#: Paper-default shapes per dataset name.
PAPER_SHAPES: Dict[str, tuple] = {
    "gaussian": (GAUSSIAN_USERS, GAUSSIAN_DIMS),
    "poisson": (POISSON_USERS, POISSON_DIMS),
    "uniform": (UNIFORM_USERS, UNIFORM_DIMS),
    "cov19": (COV19_USERS, COV19_DIMS),
    "discretized_uniform": (UNIFORM_USERS, UNIFORM_DIMS),
}

_FACTORIES: Dict[str, DatasetFactory] = {
    "gaussian": lambda n, d, rng: gaussian_dataset(n, d, rng=rng),
    "poisson": lambda n, d, rng: poisson_dataset(n, d, rng=rng),
    "uniform": lambda n, d, rng: uniform_dataset(n, d, rng=rng),
    "cov19": lambda n, d, rng: cov19_like(n, d, rng=rng),
    "discretized_uniform": lambda n, d, rng: discretized_uniform_dataset(
        n, d, rng=rng
    ),
}


def available_datasets() -> List[str]:
    """Sorted names accepted by :func:`load_dataset`."""
    return sorted(_FACTORIES)


def load_dataset(
    name: str,
    users: Optional[int] = None,
    dimensions: Optional[int] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Generate the named dataset, defaulting to the paper's shape.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    users, dimensions:
        Optional overrides of the paper-default shape (used by the
        scaled-down benchmark harness).
    rng:
        Seed or generator.
    """
    key = name.lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise KeyError(
            "unknown dataset %r; available: %s"
            % (name, ", ".join(available_datasets()))
        ) from None
    default_users, default_dims = PAPER_SHAPES[key]
    return factory(users or default_users, dimensions or default_dims, rng)
