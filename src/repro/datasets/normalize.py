"""Column normalization helpers.

The paper normalizes every dimension into ``[−1, 1]`` before collection
(Section VI). These helpers perform per-column min-max normalization to an
arbitrary target interval and keep the inverse transform available so
estimates can be mapped back to original units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import DomainError


@dataclass(frozen=True)
class ColumnScaler:
    """Invertible per-column min-max map onto a target interval.

    Attributes
    ----------
    minima / maxima:
        Observed per-column extremes of the fitted data.
    target:
        The interval columns are mapped onto.
    """

    minima: np.ndarray
    maxima: np.ndarray
    target: Tuple[float, float]

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Map ``data`` columns onto the target interval."""
        lo, hi = self.target
        span = self.maxima - self.minima
        unit = (np.asarray(data, dtype=np.float64) - self.minima) / span
        return lo + unit * (hi - lo)

    def inverse(self, data: np.ndarray) -> np.ndarray:
        """Map normalized values back to original units."""
        lo, hi = self.target
        unit = (np.asarray(data, dtype=np.float64) - lo) / (hi - lo)
        return self.minima + unit * (self.maxima - self.minima)


def fit_scaler(
    data: np.ndarray, target: Tuple[float, float] = (-1.0, 1.0)
) -> ColumnScaler:
    """Fit a :class:`ColumnScaler` on an ``(n, d)`` matrix.

    Raises
    ------
    DomainError
        If any column is constant (zero range cannot be normalized) or the
        target interval is degenerate.
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DomainError("data must be an (n, d) matrix")
    lo, hi = target
    if not hi > lo:
        raise DomainError("target interval must be non-degenerate")
    minima = matrix.min(axis=0)
    maxima = matrix.max(axis=0)
    if np.any(maxima - minima <= 0):
        constant = int(np.sum(maxima - minima <= 0))
        raise DomainError("%d constant column(s) cannot be normalized" % constant)
    return ColumnScaler(minima=minima, maxima=maxima, target=(float(lo), float(hi)))


def normalize(
    data: np.ndarray, target: Tuple[float, float] = (-1.0, 1.0)
) -> np.ndarray:
    """One-shot per-column min-max normalization onto ``target``."""
    return fit_scaler(data, target).transform(data)
