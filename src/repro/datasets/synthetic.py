"""Synthetic datasets matching the paper's Section VI specifications.

Three generators, with the paper's parameters as defaults:

* :func:`gaussian_dataset` — "The standard deviation of all dimensions is
  set to 1/16. 10% dimensions have their mathematical expectations
  µ = 0.9 whereas the other 90% have µ = 0." Values are clipped into
  ``[−1, 1]`` (σ = 1/16 makes clipping negligible).
* :func:`poisson_dataset` — "each dimension follows a Poisson distribution
  with a random expectation from 1 to 99", then min-max normalized into
  ``[−1, 1]`` as the paper does with all data.
* :func:`uniform_dataset` — tunable users and dimensions, uniform on
  ``[−1, 1]``.

All generators return ``float64`` matrices of shape ``(users,
dimensions)`` ready for the collection pipelines.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionError
from ..rng import RngLike, ensure_rng
from .normalize import normalize

#: Paper defaults for the Gaussian dataset sweep (Fig. 4 a–c).
GAUSSIAN_USERS, GAUSSIAN_DIMS = 100_000, 100

#: Paper defaults for the Poisson dataset (Fig. 4 d–f).
POISSON_USERS, POISSON_DIMS = 150_000, 300

#: Paper defaults for the Uniform dataset sweep (Fig. 4 g–i).
UNIFORM_USERS, UNIFORM_DIMS = 120_000, 500


def _check_shape(users: int, dimensions: int) -> None:
    if users < 1 or dimensions < 1:
        raise DimensionError(
            "users and dimensions must be >= 1, got (%d, %d)" % (users, dimensions)
        )


def gaussian_dataset(
    users: int = GAUSSIAN_USERS,
    dimensions: int = GAUSSIAN_DIMS,
    high_mean: float = 0.9,
    high_fraction: float = 0.1,
    std: float = 1.0 / 16.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Sparse-signal Gaussian dataset (paper Section VI, item 2).

    A ``high_fraction`` share of the dimensions carries mean
    ``high_mean``; the rest are centred at zero. This is the dataset on
    which L1's sparsification is expected to shine: most true means are
    exactly the kind of near-zero signal the soft threshold suppresses.
    """
    _check_shape(users, dimensions)
    if not 0.0 <= high_fraction <= 1.0:
        raise DimensionError("high_fraction must lie in [0, 1]")
    gen = ensure_rng(rng)
    n_high = int(round(high_fraction * dimensions))
    means = np.zeros(dimensions)
    means[:n_high] = high_mean
    gen.shuffle(means)
    data = gen.normal(loc=means[None, :], scale=std, size=(users, dimensions))
    return np.clip(data, -1.0, 1.0)


def poisson_dataset(
    users: int = POISSON_USERS,
    dimensions: int = POISSON_DIMS,
    min_rate: float = 1.0,
    max_rate: float = 99.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Poisson dataset with per-dimension random rates (Section VI, item 3)."""
    _check_shape(users, dimensions)
    if not 0 < min_rate <= max_rate:
        raise DimensionError("need 0 < min_rate <= max_rate")
    gen = ensure_rng(rng)
    rates = gen.uniform(min_rate, max_rate, size=dimensions)
    data = gen.poisson(lam=rates[None, :], size=(users, dimensions)).astype(np.float64)
    return normalize(data)


def uniform_dataset(
    users: int = UNIFORM_USERS,
    dimensions: int = UNIFORM_DIMS,
    rng: RngLike = None,
) -> np.ndarray:
    """Uniform dataset on ``[−1, 1]`` (Section VI, item 4)."""
    _check_shape(users, dimensions)
    gen = ensure_rng(rng)
    return gen.uniform(-1.0, 1.0, size=(users, dimensions))


def discretized_uniform_dataset(
    users: int,
    dimensions: int,
    levels: int = 10,
    rng: RngLike = None,
) -> np.ndarray:
    """Uniform draws over the case-study grid ``{0.1, 0.2, …, 1.0}``.

    Used by the Fig. 3 validation, which discretizes the Uniform dataset
    to match the Section IV-C case study exactly.
    """
    _check_shape(users, dimensions)
    if levels < 1:
        raise DimensionError("levels must be >= 1, got %d" % levels)
    gen = ensure_rng(rng)
    grid = np.linspace(0.1, 1.0, levels)
    return gen.choice(grid, size=(users, dimensions))
