"""Dataset generators for the paper's Section VI evaluation.

Four datasets are provided: ``gaussian``, ``poisson``, ``uniform`` (per
the paper's synthetic specs) and ``cov19`` (a correlated latent-factor
stand-in for the unavailable Kaggle-derived COV-19 data; see DESIGN.md
§3). :func:`load_dataset` resolves them by name with the paper-default
shapes.
"""

from .covid import (
    COV19_DIMS,
    COV19_USERS,
    cov19_like,
    mean_absolute_correlation,
    resample_dimensions,
)
from .loader import PAPER_SHAPES, available_datasets, load_dataset
from .normalize import ColumnScaler, fit_scaler, normalize
from .synthetic import (
    GAUSSIAN_DIMS,
    GAUSSIAN_USERS,
    POISSON_DIMS,
    POISSON_USERS,
    UNIFORM_DIMS,
    UNIFORM_USERS,
    discretized_uniform_dataset,
    gaussian_dataset,
    poisson_dataset,
    uniform_dataset,
)

__all__ = [
    "COV19_DIMS",
    "COV19_USERS",
    "ColumnScaler",
    "GAUSSIAN_DIMS",
    "GAUSSIAN_USERS",
    "PAPER_SHAPES",
    "POISSON_DIMS",
    "POISSON_USERS",
    "UNIFORM_DIMS",
    "UNIFORM_USERS",
    "available_datasets",
    "cov19_like",
    "discretized_uniform_dataset",
    "fit_scaler",
    "gaussian_dataset",
    "load_dataset",
    "mean_absolute_correlation",
    "normalize",
    "poisson_dataset",
    "resample_dimensions",
    "uniform_dataset",
]
