"""Synthetic stand-in for the paper's COV-19 dataset.

The paper evaluates on a 150,000-user × 750-dimension dataset derived from
the Kaggle CORD-19 corpus, described only as "each dimension has high
correlations with others". The corpus is unavailable offline and the
paper's feature-extraction step is unspecified, so we substitute a
latent-factor generator that reproduces the two properties the experiments
actually rely on (see DESIGN.md §3):

* dimensionality — 750 columns by default, and Fig. 5's 50–1600 range is
  reached by resampling columns exactly as the paper does ("we randomly
  sample some dimensions from COV-19 dataset to make up" d = 1600);
* strong inter-dimension correlation — every column is a random mixture of
  a small number of shared latent factors plus idiosyncratic noise, giving
  high pairwise |correlation| across columns.

Columns are min-max normalized into ``[−1, 1]`` as in Section VI.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionError
from ..rng import RngLike, ensure_rng
from .normalize import normalize

#: Paper-reported shape of the COV-19 dataset.
COV19_USERS, COV19_DIMS = 150_000, 750


def cov19_like(
    users: int = COV19_USERS,
    dimensions: int = COV19_DIMS,
    n_factors: int = 8,
    noise: float = 0.15,
    rng: RngLike = None,
) -> np.ndarray:
    """Generate the correlated COV-19 stand-in dataset.

    Parameters
    ----------
    users, dimensions:
        Output shape; defaults to the paper's 150,000 × 750.
    n_factors:
        Number of shared latent factors; fewer factors → stronger
        cross-column correlation.
    noise:
        Idiosyncratic noise scale relative to unit-variance factors.
    rng:
        Seed or generator.
    """
    if users < 1 or dimensions < 1:
        raise DimensionError(
            "users and dimensions must be >= 1, got (%d, %d)" % (users, dimensions)
        )
    if n_factors < 1:
        raise DimensionError("n_factors must be >= 1, got %d" % n_factors)
    if noise < 0:
        raise DimensionError("noise must be non-negative, got %g" % noise)
    gen = ensure_rng(rng)
    factors = gen.normal(size=(users, n_factors))
    loadings = gen.normal(size=(n_factors, dimensions))
    data = factors @ loadings
    if noise > 0:
        data += gen.normal(scale=noise, size=(users, dimensions))
    return normalize(data)


def resample_dimensions(
    data: np.ndarray, dimensions: int, rng: RngLike = None
) -> np.ndarray:
    """Column-resample ``data`` to an arbitrary dimensionality (Fig. 5).

    When ``dimensions`` exceeds the available columns, columns are sampled
    with replacement — the paper's trick for reaching d = 1600 from the
    750-column COV-19 dataset; otherwise a without-replacement subset is
    drawn.
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DimensionError("data must be an (n, d) matrix")
    if dimensions < 1:
        raise DimensionError("dimensions must be >= 1, got %d" % dimensions)
    gen = ensure_rng(rng)
    available = matrix.shape[1]
    replace = dimensions > available
    chosen = gen.choice(available, size=dimensions, replace=replace)
    return matrix[:, chosen]


def mean_absolute_correlation(data: np.ndarray, max_columns: int = 64,
                              rng: RngLike = None) -> float:
    """Average |pairwise correlation| over a column subsample.

    Diagnostic used in tests to assert the stand-in really is "highly
    correlated" (and that independent generators are not).
    """
    gen = ensure_rng(rng)
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.shape[1] > max_columns:
        cols = gen.choice(matrix.shape[1], size=max_columns, replace=False)
        matrix = matrix[:, cols]
    corr = np.corrcoef(matrix, rowvar=False)
    off_diagonal = corr[~np.eye(corr.shape[0], dtype=bool)]
    return float(np.mean(np.abs(off_diagonal)))
