"""The LDP collection protocol substrate (Section III-B).

Public surface:

* :class:`BudgetPlan` — ``ε/m`` and ``ε/2m`` budget arithmetic;
* :class:`Client` / :class:`Report` — reference user-side implementation;
* :class:`Aggregator` / :class:`AggregationResult` — streaming collector;
* :class:`MeanEstimationPipeline` — vectorized end-to-end simulation, plus
  the bridge to the Theorem 1 deviation model and HDR4ME;
* :class:`FrequencyEstimationPipeline` — the Section V-C analogue.
"""

from .allocation import (
    BudgetAllocation,
    SignalProportionalAllocation,
    UniformAllocation,
    WeightedAllocation,
    allocated_pipeline_run,
)
from .budget import BudgetPlan
from .client import Client, Report
from .moments import VarianceEstimate, VarianceEstimationPipeline, true_variance
from .pipeline import (
    DEFAULT_CHUNK_SIZE,
    FrequencyEstimationPipeline,
    MeanEstimationPipeline,
    PipelineResult,
    build_populations,
)
from .server import AggregationResult, Aggregator
from .setvalued import PaddingAndSampling, SetValuedEstimate, item_frequencies

__all__ = [
    "AggregationResult",
    "Aggregator",
    "BudgetAllocation",
    "BudgetPlan",
    "Client",
    "DEFAULT_CHUNK_SIZE",
    "FrequencyEstimationPipeline",
    "MeanEstimationPipeline",
    "PaddingAndSampling",
    "PipelineResult",
    "Report",
    "SetValuedEstimate",
    "SignalProportionalAllocation",
    "UniformAllocation",
    "VarianceEstimate",
    "VarianceEstimationPipeline",
    "WeightedAllocation",
    "allocated_pipeline_run",
    "build_populations",
    "item_frequencies",
    "true_variance",
]
