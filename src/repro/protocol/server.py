"""Collector-side of the LDP protocol: aggregation and calibration.

The :class:`Aggregator` implements the paper's framework steps 2–3
(Calibration and Aggregation): it accumulates perturbed reports per
dimension, subtracts any *deterministic* mechanism bias (``δ_ij`` of the
framework — zero for every unbiased mechanism; data-dependent biases such
as the square wave's cannot be removed pointwise and are deliberately left
in, exactly as the paper's deviation models assume), and averages into the
estimated mean ``θ̂``.

Aggregation is streaming — reports can arrive one at a time or in bulk
matrices — so the memory footprint is ``O(d)`` regardless of ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import AggregationError, DimensionError
from ..mechanisms.base import Mechanism
from .budget import BudgetPlan
from .client import Report


@dataclass(frozen=True)
class AggregationResult:
    """The collector's output for one collection round.

    Attributes
    ----------
    theta_hat:
        Estimated mean per dimension (calibrated where possible).
    report_counts:
        Number of reports received per dimension (``r_j``).
    epsilon_per_dimension:
        Budget each report spent per dimension.
    """

    theta_hat: np.ndarray
    report_counts: np.ndarray
    epsilon_per_dimension: float

    @property
    def dimensions(self) -> int:
        """Number of aggregated dimensions ``d``."""
        return int(self.theta_hat.size)

    @property
    def min_reports(self) -> int:
        """Smallest per-dimension report count (framework ``r``)."""
        return int(self.report_counts.min())


class Aggregator:
    """Streaming per-dimension aggregation with deterministic calibration.

    Parameters
    ----------
    mechanism:
        The mechanism the reports were perturbed with (needed only for its
        deterministic bias; the raw values are never re-perturbed).
    plan:
        The shared budget plan.
    """

    def __init__(self, mechanism: Mechanism, plan: BudgetPlan) -> None:
        self.mechanism = mechanism
        self.plan = plan
        self._sums = np.zeros(plan.dimensions, dtype=np.float64)
        self._counts = np.zeros(plan.dimensions, dtype=np.int64)

    # ------------------------------------------------------------- ingestion

    def add_report(self, report: Report) -> None:
        """Ingest a single user's :class:`Report`."""
        dims = report.dimensions
        if dims.size and (dims.min() < 0 or dims.max() >= self.plan.dimensions):
            raise DimensionError(
                "report touches dimension outside [0, %d)" % self.plan.dimensions
            )
        np.add.at(self._sums, dims, report.values)
        np.add.at(self._counts, dims, 1)

    def add_matrix(
        self, perturbed: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> None:
        """Ingest a dense batch of perturbed tuples.

        Parameters
        ----------
        perturbed:
            ``(batch, d)`` matrix of perturbed values.
        mask:
            Optional boolean ``(batch, d)`` matrix; ``True`` marks entries
            actually reported (``m < d`` sampling). ``None`` means every
            entry was reported (``m = d``).
        """
        block = np.asarray(perturbed, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != self.plan.dimensions:
            raise DimensionError(
                "expected (batch, %d) matrix, got %s"
                % (self.plan.dimensions, block.shape)
            )
        if mask is None:
            self._sums += block.sum(axis=0)
            self._counts += block.shape[0]
            return
        mask_arr = np.asarray(mask, dtype=bool)
        if mask_arr.shape != block.shape:
            raise DimensionError("mask shape %s != data shape %s"
                                 % (mask_arr.shape, block.shape))
        self._sums += np.where(mask_arr, block, 0.0).sum(axis=0)
        self._counts += mask_arr.sum(axis=0)

    # ------------------------------------------------------------ estimation

    @property
    def report_counts(self) -> np.ndarray:
        """Copy of the per-dimension report counts so far."""
        return self._counts.copy()

    def aggregate(self) -> AggregationResult:
        """Average (and calibrate) the accumulated reports into ``θ̂``.

        Raises
        ------
        AggregationError
            If any dimension received no reports at all.
        """
        if np.any(self._counts == 0):
            missing = int(np.sum(self._counts == 0))
            raise AggregationError(
                "%d dimension(s) received no reports; increase n or m" % missing
            )
        theta_hat = self._sums / self._counts
        eps = self.plan.epsilon_per_dimension
        bias = self.mechanism.deterministic_bias(eps)
        if bias:
            theta_hat = theta_hat - bias
        return AggregationResult(
            theta_hat=theta_hat,
            report_counts=self._counts.copy(),
            epsilon_per_dimension=eps,
        )

    def reset(self) -> None:
        """Discard all accumulated reports (start a new round)."""
        self._sums.fill(0.0)
        self._counts.fill(0)
