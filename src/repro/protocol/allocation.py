"""Non-uniform privacy-budget allocation across dimensions.

The paper's protocol splits the budget uniformly (``ε/m`` per reported
dimension) and its related-work section surveys the alternative stream:
correlation/entropy-driven allocation (Chatzikokolakis et al., Li et al.,
Du et al.), where dimensions deemed more important receive more budget.
This module implements that axis as a pluggable strategy so the
uniform-vs-weighted trade-off can be studied inside the same framework
(see ``benchmarks/bench_allocation.py``):

* :class:`UniformAllocation` — the paper's default;
* :class:`WeightedAllocation` — budget proportional to caller-supplied
  importance weights;
* :class:`SignalProportionalAllocation` — weights from a public prior on
  per-dimension signal magnitude (a stand-in for the entropy/covariance
  heuristics of the cited works, which assume the same kind of prior).

All strategies preserve the invariant ``Σ_j ε_j = ε`` over the reported
dimensions, so the composed guarantee is still ε-LDP. Because each
dimension then carries its own budget, allocation is supported for the
full-reporting configuration (``m = d``) — the one the paper's Fig. 4/5
experiments use; with subset sampling the per-user renormalization would
change the protocol itself.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..exceptions import DimensionError, PrivacyBudgetError
from ..mechanisms.base import validate_epsilon

#: Smallest fraction of the uniform share any dimension may receive;
#: prevents a zero-budget dimension (whose estimate would be pure noise
#: of infinite scale for unbounded mechanisms).
MIN_SHARE_FRACTION = 0.01


class BudgetAllocation(abc.ABC):
    """Strategy mapping a collective budget to per-dimension budgets."""

    name: str = "abstract"

    @abc.abstractmethod
    def allocate(self, epsilon: float, dimensions: int) -> np.ndarray:
        """Return a length-``d`` vector of per-dimension budgets.

        The vector must be positive and sum to ``epsilon``.
        """

    def _validate(self, epsilon: float, dimensions: int) -> float:
        eps = validate_epsilon(epsilon)
        if dimensions < 1:
            raise DimensionError("dimensions must be >= 1, got %d" % dimensions)
        return eps


class UniformAllocation(BudgetAllocation):
    """The paper's default: ``ε/d`` everywhere."""

    name = "uniform"

    def allocate(self, epsilon: float, dimensions: int) -> np.ndarray:
        eps = self._validate(epsilon, dimensions)
        return np.full(dimensions, eps / dimensions)


class WeightedAllocation(BudgetAllocation):
    """Budget proportional to explicit importance weights.

    Parameters
    ----------
    weights:
        Non-negative importance per dimension; zero-weight dimensions are
        floored at ``MIN_SHARE_FRACTION`` of the uniform share so every
        estimate stays finite.
    """

    name = "weighted"

    def __init__(self, weights: np.ndarray) -> None:
        arr = np.asarray(weights, dtype=np.float64).ravel()
        if arr.size == 0:
            raise DimensionError("weights must be non-empty")
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise PrivacyBudgetError("weights must be finite and non-negative")
        if arr.sum() <= 0:
            raise PrivacyBudgetError("weights must not be all zero")
        self.weights = arr

    def allocate(self, epsilon: float, dimensions: int) -> np.ndarray:
        eps = self._validate(epsilon, dimensions)
        if self.weights.size != dimensions:
            raise DimensionError(
                "weights have %d entries for %d dimensions"
                % (self.weights.size, dimensions)
            )
        floor = MIN_SHARE_FRACTION * eps / dimensions
        raw = self.weights / self.weights.sum() * eps
        floored = np.maximum(raw, floor)
        # Renormalize so the composition invariant holds exactly.
        return floored / floored.sum() * eps


class SignalProportionalAllocation(BudgetAllocation):
    """Weights from a public prior on per-dimension signal magnitude.

    Given a prior mean vector (e.g. from a public dataset or an earlier
    low-budget round), dimensions with larger expected |mean| receive
    proportionally more budget — the intuition behind the cited
    entropy/covariance allocation heuristics.

    Parameters
    ----------
    prior_mean:
        Prior per-dimension means.
    temperature:
        Exponent applied to |prior|; 0 recovers uniform, larger values
        concentrate budget on the strongest dimensions.
    """

    name = "signal_proportional"

    def __init__(self, prior_mean: np.ndarray, temperature: float = 1.0) -> None:
        if temperature < 0:
            raise PrivacyBudgetError(
                "temperature must be non-negative, got %g" % temperature
            )
        self._delegate = WeightedAllocation(
            np.abs(np.asarray(prior_mean, dtype=np.float64)) ** temperature
            + 1e-12
        )

    def allocate(self, epsilon: float, dimensions: int) -> np.ndarray:
        return self._delegate.allocate(epsilon, dimensions)


def allocated_pipeline_run(
    mechanism,
    data: np.ndarray,
    epsilon: float,
    allocation: Optional[BudgetAllocation] = None,
    rng=None,
    chunk_size: int = 8192,
):
    """Run a full-reporting collection round under a budget allocation.

    A thin sibling of :class:`~repro.protocol.pipeline.MeanEstimationPipeline`
    for the ``m = d`` configuration with per-dimension budgets: each
    column ``j`` is perturbed with its own ``ε_j`` and averaged.

    Returns
    -------
    tuple
        ``(theta_hat, per_dimension_epsilons)``.
    """
    from ..rng import ensure_rng

    gen = ensure_rng(rng)
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DimensionError("data must be an (n, d) matrix")
    users, dimensions = matrix.shape
    strategy = allocation or UniformAllocation()
    epsilons = strategy.allocate(epsilon, dimensions)

    sums = np.zeros(dimensions)
    for start in range(0, users, chunk_size):
        chunk = matrix[start : start + chunk_size]
        for j in range(dimensions):
            sums[j] += mechanism.perturb(chunk[:, j], epsilons[j], gen).sum()
    theta_hat = sums / users
    bias_free = np.array(
        [mechanism.deterministic_bias(eps) or 0.0 for eps in epsilons]
    )
    return theta_hat - bias_free, epsilons
