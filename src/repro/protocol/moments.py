"""Variance estimation under LDP (the paper's "other statistics" future work).

The conclusion names "other statistics estimation" as future work; the
natural first statistic beyond the mean is the per-dimension variance,
``Var_j = E[t_j²] − E[t_j]²``. This module implements the standard
budget-split reduction: each user spends ``ε/2`` reporting her value and
``ε/2`` reporting its square (mapped from ``[0, 1]`` back to the
mechanism's domain), both through the existing mean-estimation pipeline —
so the analytical framework and HDR4ME apply to *both* moment vectors,
and the re-calibrated moments compose into a re-calibrated variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import DimensionError
from ..hdr4me.recalibrator import Recalibrator
from ..mechanisms.base import AffineTransformedMechanism, Mechanism
from ..rng import RngLike, ensure_rng
from .pipeline import MeanEstimationPipeline


def true_variance(data: np.ndarray) -> np.ndarray:
    """Exact per-dimension population variance (evaluation ground truth)."""
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DimensionError("data must be an (n, d) matrix")
    return matrix.var(axis=0)


@dataclass(frozen=True)
class VarianceEstimate:
    """Outcome of one variance-estimation round.

    Attributes
    ----------
    mean / second_moment:
        The two estimated moment vectors (after any re-calibration).
    variance:
        ``second_moment − mean²``, clipped below at zero (a valid
        variance can never be negative; perturbation noise can push the
        raw difference below zero).
    """

    mean: np.ndarray
    second_moment: np.ndarray
    variance: np.ndarray


class VarianceEstimationPipeline:
    """Two-phase ε-LDP variance estimation for ``[−1, 1]`` data.

    Parameters
    ----------
    mechanism:
        Any mechanism on the standard domain; its square-reporting phase
        runs through an affine adapter on ``[0, 1]`` inputs.
    epsilon:
        Collective budget; split evenly between the two phases
        (sequential composition over the same user).
    dimensions:
        Data dimensionality ``d``.
    recalibrator:
        Optional HDR4ME recalibrator applied to *both* moment vectors.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        epsilon: float,
        dimensions: int,
        recalibrator: Optional[Recalibrator] = None,
    ) -> None:
        if tuple(mechanism.input_domain) != (-1.0, 1.0):
            raise DimensionError(
                "variance estimation expects a [-1, 1]-domain mechanism"
            )
        self.mechanism = mechanism
        # Squares live in [0, 1]; adapt the same mechanism to that domain.
        self.square_mechanism = AffineTransformedMechanism(mechanism, (0.0, 1.0))
        self.epsilon = float(epsilon)
        self.dimensions = int(dimensions)
        self.recalibrator = recalibrator
        half = self.epsilon / 2.0
        self._mean_pipeline = MeanEstimationPipeline(
            mechanism, half, dimensions=self.dimensions
        )
        self._square_pipeline = MeanEstimationPipeline(
            self.square_mechanism, half, dimensions=self.dimensions
        )

    def run(self, data: np.ndarray, rng: RngLike = None) -> VarianceEstimate:
        """Collect both moments and assemble the variance estimate."""
        gen = ensure_rng(rng)
        matrix = np.asarray(data, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.dimensions:
            raise DimensionError(
                "expected (n, %d) data, got %s" % (self.dimensions, matrix.shape)
            )
        users = matrix.shape[0]
        squares = matrix**2

        mean_result = self._mean_pipeline.run(matrix, gen)
        square_result = self._square_pipeline.run(squares, gen)
        mean = mean_result.theta_hat
        second = square_result.theta_hat

        if self.recalibrator is not None:
            mean_model = self._mean_pipeline.deviation_model(
                users=users,
                data=matrix if self.mechanism.bounded else None,
            )
            square_model = self._square_pipeline.deviation_model(
                users=users,
                data=squares if self.mechanism.bounded else None,
            )
            mean = self.recalibrator.recalibrate(mean, mean_model).theta_star
            second = self.recalibrator.recalibrate(
                second, square_model
            ).theta_star

        variance = np.maximum(second - mean**2, 0.0)
        return VarianceEstimate(
            mean=mean, second_moment=second, variance=variance
        )
