"""User-side of the LDP collection protocol.

A :class:`Client` performs the paper's perturbation step for one user:
uniformly sample ``m`` of the ``d`` dimensions, perturb each sampled value
with the per-dimension budget ``ε/m``, and emit a :class:`Report` carrying
only the perturbed values — the original tuple never leaves the user.

The pipeline in :mod:`repro.protocol.pipeline` uses a vectorized batch
path for speed; :class:`Client` is the reference per-user implementation
(the two are cross-checked in the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DimensionError
from ..mechanisms.base import Mechanism, validate_values
from ..rng import RngLike, ensure_rng
from .budget import BudgetPlan


@dataclass(frozen=True)
class Report:
    """One user's perturbed submission.

    Attributes
    ----------
    dimensions:
        Indices of the ``m`` sampled dimensions.
    values:
        The perturbed values, aligned with ``dimensions``.
    """

    dimensions: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        dims = np.asarray(self.dimensions, dtype=np.int64).ravel()
        vals = np.asarray(self.values, dtype=np.float64).ravel()
        if dims.shape != vals.shape:
            raise DimensionError(
                "report dimensions and values disagree: %d vs %d"
                % (dims.size, vals.size)
            )
        object.__setattr__(self, "dimensions", dims)
        object.__setattr__(self, "values", vals)


class Client:
    """Local perturbation agent for one user.

    Parameters
    ----------
    mechanism:
        The LDP mechanism to perturb with.
    plan:
        The budget plan (``ε``, ``d``, ``m``) shared with the collector.
    """

    def __init__(self, mechanism: Mechanism, plan: BudgetPlan) -> None:
        self.mechanism = mechanism
        self.plan = plan

    def report(self, tuple_values: np.ndarray, rng: RngLike = None) -> Report:
        """Sample, perturb and package one user's tuple.

        Parameters
        ----------
        tuple_values:
            The user's private ``d``-dimensional tuple.
        rng:
            Seed or generator for both the dimension sampling and the
            perturbation noise.
        """
        gen = ensure_rng(rng)
        values = validate_values(tuple_values, self.mechanism.input_domain)
        if values.ndim != 1 or values.size != self.plan.dimensions:
            raise DimensionError(
                "tuple must have %d dimensions, got shape %s"
                % (self.plan.dimensions, np.shape(tuple_values))
            )
        chosen = gen.choice(
            self.plan.dimensions, size=self.plan.sampled_dimensions, replace=False
        )
        chosen.sort()
        perturbed = self.mechanism.perturb(
            values[chosen], self.plan.epsilon_per_dimension, gen
        )
        return Report(dimensions=chosen, values=perturbed)
