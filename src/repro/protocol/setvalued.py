"""Set-valued data collection (the paper's stated future work).

The conclusion of the paper names set-valued data as the next target for
the framework. This module implements the standard padding-and-sampling
reduction (Wang et al.; LDPMiner-style): each user holds a *set* of items
from a domain of size ``v``; she pads (or truncates) it to a fixed length
``L`` with dummy items, samples one element uniformly, and reports it
through any categorical frequency oracle over the extended domain
``v + L`` (the ``L`` dummy slots absorb the padding). Because a true item
is sampled with probability (size ∧ L)/L · 1/(size ∧ L) = 1/L when
present, the collector recovers item frequencies by scaling the oracle's
estimates by ``L``.

The result is again a vector-mean estimation problem, so the deviation
models and HDR4ME compose exactly as in Section V-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import DimensionError, DomainError
from ..freq_oracles import FrequencyOracle, get_oracle
from ..framework.deviation import DeviationModel
from ..framework.multivariate import MultivariateDeviationModel
from ..hdr4me.recalibrator import Recalibrator
from ..rng import RngLike, ensure_rng


def item_frequencies(sets: Sequence[Sequence[int]], n_items: int) -> np.ndarray:
    """Exact fraction of users holding each item (evaluation ground truth)."""
    counts = np.zeros(n_items)
    for user_set in sets:
        for item in set(user_set):
            counts[item] += 1
    return counts / max(len(sets), 1)


@dataclass(frozen=True)
class SetValuedEstimate:
    """Outcome of one set-valued collection round.

    Attributes
    ----------
    frequencies:
        Estimated fraction of users holding each item (may exceed [0, 1]
        by noise; clip for presentation).
    enhanced:
        HDR4ME-re-calibrated frequencies when a recalibrator was set.
    padding_length:
        The ``L`` used; items beyond the ``L``-th of a user's set are
        truncated away (an inherent bias of the reduction, shrinking as
        ``L`` grows past typical set sizes).
    """

    frequencies: np.ndarray
    enhanced: Optional[np.ndarray]
    padding_length: int

    def best(self) -> np.ndarray:
        """Clipped enhanced (or raw) frequencies."""
        source = self.enhanced if self.enhanced is not None else self.frequencies
        return np.clip(source, 0.0, 1.0)


class PaddingAndSampling:
    """Set-valued frequency estimation via padding-and-sampling.

    Parameters
    ----------
    epsilon:
        Collective ε-LDP budget (the single sampled report carries all
        of it — sampling one item of the padded set costs no budget).
    n_items:
        Item-domain size ``v``.
    padding_length:
        The pad/truncate length ``L``.
    oracle:
        Registry name of the categorical oracle used underneath
        (default GRR; OUE/OLH for very large domains).
    recalibrator:
        Optional HDR4ME recalibrator for the frequency vector.
    """

    def __init__(
        self,
        epsilon: float,
        n_items: int,
        padding_length: int,
        oracle: str = "grr",
        recalibrator: Optional[Recalibrator] = None,
    ) -> None:
        if n_items < 1:
            raise DimensionError("n_items must be >= 1, got %d" % n_items)
        if padding_length < 1:
            raise DimensionError(
                "padding_length must be >= 1, got %d" % padding_length
            )
        self.n_items = int(n_items)
        self.padding_length = int(padding_length)
        self._oracle: FrequencyOracle = get_oracle(
            oracle, epsilon, self.n_items + self.padding_length
        )
        self.recalibrator = recalibrator

    # ------------------------------------------------------------- protocol

    def sample_items(
        self, sets: Sequence[Sequence[int]], rng: RngLike = None
    ) -> np.ndarray:
        """User side: pad/truncate each set to ``L`` and sample one label.

        Dummy slots map to labels ``v .. v+L−1``.
        """
        gen = ensure_rng(rng)
        labels = np.empty(len(sets), dtype=np.int64)
        for i, user_set in enumerate(sets):
            items = np.unique(np.asarray(list(user_set), dtype=np.int64))
            if items.size and (items.min() < 0 or items.max() >= self.n_items):
                raise DomainError(
                    "items must lie in [0, %d)" % self.n_items
                )
            if items.size > self.padding_length:
                items = gen.choice(items, size=self.padding_length, replace=False)
            slot = int(gen.integers(0, self.padding_length))
            if slot < items.size:
                labels[i] = items[slot]
            else:
                # A dummy slot; dummy identity spreads over L labels.
                labels[i] = self.n_items + slot
        return labels

    def run(
        self, sets: Sequence[Sequence[int]], rng: RngLike = None
    ) -> SetValuedEstimate:
        """Full round: sample, privatize via the oracle, estimate, scale."""
        if not sets:
            raise DimensionError("need at least one user set")
        gen = ensure_rng(rng)
        labels = self.sample_items(sets, gen)
        reports = self._oracle.privatize(labels, gen)
        extended = self._oracle.estimate(reports)
        frequencies = self.padding_length * extended[: self.n_items]

        enhanced = None
        if self.recalibrator is not None:
            enhanced = self._recalibrate(frequencies, len(sets)).theta_star
        return SetValuedEstimate(
            frequencies=frequencies,
            enhanced=enhanced,
            padding_length=self.padding_length,
        )

    # ------------------------------------------------------------ framework

    def _recalibrate(self, frequencies: np.ndarray, users: int):
        """HDR4ME with the L-scaled oracle variance per item."""
        scale = float(self.padding_length)
        models: List[DeviationModel] = []
        for frequency in np.clip(frequencies, 0.0, 1.0):
            base_var = self._oracle.estimation_variance(
                min(frequency / scale, 1.0), users
            )
            models.append(
                DeviationModel(
                    delta=0.0,
                    sigma=scale * float(np.sqrt(base_var)),
                    reports=users,
                    epsilon=self._oracle.epsilon,
                    mechanism_name="padding_sampling/%s" % self._oracle.name,
                )
            )
        return self.recalibrator.recalibrate(
            frequencies, MultivariateDeviationModel(models)
        )
