"""End-to-end simulation pipelines (users → reports → collector → mean).

Both pipelines are now thin, backward-compatible facades over the
canonical session API (:mod:`repro.session`): they build a typed
:class:`~repro.session.Schema`, drive an :class:`~repro.session.LDPClient`
in chunks and stream the resulting report batches into an
:class:`~repro.session.LDPServer`. New code should use the session API
directly — it handles mixed numeric+categorical schemas, incremental
ingestion and composable re-calibration; these classes remain for the
established experiment drivers and scripts.

:class:`MeanEstimationPipeline` reproduces the paper's collection protocol
at dataset scale: every user samples ``m`` of ``d`` dimensions, perturbs
them with ``ε/m``, and the collector aggregates into ``θ̂``. The chunking
keeps the memory footprint bounded (``chunk_size × d`` floats) so
paper-scale runs (n = 200,000, d = 5,000) fit on a laptop.

The pipeline also exposes the bridge to Section IV: given the population
value distributions of the data (or the data itself, which it discretizes),
:meth:`MeanEstimationPipeline.deviation_model` returns the Theorem 1 model
for exactly this configuration — which is what HDR4ME's λ* selection
consumes.

:class:`FrequencyEstimationPipeline` is the Section V-C analogue for
categorical data. Its users sample exactly ``m`` of the ``d`` categorical
dimensions (matching the budget split ``ε/m`` — the historical
per-dimension Bernoulli(``m/d``) sampling could let a user report more
than ``m`` dimensions and overspend ``ε``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..exceptions import DimensionError
from ..framework.multivariate import (
    MultivariateDeviationModel,
    build_multivariate_model,
)
from ..framework.population import DEFAULT_BINS, ValueDistribution
from ..hdr4me.frequency import FrequencyEstimate
from ..hdr4me.recalibrator import RecalibrationResult, Recalibrator
from ..mechanisms.base import Mechanism, validate_values
from ..rng import RngLike, ensure_rng
from .budget import BudgetPlan
from .server import AggregationResult

#: Users processed per vectorized chunk.
DEFAULT_CHUNK_SIZE = 8192


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one simulated collection round.

    Attributes
    ----------
    aggregation:
        The collector's :class:`AggregationResult` (``θ̂``, counts).
    plan:
        The budget plan used.
    users:
        Number of users simulated.
    """

    aggregation: AggregationResult
    plan: BudgetPlan
    users: int

    @property
    def theta_hat(self) -> np.ndarray:
        """The estimated mean ``θ̂``."""
        return self.aggregation.theta_hat


def build_populations(
    data: np.ndarray, bins: Optional[int] = DEFAULT_BINS
) -> List[ValueDistribution]:
    """Discretize each column of ``data`` into a :class:`ValueDistribution`.

    This is the paper's "we discretize them with sampling" step that makes
    Lemma 3 applicable to continuous data.
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DimensionError("data must be an (n, d) matrix")
    return [ValueDistribution.from_data(matrix[:, j], bins) for j in range(matrix.shape[1])]


class MeanEstimationPipeline:
    """Simulate the full LDP mean-estimation protocol for a dataset.

    Parameters
    ----------
    mechanism:
        Any :class:`Mechanism` whose input domain matches the data.
    epsilon:
        Collective privacy budget per user.
    dimensions:
        Number of dimensions ``d`` of the data.
    sampled_dimensions:
        The ``m`` of the protocol; defaults to ``d`` (every user reports
        everything, the paper's "test the limit" configuration in the
        Fig. 4 experiments).
    chunk_size:
        Users per vectorized batch.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        epsilon: float,
        dimensions: int,
        sampled_dimensions: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise DimensionError("chunk_size must be >= 1, got %d" % chunk_size)
        m = dimensions if sampled_dimensions is None else sampled_dimensions
        self.mechanism = mechanism
        self.plan = BudgetPlan(
            epsilon=epsilon, dimensions=dimensions, sampled_dimensions=m
        )
        self.chunk_size = int(chunk_size)

    # -------------------------------------------------------------- session

    def _schema(self):
        """The all-numeric session schema equivalent to this pipeline."""
        from ..session.schema import NumericAttribute, Schema

        return Schema(
            [
                NumericAttribute("x%d" % j, domain=self.mechanism.input_domain)
                for j in range(self.plan.dimensions)
            ]
        )

    def _session(self):
        """Fresh (client, server) pair for one collection round."""
        from ..session.adapters import MechanismProtocol
        from ..session.client import LDPClient
        from ..session.server import LDPServer

        protocol = MechanismProtocol(self.mechanism)
        schema = self._schema()
        client = LDPClient(
            schema,
            self.plan.epsilon,
            sampled_attributes=self.plan.sampled_dimensions,
            protocols=protocol,
        )
        server = LDPServer(
            schema,
            self.plan.epsilon,
            sampled_attributes=self.plan.sampled_dimensions,
            protocols=protocol,
        )
        return client, server

    # ------------------------------------------------------------------ run

    def run(self, data: np.ndarray, rng: RngLike = None) -> PipelineResult:
        """Perturb, collect and aggregate the whole dataset once.

        Parameters
        ----------
        data:
            ``(n, d)`` matrix of original tuples in the mechanism's domain.
        rng:
            Seed or generator for sampling and perturbation.
        """
        gen = ensure_rng(rng)
        matrix = validate_values(data, self.mechanism.input_domain)
        if matrix.ndim != 2 or matrix.shape[1] != self.plan.dimensions:
            raise DimensionError(
                "expected (n, %d) data, got %s"
                % (self.plan.dimensions, np.shape(data))
            )
        users = matrix.shape[0]
        client, server = self._session()
        for start in range(0, users, self.chunk_size):
            chunk = matrix[start : start + self.chunk_size]
            server.ingest(client.report_batch(chunk, gen))
        estimate = server.estimate()
        aggregation = AggregationResult(
            theta_hat=np.array([a.raw[0] for a in estimate.attributes]),
            report_counts=np.array(
                [a.reports for a in estimate.attributes], dtype=np.int64
            ),
            epsilon_per_dimension=self.plan.epsilon_per_dimension,
        )
        return PipelineResult(aggregation=aggregation, plan=self.plan, users=users)

    def _sample_mask(self, batch: int, gen: np.random.Generator) -> np.ndarray:
        """Boolean ``(batch, d)`` mask with exactly ``m`` True per row."""
        from ..session.client import sample_attribute_mask

        return sample_attribute_mask(
            batch, self.plan.dimensions, self.plan.sampled_dimensions, gen
        )

    # ------------------------------------------------------------ framework

    def deviation_model(
        self,
        users: int,
        populations: Union[
            ValueDistribution, Sequence[ValueDistribution], None
        ] = None,
        data: Optional[np.ndarray] = None,
        bins: Optional[int] = DEFAULT_BINS,
    ) -> MultivariateDeviationModel:
        """Theorem 1 model for this pipeline configuration.

        Either pass explicit ``populations`` (one shared or one per
        dimension) or raw ``data`` to be discretized; unbounded mechanisms
        need neither.
        """
        if populations is None and data is not None:
            populations = build_populations(data, bins)
        return build_multivariate_model(
            self.mechanism,
            self.plan.epsilon_per_dimension,
            self.plan.expected_reports(users),
            populations,
            ndim=self.plan.dimensions,
        )

    def run_enhanced(
        self,
        data: np.ndarray,
        recalibrator: Recalibrator,
        rng: RngLike = None,
        populations: Union[
            ValueDistribution, Sequence[ValueDistribution], None
        ] = None,
        bins: Optional[int] = DEFAULT_BINS,
    ) -> RecalibrationResult:
        """Run the protocol and apply HDR4ME in one call (convenience)."""
        result = self.run(data, rng)
        model = self.deviation_model(
            users=result.users,
            populations=populations,
            data=data if (populations is None and self.mechanism.bounded) else None,
            bins=bins,
        )
        return recalibrator.recalibrate(result.theta_hat, model)


class FrequencyEstimationPipeline:
    """Section V-C protocol for ``d`` categorical dimensions.

    Each user samples exactly ``m`` of the ``d`` categorical dimensions
    and submits the histogram-encoded, per-entry-perturbed vector for
    each; the collector converts entry means back into per-category
    frequencies.

    Parameters
    ----------
    mechanism:
        Any mechanism (re-domained internally to the unit interval).
    epsilon:
        Collective privacy budget.
    category_counts:
        Sequence ``v_j``: number of categories in each dimension.
    sampled_dimensions:
        The ``m`` of the protocol; defaults to all dimensions.
    recalibrator:
        Optional HDR4ME recalibrator applied per dimension.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        epsilon: float,
        category_counts: Sequence[int],
        sampled_dimensions: Optional[int] = None,
        recalibrator: Optional[Recalibrator] = None,
    ) -> None:
        counts = [int(v) for v in category_counts]
        if not counts:
            raise DimensionError("need at least one categorical dimension")
        d = len(counts)
        m = d if sampled_dimensions is None else int(sampled_dimensions)
        self.plan = BudgetPlan(epsilon=epsilon, dimensions=d, sampled_dimensions=m)
        self.category_counts = counts
        self.mechanism = mechanism
        self.recalibrator = recalibrator

    def run(
        self, categories: np.ndarray, rng: RngLike = None
    ) -> List[FrequencyEstimate]:
        """Estimate frequencies for every categorical dimension.

        Parameters
        ----------
        categories:
            ``(n, d)`` integer matrix of category labels.
        """
        from ..session.adapters import MechanismProtocol
        from ..session.client import LDPClient
        from ..session.schema import CategoricalAttribute, Schema
        from ..session.server import LDPServer

        gen = ensure_rng(rng)
        labels = np.asarray(categories)
        if labels.ndim != 2 or labels.shape[1] != self.plan.dimensions:
            raise DimensionError(
                "expected (n, %d) labels, got %s"
                % (self.plan.dimensions, np.shape(categories))
            )
        schema = Schema(
            [
                CategoricalAttribute("q%d" % j, n_categories=v)
                for j, v in enumerate(self.category_counts)
            ]
        )
        protocol = MechanismProtocol(self.mechanism)
        client = LDPClient(
            schema,
            self.plan.epsilon,
            sampled_attributes=self.plan.sampled_dimensions,
            protocols=protocol,
        )
        server = LDPServer(
            schema,
            self.plan.epsilon,
            sampled_attributes=self.plan.sampled_dimensions,
            protocols=protocol,
        )
        users = labels.shape[0]
        for start in range(0, users, DEFAULT_CHUNK_SIZE):
            chunk = labels[start : start + DEFAULT_CHUNK_SIZE]
            server.ingest(client.report_batch(chunk, gen))
        estimate = server.estimate(postprocess=self.recalibrator)
        return [
            FrequencyEstimate(
                raw=attr.raw,
                entry_means=attr.entry_means,
                enhanced=attr.enhanced,
                epsilon_per_entry=self.plan.epsilon_per_entry,
                reports=attr.reports,
            )
            for attr in estimate.attributes
        ]
