"""End-to-end simulation pipelines (users → reports → collector → mean).

:class:`MeanEstimationPipeline` reproduces the paper's collection protocol
at dataset scale with a vectorized, chunked fast path: every user samples
``m`` of ``d`` dimensions, perturbs them with ``ε/m``, and the collector
aggregates into ``θ̂``. The chunking keeps the memory footprint bounded
(``chunk_size × d`` floats) so paper-scale runs (n = 200,000, d = 5,000)
fit on a laptop.

The pipeline also exposes the bridge to Section IV: given the population
value distributions of the data (or the data itself, which it discretizes),
:meth:`MeanEstimationPipeline.deviation_model` returns the Theorem 1 model
for exactly this configuration — which is what HDR4ME's λ* selection
consumes.

:class:`FrequencyEstimationPipeline` is the Section V-C analogue for
categorical data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..exceptions import DimensionError
from ..framework.multivariate import (
    MultivariateDeviationModel,
    build_multivariate_model,
)
from ..framework.population import DEFAULT_BINS, ValueDistribution
from ..hdr4me.frequency import FrequencyEstimate, FrequencyEstimator
from ..hdr4me.recalibrator import RecalibrationResult, Recalibrator
from ..mechanisms.base import Mechanism, validate_values
from ..rng import RngLike, ensure_rng
from .budget import BudgetPlan
from .server import AggregationResult, Aggregator

#: Users processed per vectorized chunk.
DEFAULT_CHUNK_SIZE = 8192


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one simulated collection round.

    Attributes
    ----------
    aggregation:
        The collector's :class:`AggregationResult` (``θ̂``, counts).
    plan:
        The budget plan used.
    users:
        Number of users simulated.
    """

    aggregation: AggregationResult
    plan: BudgetPlan
    users: int

    @property
    def theta_hat(self) -> np.ndarray:
        """The estimated mean ``θ̂``."""
        return self.aggregation.theta_hat


def build_populations(
    data: np.ndarray, bins: Optional[int] = DEFAULT_BINS
) -> List[ValueDistribution]:
    """Discretize each column of ``data`` into a :class:`ValueDistribution`.

    This is the paper's "we discretize them with sampling" step that makes
    Lemma 3 applicable to continuous data.
    """
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DimensionError("data must be an (n, d) matrix")
    return [ValueDistribution.from_data(matrix[:, j], bins) for j in range(matrix.shape[1])]


class MeanEstimationPipeline:
    """Simulate the full LDP mean-estimation protocol for a dataset.

    Parameters
    ----------
    mechanism:
        Any :class:`Mechanism` whose input domain matches the data.
    epsilon:
        Collective privacy budget per user.
    dimensions:
        Number of dimensions ``d`` of the data.
    sampled_dimensions:
        The ``m`` of the protocol; defaults to ``d`` (every user reports
        everything, the paper's "test the limit" configuration in the
        Fig. 4 experiments).
    chunk_size:
        Users per vectorized batch.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        epsilon: float,
        dimensions: int,
        sampled_dimensions: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise DimensionError("chunk_size must be >= 1, got %d" % chunk_size)
        m = dimensions if sampled_dimensions is None else sampled_dimensions
        self.mechanism = mechanism
        self.plan = BudgetPlan(
            epsilon=epsilon, dimensions=dimensions, sampled_dimensions=m
        )
        self.chunk_size = int(chunk_size)

    # ------------------------------------------------------------------ run

    def run(self, data: np.ndarray, rng: RngLike = None) -> PipelineResult:
        """Perturb, collect and aggregate the whole dataset once.

        Parameters
        ----------
        data:
            ``(n, d)`` matrix of original tuples in the mechanism's domain.
        rng:
            Seed or generator for sampling and perturbation.
        """
        gen = ensure_rng(rng)
        matrix = validate_values(data, self.mechanism.input_domain)
        if matrix.ndim != 2 or matrix.shape[1] != self.plan.dimensions:
            raise DimensionError(
                "expected (n, %d) data, got %s"
                % (self.plan.dimensions, np.shape(data))
            )
        users = matrix.shape[0]
        aggregator = Aggregator(self.mechanism, self.plan)
        eps = self.plan.epsilon_per_dimension
        m, d = self.plan.sampled_dimensions, self.plan.dimensions

        for start in range(0, users, self.chunk_size):
            chunk = matrix[start : start + self.chunk_size]
            if m == d:
                perturbed = self.mechanism.perturb(chunk, eps, gen)
                aggregator.add_matrix(perturbed)
                continue
            mask = self._sample_mask(chunk.shape[0], gen)
            perturbed = np.zeros_like(chunk)
            perturbed[mask] = self.mechanism.perturb(chunk[mask], eps, gen)
            aggregator.add_matrix(perturbed, mask)

        return PipelineResult(
            aggregation=aggregator.aggregate(), plan=self.plan, users=users
        )

    def _sample_mask(self, batch: int, gen: np.random.Generator) -> np.ndarray:
        """Boolean ``(batch, d)`` mask with exactly ``m`` True per row."""
        d, m = self.plan.dimensions, self.plan.sampled_dimensions
        scores = gen.random((batch, d))
        chosen = np.argpartition(scores, m - 1, axis=1)[:, :m]
        mask = np.zeros((batch, d), dtype=bool)
        mask[np.arange(batch)[:, None], chosen] = True
        return mask

    # ------------------------------------------------------------ framework

    def deviation_model(
        self,
        users: int,
        populations: Union[
            ValueDistribution, Sequence[ValueDistribution], None
        ] = None,
        data: Optional[np.ndarray] = None,
        bins: Optional[int] = DEFAULT_BINS,
    ) -> MultivariateDeviationModel:
        """Theorem 1 model for this pipeline configuration.

        Either pass explicit ``populations`` (one shared or one per
        dimension) or raw ``data`` to be discretized; unbounded mechanisms
        need neither.
        """
        if populations is None and data is not None:
            populations = build_populations(data, bins)
        return build_multivariate_model(
            self.mechanism,
            self.plan.epsilon_per_dimension,
            self.plan.expected_reports(users),
            populations,
            ndim=self.plan.dimensions,
        )

    def run_enhanced(
        self,
        data: np.ndarray,
        recalibrator: Recalibrator,
        rng: RngLike = None,
        populations: Union[
            ValueDistribution, Sequence[ValueDistribution], None
        ] = None,
        bins: Optional[int] = DEFAULT_BINS,
    ) -> RecalibrationResult:
        """Run the protocol and apply HDR4ME in one call (convenience)."""
        result = self.run(data, rng)
        model = self.deviation_model(
            users=result.users,
            populations=populations,
            data=data if (populations is None and self.mechanism.bounded) else None,
            bins=bins,
        )
        return recalibrator.recalibrate(result.theta_hat, model)


class FrequencyEstimationPipeline:
    """Section V-C protocol for ``d`` categorical dimensions.

    Each user samples ``m`` of the ``d`` categorical dimensions and
    submits the histogram-encoded, per-entry-perturbed vector for each;
    the collector converts entry means back into per-category frequencies.

    Parameters
    ----------
    mechanism:
        Any mechanism (re-domained internally to the unit interval).
    epsilon:
        Collective privacy budget.
    category_counts:
        Sequence ``v_j``: number of categories in each dimension.
    sampled_dimensions:
        The ``m`` of the protocol; defaults to all dimensions.
    recalibrator:
        Optional HDR4ME recalibrator applied per dimension.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        epsilon: float,
        category_counts: Sequence[int],
        sampled_dimensions: Optional[int] = None,
        recalibrator: Optional[Recalibrator] = None,
    ) -> None:
        counts = [int(v) for v in category_counts]
        if not counts:
            raise DimensionError("need at least one categorical dimension")
        d = len(counts)
        m = d if sampled_dimensions is None else int(sampled_dimensions)
        self.plan = BudgetPlan(epsilon=epsilon, dimensions=d, sampled_dimensions=m)
        self.category_counts = counts
        self._estimator = FrequencyEstimator(
            mechanism,
            epsilon,
            sampled_dimensions=m,
            recalibrator=recalibrator,
        )

    def run(
        self, categories: np.ndarray, rng: RngLike = None
    ) -> List[FrequencyEstimate]:
        """Estimate frequencies for every categorical dimension.

        Parameters
        ----------
        categories:
            ``(n, d)`` integer matrix of category labels.
        """
        gen = ensure_rng(rng)
        labels = np.asarray(categories)
        if labels.ndim != 2 or labels.shape[1] != self.plan.dimensions:
            raise DimensionError(
                "expected (n, %d) labels, got %s"
                % (self.plan.dimensions, np.shape(categories))
            )
        users = labels.shape[0]
        d, m = self.plan.dimensions, self.plan.sampled_dimensions
        estimates: List[FrequencyEstimate] = []
        for j, n_categories in enumerate(self.category_counts):
            if m == d:
                contributors = labels[:, j]
            else:
                # Each user reports dimension j with probability m/d.
                picked = gen.random(users) < (m / d)
                contributors = labels[picked, j]
                if contributors.size == 0:
                    raise DimensionError(
                        "dimension %d received no reports; increase n or m" % j
                    )
            estimates.append(
                self._estimator.estimate(contributors, n_categories, gen)
            )
        return estimates
