"""Privacy-budget accounting for the collection protocol (Section III-B).

The paper's protocol: each user holds a ``d``-dimensional tuple, reports a
uniformly random subset of ``m`` dimensions, and spends ``ε/m`` on each so
the parallel composition over the reported dimensions totals ``ε``. For
frequency estimation the per-entry budget halves to ``ε/2m`` because a
category change flips two histogram-encoded entries. :class:`BudgetPlan`
centralizes that arithmetic (and its validation) so every pipeline and
experiment shares one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import DimensionError, PrivacyBudgetError
from ..mechanisms.base import validate_epsilon


@dataclass(frozen=True)
class BudgetPlan:
    """How a collective budget ``ε`` is split across reported dimensions.

    Attributes
    ----------
    epsilon:
        The collective per-user privacy budget.
    dimensions:
        Total number of dimensions ``d`` in a user's tuple.
    sampled_dimensions:
        Number of dimensions ``m`` each user reports (``1 ≤ m ≤ d``).
    """

    epsilon: float
    dimensions: int
    sampled_dimensions: int

    def __post_init__(self) -> None:
        validate_epsilon(self.epsilon)
        if self.dimensions < 1:
            raise DimensionError(
                "dimensions must be >= 1, got %d" % self.dimensions
            )
        if not 1 <= self.sampled_dimensions <= self.dimensions:
            raise DimensionError(
                "sampled_dimensions must lie in [1, %d], got %d"
                % (self.dimensions, self.sampled_dimensions)
            )

    @property
    def epsilon_per_dimension(self) -> float:
        """Mean-estimation per-dimension budget ``ε/m``."""
        return self.epsilon / self.sampled_dimensions

    @property
    def epsilon_per_entry(self) -> float:
        """Frequency-estimation per-entry budget ``ε/2m`` (Section V-C)."""
        return self.epsilon / (2.0 * self.sampled_dimensions)

    def expected_reports(self, users: int) -> int:
        """Expected reports per dimension ``r = n·m/d``.

        Rounded to the nearest integer (and floored at 1) for use as the
        ``r`` of the analytical framework.
        """
        if users < 1:
            raise PrivacyBudgetError("users must be >= 1, got %d" % users)
        expected = users * self.sampled_dimensions / self.dimensions
        return max(1, int(round(expected)))

    def scaled(self, epsilon: float) -> "BudgetPlan":
        """A copy of this plan with a different collective budget."""
        return BudgetPlan(
            epsilon=epsilon,
            dimensions=self.dimensions,
            sampled_dimensions=self.sampled_dimensions,
        )
