"""The project-specific invariant rules (see :mod:`repro.analysis.linter`).

Each rule enforces one contract the reproduction's correctness rests on.
The catalogue (rule id = the name used in ``--select`` and in
``# repro: allow[...]`` suppressions):

``global-rng``
    All randomness flows through seeded :class:`numpy.random.Generator`
    objects (``repro.rng.ensure_rng`` / explicit ``rng`` parameters).
    Global-state draws — ``np.random.random()``, ``random.choice()`` —
    silently break run-to-run reproducibility.
``exact-arith``
    Merge/fold/delta paths accumulate exactly (Python big ints). Float
    arithmetic, true division or ``sum()``/``float()`` in those scopes
    would make estimates depend on batching and shard order.
``typed-errors``
    Library code raises the :mod:`repro.exceptions` hierarchy, never
    bare ``ValueError``/``RuntimeError``/``AssertionError``/``Exception``
    (and never ``assert``, which vanishes under ``python -O``).
``broad-except``
    ``except Exception`` only with an explicit suppression naming the
    poison/retry rationale; anything narrower should name its types.
``async-hygiene``
    Every ``create_task``/``ensure_future`` handle is retained (a
    dropped handle is an uncancellable, silently-dying task), and no
    blocking call (``time.sleep``, ``open``, subprocess, raw sockets)
    runs inside ``async def``.
``wall-clock``
    Wall-clock reads go through the injectable
    :func:`repro.telemetry.events.timestamp` (or an injected registry
    clock) so tests and replays can pin time.
``wire-constants``
    Struct format strings live in module-level ``struct.Struct``
    constants inside the wire/transport constant modules, and magic
    bytes are defined exactly once — the wire layout has a single
    source of truth.
"""

from __future__ import annotations

import ast
import re
from typing import Optional, Tuple

from .linter import Context, Rule, register

__all__ = ["RULE_NAMES"]


def _call_name(node: ast.Call, ctx: Context) -> Optional[str]:
    return ctx.dotted_name(node.func)


# --------------------------------------------------------------------- rng


@register
class GlobalRngRule(Rule):
    """No global-state randomness; seeded ``Generator`` streams only."""

    name = "global-rng"
    summary = (
        "randomness must flow through repro.rng.ensure_rng / an explicit "
        "np.random.Generator, never module-level np.random.* or random.*"
    )
    node_types = (ast.Call, ast.ImportFrom)

    #: Constructors of seeded streams, fine anywhere.
    _ALLOWED = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "PCG64",
        "Philox",
        "SFC64",
        "MT19937",
    }

    def check(self, node: ast.AST, ctx: Context) -> None:
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "numpy.random":
                for alias in node.names:
                    if alias.name not in self._ALLOWED:
                        ctx.report(
                            self,
                            node,
                            "import of global-state numpy.random.%s; draw "
                            "from a seeded Generator instead" % alias.name,
                        )
            elif module == "random":
                ctx.report(
                    self,
                    node,
                    "import from the global-state random module; use "
                    "repro.rng.ensure_rng and Generator methods",
                )
            return
        dotted = _call_name(node, ctx) if isinstance(node, ast.Call) else None
        if dotted is None:
            return
        if dotted.startswith("numpy.random."):
            leaf = dotted.rsplit(".", 1)[1]
            if leaf not in self._ALLOWED:
                ctx.report(
                    self,
                    node,
                    "global-state %s call breaks reproducibility; draw from "
                    "a seeded Generator (repro.rng.ensure_rng)" % dotted,
                )
        elif dotted.startswith("random.") and dotted.count(".") == 1:
            ctx.report(
                self,
                node,
                "stdlib %s call uses hidden global state; use "
                "repro.rng.ensure_rng and Generator methods" % dotted,
            )


# ------------------------------------------------------------- exact paths


@register
class ExactArithmeticRule(Rule):
    """Exact accumulator scopes must stay in integer arithmetic."""

    name = "exact-arith"
    summary = (
        "no float arithmetic, true division, sum() or float() inside "
        "merge/fold/delta accumulator paths — exactness is the invariant"
    )
    node_types = (ast.BinOp, ast.AugAssign, ast.Call)

    #: A scope is an exact path when its function name mentions one of
    #: the accumulator verbs. Class names alone do not opt a scope in.
    _SCOPE = re.compile(r"(merge|fold|delta)", re.IGNORECASE)

    _BANNED_CALLS = {
        "sum": "the builtin float-accumulating sum()",
        "float": "a float() conversion",
        "math.fsum": "math.fsum()",
        "numpy.sum": "numpy.sum()",
        "numpy.mean": "numpy.mean()",
        "numpy.add.reduce": "numpy.add.reduce()",
    }

    def _in_exact_scope(self, ctx: Context) -> bool:
        return any(
            self._SCOPE.search(part) is not None for part in ctx.scope
        )

    def check(self, node: ast.AST, ctx: Context) -> None:
        if not self._in_exact_scope(ctx):
            return
        if isinstance(node, (ast.BinOp, ast.AugAssign)):
            if isinstance(node.op, ast.Div):
                ctx.report(
                    self,
                    node,
                    "true division in an exact accumulator path produces a "
                    "float; accumulate exactly and round once at the edge",
                )
                return
        if isinstance(node, ast.BinOp):
            for operand in (node.left, node.right):
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, float
                ):
                    ctx.report(
                        self,
                        node,
                        "float literal in an exact accumulator path; keep "
                        "merge/fold/delta arithmetic in exact integers",
                    )
                    return
        if isinstance(node, ast.Call):
            dotted = _call_name(node, ctx)
            reason = self._BANNED_CALLS.get(dotted or "")
            if reason is not None and (
                dotted not in ("sum", "float")
                or isinstance(node.func, ast.Name)
            ):
                ctx.report(
                    self,
                    node,
                    "%s in an exact accumulator path loses exactness; use "
                    "big-int addition" % reason,
                )


# ------------------------------------------------------------ typed errors


@register
class TypedErrorRule(Rule):
    """Library code fails through the :mod:`repro.exceptions` hierarchy."""

    name = "typed-errors"
    summary = (
        "raise the repro error hierarchy, not bare ValueError/RuntimeError/"
        "AssertionError/Exception, and never assert (stripped under -O)"
    )
    node_types = (ast.Raise, ast.Assert)

    _BARE = {
        "ValueError",
        "RuntimeError",
        "AssertionError",
        "Exception",
        "BaseException",
    }

    @staticmethod
    def _is_test_file(ctx: Context) -> bool:
        normalized = ctx.path.replace("\\", "/")
        return "/tests/" in normalized or normalized.rsplit("/", 1)[-1].startswith(
            "test_"
        )

    def check(self, node: ast.AST, ctx: Context) -> None:
        if self._is_test_file(ctx):
            return
        if isinstance(node, ast.Assert):
            ctx.report(
                self,
                node,
                "assert vanishes under 'python -O'; raise a typed repro "
                "error for real invariants",
            )
            return
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in self._BARE:
            ctx.report(
                self,
                node,
                "raise %s leaks an untyped error; raise the matching "
                "repro.exceptions class (they subclass ValueError/"
                "RuntimeError, so callers keep working)" % exc.id,
            )


# ------------------------------------------------------------ broad except


@register
class BroadExceptRule(Rule):
    """``except Exception`` demands an annotated poison/retry rationale."""

    name = "broad-except"
    summary = (
        "except Exception/BaseException/bare except only with an explicit "
        "'# repro: allow[broad-except] -- <poison/retry rationale>'"
    )
    node_types = (ast.ExceptHandler,)

    def _is_broad(self, annotation: Optional[ast.expr], ctx: Context) -> bool:
        if annotation is None:
            return True
        if isinstance(annotation, ast.Tuple):
            return any(self._is_broad(elt, ctx) for elt in annotation.elts)
        dotted = ctx.dotted_name(annotation)
        return dotted in ("Exception", "BaseException", "builtins.Exception")

    def check(self, node: ast.AST, ctx: Context) -> None:
        if self._is_broad(node.type, ctx):
            what = "bare except:" if node.type is None else "except Exception"
            ctx.report(
                self,
                node,
                "%s swallows typed failures; narrow the catch or annotate "
                "the poison/retry rationale" % what,
            )


# ----------------------------------------------------------------- asyncio


@register
class AsyncHygieneRule(Rule):
    """No leaked tasks, no blocking calls on the event loop."""

    name = "async-hygiene"
    summary = (
        "retain every create_task/ensure_future handle and keep blocking "
        "calls (time.sleep, open, subprocess, raw sockets) out of async def"
    )
    node_types = (ast.Expr, ast.Call)

    _SPAWNERS = ("asyncio.create_task", "asyncio.ensure_future")
    _BLOCKING = {
        "time.sleep": "time.sleep() blocks the event loop; use asyncio.sleep",
        "socket.socket": "raw sockets block the loop; use asyncio streams",
        "socket.create_connection": (
            "blocking connect; use asyncio.open_connection"
        ),
        "subprocess.run": "blocking subprocess; use asyncio.create_subprocess_*",
        "subprocess.call": "blocking subprocess; use asyncio.create_subprocess_*",
        "subprocess.check_call": (
            "blocking subprocess; use asyncio.create_subprocess_*"
        ),
        "subprocess.check_output": (
            "blocking subprocess; use asyncio.create_subprocess_*"
        ),
        "subprocess.Popen": "blocking subprocess; use asyncio.create_subprocess_*",
        "os.system": "os.system blocks the event loop",
        "urllib.request.urlopen": "blocking HTTP; do I/O off the loop",
    }

    def _spawn_call(self, node: ast.expr, ctx: Context) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = _call_name(node, ctx)
        if dotted in self._SPAWNERS:
            return True
        # loop.create_task(...) on any expression root.
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "create_task"
        )

    def check(self, node: ast.AST, ctx: Context) -> None:
        if isinstance(node, ast.Expr):
            if self._spawn_call(node.value, ctx):
                ctx.report(
                    self,
                    node,
                    "task handle discarded: keep the Task and await or "
                    "cancel it, or it dies silently and cannot be drained",
                )
            return
        if ctx.async_depth == 0:
            return
        dotted = _call_name(node, ctx)
        message = self._BLOCKING.get(dotted or "")
        if message is None and isinstance(node.func, ast.Name):
            if node.func.id == "open":
                message = (
                    "blocking file open() inside async def; do file I/O "
                    "outside the loop or via a thread"
                )
            elif node.func.id == "input":
                message = "input() blocks the event loop"
        if message is not None:
            ctx.report(self, node, message)


# --------------------------------------------------------------- wall clock


@register
class WallClockRule(Rule):
    """Wall-clock reads are injectable, so tests and replays can pin time."""

    name = "wall-clock"
    summary = (
        "time.time()/datetime.now() only behind the injectable telemetry "
        "clock (repro.telemetry.events.timestamp / set_wall_clock)"
    )
    node_types = (ast.Call, ast.ImportFrom)

    _WALL = {
        "time.time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check(self, node: ast.AST, ctx: Context) -> None:
        if isinstance(node, ast.ImportFrom):
            if node.module == "time" and any(
                alias.name == "time" for alias in node.names
            ):
                ctx.report(
                    self,
                    node,
                    "aliasing time.time hides wall-clock reads from this "
                    "rule; call repro.telemetry.events.timestamp() instead",
                )
            return
        dotted = _call_name(node, ctx)
        if dotted in self._WALL:
            ctx.report(
                self,
                node,
                "%s() reads the ambient wall clock; route it through "
                "repro.telemetry.events.timestamp() (injectable via "
                "set_wall_clock) or an injected registry clock" % dotted,
            )


# ------------------------------------------------------------ wire constants


@register
class WireConstantRule(Rule):
    """One source of truth for struct formats and magic bytes."""

    name = "wire-constants"
    summary = (
        "struct format strings only as module-level Struct constants in "
        "the wire/transport constant modules; magic bytes defined once"
    )
    node_types = (ast.Call, ast.Constant)

    #: Modules allowed to define struct layouts and magic byte strings.
    _CONSTANT_MODULES = (
        "repro/wire/constants.py",
        "repro/wire/codec.py",
        "repro/wire/packing.py",
        "repro/transport/framing.py",
    )

    _PACKERS = {
        "struct.pack",
        "struct.unpack",
        "struct.unpack_from",
        "struct.pack_into",
        "struct.iter_unpack",
        "struct.calcsize",
    }

    _MAGIC = re.compile(rb"^[A-Z]{3,8}$")

    def _sanctioned(self, ctx: Context) -> bool:
        normalized = ctx.path.replace("\\", "/")
        return normalized.endswith(self._CONSTANT_MODULES)

    def check(self, node: ast.AST, ctx: Context) -> None:
        if isinstance(node, ast.Call):
            dotted = _call_name(node, ctx)
            literal_fmt = bool(node.args) and isinstance(
                node.args[0], ast.Constant
            ) and isinstance(node.args[0].value, str)
            if dotted in self._PACKERS and literal_fmt:
                ctx.report(
                    self,
                    node,
                    "inline struct format string; pack/unpack through a "
                    "module-level struct.Struct constant so the layout has "
                    "one definition",
                )
            elif dotted == "struct.Struct" and literal_fmt:
                if not self._sanctioned(ctx) or ctx.in_function:
                    ctx.report(
                        self,
                        node,
                        "struct.Struct layout defined outside the wire/"
                        "transport constant modules; move it to repro.wire "
                        "(or annotate a deliberately local framing)",
                    )
            return
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, bytes)
            and self._MAGIC.match(node.value)
            and not self._sanctioned(ctx)
        ):
            ctx.report(
                self,
                node,
                "magic byte literal %r outside the wire/transport constant "
                "modules; import the named constant instead" % node.value,
            )


#: Names of every registered rule, in catalogue order.
RULE_NAMES: Tuple[str, ...] = (
    GlobalRngRule.name,
    ExactArithmeticRule.name,
    TypedErrorRule.name,
    BroadExceptRule.name,
    AsyncHygieneRule.name,
    WallClockRule.name,
    WireConstantRule.name,
)
