"""Utility metrics from Section III-B (Eq. 2 and Eq. 3).

The paper measures utility as the Euclidean deviation between the
estimated mean ``θ̂`` and the true mean ``θ̄`` (theory) and as the MSE
averaged over dimensions (experiments); the two are linked by
``MSE = ‖θ̂ − θ̄‖² / d``, which is what lets the analytical framework
predict experimental MSE without running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..exceptions import DimensionError


def _pair(estimate: np.ndarray, truth: np.ndarray) -> tuple:
    est = np.asarray(estimate, dtype=np.float64).ravel()
    tru = np.asarray(truth, dtype=np.float64).ravel()
    if est.shape != tru.shape:
        raise DimensionError(
            "estimate and truth disagree: %s vs %s" % (est.shape, tru.shape)
        )
    if est.size == 0:
        raise DimensionError("cannot score empty vectors")
    return est, tru


def l2_deviation(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Euclidean deviation ``‖θ̂ − θ̄‖₂`` (paper Eq. 2)."""
    est, tru = _pair(estimate, truth)
    return float(np.linalg.norm(est - tru))


def mse(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Mean squared error over dimensions (paper Eq. 3)."""
    est, tru = _pair(estimate, truth)
    return float(np.mean((est - tru) ** 2))


def max_abs_deviation(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Worst per-dimension deviation ``max_j |θ̂_j − θ̄_j|``."""
    est, tru = _pair(estimate, truth)
    return float(np.max(np.abs(est - tru)))


def true_mean(data: np.ndarray) -> np.ndarray:
    """Per-dimension original mean ``θ̄`` of an ``(n, d)`` dataset."""
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise DimensionError("data must be an (n, d) matrix")
    return matrix.mean(axis=0)


@dataclass(frozen=True)
class UtilityReport:
    """All three utility metrics for one estimate against one truth."""

    mse: float
    l2: float
    max_abs: float

    @classmethod
    def score(cls, estimate: np.ndarray, truth: np.ndarray) -> "UtilityReport":
        """Compute the full report in one pass."""
        return cls(
            mse=mse(estimate, truth),
            l2=l2_deviation(estimate, truth),
            max_abs=max_abs_deviation(estimate, truth),
        )


def compare_estimates(
    estimates: Dict[str, np.ndarray], truth: np.ndarray
) -> Dict[str, UtilityReport]:
    """Score several labelled estimates against the same truth.

    The standard shape of a paper experiment: ``{"baseline": θ̂,
    "l1": θ*₁, "l2": θ*₂}`` → per-label :class:`UtilityReport`.
    """
    return {
        label: UtilityReport.score(estimate, truth)
        for label, estimate in estimates.items()
    }
